#include "storage/power_meter.h"

#include <cassert>
#include <ostream>

namespace ecostore::storage {

PowerMeter::PowerMeter(StorageSystem* system, SimDuration interval)
    : system_(system), interval_(interval) {
  assert(system != nullptr);
}

Status PowerMeter::Start() {
  if (interval_ <= 0) {
    return Status::InvalidArgument("sampling interval must be positive");
  }
  if (running_) return Status::FailedPrecondition("meter already running");
  running_ = true;
  last_enclosure_energy_ = system_->EnclosureEnergy();
  last_controller_energy_ = system_->ControllerEnergy();
  pending_ = system_->simulator()->ScheduleAfter(interval_,
                                                 [this] { Tick(); });
  return Status::OK();
}

void PowerMeter::Stop() {
  if (!running_) return;
  system_->simulator()->Cancel(pending_);
  running_ = false;
}

void PowerMeter::Tick() {
  Joules enclosure_energy = system_->EnclosureEnergy();
  Joules controller_energy = system_->ControllerEnergy();
  PowerSample sample;
  sample.time = system_->simulator()->Now();
  sample.enclosures =
      AveragePower(enclosure_energy - last_enclosure_energy_, interval_);
  sample.controller =
      AveragePower(controller_energy - last_controller_energy_, interval_);
  samples_.push_back(sample);
  last_enclosure_energy_ = enclosure_energy;
  last_controller_energy_ = controller_energy;
  pending_ = system_->simulator()->ScheduleAfter(interval_,
                                                 [this] { Tick(); });
}

Joules PowerMeter::SampledEnergy() const {
  Joules total = 0.0;
  for (const PowerSample& s : samples_) {
    total += EnergyOf(s.total(), interval_);
  }
  return total;
}

Watts PowerMeter::AveragePowerSampled() const {
  if (samples_.empty()) return 0.0;
  Watts sum = 0.0;
  for (const PowerSample& s : samples_) sum += s.total();
  return sum / static_cast<double>(samples_.size());
}

Watts PowerMeter::PeakPower() const {
  Watts peak = 0.0;
  for (const PowerSample& s : samples_) {
    if (s.total() > peak) peak = s.total();
  }
  return peak;
}

Status PowerMeter::WriteCsv(std::ostream& out) const {
  out << "time_s,enclosures_w,controller_w,total_w\n";
  for (const PowerSample& s : samples_) {
    out << ToSeconds(s.time) << ',' << s.enclosures << ',' << s.controller
        << ',' << s.total() << '\n';
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

}  // namespace ecostore::storage
