#include "storage/catalog_csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace ecostore::storage {

namespace {

const char* KindToToken(DataItemKind kind) { return DataItemKindName(kind); }

Result<DataItemKind> KindFromToken(const std::string& token) {
  for (int k = 0; k <= static_cast<int>(DataItemKind::kWorkFile); ++k) {
    auto kind = static_cast<DataItemKind>(k);
    if (token == DataItemKindName(kind)) return kind;
  }
  return Status::IoError("unknown item kind: " + token);
}

std::vector<std::string> Split(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

Status WriteCatalogCsv(std::ostream& out, const DataItemCatalog& catalog) {
  for (size_t v = 0; v < catalog.volume_count(); ++v) {
    out << "V," << v << ','
        << catalog.volume_enclosure(static_cast<VolumeId>(v)) << '\n';
  }
  for (const DataItem& item : catalog.items()) {
    if (item.name.find(',') != std::string::npos) {
      return Status::InvalidArgument("item name contains a comma: " +
                                     item.name);
    }
    out << "I," << item.id << ',' << item.name << ',' << item.volume << ','
        << item.size_bytes << ',' << KindToToken(item.kind) << ','
        << (item.pinned ? 1 : 0) << '\n';
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Result<DataItemCatalog> ReadCatalogCsv(std::istream& in) {
  DataItemCatalog catalog;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    line_no++;
    if (line.empty()) continue;
    std::vector<std::string> f = Split(line);
    auto fail = [&](const std::string& what) {
      return Status::IoError(what + " at line " + std::to_string(line_no));
    };
    if (f[0] == "V") {
      if (f.size() != 3) return fail("malformed volume row");
      int64_t id = 0, enc = 0;
      if (!ParseInt(f[1], &id) || !ParseInt(f[2], &enc)) {
        return fail("bad volume fields");
      }
      VolumeId assigned = catalog.AddVolume(static_cast<EnclosureId>(enc));
      if (assigned != static_cast<VolumeId>(id)) {
        return fail("volume ids must be dense and ordered");
      }
    } else if (f[0] == "I") {
      if (f.size() != 7) return fail("malformed item row");
      int64_t id = 0, volume = 0, size = 0, pinned = 0;
      if (!ParseInt(f[1], &id) || !ParseInt(f[3], &volume) ||
          !ParseInt(f[4], &size) || !ParseInt(f[6], &pinned) ||
          (pinned != 0 && pinned != 1)) {
        return fail("bad item fields");
      }
      Result<DataItemKind> kind = KindFromToken(f[5]);
      if (!kind.ok()) return kind.status();
      Result<DataItemId> assigned =
          catalog.AddItem(f[2], static_cast<VolumeId>(volume), size,
                          kind.value(), pinned == 1);
      if (!assigned.ok()) return assigned.status();
      if (assigned.value() != static_cast<DataItemId>(id)) {
        return fail("item ids must be dense and ordered");
      }
    } else {
      return fail("unknown record kind '" + f[0] + "'");
    }
  }
  return catalog;
}

Status WriteCatalogCsvFile(const std::string& path,
                           const DataItemCatalog& catalog) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return WriteCatalogCsv(out, catalog);
}

Result<DataItemCatalog> ReadCatalogCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ReadCatalogCsv(in);
}

}  // namespace ecostore::storage
