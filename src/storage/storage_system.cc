#include "storage/storage_system.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/logging.h"

namespace ecostore::storage {

StorageSystem::StorageSystem(sim::Simulator* simulator,
                             const StorageConfig& config,
                             const DataItemCatalog* catalog)
    : sim_(simulator),
      config_(config),
      catalog_(catalog),
      cache_(config.cache),
      virt_(catalog, config.num_enclosures, config.enclosure.capacity_bytes) {
  assert(simulator != nullptr);
  assert(catalog != nullptr);
}

Status StorageSystem::Init() {
  ECOSTORE_RETURN_NOT_OK(config_.Validate());
  enclosures_.clear();
  for (int i = 0; i < config_.num_enclosures; ++i) {
    enclosures_.push_back(std::make_unique<DiskEnclosure>(
        static_cast<EnclosureId>(i), config_.enclosure));
  }
  spin_down_allowed_.assign(static_cast<size_t>(config_.num_enclosures),
                            false);
  return virt_.PlaceInitial();
}

void StorageSystem::NotifyPhysicalIo(const trace::PhysicalIoRecord& rec) {
  for (StorageObserver* obs : observers_) obs->OnPhysicalIo(rec);
}

void StorageSystem::NotifyIdleGap(EnclosureId enclosure, SimTime at,
                                  SimDuration gap) {
  for (StorageObserver* obs : observers_) obs->OnIdleGapEnd(enclosure, at, gap);
}

void StorageSystem::NotifyPowerState(EnclosureId enclosure, SimTime at,
                                     PowerState state) {
  for (StorageObserver* obs : observers_) {
    obs->OnPowerStateChange(enclosure, at, state);
  }
}

void StorageSystem::ArmSpinDownTimer(EnclosureId enclosure) {
  DiskEnclosure& enc = *enclosures_[static_cast<size_t>(enclosure)];
  SimTime check_at =
      std::max(sim_->Now(), enc.busy_until()) + config_.enclosure.spindown_timeout;
  sim_->ScheduleAt(check_at, [this, enclosure] {
    DiskEnclosure& e = *enclosures_[static_cast<size_t>(enclosure)];
    if (spin_down_allowed_[static_cast<size_t>(enclosure)] &&
        e.EligibleForSpinDown(sim_->Now())) {
      if (e.PowerOff(sim_->Now())) {
        if (telemetry::Wants(telemetry_, telemetry::kClassPower)) {
          // PowerOff already caught the energy integrator up to now, so
          // this Energy() read is a pure counter load — the probe cannot
          // perturb the replay's floating-point stream.
          telemetry_->Record(telemetry::MakePowerEvent(
              sim_->Now(), enclosure,
              static_cast<uint8_t>(PowerState::kOff), 0,
              e.Energy(sim_->Now()), plan_epoch_));
        }
        NotifyPowerState(enclosure, sim_->Now(), PowerState::kOff);
      }
    }
  });
}

SimTime StorageSystem::SubmitPhysicalBulk(EnclosureId enclosure,
                                          int64_t n_ios, int64_t bytes,
                                          IoType type, bool sequential,
                                          int64_t block_hint,
                                          DataItemId item) {
  DiskEnclosure& enc = *enclosures_.at(static_cast<size_t>(enclosure));
  SimTime now = sim_->Now();
  DiskEnclosure::IoGrant grant = enc.SubmitIo(now, n_ios, bytes, type,
                                              sequential);
  if (grant.powered_on) {
    if (telemetry::Wants(telemetry_, telemetry::kClassPower)) {
      // SubmitIo caught the integrator up to now; Energy() is a pure read.
      telemetry_->Record(telemetry::MakePowerEvent(
          now, enclosure, static_cast<uint8_t>(PowerState::kSpinningUp),
          config_.enclosure.spinup_time, enc.Energy(now), plan_epoch_));
    }
    NotifyPowerState(enclosure, now, PowerState::kSpinningUp);
  }
  if (grant.idle_gap_before >= config_.idle_gap_notify_floor) {
    if (telemetry::Wants(telemetry_, telemetry::kClassPower)) {
      telemetry_->Record(
          telemetry::MakeIdleGapEvent(now, enclosure, grant.idle_gap_before));
    }
    NotifyIdleGap(enclosure, now, grant.idle_gap_before);
  }
  trace::PhysicalIoRecord rec;
  rec.time = now;
  rec.enclosure = enclosure;
  rec.block = block_hint;
  rec.size = static_cast<int32_t>(std::min<int64_t>(
      bytes, std::numeric_limits<int32_t>::max()));
  rec.type = type;
  rec.sequential = sequential;
  if (telemetry::Wants(telemetry_, telemetry::kClassIoDetail)) {
    telemetry_->Record(telemetry::MakeCacheEvent(
        now, telemetry::EventKind::kPhysicalIo, item, enclosure,
        n_ios, bytes, plan_epoch_));
  }
  NotifyPhysicalIo(rec);
  if (spin_down_allowed_[static_cast<size_t>(enclosure)]) {
    ArmSpinDownTimer(enclosure);
  }
  return grant.completion;
}

void StorageSystem::ApplyFlushDemands(const std::vector<FlushDemand>& demands) {
  for (const FlushDemand& d : demands) {
    EnclosureId enc = virt_.EnclosureOf(d.item);
    if (telemetry::Wants(telemetry_, telemetry::kClassCache)) {
      telemetry_->Record(telemetry::MakeCacheEvent(
          sim_->Now(), telemetry::EventKind::kCacheFlush, d.item, enc,
          d.blocks, d.bytes, plan_epoch_));
    }
    SubmitPhysicalBulk(enc, std::max<int64_t>(1, d.blocks), d.bytes,
                       IoType::kWrite, /*sequential=*/true,
                       virt_.BaseBlock(d.item), d.item);
  }
}

StorageSystem::IoResult StorageSystem::SubmitLogicalIo(
    const trace::LogicalIoRecord& rec) {
  IoResult result;
  SimTime now = sim_->Now();
  telemetry::analysis::IoOutcome outcome =
      telemetry::analysis::IoOutcome::kHit;
  if (rec.is_read()) {
    StorageCache::ReadOutcome out =
        cache_.Read(rec.item, rec.offset, rec.size, &flush_scratch_);
    ApplyFlushDemands(flush_scratch_);
    result.cache_hit = out.fully_hit();
    result.latency = config_.cache.hit_latency;
    if (out.miss_blocks > 0) {
      EnclosureId enc = virt_.EnclosureOf(rec.item);
      if (latency_book_ != nullptr) {
        // state() catches the integrator up to now — the same CatchUp the
        // SubmitIo below would perform moments later, so the probe leaves
        // the replay's floating-point stream untouched.
        outcome = enclosures_[static_cast<size_t>(enc)]->state(now) ==
                          PowerState::kOn
                      ? telemetry::analysis::IoOutcome::kMiss
                      : telemetry::analysis::IoOutcome::kSpunDown;
      } else {
        outcome = telemetry::analysis::IoOutcome::kMiss;
      }
      if (telemetry::Wants(telemetry_, telemetry::kClassIoDetail)) {
        telemetry_->Record(telemetry::MakeCacheEvent(
            now, telemetry::EventKind::kCacheAdmit, rec.item, enc,
            out.miss_blocks, static_cast<int64_t>(rec.size), plan_epoch_));
      }
      // Small random reads issue one device I/O per logical request; large
      // (multi-block) transfers cost one device I/O per cache block.
      int64_t n_ios = std::max<int64_t>(1, out.miss_blocks);
      SimTime completion = SubmitPhysicalBulk(
          enc, n_ios, static_cast<int64_t>(rec.size), IoType::kRead,
          rec.sequential,
          virt_.BaseBlock(rec.item) + rec.offset / config_.cache.block_size,
          rec.item);
      result.latency = (completion - now) + config_.cache.hit_latency;
    }
  } else {
    cache_.Write(rec.item, rec.offset, rec.size, &flush_scratch_);
    // Writes complete in the battery-backed cache (paper §II-E.2); the
    // destage happens asynchronously and does not affect the caller.
    result.cache_hit = true;
    result.latency = config_.cache.hit_latency;
    ApplyFlushDemands(flush_scratch_);
  }
  if (latency_book_ != nullptr) {
    uint8_t pattern =
        rec.item >= 0 &&
                static_cast<size_t>(rec.item) < item_pattern_.size()
            ? item_pattern_[static_cast<size_t>(rec.item)]
            : telemetry::analysis::kPatternUnclassified;
    latency_book_->Record(pattern, outcome, result.latency);
  }
  return result;
}

void StorageSystem::BeginPlanEpoch(int32_t plan,
                                   const std::vector<uint8_t>& item_patterns) {
  plan_epoch_ = plan;
  item_pattern_.assign(item_patterns.begin(), item_patterns.end());
}

void StorageSystem::SetSpinDownAllowed(EnclosureId enclosure, bool allowed) {
  bool was = spin_down_allowed_.at(static_cast<size_t>(enclosure));
  spin_down_allowed_[static_cast<size_t>(enclosure)] = allowed;
  if (allowed && !was) ArmSpinDownTimer(enclosure);
}

Status StorageSystem::SetWriteDelayItems(
    const std::unordered_set<DataItemId>& items) {
  const bool record = telemetry::Wants(telemetry_, telemetry::kClassCache);
  std::vector<DataItemId> entered;
  std::vector<StorageCache::WdChange> left;
  std::vector<FlushDemand> demands = cache_.SetWriteDelayItems(
      items, record ? &entered : nullptr, record ? &left : nullptr);
  if (record) {
    int64_t displaced_bytes = 0;
    for (const FlushDemand& d : demands) displaced_bytes += d.bytes;
    telemetry_->Record(telemetry::MakeCacheEvent(
        sim_->Now(), telemetry::EventKind::kWriteDelaySet, kInvalidDataItem,
        kInvalidEnclosure, static_cast<int64_t>(items.size()),
        displaced_bytes, plan_epoch_));
    // Per-item membership deltas (DESIGN.md §10): one event per item that
    // left (with its destaged dirty blocks) and per item that joined (with
    // its catalog size, so the ledger can estimate occupancy). Ordered by
    // item id. On an ownership-masked lane only owned items are reported,
    // so a sharded run emits each delta exactly once across lanes.
    for (const StorageCache::WdChange& ch : left) {
      EnclosureId enc = virt_.EnclosureOf(ch.item);
      if (!OwnsEnclosure(enc)) continue;
      telemetry_->Record(telemetry::MakeCacheEvent(
          sim_->Now(), telemetry::EventKind::kWriteDelayFlush, ch.item, enc,
          ch.flushed_blocks, ch.flushed_bytes, plan_epoch_));
    }
    for (DataItemId item : entered) {
      EnclosureId enc = virt_.EnclosureOf(item);
      if (!OwnsEnclosure(enc)) continue;
      telemetry_->Record(telemetry::MakeCacheEvent(
          sim_->Now(), telemetry::EventKind::kWriteDelayAdmit, item, enc, 0,
          catalog_->item(item).size_bytes, plan_epoch_));
    }
  }
  ApplyFlushDemands(demands);
  return Status::OK();
}

Status StorageSystem::SetPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& items) {
  Result<std::vector<DataItemId>> to_load = cache_.SetPreloadItems(items);
  if (!to_load.ok()) return to_load.status();
  for (DataItemId item : to_load.value()) {
    const DataItem& meta = catalog_->item(item);
    EnclosureId enc = virt_.EnclosureOf(item);
    int64_t blocks = std::max<int64_t>(
        1, meta.size_bytes / config_.cache.block_size);
    if (telemetry::Wants(telemetry_, telemetry::kClassCache)) {
      telemetry_->Record(telemetry::MakeCacheEvent(
          sim_->Now(), telemetry::EventKind::kPreloadBegin, item, enc,
          blocks, meta.size_bytes, plan_epoch_));
    }
    SimTime completion =
        SubmitPhysicalBulk(enc, blocks, meta.size_bytes, IoType::kRead,
                           /*sequential=*/true, virt_.BaseBlock(item), item);
    int64_t size_bytes = meta.size_bytes;
    // The done event keeps the plan the load was issued under, even if a
    // newer plan lands while the read is in flight.
    int32_t plan = plan_epoch_;
    sim_->ScheduleAt(completion, [this, item, enc, blocks, size_bytes, plan] {
      Status st = cache_.MarkPreloaded(item);
      if (telemetry::Wants(telemetry_, telemetry::kClassCache)) {
        // bytes < 0 marks a stale preload (the set changed in flight).
        telemetry_->Record(telemetry::MakeCacheEvent(
            sim_->Now(), telemetry::EventKind::kPreloadDone, item, enc,
            blocks, st.ok() ? size_bytes : -1, plan));
      }
      if (!st.ok()) {
        // The preload set changed while the load was in flight; the read
        // was wasted but harmless.
        ECOSTORE_LOG(kDebug) << "stale preload for item " << item;
      }
    });
  }
  return Status::OK();
}

Status StorageSystem::CommitItemMove(DataItemId item, EnclosureId target) {
  ECOSTORE_RETURN_NOT_OK(virt_.MoveItem(item, target));
  // Cached blocks now address the new enclosure; rewrite dirty ones there.
  std::vector<FlushDemand> demands = cache_.InvalidateItem(item);
  ApplyFlushDemands(demands);
  return Status::OK();
}

void StorageSystem::FinalizeRun() {
  ApplyFlushDemands(cache_.FlushAll());
  SimTime now = sim_->Now();
  for (auto& enc : enclosures_) {
    if (!OwnsEnclosure(enc->id())) continue;
    if (enc->served_ios() > 0 && enc->busy_until() <= now) {
      SimDuration gap = now - enc->last_busy_end();
      if (gap > 0) NotifyIdleGap(enc->id(), now, gap);
    }
  }
  // Cumulative per-component energy counters at the horizon. The harness
  // reads EnclosureEnergy() at this same `now` right after, so whichever
  // probe runs first performs the identical final CatchUp — the events
  // telescope exactly to the run's measured ExperimentMetrics energy.
  if (telemetry::Wants(telemetry_, telemetry::kClassPower)) {
    for (auto& enc : enclosures_) {
      if (!OwnsEnclosure(enc->id())) continue;
      telemetry_->Record(telemetry::MakeEnergyFinalEvent(
          now, enc->id(), enc->Energy(now), plan_epoch_));
    }
    // On a masked lane the controller belongs to no shard; the sharded
    // coordinator emits its final exactly once instead.
    if (owned_.empty()) {
      telemetry_->Record(telemetry::MakeEnergyFinalEvent(
          now, kInvalidEnclosure, ControllerEnergy(), plan_epoch_));
    }
  }
}

Joules StorageSystem::EnclosureEnergy() {
  Joules total = 0;
  for (auto& enc : enclosures_) {
    if (!OwnsEnclosure(enc->id())) continue;
    total += enc->Energy(sim_->Now());
  }
  return total;
}

Joules StorageSystem::ControllerEnergy() const {
  return EnergyOf(config_.controller.base_power, sim_->Now());
}

Joules StorageSystem::TotalEnergy() {
  return EnclosureEnergy() + ControllerEnergy();
}

}  // namespace ecostore::storage
