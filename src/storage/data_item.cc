#include "storage/data_item.h"

namespace ecostore::storage {

const char* DataItemKindName(DataItemKind kind) {
  switch (kind) {
    case DataItemKind::kFile:
      return "file";
    case DataItemKind::kTable:
      return "table";
    case DataItemKind::kIndex:
      return "index";
    case DataItemKind::kLog:
      return "log";
    case DataItemKind::kWorkFile:
      return "workfile";
  }
  return "?";
}

VolumeId DataItemCatalog::AddVolume(EnclosureId enclosure) {
  volume_enclosures_.push_back(enclosure);
  return static_cast<VolumeId>(volume_enclosures_.size() - 1);
}

Result<DataItemId> DataItemCatalog::AddItem(std::string name, VolumeId volume,
                                            int64_t size_bytes,
                                            DataItemKind kind, bool pinned) {
  if (volume < 0 || static_cast<size_t>(volume) >= volume_enclosures_.size()) {
    return Status::InvalidArgument("unknown volume for item " + name);
  }
  if (size_bytes <= 0) {
    return Status::InvalidArgument("item size must be positive: " + name);
  }
  DataItem item;
  item.id = static_cast<DataItemId>(items_.size());
  item.name = std::move(name);
  item.volume = volume;
  item.size_bytes = size_bytes;
  item.kind = kind;
  item.pinned = pinned;
  items_.push_back(std::move(item));
  return items_.back().id;
}

}  // namespace ecostore::storage
