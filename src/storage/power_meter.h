#ifndef ECOSTORE_STORAGE_POWER_METER_H_
#define ECOSTORE_STORAGE_POWER_METER_H_

#include <iosfwd>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"

namespace ecostore::storage {

/// One sample of the simulated wall power meter: average power over the
/// preceding sampling interval, split by component.
struct PowerSample {
  SimTime time = 0;
  Watts enclosures = 0.0;
  Watts controller = 0.0;

  Watts total() const { return enclosures + controller; }
};

/// \brief The wall power meter of the paper's testbed (§VII-A.3):
/// periodically samples the array's energy counters and differentiates
/// them into an average-power time series.
///
/// Attach with Start(); samples accumulate until the simulation ends or
/// Stop() is called. The series is the raw material for power-over-time
/// plots and for verifying that energy integration matches the sampled
/// curve (sum(sample * interval) == total energy).
class PowerMeter {
 public:
  /// \param system array to meter (not owned; must outlive the meter)
  /// \param interval sampling interval (> 0)
  PowerMeter(StorageSystem* system, SimDuration interval);

  /// Begins sampling on the system's simulator.
  Status Start();

  /// Stops sampling (the pending tick is cancelled).
  void Stop();

  const std::vector<PowerSample>& samples() const { return samples_; }

  /// Energy implied by the sample series (trapezoid-free: samples are
  /// interval averages, so this is exact between Start and the last tick).
  Joules SampledEnergy() const;

  /// Average power over all samples (0 when empty).
  Watts AveragePowerSampled() const;

  /// Peak total-power sample (0 when empty).
  Watts PeakPower() const;

  /// Writes the series as CSV (`time_s,enclosures_w,controller_w,total_w`).
  Status WriteCsv(std::ostream& out) const;

 private:
  void Tick();

  StorageSystem* system_;
  SimDuration interval_;
  bool running_ = false;
  sim::EventId pending_ = 0;
  Joules last_enclosure_energy_ = 0.0;
  Joules last_controller_energy_ = 0.0;
  std::vector<PowerSample> samples_;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_POWER_METER_H_
