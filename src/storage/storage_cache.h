#ifndef ECOSTORE_STORAGE_STORAGE_CACHE_H_
#define ECOSTORE_STORAGE_STORAGE_CACHE_H_

#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_config.h"

namespace ecostore::storage {

/// A destage demand produced by the cache: `blocks` dirty blocks of `item`
/// must be written to the item's enclosure. The StorageSystem translates
/// demands into physical bulk writes.
struct FlushDemand {
  DataItemId item = kInvalidDataItem;
  int64_t blocks = 0;
  int64_t bytes = 0;
};

/// \brief The RAID controller's battery-backed cache (paper §II-A, §II-E.2).
///
/// Three areas share the configured capacity:
///  - the *general* area: a block-granular LRU holding clean read blocks
///    and write-back dirty blocks, destaged in one go when the default
///    dirty-block rate is exceeded (paper §V-B);
///  - the *preload* area: whole data items pinned by the proposed method's
///    preload function (paper §IV-F) — reads of loaded items always hit;
///  - the *write-delay* area: dirty blocks of items selected by the
///    write-delay function (paper §IV-E), destaged only when the enlarged
///    dirty-block rate is exceeded.
///
/// The cache is a bookkeeping model: it tracks block residency and dirty
/// state but holds no payload bytes. It never performs I/O itself; flush
/// demands are returned to the caller.
class StorageCache {
 public:
  struct ReadOutcome {
    int64_t hit_blocks = 0;
    int64_t miss_blocks = 0;
    /// Dirty blocks pushed out by caching the missed blocks.
    std::vector<FlushDemand> eviction_flushes;

    bool fully_hit() const { return miss_blocks == 0; }
  };

  struct WriteOutcome {
    /// True when the dirty blocks went to the write-delay area.
    bool write_delayed = false;
    /// Demands triggered by crossing a dirty-rate threshold; empty most of
    /// the time.
    std::vector<FlushDemand> destage;
  };

  explicit StorageCache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Serves a logical read. Missed blocks are assumed to be fetched by the
  /// caller and are inserted into the general area.
  ReadOutcome Read(DataItemId item, int64_t offset, int32_t size);

  /// Absorbs a logical write into the write-delay area (for selected
  /// items) or the general write-back area.
  WriteOutcome Write(DataItemId item, int64_t offset, int32_t size);

  /// Replaces the write-delay item set (paper §V-B). Dirty write-delay
  /// blocks of items leaving the set must be destaged; they are returned.
  std::vector<FlushDemand> SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items);

  /// Replaces the preload item set (paper §V-C). `sizes` gives each item's
  /// size; the sum must fit the preload area. Returns the items that are
  /// newly selected and must be loaded by the caller (already-loaded items
  /// are kept; deselected items are dropped immediately).
  Result<std::vector<DataItemId>> SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& sizes);

  /// Marks a preload-selected item as resident (its load completed).
  Status MarkPreloaded(DataItemId item);

  bool IsPreloadSelected(DataItemId item) const {
    return preload_items_.count(item) > 0;
  }
  bool IsPreloaded(DataItemId item) const {
    auto it = preload_items_.find(item);
    return it != preload_items_.end() && it->second.loaded;
  }
  bool IsWriteDelayed(DataItemId item) const {
    return write_delay_items_.count(item) > 0;
  }

  /// Flushes every dirty block in both areas (used at end of run and when
  /// the runtime power saver forces a destage). Returns the demands.
  std::vector<FlushDemand> FlushAll();

  /// Drops all clean general-area blocks of an item (used after the item
  /// migrates, since its physical location changed). Dirty blocks are
  /// returned as demands to write to the *new* location.
  std::vector<FlushDemand> InvalidateItem(DataItemId item);

  int64_t hit_blocks() const { return hit_blocks_; }
  int64_t miss_blocks() const { return miss_blocks_; }
  int64_t absorbed_write_blocks() const { return absorbed_write_blocks_; }
  int64_t general_dirty_blocks() const { return general_dirty_; }
  int64_t write_delay_dirty_blocks() const { return wd_dirty_total_; }

 private:
  struct BlockKey {
    DataItemId item;
    int64_t block;
    bool operator==(const BlockKey& o) const {
      return item == o.item && block == o.block;
    }
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.item) << 40) ^
                                  k.block);
    }
  };
  struct GeneralEntry {
    std::list<BlockKey>::iterator lru_pos;
    bool dirty = false;
  };
  struct PreloadEntry {
    int64_t size_bytes = 0;
    bool loaded = false;
  };

  int64_t FirstBlock(int64_t offset) const { return offset / config_.block_size; }
  int64_t LastBlock(int64_t offset, int32_t size) const {
    return (offset + std::max<int32_t>(size, 1) - 1) / config_.block_size;
  }

  /// Inserts a clean block into the general LRU, evicting as needed;
  /// appends eviction flush demands for dirty victims.
  void InsertGeneral(const BlockKey& key, bool dirty,
                     std::vector<FlushDemand>* eviction_flushes);

  /// Destages all dirty general-area blocks (they stay resident, clean).
  std::vector<FlushDemand> DestageGeneral();

  /// Destages all write-delay blocks.
  std::vector<FlushDemand> DestageWriteDelay();

  static void AppendDemand(DataItemId item, int64_t blocks, int64_t bytes,
                           std::vector<FlushDemand>* out);

  CacheConfig config_;
  int64_t general_capacity_blocks_;
  int64_t wd_capacity_blocks_;

  // General area.
  std::list<BlockKey> lru_;  // front = most recent
  std::unordered_map<BlockKey, GeneralEntry, BlockKeyHash> general_;
  int64_t general_dirty_ = 0;

  // Write-delay area: per-item dirty block sets.
  std::unordered_set<DataItemId> write_delay_items_;
  std::unordered_map<DataItemId, std::unordered_set<int64_t>> wd_dirty_;
  int64_t wd_dirty_total_ = 0;

  // Preload area.
  std::unordered_map<DataItemId, PreloadEntry> preload_items_;

  int64_t hit_blocks_ = 0;
  int64_t miss_blocks_ = 0;
  int64_t absorbed_write_blocks_ = 0;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_STORAGE_CACHE_H_
