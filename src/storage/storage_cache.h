#ifndef ECOSTORE_STORAGE_STORAGE_CACHE_H_
#define ECOSTORE_STORAGE_STORAGE_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_config.h"

namespace ecostore::storage {

/// A destage demand produced by the cache: `blocks` dirty blocks of `item`
/// must be written to the item's enclosure. The StorageSystem translates
/// demands into physical bulk writes.
struct FlushDemand {
  DataItemId item = kInvalidDataItem;
  int64_t blocks = 0;
  int64_t bytes = 0;
};

/// \brief The RAID controller's battery-backed cache (paper §II-A, §II-E.2).
///
/// Three areas share the configured capacity:
///  - the *general* area: a block-granular LRU holding clean read blocks
///    and write-back dirty blocks, destaged in one go when the default
///    dirty-block rate is exceeded (paper §V-B);
///  - the *preload* area: whole data items pinned by the proposed method's
///    preload function (paper §IV-F) — reads of loaded items always hit;
///  - the *write-delay* area: dirty blocks of items selected by the
///    write-delay function (paper §IV-E), destaged only when the enlarged
///    dirty-block rate is exceeded.
///
/// The cache is a bookkeeping model: it tracks block residency and dirty
/// state but holds no payload bytes. It never performs I/O itself; flush
/// demands are returned to the caller.
///
/// The per-I/O hot path is allocation-free once warm: general-area
/// entries live in a contiguous slab addressed by an open-addressing
/// (item, block) → slot index, recency is an intrusive doubly linked list
/// of slot ids threaded through the slab, write-delay residency is a flat
/// open-addressing key set, and Read/Write append flush demands to a
/// caller-owned scratch vector instead of allocating a fresh one per
/// call.
class StorageCache {
 public:
  struct ReadOutcome {
    int64_t hit_blocks = 0;
    int64_t miss_blocks = 0;

    bool fully_hit() const { return miss_blocks == 0; }
  };

  struct WriteOutcome {
    /// True when the dirty blocks went to the write-delay area.
    bool write_delayed = false;
  };

  explicit StorageCache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }

  /// Serves a logical read. Missed blocks are assumed to be fetched by the
  /// caller and are inserted into the general area. `eviction_flushes` is
  /// a caller-owned scratch vector: it is cleared on entry and receives
  /// one aggregated demand per item whose dirty blocks were pushed out by
  /// caching the missed blocks. The caller must consume it before the
  /// next Read/Write call reuses it.
  ReadOutcome Read(DataItemId item, int64_t offset, int32_t size,
                   std::vector<FlushDemand>* eviction_flushes);

  /// Absorbs a logical write into the write-delay area (for selected
  /// items) or the general write-back area. `destage` is a caller-owned
  /// scratch vector (cleared on entry) receiving eviction write-backs and
  /// any dirty-rate-threshold destage; empty most of the time.
  WriteOutcome Write(DataItemId item, int64_t offset, int32_t size,
                     std::vector<FlushDemand>* destage);

  /// One item that left the write-delay set, with the dirty blocks that
  /// were destaged on its way out (0 when it had none).
  struct WdChange {
    DataItemId item = kInvalidDataItem;
    int64_t flushed_blocks = 0;
    int64_t flushed_bytes = 0;
  };

  /// Replaces the write-delay item set (paper §V-B). Dirty write-delay
  /// blocks of items leaving the set must be destaged; they are returned.
  /// When non-null, `entered` receives the ids that newly joined the set
  /// and `left` the items that exited (with their destaged dirty blocks),
  /// both sorted by item id so callers can emit deterministic per-item
  /// attribution events regardless of hash-map iteration order.
  std::vector<FlushDemand> SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items,
      std::vector<DataItemId>* entered = nullptr,
      std::vector<WdChange>* left = nullptr);

  /// Replaces the preload item set (paper §V-C). `sizes` gives each item's
  /// size; the sum must fit the preload area. Returns the items that are
  /// newly selected and must be loaded by the caller (already-loaded items
  /// are kept; deselected items are dropped immediately).
  Result<std::vector<DataItemId>> SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& sizes);

  /// Marks a preload-selected item as resident (its load completed).
  Status MarkPreloaded(DataItemId item);

  bool IsPreloadSelected(DataItemId item) const {
    const ItemInfo* info = FindItem(item);
    return info != nullptr && info->preload_selected;
  }
  bool IsPreloaded(DataItemId item) const {
    const ItemInfo* info = FindItem(item);
    return info != nullptr && info->preloaded;
  }
  bool IsWriteDelayed(DataItemId item) const {
    const ItemInfo* info = FindItem(item);
    return info != nullptr && info->write_delayed;
  }

  /// Flushes every dirty block in both areas (used at end of run and when
  /// the runtime power saver forces a destage). Returns the demands.
  std::vector<FlushDemand> FlushAll();

  /// Drops all clean general-area blocks of an item (used after the item
  /// migrates, since its physical location changed). Dirty blocks are
  /// returned as demands to write to the *new* location.
  std::vector<FlushDemand> InvalidateItem(DataItemId item);

  /// Plan-level membership of one item (no block residency), used by the
  /// sharded engine to move an item's cache standing between per-shard
  /// caches when the item migrates across the shard boundary. Blocks do
  /// not transfer: the caller is expected to InvalidateItem() on the
  /// source cache first (physical locations changed anyway), so only the
  /// preload/write-delay selection and residency flags carry over.
  struct ItemState {
    bool preload_selected = false;
    bool preloaded = false;
    bool write_delayed = false;
    int64_t preload_bytes = 0;
  };

  ItemState ExportItemState(DataItemId item) const;
  /// Overwrites the item's membership flags with `state`.
  void AdoptItemState(DataItemId item, const ItemState& state);
  /// Clears the item's membership flags (post-export, on the source).
  void DropItemState(DataItemId item);

  int64_t hit_blocks() const { return hit_blocks_; }
  int64_t miss_blocks() const { return miss_blocks_; }
  int64_t absorbed_write_blocks() const { return absorbed_write_blocks_; }
  int64_t general_dirty_blocks() const { return general_dirty_; }
  int64_t write_delay_dirty_blocks() const { return wd_dirty_total_; }

 private:
  static constexpr int32_t kNilSlot = -1;

  /// One general-area cache block. Free slots are marked with
  /// item == kInvalidDataItem and chained through `lru_next`.
  struct Slot {
    DataItemId item = kInvalidDataItem;
    int64_t block = 0;
    int32_t lru_prev = kNilSlot;
    int32_t lru_next = kNilSlot;
    bool dirty = false;
  };

  /// Per-item cache state, resolved once per request (not per block):
  /// preload pinning, write-delay membership, and the item's dirty block
  /// count in the write-delay area.
  struct ItemInfo {
    bool preload_selected = false;
    bool preloaded = false;
    bool write_delayed = false;
    int64_t preload_bytes = 0;
    int64_t wd_dirty = 0;

    bool empty() const {
      return !preload_selected && !write_delayed && wd_dirty == 0;
    }
  };

  /// A write-delay area resident block; item == kInvalidDataItem marks an
  /// empty table cell.
  struct WdKey {
    DataItemId item = kInvalidDataItem;
    int64_t block = 0;
  };

  static uint64_t HashKey(DataItemId item, int64_t block) {
    // splitmix64 finalizer over the packed key: open addressing needs
    // dispersion that the identity hash of the old unordered_map did not.
    uint64_t x = (static_cast<uint64_t>(static_cast<uint32_t>(item)) << 40) ^
                 static_cast<uint64_t>(block);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  int64_t FirstBlock(int64_t offset) const { return offset / config_.block_size; }
  int64_t LastBlock(int64_t offset, int32_t size) const {
    return (offset + std::max<int32_t>(size, 1) - 1) / config_.block_size;
  }

  const ItemInfo* FindItem(DataItemId item) const {
    auto it = items_.find(item);
    return it == items_.end() ? nullptr : &it->second;
  }
  /// Drops the item's entry when no area holds state for it anymore.
  void CompactItem(DataItemId item);

  // --- general-area slab + index ---
  int32_t TableFind(DataItemId item, int64_t block) const;
  void TableInsert(int32_t slot);
  void TableErase(DataItemId item, int64_t block);
  void TableGrow();
  void LruUnlink(int32_t slot);
  void LruPushFront(int32_t slot);
  void LruMoveToFront(int32_t slot);
  /// Inserts an absent block, evicting the LRU victim first when full.
  /// Eviction demands go to the active demand accumulator.
  void InsertGeneral(DataItemId item, int64_t block, bool dirty);
  void EvictLru();

  // --- write-delay flat set ---
  bool WdContains(DataItemId item, int64_t block) const;
  /// Returns true when newly inserted.
  bool WdInsert(DataItemId item, int64_t block);
  void WdGrow();
  void WdClear();
  /// Drops every write-delay block of `item` (rebuilds the table).
  void WdEraseItem(DataItemId item);

  // --- demand aggregation (O(1) per append) ---
  /// Directs subsequent AddDemand calls into `out` (which is NOT cleared).
  void BeginDemands(std::vector<FlushDemand>* out);
  void AddDemand(DataItemId item, int64_t blocks, int64_t bytes);

  /// Destages all dirty general-area blocks (they stay resident, clean).
  void DestageGeneralInto();
  /// Destages all write-delay blocks.
  void DestageWriteDelayInto();

  CacheConfig config_;
  int64_t general_capacity_blocks_;
  int64_t wd_capacity_blocks_;

  // General area: entry slab, free list, open-addressing index and
  // intrusive LRU (head = most recent).
  std::vector<Slot> slots_;
  std::vector<int32_t> free_slots_;
  std::vector<int32_t> table_;  // slot ids; kNilSlot = empty
  size_t table_mask_ = 0;
  int32_t lru_head_ = kNilSlot;
  int32_t lru_tail_ = kNilSlot;
  int64_t general_size_ = 0;
  int64_t general_dirty_ = 0;

  // Write-delay area block set.
  std::vector<WdKey> wd_table_;
  size_t wd_mask_ = 0;
  size_t wd_size_ = 0;
  int64_t wd_dirty_total_ = 0;

  // Per-item state (preload + write-delay membership).
  std::unordered_map<DataItemId, ItemInfo> items_;

  // Demand accumulator: per-item epoch/position index so repeated demands
  // for one item fold together without rescanning the output vector.
  std::vector<std::pair<uint32_t, uint32_t>> demand_index_;
  uint32_t demand_epoch_ = 0;
  std::vector<FlushDemand>* demand_out_ = nullptr;

  int64_t hit_blocks_ = 0;
  int64_t miss_blocks_ = 0;
  int64_t absorbed_write_blocks_ = 0;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_STORAGE_CACHE_H_
