#include "storage/block_virtualization.h"

#include <cassert>

namespace ecostore::storage {

BlockVirtualization::BlockVirtualization(const DataItemCatalog* catalog,
                                         int num_enclosures,
                                         int64_t enclosure_capacity)
    : catalog_(catalog), capacity_(enclosure_capacity) {
  assert(catalog != nullptr);
  assert(num_enclosures > 0);
  used_bytes_.assign(static_cast<size_t>(num_enclosures), 0);
}

Status BlockVirtualization::PlaceInitial() {
  placement_.assign(catalog_->item_count(), kInvalidEnclosure);
  std::fill(used_bytes_.begin(), used_bytes_.end(), 0);
  move_log_.clear();
  for (const DataItem& item : catalog_->items()) {
    EnclosureId enc = catalog_->initial_enclosure(item.id);
    if (enc < 0 || static_cast<size_t>(enc) >= used_bytes_.size()) {
      return Status::InvalidArgument("volume mapped to unknown enclosure");
    }
    if (used_bytes_[static_cast<size_t>(enc)] + item.size_bytes > capacity_) {
      return Status::CapacityExceeded("initial placement overflows enclosure " +
                                      std::to_string(enc));
    }
    placement_[static_cast<size_t>(item.id)] = enc;
    used_bytes_[static_cast<size_t>(enc)] += item.size_bytes;
  }
  return Status::OK();
}

Status BlockVirtualization::MoveItem(DataItemId item, EnclosureId target) {
  if (item < 0 || static_cast<size_t>(item) >= placement_.size()) {
    return Status::NotFound("unknown item");
  }
  if (target < 0 || static_cast<size_t>(target) >= used_bytes_.size()) {
    return Status::InvalidArgument("unknown enclosure");
  }
  EnclosureId source = placement_[static_cast<size_t>(item)];
  if (source == target) return Status::OK();
  int64_t size = catalog_->item(item).size_bytes;
  if (used_bytes_[static_cast<size_t>(target)] + size > capacity_) {
    return Status::CapacityExceeded("enclosure " + std::to_string(target) +
                                    " cannot fit item");
  }
  used_bytes_[static_cast<size_t>(source)] -= size;
  used_bytes_[static_cast<size_t>(target)] += size;
  placement_[static_cast<size_t>(item)] = target;
  move_log_.push_back(item);
  return Status::OK();
}

std::vector<DataItemId> BlockVirtualization::ItemsOn(
    EnclosureId enclosure) const {
  std::vector<DataItemId> items;
  for (size_t i = 0; i < placement_.size(); ++i) {
    if (placement_[i] == enclosure) {
      items.push_back(static_cast<DataItemId>(i));
    }
  }
  return items;
}

}  // namespace ecostore::storage
