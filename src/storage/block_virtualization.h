#ifndef ECOSTORE_STORAGE_BLOCK_VIRTUALIZATION_H_
#define ECOSTORE_STORAGE_BLOCK_VIRTUALIZATION_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/data_item.h"

namespace ecostore::storage {

/// \brief The block-virtualization layer: maps each data item to the disk
/// enclosure currently holding it and tracks per-enclosure space use
/// (the Storage Monitor's physical mapping information, paper §III-B).
///
/// Items occupy a contiguous extent; the extent base encodes the item id,
/// giving stable, unique physical block addresses for physical traces.
class BlockVirtualization {
 public:
  /// \param catalog the workload's data items (not owned; must outlive this)
  /// \param num_enclosures number of enclosures in the array
  /// \param enclosure_capacity usable bytes per enclosure
  BlockVirtualization(const DataItemCatalog* catalog, int num_enclosures,
                      int64_t enclosure_capacity);

  /// Places every item on its volume's initial enclosure. Fails when an
  /// enclosure would overflow.
  Status PlaceInitial();

  EnclosureId EnclosureOf(DataItemId item) const {
    return placement_.at(static_cast<size_t>(item));
  }

  /// Moves an item's mapping to `target` (instantaneous bookkeeping; the
  /// data transfer itself is the runtime power saver's job).
  Status MoveItem(DataItemId item, EnclosureId target);

  int64_t UsedBytes(EnclosureId enclosure) const {
    return used_bytes_.at(static_cast<size_t>(enclosure));
  }
  int64_t FreeBytes(EnclosureId enclosure) const {
    return capacity_ - UsedBytes(enclosure);
  }
  int64_t capacity_bytes() const { return capacity_; }
  int num_enclosures() const {
    return static_cast<int>(used_bytes_.size());
  }

  /// Items currently resident on an enclosure (catalog order).
  std::vector<DataItemId> ItemsOn(EnclosureId enclosure) const;

  /// Stable physical base block of an item's extent.
  int64_t BaseBlock(DataItemId item) const {
    return static_cast<int64_t>(item) << 32;
  }

  /// Append-only residency journal: one entry per committed MoveItem that
  /// actually changed an item's enclosure, in commit order. The
  /// incremental re-planner reads the suffix past its cursor to learn
  /// which items moved since the last plan (stale in-flight migrations
  /// can land an item on a cold enclosure between periods); see
  /// DESIGN.md §12. Cleared by PlaceInitial.
  const std::vector<DataItemId>& move_log() const { return move_log_; }
  size_t move_log_size() const { return move_log_.size(); }

  const DataItemCatalog& catalog() const { return *catalog_; }

 private:
  const DataItemCatalog* catalog_;
  int64_t capacity_;
  std::vector<EnclosureId> placement_;  // item -> enclosure
  std::vector<int64_t> used_bytes_;     // per enclosure
  std::vector<DataItemId> move_log_;    // committed residency changes
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_BLOCK_VIRTUALIZATION_H_
