#ifndef ECOSTORE_STORAGE_DATA_ITEM_H_
#define ECOSTORE_STORAGE_DATA_ITEM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace ecostore::storage {

/// Kind of application data a data item holds. Informational only; the
/// power-management algorithms treat all kinds uniformly (paper §II-C.1).
enum class DataItemKind : uint8_t {
  kFile = 0,
  kTable,
  kIndex,
  kLog,
  kWorkFile,
};

const char* DataItemKindName(DataItemKind kind);

/// \brief A fragment of an application's data residing wholly on one disk
/// enclosure (paper §II-C.1): a file, a table/index partition, a log, or a
/// work file. Data spanning enclosures is modelled as several items.
struct DataItem {
  DataItemId id = kInvalidDataItem;
  std::string name;
  VolumeId volume = kInvalidVolume;
  int64_t size_bytes = 0;
  DataItemKind kind = DataItemKind::kFile;
  /// Pinned items cannot be migrated (e.g. volume metadata that must live
  /// with its volume). They can still be cached (preload / write delay).
  bool pinned = false;
};

/// \brief Registry of all data items of a workload plus the volume layout
/// (volume -> initial enclosure), i.e. the Application Monitor's logical
/// mapping information (paper §III-A).
class DataItemCatalog {
 public:
  /// Registers a volume initially placed on `enclosure`. Volume ids are
  /// assigned sequentially from 0.
  VolumeId AddVolume(EnclosureId enclosure);

  /// Registers a data item; returns its id (assigned sequentially from 0).
  /// The item's volume must exist.
  Result<DataItemId> AddItem(std::string name, VolumeId volume,
                             int64_t size_bytes, DataItemKind kind,
                             bool pinned = false);

  size_t item_count() const { return items_.size(); }
  size_t volume_count() const { return volume_enclosures_.size(); }

  const DataItem& item(DataItemId id) const { return items_.at(id); }
  const std::vector<DataItem>& items() const { return items_; }

  /// Initial enclosure of a volume.
  EnclosureId volume_enclosure(VolumeId volume) const {
    return volume_enclosures_.at(volume);
  }

  /// Initial enclosure of an item (via its volume).
  EnclosureId initial_enclosure(DataItemId id) const {
    return volume_enclosures_.at(items_.at(id).volume);
  }

 private:
  std::vector<DataItem> items_;
  std::vector<EnclosureId> volume_enclosures_;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_DATA_ITEM_H_
