#ifndef ECOSTORE_STORAGE_CATALOG_CSV_H_
#define ECOSTORE_STORAGE_CATALOG_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/data_item.h"

namespace ecostore::storage {

/// Serializes a data-item catalog (volumes + items) as CSV. Two record
/// kinds share the stream, discriminated by the first field:
///   V,<volume_id>,<enclosure>
///   I,<item_id>,<name>,<volume>,<size_bytes>,<kind>,<pinned>
/// Volume and item ids must be dense and in order (as produced by
/// DataItemCatalog).
Status WriteCatalogCsv(std::ostream& out, const DataItemCatalog& catalog);

/// Parses a catalog written by WriteCatalogCsv.
Result<DataItemCatalog> ReadCatalogCsv(std::istream& in);

Status WriteCatalogCsvFile(const std::string& path,
                           const DataItemCatalog& catalog);
Result<DataItemCatalog> ReadCatalogCsvFile(const std::string& path);

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_CATALOG_CSV_H_
