#include "storage/storage_config.h"

namespace ecostore::storage {

Status EnclosureConfig::Validate() const {
  if (capacity_bytes <= 0) {
    return Status::InvalidArgument("enclosure capacity must be positive");
  }
  if (max_random_iops <= 0 || max_sequential_iops <= 0) {
    return Status::InvalidArgument("enclosure IOPS must be positive");
  }
  if (max_sequential_iops < max_random_iops) {
    return Status::InvalidArgument(
        "sequential IOPS must be >= random IOPS");
  }
  if (active_power < idle_power || idle_power < off_power || off_power < 0) {
    return Status::InvalidArgument(
        "power ordering must be active >= idle >= off >= 0");
  }
  if (spinup_power <= idle_power) {
    return Status::InvalidArgument("spin-up power must exceed idle power");
  }
  if (spinup_time <= 0) {
    return Status::InvalidArgument("spin-up time must be positive");
  }
  if (spindown_timeout < 0) {
    return Status::InvalidArgument("spin-down timeout must be >= 0");
  }
  if (random_access_latency < 0 || sequential_access_latency < 0) {
    return Status::InvalidArgument("access latencies must be >= 0");
  }
  return Status::OK();
}

SimDuration EnclosureConfig::BreakEvenTime() const {
  // Extra energy of the off/on cycle relative to idling during spin-up:
  //   E_extra = (spinup_power - idle_power) * spinup_time
  // Idle energy saved per second of being off: idle_power - off_power.
  double extra_joules =
      EnergyOf(spinup_power - idle_power, spinup_time);
  double savings_per_second = idle_power - off_power;
  if (savings_per_second <= 0) return 0;
  // The cycle pays off when (idle - off) * T >= E_extra + 0, counting the
  // spin-up time itself as part of the interval.
  return FromSeconds(extra_joules / savings_per_second) + spinup_time;
}

EnclosureConfig EnterpriseHddEnclosureConfig() { return EnclosureConfig{}; }

EnclosureConfig SsdEnclosureConfig() {
  EnclosureConfig config;
  config.max_random_iops = 30000.0;
  config.max_sequential_iops = 30000.0;
  config.active_power = 120.0;
  config.idle_power = 60.0;
  config.off_power = 0.0;
  config.spinup_power = 100.0;
  config.spinup_time = 1 * kSecond;
  config.spindown_timeout = 2 * kSecond;
  config.random_access_latency = 200 * kMicrosecond;
  config.sequential_access_latency = 100 * kMicrosecond;
  return config;
}

Status CacheConfig::Validate() const {
  if (total_bytes <= 0) {
    return Status::InvalidArgument("cache size must be positive");
  }
  if (preload_area_bytes < 0 || write_delay_area_bytes < 0) {
    return Status::InvalidArgument("cache areas must be >= 0");
  }
  if (preload_area_bytes + write_delay_area_bytes > total_bytes) {
    return Status::InvalidArgument(
        "preload + write-delay areas exceed cache size");
  }
  if (block_size <= 0 || (block_size & (block_size - 1)) != 0) {
    return Status::InvalidArgument("block size must be a positive power of 2");
  }
  if (default_dirty_ratio <= 0 || default_dirty_ratio > 1 ||
      write_delay_dirty_ratio <= 0 || write_delay_dirty_ratio > 1) {
    return Status::InvalidArgument("dirty ratios must be in (0, 1]");
  }
  if (hit_latency < 0) {
    return Status::InvalidArgument("hit latency must be >= 0");
  }
  return Status::OK();
}

Status ControllerConfig::Validate() const {
  if (base_power < 0) {
    return Status::InvalidArgument("controller power must be >= 0");
  }
  return Status::OK();
}

Status StorageConfig::Validate() const {
  if (num_enclosures <= 0) {
    return Status::InvalidArgument("need at least one enclosure");
  }
  ECOSTORE_RETURN_NOT_OK(enclosure.Validate());
  ECOSTORE_RETURN_NOT_OK(cache.Validate());
  ECOSTORE_RETURN_NOT_OK(controller.Validate());
  return Status::OK();
}

}  // namespace ecostore::storage
