#include "storage/storage_cache.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ecostore::storage {

namespace {
constexpr size_t kInitialTableSize = 16;  // power of two
}  // namespace

StorageCache::StorageCache(const CacheConfig& config) : config_(config) {
  general_capacity_blocks_ =
      std::max<int64_t>(1, config_.general_area_bytes() / config_.block_size);
  wd_capacity_blocks_ = std::max<int64_t>(
      1, config_.write_delay_area_bytes / config_.block_size);
  table_.assign(kInitialTableSize, kNilSlot);
  table_mask_ = kInitialTableSize - 1;
  wd_table_.assign(kInitialTableSize, WdKey{});
  wd_mask_ = kInitialTableSize - 1;
}

// ---------------------------------------------------------------------------
// General-area open-addressing index.

int32_t StorageCache::TableFind(DataItemId item, int64_t block) const {
  size_t i = HashKey(item, block) & table_mask_;
  while (true) {
    int32_t s = table_[i];
    if (s == kNilSlot) return kNilSlot;
    const Slot& slot = slots_[s];
    if (slot.item == item && slot.block == block) return s;
    i = (i + 1) & table_mask_;
  }
}

void StorageCache::TableInsert(int32_t slot) {
  // Grow before probing so the insert position is final. Any eviction must
  // happen before this call: a hole opened by TableErase earlier in this
  // key's probe chain would otherwise orphan the entry.
  if ((static_cast<size_t>(general_size_) + 1) * 2 > table_.size()) {
    TableGrow();
  }
  size_t i = HashKey(slots_[slot].item, slots_[slot].block) & table_mask_;
  while (table_[i] != kNilSlot) i = (i + 1) & table_mask_;
  table_[i] = slot;
}

void StorageCache::TableErase(DataItemId item, int64_t block) {
  size_t i = HashKey(item, block) & table_mask_;
  while (true) {
    int32_t s = table_[i];
    assert(s != kNilSlot && "erasing a block that is not indexed");
    if (s == kNilSlot) return;
    if (slots_[s].item == item && slots_[s].block == block) break;
    i = (i + 1) & table_mask_;
  }
  // Backward-shift deletion: keep every displaced entry reachable from its
  // home position without leaving tombstones behind.
  size_t hole = i;
  size_t j = i;
  while (true) {
    j = (j + 1) & table_mask_;
    int32_t s = table_[j];
    if (s == kNilSlot) break;
    size_t home = HashKey(slots_[s].item, slots_[s].block) & table_mask_;
    bool movable = (j > hole) ? (home <= hole || home > j)
                              : (home <= hole && home > j);
    if (movable) {
      table_[hole] = s;
      hole = j;
    }
  }
  table_[hole] = kNilSlot;
}

void StorageCache::TableGrow() {
  std::vector<int32_t> old = std::move(table_);
  table_.assign(old.size() * 2, kNilSlot);
  table_mask_ = table_.size() - 1;
  for (int32_t s : old) {
    if (s == kNilSlot) continue;
    size_t i = HashKey(slots_[s].item, slots_[s].block) & table_mask_;
    while (table_[i] != kNilSlot) i = (i + 1) & table_mask_;
    table_[i] = s;
  }
}

// ---------------------------------------------------------------------------
// Intrusive LRU over slab slots (head = most recently used).

void StorageCache::LruUnlink(int32_t slot) {
  Slot& s = slots_[slot];
  if (s.lru_prev != kNilSlot) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != kNilSlot) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = kNilSlot;
  s.lru_next = kNilSlot;
}

void StorageCache::LruPushFront(int32_t slot) {
  Slot& s = slots_[slot];
  s.lru_prev = kNilSlot;
  s.lru_next = lru_head_;
  if (lru_head_ != kNilSlot) slots_[lru_head_].lru_prev = slot;
  lru_head_ = slot;
  if (lru_tail_ == kNilSlot) lru_tail_ = slot;
}

void StorageCache::LruMoveToFront(int32_t slot) {
  if (lru_head_ == slot) return;
  LruUnlink(slot);
  LruPushFront(slot);
}

void StorageCache::EvictLru() {
  int32_t victim = lru_tail_;
  assert(victim != kNilSlot);
  Slot& slot = slots_[victim];
  if (slot.dirty) {
    general_dirty_--;
    AddDemand(slot.item, 1, config_.block_size);
  }
  LruUnlink(victim);
  TableErase(slot.item, slot.block);
  slot.item = kInvalidDataItem;
  slot.dirty = false;
  free_slots_.push_back(victim);
  general_size_--;
}

void StorageCache::InsertGeneral(DataItemId item, int64_t block, bool dirty) {
  while (general_size_ >= general_capacity_blocks_) EvictLru();
  int32_t s;
  if (!free_slots_.empty()) {
    s = free_slots_.back();
    free_slots_.pop_back();
  } else {
    s = static_cast<int32_t>(slots_.size());
    slots_.push_back(Slot{});
  }
  Slot& slot = slots_[s];
  slot.item = item;
  slot.block = block;
  slot.dirty = dirty;
  LruPushFront(s);
  TableInsert(s);
  general_size_++;
  if (dirty) general_dirty_++;
}

// ---------------------------------------------------------------------------
// Write-delay flat block set.

bool StorageCache::WdContains(DataItemId item, int64_t block) const {
  size_t i = HashKey(item, block) & wd_mask_;
  while (true) {
    const WdKey& k = wd_table_[i];
    if (k.item == kInvalidDataItem) return false;
    if (k.item == item && k.block == block) return true;
    i = (i + 1) & wd_mask_;
  }
}

bool StorageCache::WdInsert(DataItemId item, int64_t block) {
  if ((wd_size_ + 1) * 2 > wd_table_.size()) WdGrow();
  size_t i = HashKey(item, block) & wd_mask_;
  while (true) {
    WdKey& k = wd_table_[i];
    if (k.item == kInvalidDataItem) {
      k.item = item;
      k.block = block;
      wd_size_++;
      return true;
    }
    if (k.item == item && k.block == block) return false;
    i = (i + 1) & wd_mask_;
  }
}

void StorageCache::WdGrow() {
  std::vector<WdKey> old = std::move(wd_table_);
  wd_table_.assign(old.size() * 2, WdKey{});
  wd_mask_ = wd_table_.size() - 1;
  for (const WdKey& k : old) {
    if (k.item == kInvalidDataItem) continue;
    size_t i = HashKey(k.item, k.block) & wd_mask_;
    while (wd_table_[i].item != kInvalidDataItem) i = (i + 1) & wd_mask_;
    wd_table_[i] = k;
  }
}

void StorageCache::WdClear() {
  if (wd_size_ == 0) return;
  std::fill(wd_table_.begin(), wd_table_.end(), WdKey{});
  wd_size_ = 0;
}

void StorageCache::WdEraseItem(DataItemId item) {
  // Cold path (policy period / migration): rebuild without the item's
  // blocks rather than backward-shifting one key at a time.
  std::vector<WdKey> keep;
  keep.reserve(wd_size_);
  for (const WdKey& k : wd_table_) {
    if (k.item != kInvalidDataItem && k.item != item) keep.push_back(k);
  }
  std::fill(wd_table_.begin(), wd_table_.end(), WdKey{});
  wd_size_ = 0;
  for (const WdKey& k : keep) WdInsert(k.item, k.block);
}

// ---------------------------------------------------------------------------
// Demand aggregation.

void StorageCache::BeginDemands(std::vector<FlushDemand>* out) {
  demand_out_ = out;
  if (++demand_epoch_ == 0) {
    // Epoch wrapped: old stamps could alias the new epoch, so reset them.
    std::fill(demand_index_.begin(), demand_index_.end(),
              std::pair<uint32_t, uint32_t>{0, 0});
    demand_epoch_ = 1;
  }
}

void StorageCache::AddDemand(DataItemId item, int64_t blocks, int64_t bytes) {
  auto idx = static_cast<size_t>(item);
  if (idx >= demand_index_.size()) {
    demand_index_.resize(idx + 1, {0, 0});
  }
  auto& [epoch, pos] = demand_index_[idx];
  if (epoch == demand_epoch_) {
    FlushDemand& d = (*demand_out_)[pos];
    d.blocks += blocks;
    d.bytes += bytes;
  } else {
    epoch = demand_epoch_;
    pos = static_cast<uint32_t>(demand_out_->size());
    demand_out_->push_back(FlushDemand{item, blocks, bytes});
  }
}

void StorageCache::DestageGeneralInto() {
  for (Slot& slot : slots_) {
    if (slot.item != kInvalidDataItem && slot.dirty) {
      slot.dirty = false;
      AddDemand(slot.item, 1, config_.block_size);
    }
  }
  general_dirty_ = 0;
}

void StorageCache::DestageWriteDelayInto() {
  for (auto& [item, info] : items_) {
    if (info.wd_dirty > 0) {
      AddDemand(item, info.wd_dirty, info.wd_dirty * config_.block_size);
      info.wd_dirty = 0;
    }
  }
  WdClear();
  wd_dirty_total_ = 0;
}

void StorageCache::CompactItem(DataItemId item) {
  auto it = items_.find(item);
  if (it != items_.end() && it->second.empty()) items_.erase(it);
}

// ---------------------------------------------------------------------------
// Public API.

StorageCache::ReadOutcome StorageCache::Read(
    DataItemId item, int64_t offset, int32_t size,
    std::vector<FlushDemand>* eviction_flushes) {
  eviction_flushes->clear();
  BeginDemands(eviction_flushes);
  ReadOutcome out;
  int64_t first = FirstBlock(offset);
  int64_t last = LastBlock(offset, size);
  // One item-state lookup per request, not one per block.
  const ItemInfo* info = FindItem(item);
  bool preloaded = info != nullptr && info->preloaded;
  bool wd_resident = info != nullptr && info->wd_dirty > 0;
  for (int64_t b = first; b <= last; ++b) {
    if (preloaded) {
      out.hit_blocks++;
      continue;
    }
    if (wd_resident && WdContains(item, b)) {
      out.hit_blocks++;
      continue;
    }
    int32_t s = TableFind(item, b);
    if (s != kNilSlot) {
      LruMoveToFront(s);
      out.hit_blocks++;
    } else {
      out.miss_blocks++;
      InsertGeneral(item, b, /*dirty=*/false);
    }
  }
  hit_blocks_ += out.hit_blocks;
  miss_blocks_ += out.miss_blocks;
  return out;
}

StorageCache::WriteOutcome StorageCache::Write(
    DataItemId item, int64_t offset, int32_t size,
    std::vector<FlushDemand>* destage) {
  destage->clear();
  BeginDemands(destage);
  WriteOutcome out;
  int64_t first = FirstBlock(offset);
  int64_t last = LastBlock(offset, size);
  absorbed_write_blocks_ += last - first + 1;

  auto it = items_.find(item);
  ItemInfo* info = it == items_.end() ? nullptr : &it->second;
  if (info != nullptr && info->write_delayed) {
    out.write_delayed = true;
    for (int64_t b = first; b <= last; ++b) {
      if (WdInsert(item, b)) {
        wd_dirty_total_++;
        info->wd_dirty++;
      }
    }
    double limit = config_.write_delay_dirty_ratio *
                   static_cast<double>(wd_capacity_blocks_);
    if (static_cast<double>(wd_dirty_total_) >= limit) {
      DestageWriteDelayInto();
    }
    return out;
  }

  for (int64_t b = first; b <= last; ++b) {
    int32_t s = TableFind(item, b);
    if (s != kNilSlot) {
      LruMoveToFront(s);
      if (!slots_[s].dirty) {
        slots_[s].dirty = true;
        general_dirty_++;
      }
    } else {
      // Eviction write-backs land in `destage` ahead of any threshold
      // destage, matching the legacy demand order.
      InsertGeneral(item, b, /*dirty=*/true);
    }
  }
  double limit = config_.default_dirty_ratio *
                 static_cast<double>(general_capacity_blocks_);
  if (static_cast<double>(general_dirty_) >= limit) {
    DestageGeneralInto();
  }
  return out;
}

std::vector<FlushDemand> StorageCache::SetWriteDelayItems(
    const std::unordered_set<DataItemId>& items,
    std::vector<DataItemId>* entered, std::vector<WdChange>* left) {
  std::vector<FlushDemand> demands;
  BeginDemands(&demands);
  // Destage dirty blocks of items leaving the set (paper §V-B).
  std::vector<DataItemId> leaving;
  for (auto& [id, info] : items_) {
    if (!info.write_delayed && info.wd_dirty == 0) continue;
    if (items.count(id) > 0) continue;
    int64_t flushed = 0;
    if (info.wd_dirty > 0) {
      flushed = info.wd_dirty;
      AddDemand(id, info.wd_dirty, info.wd_dirty * config_.block_size);
      wd_dirty_total_ -= info.wd_dirty;
      info.wd_dirty = 0;
      WdEraseItem(id);
    }
    info.write_delayed = false;
    leaving.push_back(id);
    if (left != nullptr) {
      left->push_back(WdChange{id, flushed, flushed * config_.block_size});
    }
  }
  for (DataItemId id : items) {
    ItemInfo& info = items_[id];
    if (entered != nullptr && !info.write_delayed) entered->push_back(id);
    info.write_delayed = true;
  }
  for (DataItemId id : leaving) CompactItem(id);
  // items_ iterates in hash order; sort so per-item attribution events are
  // emitted in a stable order.
  if (entered != nullptr) std::sort(entered->begin(), entered->end());
  if (left != nullptr) {
    std::sort(left->begin(), left->end(),
              [](const WdChange& a, const WdChange& b) { return a.item < b.item; });
  }
  return demands;
}

StorageCache::ItemState StorageCache::ExportItemState(DataItemId item) const {
  ItemState state;
  const ItemInfo* info = FindItem(item);
  if (info != nullptr) {
    state.preload_selected = info->preload_selected;
    state.preloaded = info->preloaded;
    state.write_delayed = info->write_delayed;
    state.preload_bytes = info->preload_bytes;
  }
  return state;
}

void StorageCache::AdoptItemState(DataItemId item, const ItemState& state) {
  ItemInfo& info = items_[item];
  info.preload_selected = state.preload_selected;
  info.preloaded = state.preloaded;
  info.write_delayed = state.write_delayed;
  info.preload_bytes = state.preload_bytes;
  CompactItem(item);
}

void StorageCache::DropItemState(DataItemId item) {
  auto it = items_.find(item);
  if (it == items_.end()) return;
  it->second.preload_selected = false;
  it->second.preloaded = false;
  it->second.write_delayed = false;
  it->second.preload_bytes = 0;
  CompactItem(item);
}

Result<std::vector<DataItemId>> StorageCache::SetPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& sizes) {
  int64_t total = 0;
  for (const auto& [item, size] : sizes) total += size;
  if (total > config_.preload_area_bytes) {
    return Status::CapacityExceeded(
        "preload selection exceeds preload area");
  }
  std::unordered_set<DataItemId> selected;
  selected.reserve(sizes.size());
  for (const auto& [item, size] : sizes) selected.insert(item);
  // Deselected items drop out immediately.
  std::vector<DataItemId> dropped;
  for (auto& [id, info] : items_) {
    if (info.preload_selected && selected.count(id) == 0) {
      info.preload_selected = false;
      info.preloaded = false;
      info.preload_bytes = 0;
      dropped.push_back(id);
    }
  }
  for (DataItemId id : dropped) CompactItem(id);
  // Already-loaded items stay resident (paper §V-C); everything else —
  // newly selected or selected-but-never-loaded — must be (re)loaded, in
  // `sizes` order.
  std::vector<DataItemId> to_load;
  for (const auto& [item, size] : sizes) {
    ItemInfo& info = items_[item];
    if (info.preload_selected && info.preloaded) continue;
    info.preload_selected = true;
    info.preloaded = false;
    info.preload_bytes = size;
    to_load.push_back(item);
  }
  return to_load;
}

Status StorageCache::MarkPreloaded(DataItemId item) {
  auto it = items_.find(item);
  if (it == items_.end() || !it->second.preload_selected) {
    return Status::NotFound("item not in preload set");
  }
  it->second.preloaded = true;
  return Status::OK();
}

std::vector<FlushDemand> StorageCache::FlushAll() {
  std::vector<FlushDemand> demands;
  BeginDemands(&demands);
  DestageGeneralInto();
  DestageWriteDelayInto();
  return demands;
}

std::vector<FlushDemand> StorageCache::InvalidateItem(DataItemId item) {
  std::vector<FlushDemand> demands;
  BeginDemands(&demands);
  for (int32_t s = 0; s < static_cast<int32_t>(slots_.size()); ++s) {
    Slot& slot = slots_[s];
    if (slot.item != item) continue;
    if (slot.dirty) {
      general_dirty_--;
      AddDemand(item, 1, config_.block_size);
    }
    LruUnlink(s);
    TableErase(slot.item, slot.block);
    slot.item = kInvalidDataItem;
    slot.dirty = false;
    free_slots_.push_back(s);
    general_size_--;
  }
  auto it = items_.find(item);
  if (it != items_.end() && it->second.wd_dirty > 0) {
    AddDemand(item, it->second.wd_dirty,
              it->second.wd_dirty * config_.block_size);
    wd_dirty_total_ -= it->second.wd_dirty;
    it->second.wd_dirty = 0;
    WdEraseItem(item);
  }
  // Write-delay membership survives invalidation: the item's physical
  // location changed, not the policy's selection.
  return demands;
}

}  // namespace ecostore::storage
