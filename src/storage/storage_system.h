#ifndef ECOSTORE_STORAGE_STORAGE_SYSTEM_H_
#define ECOSTORE_STORAGE_STORAGE_SYSTEM_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "storage/block_virtualization.h"
#include "storage/data_item.h"
#include "storage/disk_enclosure.h"
#include "storage/storage_cache.h"
#include "storage/storage_config.h"
#include "telemetry/analysis/latency_histogram.h"
#include "telemetry/recorder.h"
#include "trace/io_record.h"

namespace ecostore::storage {

/// \brief Receives storage-level events; implemented by the Storage
/// Monitor and by metric collectors.
class StorageObserver {
 public:
  virtual ~StorageObserver() = default;

  /// A physical I/O batch was submitted to an enclosure.
  virtual void OnPhysicalIo(const trace::PhysicalIoRecord& rec) { (void)rec; }

  /// An enclosure idle interval ended (a new submission arrived after
  /// `gap` of quiescence, or the run ended).
  virtual void OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                            SimDuration gap) {
    (void)enclosure;
    (void)at;
    (void)gap;
  }

  /// An enclosure changed power state at `at` (kSpinningUp on power-on
  /// initiation, kOff on power-off).
  virtual void OnPowerStateChange(EnclosureId enclosure, SimTime at,
                                  PowerState state) {
    (void)enclosure;
    (void)at;
    (void)state;
  }
};

/// \brief Facade over the whole simulated enterprise array: enclosures,
/// the controller cache, and the block-virtualization layer.
///
/// The application-facing entry point is SubmitLogicalIo(); internal
/// operations (cache destages, preloads, migration chunks) go through
/// SubmitPhysicalBulk(). Spin-down is automatic per enclosure after the
/// configured idle timeout, gated by a per-enclosure policy flag
/// (the power-management function enables it for cold enclosures only,
/// paper §IV-G).
class StorageSystem {
 public:
  struct IoResult {
    SimDuration latency = 0;
    bool cache_hit = false;
  };

  /// \param simulator event loop shared with the replayer (not owned)
  /// \param config array parameters; validated in Init()
  /// \param catalog workload data items (not owned; must outlive this)
  StorageSystem(sim::Simulator* simulator, const StorageConfig& config,
                const DataItemCatalog* catalog);

  /// Validates the config and lays items out on their initial enclosures.
  Status Init();

  void AddObserver(StorageObserver* observer) {
    observers_.push_back(observer);
  }

  /// Attaches (or detaches, with nullptr) the run's event recorder. The
  /// system does not own it; the caller keeps it alive across the run.
  void SetTelemetry(telemetry::Recorder* recorder) { telemetry_ = recorder; }
  telemetry::Recorder* telemetry() const { return telemetry_; }

  /// Attaches (or detaches, with nullptr) the per-run latency book that
  /// SubmitLogicalIo records service times into, split by the item's
  /// classified pattern and hit/miss/spun-down outcome. Independent of
  /// the event recorder; not owned.
  void SetLatencyBook(telemetry::analysis::LatencyBook* book) {
    latency_book_ = book;
  }

  /// Starts plan epoch `plan` (1-based; 0 = before the first plan) and
  /// replaces the per-item pattern table used to split the latency book.
  /// `item_patterns` is indexed by DataItemId; items beyond its size (or
  /// with values >= kNumPatternSlots) count as unclassified. Telemetry
  /// events recorded after this call carry `plan` as their epoch tag.
  void BeginPlanEpoch(int32_t plan, const std::vector<uint8_t>& item_patterns);

  /// Serves one application logical I/O through cache and enclosures.
  IoResult SubmitLogicalIo(const trace::LogicalIoRecord& rec);

  /// Submits an internal bulk I/O (destage, preload, migration chunk)
  /// directly to an enclosure. Returns the batch completion time. `item`
  /// (when known) is carried on the kPhysicalIo detail event so the
  /// energy ledger can tie a spin-up back to the item whose I/O forced it.
  SimTime SubmitPhysicalBulk(EnclosureId enclosure, int64_t n_ios,
                             int64_t bytes, IoType type, bool sequential,
                             int64_t block_hint = 0,
                             DataItemId item = kInvalidDataItem);

  /// Allows or forbids automatic spin-down for an enclosure. Enabling it
  /// arms the idle timer immediately when already idle.
  void SetSpinDownAllowed(EnclosureId enclosure, bool allowed);
  bool spin_down_allowed(EnclosureId enclosure) const {
    return spin_down_allowed_.at(static_cast<size_t>(enclosure));
  }

  /// Replaces the write-delay item set; destages displaced dirty blocks.
  Status SetWriteDelayItems(const std::unordered_set<DataItemId>& items);

  /// Replaces the preload set and performs the loads asynchronously
  /// (bulk sequential reads; items become cache-resident at completion).
  Status SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& items);

  /// Updates the mapping after an item's data has been transferred and
  /// rehomes any cached dirty blocks to the new enclosure.
  Status CommitItemMove(DataItemId item, EnclosureId target);

  /// Destages everything and reports final idle gaps; call at end of run.
  /// On an ownership-masked system (sharded lanes) only owned enclosures
  /// are finalized and the controller's energy-final event is suppressed —
  /// the sharded coordinator emits it exactly once.
  void FinalizeRun();

  /// Restricts end-of-run accounting (EnclosureEnergy, FinalizeRun) to the
  /// enclosures marked true. The sharded engine builds one structurally
  /// complete StorageSystem per shard but routes each enclosure's I/O to
  /// exactly one lane; the mask keeps the untouched replicas out of the
  /// energy totals. An empty mask (the default) means "owns everything" —
  /// the serial engine never calls this.
  void SetOwnedEnclosures(std::vector<bool> owned) {
    owned_ = std::move(owned);
  }
  bool OwnsEnclosure(EnclosureId id) const {
    return owned_.empty() || owned_.at(static_cast<size_t>(id));
  }

  /// Applies flush demands produced by *another* system's cache (sharded
  /// cross-lane item moves: the source lane invalidates, the target lane —
  /// this one — rewrites the dirty blocks at the item's new home).
  void ApplyExternalFlushDemands(const std::vector<FlushDemand>& demands) {
    ApplyFlushDemands(demands);
  }

  DiskEnclosure& enclosure(EnclosureId id) {
    return *enclosures_.at(static_cast<size_t>(id));
  }
  int num_enclosures() const {
    return static_cast<int>(enclosures_.size());
  }
  const BlockVirtualization& virtualization() const { return virt_; }
  BlockVirtualization& virtualization() { return virt_; }
  const StorageCache& cache() const { return cache_; }
  /// Mutable cache access for the sharded engine's cross-lane item-state
  /// transfer (ExportItemState/AdoptItemState/DropItemState/Invalidate).
  StorageCache& mutable_cache() { return cache_; }
  const StorageConfig& config() const { return config_; }
  sim::Simulator* simulator() { return sim_; }

  /// Energy integrated across all enclosures up to now.
  Joules EnclosureEnergy();
  /// Controller energy (constant draw) up to now.
  Joules ControllerEnergy() const;
  /// Enclosures + controller.
  Joules TotalEnergy();

 private:
  void NotifyPhysicalIo(const trace::PhysicalIoRecord& rec);
  void NotifyIdleGap(EnclosureId enclosure, SimTime at, SimDuration gap);
  void NotifyPowerState(EnclosureId enclosure, SimTime at, PowerState state);

  /// Applies cache flush demands as bulk sequential writes.
  void ApplyFlushDemands(const std::vector<FlushDemand>& demands);

  /// Arms the idle-timeout spin-down check for an enclosure.
  void ArmSpinDownTimer(EnclosureId enclosure);

  sim::Simulator* sim_;
  StorageConfig config_;
  const DataItemCatalog* catalog_;
  std::vector<std::unique_ptr<DiskEnclosure>> enclosures_;
  StorageCache cache_;
  BlockVirtualization virt_;
  std::vector<bool> spin_down_allowed_;
  /// End-of-run accounting mask; empty = all enclosures owned (serial).
  std::vector<bool> owned_;
  std::vector<StorageObserver*> observers_;
  telemetry::Recorder* telemetry_ = nullptr;
  telemetry::analysis::LatencyBook* latency_book_ = nullptr;

  /// Current power-management plan epoch (stamped into telemetry events)
  /// and the per-item pattern table it published.
  int32_t plan_epoch_ = 0;
  std::vector<uint8_t> item_pattern_;

  /// Reusable scratch for per-I/O flush demands: SubmitLogicalIo hands it
  /// to StorageCache::Read/Write and consumes it before returning, so the
  /// hot path allocates nothing once the vector's capacity has warmed up.
  std::vector<FlushDemand> flush_scratch_;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_STORAGE_SYSTEM_H_
