#ifndef ECOSTORE_STORAGE_STORAGE_CONFIG_H_
#define ECOSTORE_STORAGE_STORAGE_CONFIG_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/status.h"
#include "common/units.h"

namespace ecostore::storage {

/// \brief Physical and power parameters of one disk enclosure (15 HDDs in a
/// RAID-6 group; the power-saving unit, paper §II-A).
///
/// The defaults model the paper's testbed (Hitachi AMS2500-class): 1.7 TB
/// usable volume per enclosure, 900 random / 2800 sequential IOPS, and a
/// break-even time of 52 s. Power draws are calibrated so that an idle
/// 12-enclosure array plus controller matches the paper's measured
/// "without power saving" wall power (≈2980 W for the File Server rig).
struct EnclosureConfig {
  /// Usable capacity of the volume carved from the enclosure.
  int64_t capacity_bytes = static_cast<int64_t>(1.7 * 1024) * kGiB;

  /// Service capability (paper Table II).
  double max_random_iops = 900.0;
  double max_sequential_iops = 2800.0;

  /// Power draw per state.
  Watts active_power = 300.0;
  Watts idle_power = 232.0;
  Watts off_power = 0.0;
  Watts spinup_power = 1000.0;

  /// Time to bring an Off enclosure back to service (staggered group
  /// spin-up). Together with the power figures this yields the paper's
  /// 52 s break-even time (see BreakEvenTime()).
  SimDuration spinup_time = 12 * kSecond;

  /// Per-request positioning latency added to an I/O batch's completion
  /// (seek + rotation for random access; track-to-track for sequential).
  /// It models response time only; throughput is governed by the IOPS
  /// figures above (the 15-drive group overlaps positioning across
  /// drives).
  SimDuration random_access_latency = 9 * kMillisecond;
  SimDuration sequential_access_latency = 500 * kMicrosecond;

  /// Idle time after the last I/O completes before the enclosure may power
  /// off (paper Table II sets this equal to the break-even time).
  SimDuration spindown_timeout = 52 * kSecond;

  Status Validate() const;

  /// The energy-break-even idle duration implied by these parameters: the
  /// idle span T at which staying idle costs the same as the off/spin-up
  /// cycle, i.e. idle_power * T = spinup extra energy + off_power * T.
  SimDuration BreakEvenTime() const;
};

/// \brief RAID-controller battery-backed cache parameters (paper §II-A,
/// Table II).
struct CacheConfig {
  int64_t total_bytes = 2 * kGiB;
  /// Dedicated partitions carved out for the proposed method (Table II).
  int64_t preload_area_bytes = 500 * kMiB;
  int64_t write_delay_area_bytes = 500 * kMiB;

  /// Cache block granularity.
  int32_t block_size = 64 * static_cast<int32_t>(kKiB);

  /// Dirty-block rate at which the general area destages everything at
  /// once (the array default; the proposed method raises the write-delay
  /// area's rate to `write_delay_dirty_ratio`).
  double default_dirty_ratio = 0.10;
  double write_delay_dirty_ratio = 0.50;

  /// Latency of a cache hit (controller + fabric).
  SimDuration hit_latency = 200 * kMicrosecond;

  Status Validate() const;

  /// Bytes available to the general (LRU) area.
  int64_t general_area_bytes() const {
    return total_bytes - preload_area_bytes - write_delay_area_bytes;
  }
};

/// \brief RAID controller power model: a constant draw (the paper's
/// controller bar is flat across methods).
struct ControllerConfig {
  Watts base_power = 190.0;

  Status Validate() const;
};

/// The AMS2500-like 15-HDD RAID-6 enclosure (the defaults).
EnclosureConfig EnterpriseHddEnclosureConfig();

/// An SSD-based enclosure (paper §VIII-D: "our proposed approach ... can
/// be applied easily to SSD storage"): far lower power, near-instant
/// power state changes, and a sub-second break-even time — spin-down
/// style savings all but vanish, while the classification and cache
/// machinery still applies.
EnclosureConfig SsdEnclosureConfig();

/// \brief Complete configuration of a simulated enterprise storage array.
struct StorageConfig {
  int num_enclosures = 10;
  EnclosureConfig enclosure;
  CacheConfig cache;
  ControllerConfig controller;

  /// Idle gaps shorter than this are not reported to observers (keeps the
  /// event volume bounded; the paper's interval analysis only cares about
  /// gaps near or above the break-even time).
  SimDuration idle_gap_notify_floor = 1 * kSecond;

  Status Validate() const;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_STORAGE_CONFIG_H_
