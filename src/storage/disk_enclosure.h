#ifndef ECOSTORE_STORAGE_DISK_ENCLOSURE_H_
#define ECOSTORE_STORAGE_DISK_ENCLOSURE_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/types.h"
#include "common/units.h"
#include "storage/storage_config.h"

namespace ecostore::storage {

/// Coarse power state of an enclosure (paper §II-B.1). `kOn` covers both
/// the Active and Idle modes; which one applies at an instant is derived
/// from whether the service queue is busy.
enum class PowerState : uint8_t { kOff = 0, kSpinningUp, kOn };

const char* PowerStateName(PowerState s);

/// \brief One simulated disk enclosure: a RAID-6 group of 15 HDDs treated
/// as the unit of power control (paper §II-A).
///
/// The enclosure models
///  - a single-server FIFO service queue: each submitted batch occupies the
///    queue for n_ios / IOPS(seq|random) seconds,
///  - a three-state power FSM (On / SpinningUp / Off) with piecewise-
///    constant power draws integrated lazily into an energy counter, and
///  - bookkeeping for idle gaps, spin-up counts and served I/O totals.
///
/// All methods take the current simulated time; the enclosure never talks
/// to the Simulator directly (the StorageSystem owns event scheduling).
class DiskEnclosure {
 public:
  /// Outcome of submitting a batch of I/Os.
  struct IoGrant {
    /// Time service starts (>= submission; delayed by spin-up or queue).
    SimTime start = 0;
    /// Time the last I/O of the batch completes.
    SimTime completion = 0;
    /// Idle gap that *ended* with this submission: time between the
    /// previous busy-period end and this submission (0 when queued behind
    /// other work or first ever I/O).
    SimDuration idle_gap_before = 0;
    /// True when this submission triggered a spin-up from Off.
    bool powered_on = false;
  };

  DiskEnclosure(EnclosureId id, const EnclosureConfig& config);

  EnclosureId id() const { return id_; }
  const EnclosureConfig& config() const { return config_; }

  /// Submits a batch of `n_ios` I/Os totalling `bytes`. A batch models a
  /// contiguous burst (e.g. a cache destage or a migration chunk); the
  /// service queue is occupied for n_ios / IOPS seconds. Spins the
  /// enclosure up when it is off.
  IoGrant SubmitIo(SimTime now, int64_t n_ios, int64_t bytes, IoType type,
                   bool sequential);

  /// Begins spin-up if the enclosure is off (no-op otherwise). Returns the
  /// time at which the enclosure will be on.
  SimTime PowerOn(SimTime now);

  /// Powers the enclosure off. Only legal when on and the queue is
  /// drained; returns false (and does nothing) otherwise.
  bool PowerOff(SimTime now);

  /// Current FSM state (after catching the clock up to `now`).
  PowerState state(SimTime now);

  /// True when on, drained, and idle for at least the configured
  /// spin-down timeout.
  bool EligibleForSpinDown(SimTime now);

  /// Total energy consumed up to `now`.
  Joules Energy(SimTime now);

  /// End of the last busy period so far (0 before any I/O).
  SimTime last_busy_end() const { return last_busy_end_; }

  /// Time at which the service queue drains.
  SimTime busy_until() const { return busy_until_; }

  int64_t served_ios() const { return served_ios_; }
  int64_t served_bytes() const { return served_bytes_; }
  int64_t spinup_count() const { return spinup_count_; }

  /// Cumulative time spent actively serving I/O, up to the last CatchUp.
  SimDuration active_time() const { return active_time_; }

 private:
  /// Integrates energy from accounted_until_ to `now` and performs the
  /// SpinningUp -> On transition when the clock passes spinup_complete_.
  void CatchUp(SimTime now);

  double IopsFor(bool sequential) const {
    return sequential ? config_.max_sequential_iops
                      : config_.max_random_iops;
  }

  EnclosureId id_;
  EnclosureConfig config_;

  PowerState state_ = PowerState::kOn;
  SimTime accounted_until_ = 0;
  SimTime spinup_complete_ = 0;
  SimTime busy_until_ = 0;
  SimTime last_busy_end_ = 0;

  Joules energy_ = 0.0;
  SimDuration active_time_ = 0;
  int64_t served_ios_ = 0;
  int64_t served_bytes_ = 0;
  int64_t spinup_count_ = 0;
};

}  // namespace ecostore::storage

#endif  // ECOSTORE_STORAGE_DISK_ENCLOSURE_H_
