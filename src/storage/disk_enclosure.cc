#include "storage/disk_enclosure.h"

#include <algorithm>
#include <cassert>

namespace ecostore::storage {

const char* PowerStateName(PowerState s) {
  switch (s) {
    case PowerState::kOff:
      return "Off";
    case PowerState::kSpinningUp:
      return "SpinningUp";
    case PowerState::kOn:
      return "On";
  }
  return "?";
}

DiskEnclosure::DiskEnclosure(EnclosureId id, const EnclosureConfig& config)
    : id_(id), config_(config) {}

void DiskEnclosure::CatchUp(SimTime now) {
  if (now <= accounted_until_) return;
  SimTime t = accounted_until_;
  if (state_ == PowerState::kOff) {
    energy_ += EnergyOf(config_.off_power, now - t);
    accounted_until_ = now;
    return;
  }
  if (state_ == PowerState::kSpinningUp) {
    SimTime spin_end = std::min(now, spinup_complete_);
    if (spin_end > t) {
      energy_ += EnergyOf(config_.spinup_power, spin_end - t);
      t = spin_end;
    }
    if (now >= spinup_complete_) {
      state_ = PowerState::kOn;
    } else {
      accounted_until_ = now;
      return;
    }
  }
  // state_ == kOn: active while the queue is busy, idle afterwards.
  SimTime busy_end = std::clamp(busy_until_, t, now);
  if (busy_end > t) {
    energy_ += EnergyOf(config_.active_power, busy_end - t);
    active_time_ += busy_end - t;
    t = busy_end;
  }
  if (now > t) {
    energy_ += EnergyOf(config_.idle_power, now - t);
  }
  accounted_until_ = now;
}

SimTime DiskEnclosure::PowerOn(SimTime now) {
  CatchUp(now);
  if (state_ == PowerState::kOn) return now;
  if (state_ == PowerState::kSpinningUp) return spinup_complete_;
  state_ = PowerState::kSpinningUp;
  spinup_complete_ = now + config_.spinup_time;
  spinup_count_++;
  return spinup_complete_;
}

bool DiskEnclosure::PowerOff(SimTime now) {
  CatchUp(now);
  if (state_ != PowerState::kOn) return false;
  if (busy_until_ > now) return false;
  state_ = PowerState::kOff;
  return true;
}

PowerState DiskEnclosure::state(SimTime now) {
  CatchUp(now);
  return state_;
}

bool DiskEnclosure::EligibleForSpinDown(SimTime now) {
  CatchUp(now);
  return state_ == PowerState::kOn && busy_until_ <= now &&
         now - std::max(last_busy_end_, SimTime{0}) >=
             config_.spindown_timeout;
}

Joules DiskEnclosure::Energy(SimTime now) {
  CatchUp(now);
  return energy_;
}

DiskEnclosure::IoGrant DiskEnclosure::SubmitIo(SimTime now, int64_t n_ios,
                                               int64_t bytes, IoType type,
                                               bool sequential) {
  (void)type;
  assert(n_ios > 0);
  CatchUp(now);

  IoGrant grant;
  SimTime ready = now;
  if (state_ == PowerState::kOff) {
    grant.powered_on = true;
    ready = PowerOn(now);
  } else if (state_ == PowerState::kSpinningUp) {
    ready = spinup_complete_;
  }

  // Idle gap: only meaningful when the queue had drained before this
  // submission.
  if (served_ios_ > 0 && busy_until_ <= now) {
    grant.idle_gap_before = now - last_busy_end_;
  }

  double iops = IopsFor(sequential);
  auto service = static_cast<SimDuration>(
      static_cast<double>(n_ios) * static_cast<double>(kSecond) / iops);
  service = std::max<SimDuration>(service, 1);

  grant.start = std::max(ready, busy_until_);
  busy_until_ = grant.start + service;
  last_busy_end_ = busy_until_;
  // Positioning latency delays the response but does not occupy the
  // queue (it overlaps across the group's drives).
  grant.completion = busy_until_ + (sequential
                                        ? config_.sequential_access_latency
                                        : config_.random_access_latency);

  served_ios_ += n_ios;
  served_bytes_ += bytes;
  return grant;
}

}  // namespace ecostore::storage
