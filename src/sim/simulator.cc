#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace ecostore::sim {

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].cb = std::move(cb);
  queue_.push_back(HeapEntry{when, next_seq_++, slot});
  std::push_heap(queue_.begin(), queue_.end(), Later);
  live_++;
  scheduled_++;
  if (queue_.size() > peak_heap_depth_) peak_heap_depth_ = queue_.size();
  return EncodeId(slot, slots_[slot].generation);
}

EventId Simulator::ScheduleAfter(SimDuration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return false;
  auto slot = static_cast<uint32_t>(slot_plus_one - 1);
  Slot& state = slots_[slot];
  if (state.generation != static_cast<uint32_t>(id)) return false;  // stale
  // A matching generation means the entry is still in the heap: the slot
  // is only released (generation bumped) when its entry pops.
  if (state.cancelled) return false;
  state.cancelled = true;
  live_--;
  cancelled_++;
  return true;
}

void Simulator::Reserve(size_t events) {
  queue_.reserve(events);
  slots_.reserve(events);
  free_slots_.reserve(events);
}

void Simulator::ReleaseSlot(uint32_t slot) {
  Slot& state = slots_[slot];
  state.cb = nullptr;
  state.generation++;
  state.cancelled = false;
  free_slots_.push_back(slot);
}

Simulator::HeapEntry Simulator::PopTop() {
  std::pop_heap(queue_.begin(), queue_.end(), Later);
  HeapEntry entry = queue_.back();
  queue_.pop_back();
  return entry;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.front().when > deadline) break;
    HeapEntry entry = PopTop();
    Slot& state = slots_[entry.slot];
    if (state.cancelled) {
      ReleaseSlot(entry.slot);
      continue;
    }
    // Move the callback out before releasing: the callback may schedule
    // new events that immediately reuse this slot.
    Callback cb = std::move(state.cb);
    ReleaseSlot(entry.slot);
    live_--;
    now_ = entry.when;
    cb();
    executed++;
    executed_++;
  }
  if (now_ < deadline) {
    // Advance to the deadline so that back-to-back RunUntil calls measure
    // idle spans correctly.
    now_ = deadline;
  }
  return executed;
}

int64_t Simulator::RunAll() {
  int64_t executed = 0;
  while (!queue_.empty()) {
    HeapEntry entry = PopTop();
    Slot& state = slots_[entry.slot];
    if (state.cancelled) {
      ReleaseSlot(entry.slot);
      continue;
    }
    Callback cb = std::move(state.cb);
    ReleaseSlot(entry.slot);
    live_--;
    now_ = entry.when;
    cb();
    executed++;
    executed_++;
  }
  return executed;
}

}  // namespace ecostore::sim
