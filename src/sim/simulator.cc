#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace ecostore::sim {

EventId Simulator::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  queue_.push_back(Entry{when, next_seq_++, id, std::move(cb)});
  std::push_heap(queue_.begin(), queue_.end(), Later);
  live_++;
  return id;
}

EventId Simulator::ScheduleAfter(SimDuration delay, Callback cb) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(cb));
}

bool Simulator::Cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (inserted && live_ > 0) live_--;
  return inserted;
}

Simulator::Entry Simulator::PopTop() {
  std::pop_heap(queue_.begin(), queue_.end(), Later);
  Entry entry = std::move(queue_.back());
  queue_.pop_back();
  return entry;
}

int64_t Simulator::RunUntil(SimTime deadline) {
  int64_t executed = 0;
  while (!queue_.empty()) {
    if (queue_.front().when > deadline) break;
    Entry entry = PopTop();
    auto cancelled_it = cancelled_.find(entry.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    live_--;
    now_ = entry.when;
    entry.cb();
    executed++;
  }
  if (now_ < deadline && queue_.empty()) {
    // Advance to the deadline so that back-to-back RunUntil calls measure
    // idle spans correctly.
    now_ = deadline;
  } else if (now_ < deadline && !queue_.empty()) {
    now_ = deadline;
  }
  return executed;
}

int64_t Simulator::RunAll() {
  int64_t executed = 0;
  while (!queue_.empty()) {
    Entry entry = PopTop();
    auto cancelled_it = cancelled_.find(entry.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    live_--;
    now_ = entry.when;
    entry.cb();
    executed++;
  }
  return executed;
}

}  // namespace ecostore::sim
