#ifndef ECOSTORE_SIM_SIMULATOR_H_
#define ECOSTORE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/sim_time.h"

namespace ecostore::sim {

/// Identifier of a scheduled event, usable for cancellation. Encodes a
/// slot index and a generation; 0 is never a valid id.
using EventId = uint64_t;

/// Sentinel returned by NextEventTime() when the queue is empty.
inline constexpr SimTime kNoPendingEvent = std::numeric_limits<SimTime>::max();

/// \brief Single-threaded discrete-event simulator.
///
/// Events are callbacks scheduled at absolute simulated times and executed
/// in (time, insertion-order) order, so simultaneous events run FIFO and
/// every run is deterministic. The storage array, cache flush timers,
/// policy periods and the trace replayer all share one Simulator.
///
/// The binary heap holds 24-byte POD entries — the (when, seq) ordering
/// key plus a slot index — so every push_heap/pop_heap sift moves three
/// words instead of a 48+-byte entry carrying a std::function. Callbacks
/// are parked once in the generation-tagged slot slab at schedule time
/// and stay there until their entry pops; sifts never touch them.
///
/// Cancellation is O(1) and probe-free: every heap entry references a
/// slot in the slab. Cancel() flips the slot's tombstone bit in place;
/// the pop loop discards tombstoned entries with one indexed load
/// instead of a hash-set lookup, so the hot pop path costs nothing when
/// no cancellations are outstanding.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// fired yet. Cancelling an already-fired, already-cancelled or unknown
  /// id is a no-op returning false.
  bool Cancel(EventId id);

  /// Runs events until the queue drains or the next event lies beyond
  /// `deadline`. Events scheduled exactly at the deadline still run. On
  /// return the clock is min(deadline, quiescence time). Returns the number
  /// of events executed.
  int64_t RunUntil(SimTime deadline);

  /// Runs all pending events to quiescence.
  int64_t RunAll();

  /// Timestamp of the earliest entry still in the heap, or kNoPendingEvent
  /// when the heap is empty. The entry may be a cancelled-but-unpopped
  /// tombstone, so this is a *lower bound* on the next live event's time:
  /// if NextEventTime() > t, RunUntil(t) is guaranteed to execute nothing,
  /// which is exactly the test the batched replay loop needs.
  SimTime NextEventTime() const {
    return queue_.empty() ? kNoPendingEvent : queue_.front().when;
  }

  /// Advances the clock to `t` without running anything (no-op when `t`
  /// is in the past). Two sanctioned uses:
  ///  - the replay hot path: the caller has checked NextEventTime() > t,
  ///    so skipping the heap is free;
  ///  - the sharded engine's epoch barrier: a lane that ran RunUntil(t)
  ///    but quiesced early is pinned to exactly `t` so barrier-time work
  ///    (cross-shard flushes, plan application) stamps the barrier time,
  ///    and the coordinator's clock is set to the barrier before its own
  ///    due events are executed. Events already scheduled at exactly `t`
  ///    still fire on the next RunUntil(t) — AdvanceTo never skips them.
  void AdvanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Pre-sizes the heap and the slot slab for `events` concurrently
  /// pending events, so steady-state scheduling never reallocates.
  void Reserve(size_t events);

  /// Number of events currently pending (cancelled events excluded).
  size_t PendingEvents() const { return live_; }

  /// Lifetime counters and current queue health, cheap enough to sample
  /// at every period boundary (all fields are plain loads).
  struct Stats {
    size_t live_events = 0;      ///< pending, not cancelled
    size_t heap_entries = 0;     ///< in-heap entries incl. tombstones
    size_t tombstones = 0;       ///< cancelled-but-unpopped entries
    size_t peak_heap_depth = 0;  ///< max heap_entries ever observed
    int64_t scheduled = 0;       ///< total ScheduleAt/ScheduleAfter calls
    int64_t cancelled = 0;       ///< successful Cancel() calls
    int64_t executed = 0;        ///< callbacks actually run
  };

  Stats stats() const {
    Stats s;
    s.live_events = live_;
    s.heap_entries = queue_.size();
    s.tombstones = queue_.size() - live_;
    s.peak_heap_depth = peak_heap_depth_;
    s.scheduled = scheduled_;
    s.cancelled = cancelled_;
    s.executed = executed_;
    return s;
  }

 private:
  /// Trivially copyable heap entry: the 16-byte (when, seq) ordering key
  /// plus the slot holding the callback. Sifts copy these 24 bytes; the
  /// callback itself never moves after ScheduleAt parks it in the slab.
  struct HeapEntry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
  };
  static_assert(std::is_trivially_copyable_v<HeapEntry>);

  /// One slab slot per in-heap entry, owning the parked callback. The
  /// generation distinguishes the current entry from stale ids that
  /// referenced an earlier occupant; the tombstone marks a
  /// cancelled-but-not-yet-popped entry.
  struct Slot {
    Callback cb;
    uint32_t generation = 0;
    bool cancelled = false;
  };

  /// Min-heap order on (when, seq): true when `a` fires after `b`.
  static bool Later(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static EventId EncodeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  /// Removes and returns the earliest entry (queue must be non-empty).
  HeapEntry PopTop();

  /// Releases an entry's slot back to the free list, destroying the
  /// parked callback and bumping the generation so outstanding ids for
  /// it go stale.
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  size_t peak_heap_depth_ = 0;
  int64_t scheduled_ = 0;
  int64_t cancelled_ = 0;
  int64_t executed_ = 0;
  std::vector<HeapEntry> queue_;  ///< binary heap ordered by Later()
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace ecostore::sim

#endif  // ECOSTORE_SIM_SIMULATOR_H_
