#ifndef ECOSTORE_SIM_SIMULATOR_H_
#define ECOSTORE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/sim_time.h"

namespace ecostore::sim {

/// Identifier of a scheduled event, usable for cancellation. Encodes a
/// slot index and a generation; 0 is never a valid id.
using EventId = uint64_t;

/// \brief Single-threaded discrete-event simulator.
///
/// Events are callbacks scheduled at absolute simulated times and executed
/// in (time, insertion-order) order, so simultaneous events run FIFO and
/// every run is deterministic. The storage array, cache flush timers,
/// policy periods and the trace replayer all share one Simulator.
///
/// Cancellation is O(1) and probe-free: every heap entry references a
/// slot in a generation-tagged side array. Cancel() flips the slot's
/// tombstone bit in place; the pop loop discards tombstoned entries with
/// one indexed load instead of a hash-set lookup, so the hot pop path
/// costs nothing when no cancellations are outstanding.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// fired yet. Cancelling an already-fired, already-cancelled or unknown
  /// id is a no-op returning false.
  bool Cancel(EventId id);

  /// Runs events until the queue drains or the next event lies beyond
  /// `deadline`. Events scheduled exactly at the deadline still run. On
  /// return the clock is min(deadline, quiescence time). Returns the number
  /// of events executed.
  int64_t RunUntil(SimTime deadline);

  /// Runs all pending events to quiescence.
  int64_t RunAll();

  /// Number of events currently pending (cancelled events excluded).
  size_t PendingEvents() const { return live_; }

 private:
  // Move-only: the callback lives directly in the heap entry, so
  // scheduling an event performs no allocation beyond the callback's own
  // state (small captures fit std::function's inline storage).
  struct Entry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    Callback cb;
  };

  /// One slot per in-heap entry. The generation distinguishes the current
  /// entry from stale ids that referenced an earlier occupant; the
  /// tombstone marks a cancelled-but-not-yet-popped entry.
  struct SlotState {
    uint32_t generation = 0;
    bool cancelled = false;
  };

  /// Min-heap order on (when, seq): true when `a` fires after `b`.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static EventId EncodeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  /// Removes and returns the earliest entry (queue must be non-empty).
  Entry PopTop();

  /// Releases an entry's slot back to the free list (bumping the
  /// generation so outstanding ids for it go stale).
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  std::vector<Entry> queue_;  ///< binary heap ordered by Later()
  std::vector<SlotState> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace ecostore::sim

#endif  // ECOSTORE_SIM_SIMULATOR_H_
