#ifndef ECOSTORE_SIM_SIMULATOR_H_
#define ECOSTORE_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"

namespace ecostore::sim {

/// Identifier of a scheduled event, usable for cancellation.
using EventId = uint64_t;

/// \brief Single-threaded discrete-event simulator.
///
/// Events are callbacks scheduled at absolute simulated times and executed
/// in (time, insertion-order) order, so simultaneous events run FIFO and
/// every run is deterministic. The storage array, cache flush timers,
/// policy periods and the trace replayer all share one Simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when`. Times in the past are clamped
  /// to Now(). Returns an id usable with Cancel().
  EventId ScheduleAt(SimTime when, Callback cb);

  /// Schedules `cb` after `delay` (>= 0) from Now().
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  /// Cancels a pending event. Returns true if the event existed and had not
  /// fired yet. Cancelling an already-fired or unknown id is a no-op.
  bool Cancel(EventId id);

  /// Runs events until the queue drains or the next event lies beyond
  /// `deadline`. Events scheduled exactly at the deadline still run. On
  /// return the clock is min(deadline, quiescence time). Returns the number
  /// of events executed.
  int64_t RunUntil(SimTime deadline);

  /// Runs all pending events to quiescence.
  int64_t RunAll();

  /// Number of events currently pending (cancelled events excluded).
  size_t PendingEvents() const { return live_; }

 private:
  // Move-only: the callback lives directly in the heap entry, so
  // scheduling an event performs no allocation beyond the callback's own
  // state (small captures fit std::function's inline storage).
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    Callback cb;
  };

  /// Min-heap order on (when, seq): true when `a` fires after `b`.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  /// Removes and returns the earliest entry (queue must be non-empty).
  Entry PopTop();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  size_t live_ = 0;
  std::vector<Entry> queue_;  ///< binary heap ordered by Later()
  std::unordered_set<EventId> cancelled_;
};

}  // namespace ecostore::sim

#endif  // ECOSTORE_SIM_SIMULATOR_H_
