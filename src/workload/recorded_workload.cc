#include "workload/recorded_workload.h"

#include <algorithm>

#include "storage/catalog_csv.h"
#include "trace/trace_csv.h"

namespace ecostore::workload {

Result<std::unique_ptr<RecordedWorkload>> RecordedWorkload::FromRecords(
    std::string name, storage::DataItemCatalog catalog,
    std::vector<trace::LogicalIoRecord> records, SimDuration duration,
    int num_enclosures) {
  // Validate ordering and item references.
  SimTime last = 0;
  for (const trace::LogicalIoRecord& rec : records) {
    if (rec.time < last) {
      return Status::InvalidArgument("trace records out of time order");
    }
    last = rec.time;
    if (rec.item < 0 ||
        static_cast<size_t>(rec.item) >= catalog.item_count()) {
      return Status::InvalidArgument("trace references unknown item " +
                                     std::to_string(rec.item));
    }
  }
  if (num_enclosures == 0) {
    for (size_t v = 0; v < catalog.volume_count(); ++v) {
      num_enclosures = std::max(
          num_enclosures,
          catalog.volume_enclosure(static_cast<VolumeId>(v)) + 1);
    }
  }
  if (num_enclosures <= 0) {
    return Status::InvalidArgument("catalog maps to no enclosures");
  }
  if (duration == 0) duration = last + 1;

  std::unique_ptr<RecordedWorkload> workload(new RecordedWorkload());
  workload->info_.name = std::move(name);
  workload->info_.duration = duration;
  workload->info_.num_enclosures = num_enclosures;
  for (const storage::DataItem& item : catalog.items()) {
    workload->info_.total_data_bytes += item.size_bytes;
  }
  workload->catalog_ = std::move(catalog);
  workload->records_ = std::move(records);
  return workload;
}

Result<std::unique_ptr<RecordedWorkload>> RecordedWorkload::Load(
    const std::string& prefix) {
  Result<storage::DataItemCatalog> catalog =
      storage::ReadCatalogCsvFile(prefix + ".catalog.csv");
  if (!catalog.ok()) return catalog.status();
  Result<std::vector<trace::LogicalIoRecord>> records =
      trace::ReadLogicalCsvFile(prefix + ".trace.csv");
  if (!records.ok()) return records.status();
  return FromRecords(prefix, std::move(catalog).value(),
                     std::move(records).value());
}

Result<std::unique_ptr<RecordedWorkload>> RecordedWorkload::Capture(
    Workload* source) {
  source->Reset();
  std::vector<trace::LogicalIoRecord> records;
  trace::LogicalIoRecord rec;
  while (source->Next(&rec)) records.push_back(rec);
  source->Reset();
  // Copy the catalog by round-tripping its parts.
  storage::DataItemCatalog catalog;
  for (size_t v = 0; v < source->catalog().volume_count(); ++v) {
    catalog.AddVolume(
        source->catalog().volume_enclosure(static_cast<VolumeId>(v)));
  }
  for (const storage::DataItem& item : source->catalog().items()) {
    Result<DataItemId> added = catalog.AddItem(
        item.name, item.volume, item.size_bytes, item.kind, item.pinned);
    if (!added.ok()) return added.status();
  }
  return FromRecords(source->info().name + "_recorded", std::move(catalog),
                     std::move(records), source->info().duration,
                     source->info().num_enclosures);
}

Status RecordedWorkload::Save(const std::string& prefix) const {
  ECOSTORE_RETURN_NOT_OK(
      storage::WriteCatalogCsvFile(prefix + ".catalog.csv", catalog_));
  return trace::WriteLogicalCsvFile(prefix + ".trace.csv", records_);
}

bool RecordedWorkload::Next(trace::LogicalIoRecord* rec) {
  while (cursor_ < records_.size()) {
    const trace::LogicalIoRecord& r = records_[cursor_++];
    if (r.time >= info_.duration) continue;
    *rec = r;
    return true;
  }
  return false;
}

size_t RecordedWorkload::NextBatch(std::vector<trace::LogicalIoRecord>* out,
                                   size_t max_records) {
  out->clear();
  size_t want = std::min(max_records, records_.size() - cursor_);
  // Records are time-ordered, so if the last record of the window is
  // inside the duration the whole window is: one contiguous copy.
  if (want > 0 && records_[cursor_ + want - 1].time < info_.duration) {
    auto begin = records_.begin() + static_cast<ptrdiff_t>(cursor_);
    out->insert(out->end(), begin, begin + static_cast<ptrdiff_t>(want));
    cursor_ += want;
    return out->size();
  }
  // Tail of the stream (or a truncating duration): per-record filter.
  while (out->size() < max_records && cursor_ < records_.size()) {
    const trace::LogicalIoRecord& r = records_[cursor_++];
    if (r.time >= info_.duration) continue;
    out->push_back(r);
  }
  return out->size();
}

}  // namespace ecostore::workload
