#include "workload/oltp_workload.h"

#include <algorithm>

#include "common/units.h"

namespace ecostore::workload {

namespace {

/// TPC-C table shapes: per-partition size, share of total DB IOPS (over
/// all partitions of the table), read ratio, and whether the table is
/// episodic (DBMS-buffered read-only master data -> P1 behaviour).
struct TableSpec {
  const char* name;
  int64_t partition_bytes;
  double iops_weight;  // relative
  double read_ratio;
  bool episodic;
};

constexpr int64_t kMiB64 = 1024 * 1024;

const TableSpec kTables[] = {
    {"stock", 30LL * 1024 * kMiB64, 0.40, 0.55, false},
    {"order_line", 15LL * 1024 * kMiB64, 0.20, 0.25, false},
    {"customer", 10LL * 1024 * kMiB64, 0.20, 0.65, false},
    {"orders", 5LL * 1024 * kMiB64, 0.10, 0.45, false},
    {"new_order", 1LL * 1024 * kMiB64, 0.05, 0.30, false},
    {"history", 2LL * 1024 * kMiB64, 0.03, 0.05, false},
    {"district", 128 * kMiB64, 0.02, 0.50, false},
    {"item", 64 * kMiB64, 0.0, 1.00, true},
    {"warehouse", 16 * kMiB64, 0.0, 0.98, true},
};

}  // namespace

Status OltpConfig::Validate() const {
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  if (db_enclosures < 1) {
    return Status::InvalidArgument("need at least one DB enclosure");
  }
  if (total_db_iops <= 0 || log_iops < 0) {
    return Status::InvalidArgument("IOPS must be positive");
  }
  if (burst_factor < 1.0) {
    return Status::InvalidArgument("burst factor must be >= 1");
  }
  return Status::OK();
}

Result<std::unique_ptr<OltpWorkload>> OltpWorkload::Create(
    const OltpConfig& config) {
  ECOSTORE_RETURN_NOT_OK(config.Validate());
  std::unique_ptr<OltpWorkload> workload(new OltpWorkload(config));
  ECOSTORE_RETURN_NOT_OK(workload->Build());
  return workload;
}

Status OltpWorkload::Build() {
  const OltpConfig& c = config_;
  info_.name = "oltp_tpcc";
  info_.duration = c.duration;
  info_.num_enclosures = c.db_enclosures + 1;

  // Volume 0 on enclosure 0: the log. One DB volume per DB enclosure.
  VolumeId log_volume = catalog_.AddVolume(0);
  std::vector<VolumeId> db_volumes;
  for (int e = 1; e <= c.db_enclosures; ++e) {
    db_volumes.push_back(catalog_.AddVolume(static_cast<EnclosureId>(e)));
  }

  Result<DataItemId> log_id = catalog_.AddItem(
      "redo_log", log_volume, c.log_bytes, storage::DataItemKind::kLog);
  if (!log_id.ok()) return log_id.status();
  log_item_ = log_id.value();
  info_.total_data_bytes += c.log_bytes;

  double weight_sum = 0.0;
  for (const TableSpec& t : kTables) weight_sum += t.iops_weight;

  for (const TableSpec& t : kTables) {
    for (int p = 0; p < c.db_enclosures; ++p) {
      Result<DataItemId> id = catalog_.AddItem(
          std::string(t.name) + "_p" + std::to_string(p),
          db_volumes[static_cast<size_t>(p)], t.partition_bytes,
          storage::DataItemKind::kTable);
      if (!id.ok()) return id.status();
      PartitionSpec spec;
      spec.item = id.value();
      spec.size = t.partition_bytes;
      spec.iops_share =
          t.iops_weight / weight_sum / static_cast<double>(c.db_enclosures);
      spec.read_ratio = t.read_ratio;
      spec.episodic = t.episodic;
      partitions_.push_back(spec);
      info_.total_data_bytes += t.partition_bytes;
    }
  }

  BuildSources();
  return Status::OK();
}

void OltpWorkload::BuildSources() {
  const OltpConfig& c = config_;
  mixer_.Clear();
  uint64_t salt = 0;

  // Log: steady sequential appends; never pauses (P3 on the log device).
  {
    SteadyRandomSource::Options o;
    o.item = log_item_;
    o.item_size = c.log_bytes;
    o.high_rate = c.log_iops;
    o.low_rate = c.log_iops;
    o.read_ratio = 0.0;
    o.io_size = 16 * 1024;
    o.sequential = true;
    o.end = c.duration;
    o.seed = c.seed * 1000003 + (++salt);
    mixer_.Add(std::make_unique<SteadyRandomSource>(o));
  }

  for (const PartitionSpec& spec : partitions_) {
    uint64_t seed = c.seed * 1000003 + (++salt);
    if (spec.episodic) {
      // Master data served from the DBMS buffer pool; storage sees rare
      // episodic read bursts (cold-start / buffer churn).
      BurstySource::Options o;
      o.item = spec.item;
      o.item_size = spec.size;
      o.episode_interval = 8 * kMinute;
      o.episode_length = 40.0;
      o.intra_gap = 100 * kMillisecond;
      o.read_ratio = spec.read_ratio;
      o.io_size = 8 * 1024;
      o.sequential = false;
      o.end = c.duration;
      o.seed = seed;
      mixer_.Add(std::make_unique<BurstySource>(o));
    } else {
      double avg = c.total_db_iops * spec.iops_share;
      // high phase at burst_factor * avg for a third of the cycle, low
      // phase balancing the average.
      double high = avg * c.burst_factor;
      double low = std::max(0.1, (3.0 * avg - high) / 2.0);
      SteadyRandomSource::Options o;
      o.item = spec.item;
      o.item_size = spec.size;
      o.high_rate = high;
      o.low_rate = low;
      o.high_duration = 20 * kSecond;
      o.low_duration = 40 * kSecond;
      // All busy partitions share one phase (transaction waves hit every
      // table at once), so the aggregate peak - and with it I_max and
      // N_hot - really is burst_factor times the average.
      o.phase_offset = 0;
      o.read_ratio = spec.read_ratio;
      o.io_size = 8 * 1024;
      o.sequential = false;
      o.end = c.duration;
      o.seed = seed;
      mixer_.Add(std::make_unique<SteadyRandomSource>(o));
    }
  }
}

void OltpWorkload::Reset() { BuildSources(); }

}  // namespace ecostore::workload
