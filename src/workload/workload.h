#ifndef ECOSTORE_WORKLOAD_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_WORKLOAD_H_

#include <string>

#include "common/sim_time.h"
#include "storage/data_item.h"
#include "trace/io_record.h"

namespace ecostore::workload {

/// Static facts about a workload (paper Table I).
struct WorkloadInfo {
  std::string name;
  SimDuration duration = 0;
  int num_enclosures = 0;
  /// Descriptive totals for reports.
  int64_t total_data_bytes = 0;
};

/// \brief A deterministic, streamed logical I/O trace generator plus its
/// data-item catalog (our stand-in for the MSR trace files and the TPC-C /
/// TPC-H executions of paper §VI; see DESIGN.md for the substitution
/// rationale).
///
/// Records stream in non-decreasing time order. Reset() rewinds the
/// stream; a reset stream replays the identical records, which is what
/// lets every policy be evaluated against the same workload.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadInfo& info() const = 0;
  virtual const storage::DataItemCatalog& catalog() const = 0;

  /// Produces the next record. Returns false at end of trace (record
  /// untouched). Records with time >= info().duration are suppressed.
  virtual bool Next(trace::LogicalIoRecord* rec) = 0;

  /// Rewinds the stream to time zero with the original seed.
  virtual void Reset() = 0;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_WORKLOAD_H_
