#ifndef ECOSTORE_WORKLOAD_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "storage/data_item.h"
#include "trace/io_record.h"

namespace ecostore::workload {

/// Static facts about a workload (paper Table I).
struct WorkloadInfo {
  std::string name;
  SimDuration duration = 0;
  int num_enclosures = 0;
  /// Descriptive totals for reports.
  int64_t total_data_bytes = 0;
};

/// \brief A deterministic, streamed logical I/O trace generator plus its
/// data-item catalog (our stand-in for the MSR trace files and the TPC-C /
/// TPC-H executions of paper §VI; see DESIGN.md for the substitution
/// rationale).
///
/// Records stream in non-decreasing time order. Reset() rewinds the
/// stream; a reset stream replays the identical records, which is what
/// lets every policy be evaluated against the same workload.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual const WorkloadInfo& info() const = 0;
  virtual const storage::DataItemCatalog& catalog() const = 0;

  /// Produces the next record. Returns false at end of trace (record
  /// untouched). Records with time >= info().duration are suppressed.
  virtual bool Next(trace::LogicalIoRecord* rec) = 0;

  /// Fills `out` with the next up-to-`max_records` records of the stream
  /// (clearing it first) and returns the number appended; 0 means end of
  /// trace. The concatenation of NextBatch() batches is bit-identical to
  /// the Next() stream for any sequence of batch sizes, and both draw
  /// from the same cursor, so they may be interleaved freely.
  ///
  /// The base implementation loops Next(); generators override it with a
  /// real batch fill so the replay hot loop pays one virtual call per
  /// batch instead of one per logical I/O.
  virtual size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                           size_t max_records) {
    out->clear();
    trace::LogicalIoRecord rec;
    while (out->size() < max_records && Next(&rec)) out->push_back(rec);
    return out->size();
  }

  /// Rewinds the stream to time zero with the original seed.
  virtual void Reset() = 0;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_WORKLOAD_H_
