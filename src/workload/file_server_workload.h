#ifndef ECOSTORE_WORKLOAD_FILE_SERVER_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_FILE_SERVER_WORKLOAD_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "workload/io_sources.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// Parameters of the synthetic multi-volume file-server trace (our
/// stand-in for the MSR Cambridge enterprise traces; paper Table I row 1).
struct FileServerConfig {
  SimDuration duration = 6 * kHour;
  int num_enclosures = 12;
  int volumes_per_enclosure = 3;

  /// Continuously busy files (the P3 population). A few huge ones live on
  /// the first enclosure's volumes (most of the P3 bytes, so the hot/cold
  /// split keeps them in place); the rest are small and scattered.
  int big_hot_files = 12;
  int small_hot_files = 88;
  int64_t big_hot_file_bytes = 120LL * 1024 * 1024 * 1024;
  int64_t small_hot_file_bytes = 256LL * 1024 * 1024;
  double hot_rate_high = 4.0;   ///< per-file IOPS, high phase
  double hot_rate_low = 1.5;    ///< per-file IOPS, low phase
  double hot_read_ratio = 0.8;

  /// Episodically accessed files (the P1 population): quiet spans far
  /// beyond the break-even time, with Zipf-skewed episode rates.
  /// Popular episodic files: small, frequently re-read, recurring in
  /// every monitoring period (the preload function's prey — they fit the
  /// 500 MB preload area almost entirely, and without preload their
  /// episodes keep every enclosure awake, which is why PDC and DDR barely
  /// save on the File Server in the paper).
  int popular_files = 250;
  double popular_size_median = 0.8 * 1024 * 1024;
  double popular_size_sigma = 0.8;
  SimDuration popular_interval_min = 90 * kSecond;
  SimDuration popular_interval_max = 4 * kMinute;
  /// One pass over the file per episode: no intra-episode re-reads, so
  /// the shared LRU — thrashed by the hot files' random traffic — cannot
  /// absorb these; only preload pinning does.
  double popular_episode_length = 20.0;
  SimDuration popular_intra_gap = 2 * kSecond;
  double popular_read_ratio = 0.97;
  /// Popularity drift: each popular file is only active for
  /// `popular_active_length` out of every `popular_active_period`
  /// (staggered by rank), so the working set rotates. Coarse 30-minute
  /// PDC epochs chase a stale set; the proposed method's shorter adaptive
  /// periods track it — the paper's central claim.
  SimDuration popular_active_period = 3 * kHour;
  SimDuration popular_active_length = 60 * kMinute;
  /// Fraction of popular files that are write-heavy (the trace's few P2s).
  double popular_write_heavy_fraction = 0.03;

  /// Tail files: touched in rare, volume-clustered activity sessions
  /// (diurnal MSR-like behaviour). Their wakes are the residual cost the
  /// proposed method pays on cold enclosures.
  int tail_files = 650;
  double tail_size_median = 6.0 * 1024 * 1024;
  double tail_size_sigma = 1.2;
  SimDuration tail_interval = 60 * kMinute;
  double tail_episode_length = 6.0;
  SimDuration tail_intra_gap = 2 * kSecond;
  double tail_read_ratio = 0.9;
  /// Adjacent volumes of one enclosure have nearly consecutive windows,
  /// so an enclosure wakes once per session block, not once per volume.
  SimDuration session_period = 40 * kMinute;
  SimDuration session_length = 18 * kMinute;

  /// Rarely touched bulk data. Fills the array (as production file
  /// servers are full), so popularity-packing baselines cannot simply
  /// vacate enclosures, and drives PDC's rank churn.
  int archive_files = 160;
  int64_t archive_file_bytes = 96LL * 1024 * 1024 * 1024;
  SimDuration archive_interval = 8 * kHour;

  /// Per-volume metadata (directory/journal) traffic: short read-mostly
  /// bursts every couple of minutes to an immovable item on each volume.
  /// Keeps every enclosure's gaps below the break-even time unless a
  /// cache absorbs the reads — which only the application-aware preload
  /// can, since the items must stay on their volumes.
  int64_t metadata_item_bytes = 4LL * 1024 * 1024;
  SimDuration metadata_interval = 2 * kMinute;
  double metadata_episode_length = 4.0;
  SimDuration metadata_intra_gap = 500 * kMillisecond;
  double metadata_read_ratio = 0.9;

  uint64_t seed = 42;

  Status Validate() const;
};

/// \brief Synthetic file-server workload: ~90% episodic read-mostly files
/// (P1), ~10% continuously busy files (P3), almost no P2 — the Fig. 6
/// File Server mix.
class FileServerWorkload : public Workload {
 public:
  static Result<std::unique_ptr<FileServerWorkload>> Create(
      const FileServerConfig& config);

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override {
    return mixer_.Next(rec);
  }
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override {
    return mixer_.NextBatch(out, max_records);
  }
  void Reset() override;

 private:
  explicit FileServerWorkload(const FileServerConfig& config)
      : config_(config) {}

  Status Build();
  void BuildSources();
  SimDuration VolumeSessionOffset(DataItemId item) const;

  FileServerConfig config_;
  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  SourceMixer mixer_;

  struct FileSpec {
    DataItemId item;
    int64_t size;
    enum class Role {
      kBigHot,
      kSmallHot,
      kPopular,
      kTail,
      kArchive,
      kMetadata
    } role;
    int rank = 0;  // popularity rank within the role
    bool write_heavy = false;
  };
  std::vector<FileSpec> files_;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_FILE_SERVER_WORKLOAD_H_
