#ifndef ECOSTORE_WORKLOAD_OLTP_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_OLTP_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/io_sources.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// Parameters of the TPC-C-shaped OLTP trace generator (paper Table I
/// row 2: 500 GB, 5000 warehouses, 1000 threads; log on one device, DB
/// hash-distributed over nine).
struct OltpConfig {
  SimDuration duration = static_cast<SimDuration>(1.8 * kHour);
  /// Enclosure 0 carries the log volume; 1..db_enclosures carry the DB.
  int db_enclosures = 9;

  /// Aggregate average IOPS across all DB partitions (scaled by the
  /// per-table weights below). The paper's rig served thousands of IOPS.
  double total_db_iops = 4200.0;
  /// Burstiness: sources alternate high/low phases; peak-to-average of
  /// the aggregate determines I_max and with it N_hot.
  double burst_factor = 1.5;

  /// Log appends.
  double log_iops = 200.0;
  int64_t log_bytes = 2LL * 1024 * 1024 * 1024;

  uint64_t seed = 7;

  Status Validate() const;
};

/// \brief Synthetic TPC-C-style workload: per-table partitions hash-
/// distributed over the DB enclosures. Busy tables (stock, customer,
/// order_line, ...) give the ~76% P3 item mix of Fig. 6; the read-only
/// item and warehouse partitions are episodic (P1).
class OltpWorkload : public Workload {
 public:
  static Result<std::unique_ptr<OltpWorkload>> Create(
      const OltpConfig& config);

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override {
    return mixer_.Next(rec);
  }
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override {
    return mixer_.NextBatch(out, max_records);
  }
  void Reset() override;

  /// Transaction throughput measured for the paper's scaling model
  /// (paper §VII-A.5): the no-power-saving reference, in tpmC.
  static constexpr double kBaselineTpmC = 1859.0;

 private:
  explicit OltpWorkload(const OltpConfig& config) : config_(config) {}

  Status Build();
  void BuildSources();

  struct PartitionSpec {
    DataItemId item;
    int64_t size;
    double iops_share;   ///< fraction of total_db_iops
    double read_ratio;
    bool episodic;       ///< P1-style table (item / warehouse)
  };

  OltpConfig config_;
  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  SourceMixer mixer_;
  std::vector<PartitionSpec> partitions_;
  DataItemId log_item_ = kInvalidDataItem;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_OLTP_WORKLOAD_H_
