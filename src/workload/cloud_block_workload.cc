#include "workload/cloud_block_workload.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace ecostore::workload {

Status CloudBlockConfig::Validate() const {
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  if (num_enclosures < 2) {
    return Status::InvalidArgument("need at least 2 enclosures");
  }
  if (volumes_per_enclosure < 1 || items_per_volume < 1) {
    return Status::InvalidArgument(
        "need at least 1 volume per enclosure and 1 item per volume");
  }
  if (hot_volume_fraction < 0 || bursty_write_fraction < 0 ||
      read_burst_fraction < 0 ||
      hot_volume_fraction + bursty_write_fraction + read_burst_fraction >
          1.0) {
    return Status::InvalidArgument(
        "role fractions must be non-negative and sum to <= 1");
  }
  if (zipf_theta < 0) {
    return Status::InvalidArgument("zipf_theta must be non-negative");
  }
  if (hot_volume_iops <= 0 || hot_volume_iops_floor <= 0 ||
      hot_burst_ratio < 1.0) {
    return Status::InvalidArgument("invalid hot-volume rate parameters");
  }
  if (bursty_interval_head <= 0 ||
      bursty_interval_tail < bursty_interval_head || read_interval_head <= 0 ||
      read_interval_tail < read_interval_head || idle_interval <= 0) {
    return Status::InvalidArgument("invalid episode intervals");
  }
  if (item_size_median <= 0 || item_size_sigma < 0 || min_item_bytes <= 0 ||
      max_item_bytes < min_item_bytes) {
    return Status::InvalidArgument("invalid item size distribution");
  }
  return Status::OK();
}

Result<std::unique_ptr<CloudBlockWorkload>> CloudBlockWorkload::Create(
    const CloudBlockConfig& config) {
  ECOSTORE_RETURN_NOT_OK(config.Validate());
  std::unique_ptr<CloudBlockWorkload> workload(
      new CloudBlockWorkload(config));
  ECOSTORE_RETURN_NOT_OK(workload->Build());
  return workload;
}

Status CloudBlockWorkload::Build() {
  const CloudBlockConfig& c = config_;
  info_.name = "cloud_block";
  info_.duration = c.duration;
  info_.num_enclosures = c.num_enclosures;

  const int num_volumes = c.num_enclosures * c.volumes_per_enclosure;
  hot_volumes_ = static_cast<int>(
      std::llround(c.hot_volume_fraction * num_volumes));
  bursty_volumes_ = static_cast<int>(
      std::llround(c.bursty_write_fraction * num_volumes));
  read_volumes_ = static_cast<int>(
      std::llround(c.read_burst_fraction * num_volumes));
  // At least one continuously-hot volume, or there is no P3 population at
  // all and the placement has nothing to consolidate.
  hot_volumes_ = std::max(hot_volumes_, 1);
  idle_volumes_ =
      std::max(num_volumes - hot_volumes_ - bursty_volumes_ - read_volumes_,
               0);
  bursty_volumes_ =
      std::min(bursty_volumes_, num_volumes - hot_volumes_);
  read_volumes_ = std::min(
      read_volumes_, num_volumes - hot_volumes_ - bursty_volumes_);

  Xoshiro256 rng(c.seed);

  // Popularity ranks scatter over the fleet via a Fisher-Yates shuffle:
  // rank_of[v] is volume v's global popularity rank. Without the shuffle
  // all hot volumes would sit on the first enclosures and the planner
  // would have nothing to do.
  std::vector<int> rank_of(static_cast<size_t>(num_volumes));
  for (int v = 0; v < num_volumes; ++v) rank_of[static_cast<size_t>(v)] = v;
  for (int v = num_volumes - 1; v > 0; --v) {
    auto u = static_cast<size_t>(rng.UniformInt(0, v));
    std::swap(rank_of[static_cast<size_t>(v)], rank_of[u]);
  }

  segments_.reserve(static_cast<size_t>(num_volumes) *
                    static_cast<size_t>(c.items_per_volume));
  for (int v = 0; v < num_volumes; ++v) {
    VolumeId vol = catalog_.AddVolume(
        static_cast<EnclosureId>(v / c.volumes_per_enclosure));
    const int rank = rank_of[static_cast<size_t>(v)];
    Role role;
    if (rank < hot_volumes_) {
      role = Role::kHot;
    } else if (rank < hot_volumes_ + bursty_volumes_) {
      role = Role::kBurstyWrite;
    } else if (rank < hot_volumes_ + bursty_volumes_ + read_volumes_) {
      role = Role::kReadBurst;
    } else {
      role = Role::kIdle;
    }
    for (int s = 0; s < c.items_per_volume; ++s) {
      auto size = static_cast<int64_t>(
          rng.LogNormal(c.item_size_median, c.item_size_sigma));
      size = std::clamp(size, c.min_item_bytes, c.max_item_bytes);
      Result<DataItemId> id = catalog_.AddItem(
          "vol" + std::to_string(v) + "_seg" + std::to_string(s), vol, size,
          storage::DataItemKind::kFile, /*pinned=*/false);
      if (!id.ok()) return id.status();
      SegmentSpec spec;
      spec.item = id.value();
      spec.size = size;
      spec.role = role;
      spec.rank = rank;
      segments_.push_back(spec);
      info_.total_data_bytes += size;
    }
  }

  BuildSources();
  return Status::OK();
}

void CloudBlockWorkload::BuildSources() {
  const CloudBlockConfig& c = config_;
  mixer_.Clear();
  uint64_t salt = 0;
  const double per_item = 1.0 / static_cast<double>(c.items_per_volume);
  for (const SegmentSpec& spec : segments_) {
    uint64_t seed = c.seed * 1000003 + (++salt);
    switch (spec.role) {
      case Role::kHot: {
        // Zipf-decayed volume rate, floored so the tail of the hot set
        // stays continuously busy (inter-arrival << break-even → P3),
        // split evenly over the volume's segments.
        double weight =
            std::pow(static_cast<double>(spec.rank + 1), -c.zipf_theta);
        double vol_rate =
            std::max(c.hot_volume_iops * weight, c.hot_volume_iops_floor);
        SteadyRandomSource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.low_rate = vol_rate * per_item;
        o.high_rate = o.low_rate * c.hot_burst_ratio;
        o.high_duration = c.hot_high_duration;
        o.low_duration = c.hot_low_duration;
        o.phase_offset = static_cast<SimTime>(salt) * 11 * kSecond;
        o.read_ratio = c.hot_read_ratio;
        o.io_size = 16 * 1024;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<SteadyRandomSource>(o));
        break;
      }
      case Role::kBurstyWrite: {
        // Episode gap grows with popularity rank across the bursty band;
        // per-item interval is the volume interval times items_per_volume
        // so the volume-level episode rate matches the calibration.
        double frac =
            bursty_volumes_ > 1
                ? static_cast<double>(spec.rank - hot_volumes_) /
                      static_cast<double>(bursty_volumes_ - 1)
                : 0.0;
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = static_cast<SimDuration>(
            (static_cast<double>(c.bursty_interval_head) +
             frac * static_cast<double>(c.bursty_interval_tail -
                                        c.bursty_interval_head)) *
            static_cast<double>(c.items_per_volume));
        o.episode_length = c.bursty_episode_length;
        o.intra_gap = c.bursty_intra_gap;
        o.read_ratio = c.bursty_read_ratio;
        o.io_size = 64 * 1024;
        o.sequential = true;
        o.cap_episode_to_item_size = true;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
      case Role::kReadBurst: {
        double frac =
            read_volumes_ > 1
                ? static_cast<double>(spec.rank - hot_volumes_ -
                                      bursty_volumes_) /
                      static_cast<double>(read_volumes_ - 1)
                : 0.0;
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = static_cast<SimDuration>(
            (static_cast<double>(c.read_interval_head) +
             frac * static_cast<double>(c.read_interval_tail -
                                        c.read_interval_head)) *
            static_cast<double>(c.items_per_volume));
        o.episode_length = c.read_episode_length;
        o.intra_gap = c.read_intra_gap;
        o.read_ratio = c.read_read_ratio;
        o.io_size = 128 * 1024;
        o.sequential = true;
        o.cap_episode_to_item_size = true;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
      case Role::kIdle: {
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = static_cast<SimDuration>(
            static_cast<double>(c.idle_interval) *
            static_cast<double>(c.items_per_volume));
        o.episode_length = c.idle_episode_length;
        o.intra_gap = c.idle_intra_gap;
        o.read_ratio = c.idle_read_ratio;
        o.io_size = 32 * 1024;
        o.sequential = true;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
    }
  }
}

void CloudBlockWorkload::Reset() { BuildSources(); }

}  // namespace ecostore::workload
