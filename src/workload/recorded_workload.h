#ifndef ECOSTORE_WORKLOAD_RECORDED_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_RECORDED_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// \brief A workload backed by a captured logical I/O trace — the paper's
/// actual methodology (§VII-A.2): traces are recorded once, then replayed
/// identically under every power-saving method.
///
/// Construct from in-memory records, or load a (catalog.csv, trace.csv)
/// pair written by Save(). Records must be in non-decreasing time order
/// and reference catalog items.
class RecordedWorkload : public Workload {
 public:
  /// Builds from in-memory parts. `records` must be time-ordered.
  /// `num_enclosures` 0 derives it from the catalog's volume mapping.
  static Result<std::unique_ptr<RecordedWorkload>> FromRecords(
      std::string name, storage::DataItemCatalog catalog,
      std::vector<trace::LogicalIoRecord> records,
      SimDuration duration = 0, int num_enclosures = 0);

  /// Loads `<prefix>.catalog.csv` + `<prefix>.trace.csv`.
  static Result<std::unique_ptr<RecordedWorkload>> Load(
      const std::string& prefix);

  /// Captures another workload's full stream into a RecordedWorkload.
  static Result<std::unique_ptr<RecordedWorkload>> Capture(
      Workload* source);

  /// Writes `<prefix>.catalog.csv` + `<prefix>.trace.csv`.
  Status Save(const std::string& prefix) const;

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override;
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override;
  void Reset() override { cursor_ = 0; }

  const std::vector<trace::LogicalIoRecord>& records() const {
    return records_;
  }

 private:
  RecordedWorkload() = default;

  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  std::vector<trace::LogicalIoRecord> records_;
  size_t cursor_ = 0;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_RECORDED_WORKLOAD_H_
