#ifndef ECOSTORE_WORKLOAD_COMPOSITE_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_COMPOSITE_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// \brief Runs several applications against one consolidated array — the
/// datacenter situation the paper's introduction motivates ("Many
/// applications run at datacenters today. I/O behaviors of applications
/// are quite different in different applications.").
///
/// Each child workload keeps its own enclosures: child k's enclosure e
/// maps to array enclosure (offset_k + e). Volumes, items and records are
/// re-based accordingly; the merged trace interleaves children in time
/// order. The composite's duration is the longest child's.
class CompositeWorkload : public Workload {
 public:
  /// Takes ownership of the children. Requires at least one.
  static Result<std::unique_ptr<CompositeWorkload>> Create(
      std::string name,
      std::vector<std::unique_ptr<Workload>> children);

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override;
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override;
  void Reset() override;

  /// Array enclosure that child `k`'s enclosure 0 maps to.
  EnclosureId enclosure_offset(size_t k) const {
    return enclosure_offsets_.at(k);
  }
  /// Composite item id of child `k`'s item 0.
  DataItemId item_offset(size_t k) const { return item_offsets_.at(k); }
  size_t child_count() const { return children_.size(); }

 private:
  CompositeWorkload() = default;

  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  std::vector<std::unique_ptr<Workload>> children_;
  std::vector<EnclosureId> enclosure_offsets_;
  std::vector<DataItemId> item_offsets_;

  // Merge state: a buffered lookahead batch per child (records already
  // re-based into composite item ids). Next() and NextBatch() both pop
  // from these buffers, so the two APIs share one stream cursor.
  struct Pending {
    std::vector<trace::LogicalIoRecord> buf;
    size_t pos = 0;

    bool empty() const { return pos >= buf.size(); }
    const trace::LogicalIoRecord& front() const { return buf[pos]; }
  };
  std::vector<Pending> pending_;

  /// Pulls the next child batch into pending_[k] (no-op while records
  /// remain buffered). Returns false when child k is exhausted.
  bool Refill(size_t k);

  /// Index of the child holding the earliest pending record (ties break
  /// toward the lowest child index), or -1 when all are exhausted.
  int EarliestChild();
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_COMPOSITE_WORKLOAD_H_
