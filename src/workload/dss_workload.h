#ifndef ECOSTORE_WORKLOAD_DSS_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_DSS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "workload/io_sources.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// Parameters of the TPC-H-shaped DSS trace generator (paper Table I row
/// 3: SF=100, Q1..Q22 run sequentially; log and work files on one device,
/// DB hash-distributed over eight).
struct DssConfig {
  SimDuration duration = 6 * kHour;
  /// Enclosure 0 carries log + work files; 1..db_enclosures the DB.
  int db_enclosures = 8;

  /// Scale of the database: multiplies every table's footprint. 1.0 gives
  /// an SF-100-like ~450 GB database.
  double scale = 1.0;

  /// Sequential scan throughput per enclosure used to lay out scan
  /// phases (bytes/second). Kept below the enclosures' sequential service
  /// rate (~175 MB/s) so spin-up backlogs drain instead of snowballing.
  double scan_bandwidth = 120.0 * 1024 * 1024;

  /// Work files spilled by sort/join queries.
  int work_files = 39;
  int64_t work_file_bytes = 2LL * 1024 * 1024 * 1024;

  uint64_t seed = 21;

  Status Validate() const;
};

/// \brief Synthetic TPC-H-style workload: 22 queries executed back to
/// back, each scanning its footprint tables sequentially across all DB
/// enclosures, then "computing" (no I/O) for the rest of its wall time,
/// with sort/join spills to work files on the work enclosure. Yields the
/// Fig. 6 DSS mix: ~61% P1 (table partitions), ~38% P2 (work files +
/// log), no P3 over a full run.
class DssWorkload : public Workload {
 public:
  static Result<std::unique_ptr<DssWorkload>> Create(const DssConfig& config);

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override {
    return mixer_.Next(rec);
  }
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override {
    return mixer_.NextBatch(out, max_records);
  }
  void Reset() override;

  /// Per-query wall times of the no-power-saving reference (seconds),
  /// indexed by query number 1..22; used by the paper's query-response
  /// scaling model (§VII-A.5).
  const std::vector<double>& query_wall_seconds() const {
    return query_wall_seconds_;
  }

  /// Number of queries (22).
  static constexpr int kNumQueries = 22;

 private:
  explicit DssWorkload(const DssConfig& config) : config_(config) {}

  Status Build();
  void BuildSources();

  DssConfig config_;
  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  SourceMixer mixer_;

  // item -> scripted phases, rebuilt identically on every Reset().
  std::vector<std::pair<DataItemId, std::vector<Phase>>> scripts_;
  std::vector<int64_t> item_sizes_;
  std::vector<double> query_wall_seconds_;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_DSS_WORKLOAD_H_
