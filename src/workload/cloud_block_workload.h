#ifndef ECOSTORE_WORKLOAD_CLOUD_BLOCK_WORKLOAD_H_
#define ECOSTORE_WORKLOAD_CLOUD_BLOCK_WORKLOAD_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "workload/io_sources.h"
#include "workload/workload.h"

namespace ecostore::workload {

/// Parameters of the synthetic cloud block-storage trace, calibrated to
/// the published analysis of Alibaba's production block traces (PAPERS.md,
/// arXiv 2203.10766): volumes are write-dominant overall, per-volume load
/// is extremely heavy-tailed (a few percent of volumes carry most of the
/// I/O), and arrivals are bursty rather than steady. This is the
/// fleet-scale stand-in the 2012 paper never saw — it stresses the
/// P2/write-delay paths and the planner's scaling, not the MSR-shaped
/// P1/preload mix.
struct CloudBlockConfig {
  SimDuration duration = 2 * kHour;

  /// Fleet shape: `volumes_per_enclosure` tenant volumes per enclosure,
  /// each striped into `items_per_volume` catalog items (block segments —
  /// the placement granularity). Defaults give a mid-size array; the
  /// fleet benchmark raises num_enclosures to 10k for 1M items.
  int num_enclosures = 25;
  int volumes_per_enclosure = 10;
  int items_per_volume = 4;

  /// Volume population mix, as fractions of all volumes, assigned down
  /// the popularity ranking (head first):
  /// - hot: continuously active, write-dominant (the P3 head; ~4% of
  ///   volumes carrying most of the load — the Alibaba imbalance).
  /// - bursty writers: episodic write bursts with minutes-scale gaps
  ///   (classify P2; the write-delay function's prey).
  /// - read burst: episodic, read-mostly (classify P1; preload prey).
  /// - remainder: near-idle volumes with rare mixed episodes.
  double hot_volume_fraction = 0.04;
  double bursty_write_fraction = 0.26;
  double read_burst_fraction = 0.10;

  /// Popularity skew across volumes (weight ~ 1/rank^theta). 0.99 is the
  /// classical storage-popularity setting; raise toward 1.2 for the
  /// extreme imbalance of the Alibaba tail.
  double zipf_theta = 0.99;

  /// Hot-volume aggregate IOPS: rank-0 volume rate, decayed by the Zipf
  /// weight but floored so every hot volume stays continuously busy
  /// (gap << break-even, i.e. genuinely P3).
  double hot_volume_iops = 3.0;
  double hot_volume_iops_floor = 1.2;
  /// Two-phase burst modulation of hot volumes (high phase = `burst_ratio`
  /// times the base rate).
  double hot_burst_ratio = 2.5;
  SimDuration hot_high_duration = 30 * kSecond;
  SimDuration hot_low_duration = 90 * kSecond;
  double hot_read_ratio = 0.25;  ///< write-dominant

  /// Bursty-writer episodes, per volume (scaled to per-item sources).
  SimDuration bursty_interval_head = 4 * kMinute;
  SimDuration bursty_interval_tail = 25 * kMinute;
  double bursty_episode_length = 30.0;
  SimDuration bursty_intra_gap = 800 * kMillisecond;
  double bursty_read_ratio = 0.12;

  /// Read-burst volumes.
  SimDuration read_interval_head = 3 * kMinute;
  SimDuration read_interval_tail = 15 * kMinute;
  double read_episode_length = 25.0;
  SimDuration read_intra_gap = 500 * kMillisecond;
  double read_read_ratio = 0.95;

  /// Idle-volume residual activity.
  SimDuration idle_interval = 4 * kHour;
  double idle_episode_length = 10.0;
  SimDuration idle_intra_gap = 2 * kSecond;
  double idle_read_ratio = 0.5;

  /// Per-item (segment) size: log-normal, clamped to
  /// [min_item_bytes, max_item_bytes].
  double item_size_median = 3.0 * 1024 * 1024 * 1024;
  double item_size_sigma = 0.9;
  int64_t min_item_bytes = 256LL * 1024 * 1024;
  int64_t max_item_bytes = 24LL * 1024 * 1024 * 1024;

  uint64_t seed = 20220331;  ///< the Alibaba trace-window vintage

  Status Validate() const;
};

/// \brief Synthetic cloud block-storage workload: a heavy-tailed,
/// write-dominant, bursty volume population (see CloudBlockConfig).
///
/// Every volume gets a popularity rank from a deterministic shuffle, so
/// hot volumes scatter across enclosures instead of clustering on the
/// first ones — the placement planner has to consolidate them, which is
/// exactly the Algorithm 2/3 load the fleet benchmark measures.
class CloudBlockWorkload : public Workload {
 public:
  static Result<std::unique_ptr<CloudBlockWorkload>> Create(
      const CloudBlockConfig& config);

  const WorkloadInfo& info() const override { return info_; }
  const storage::DataItemCatalog& catalog() const override {
    return catalog_;
  }
  bool Next(trace::LogicalIoRecord* rec) override {
    return mixer_.Next(rec);
  }
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records) override {
    return mixer_.NextBatch(out, max_records);
  }
  void Reset() override;

  /// Number of volumes in each role (inspection/testing).
  int hot_volumes() const { return hot_volumes_; }
  int bursty_volumes() const { return bursty_volumes_; }
  int read_volumes() const { return read_volumes_; }
  int idle_volumes() const { return idle_volumes_; }

 private:
  explicit CloudBlockWorkload(const CloudBlockConfig& config)
      : config_(config) {}

  Status Build();
  void BuildSources();

  CloudBlockConfig config_;
  WorkloadInfo info_;
  storage::DataItemCatalog catalog_;
  SourceMixer mixer_;

  enum class Role : uint8_t { kHot, kBurstyWrite, kReadBurst, kIdle };

  struct SegmentSpec {
    DataItemId item;
    int64_t size;
    Role role;
    int rank;  ///< popularity rank of the owning volume (0 = hottest)
  };
  std::vector<SegmentSpec> segments_;
  int hot_volumes_ = 0;
  int bursty_volumes_ = 0;
  int read_volumes_ = 0;
  int idle_volumes_ = 0;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_CLOUD_BLOCK_WORKLOAD_H_
