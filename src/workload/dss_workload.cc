#include "workload/dss_workload.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace ecostore::workload {

namespace {

enum Table : int {
  kLineitem = 0,
  kOrders,
  kPartsupp,
  kPart,
  kCustomer,
  kSupplier,
  kNation,
  kRegion,
  kNumTables
};

const char* kTableNames[kNumTables] = {
    "lineitem", "orders", "partsupp", "part",
    "customer", "supplier", "nation", "region"};

/// Total table footprints at scale 1.0 (SF-100-like).
const int64_t kTableBytes[kNumTables] = {
    300LL * kGiB, 75LL * kGiB, 42LL * kGiB, 12LL * kGiB,
    10LL * kGiB,  2LL * kGiB,  16LL * kMiB, 16LL * kMiB};

/// Which tables each of Q1..Q22 scans (classic TPC-H footprints,
/// simplified). Bit i set = table i scanned.
constexpr uint32_t Bit(Table t) { return 1u << t; }

const uint32_t kQueryFootprint[22] = {
    /*Q1*/ Bit(kLineitem),
    /*Q2*/ Bit(kPart) | Bit(kPartsupp) | Bit(kSupplier) | Bit(kNation) |
        Bit(kRegion),
    /*Q3*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem),
    /*Q4*/ Bit(kOrders) | Bit(kLineitem),
    /*Q5*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem) | Bit(kSupplier) |
        Bit(kNation) | Bit(kRegion),
    /*Q6*/ Bit(kLineitem),
    /*Q7*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem) | Bit(kSupplier) |
        Bit(kNation),
    /*Q8*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem) | Bit(kPart) |
        Bit(kSupplier) | Bit(kNation) | Bit(kRegion),
    /*Q9*/ Bit(kOrders) | Bit(kLineitem) | Bit(kPart) | Bit(kPartsupp) |
        Bit(kSupplier) | Bit(kNation),
    /*Q10*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem) | Bit(kNation),
    /*Q11*/ Bit(kPartsupp) | Bit(kSupplier) | Bit(kNation),
    /*Q12*/ Bit(kOrders) | Bit(kLineitem),
    /*Q13*/ Bit(kCustomer) | Bit(kOrders),
    /*Q14*/ Bit(kLineitem) | Bit(kPart),
    /*Q15*/ Bit(kLineitem) | Bit(kSupplier),
    /*Q16*/ Bit(kPart) | Bit(kPartsupp) | Bit(kSupplier),
    /*Q17*/ Bit(kLineitem) | Bit(kPart),
    /*Q18*/ Bit(kCustomer) | Bit(kOrders) | Bit(kLineitem),
    /*Q19*/ Bit(kLineitem) | Bit(kPart),
    /*Q20*/ Bit(kLineitem) | Bit(kPart) | Bit(kPartsupp) | Bit(kSupplier) |
        Bit(kNation),
    /*Q21*/ Bit(kOrders) | Bit(kLineitem) | Bit(kSupplier) | Bit(kNation),
    /*Q22*/ Bit(kCustomer) | Bit(kOrders),
};

/// Queries that spill sort/join work files.
const bool kQuerySpills[22] = {
    true,  false, true,  false, true,  false, true,  true,
    true,  true,  false, false, true,  false, false, false,
    true,  true,  false, true,  true,  false,
};

constexpr int32_t kScanIoBytes = 1 << 20;  // 1 MiB sequential records

}  // namespace

Status DssConfig::Validate() const {
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  if (db_enclosures < 1) {
    return Status::InvalidArgument("need at least one DB enclosure");
  }
  if (scale <= 0) return Status::InvalidArgument("scale must be > 0");
  if (scan_bandwidth <= 0) {
    return Status::InvalidArgument("scan bandwidth must be > 0");
  }
  if (work_files < 1) {
    return Status::InvalidArgument("need at least one work file");
  }
  return Status::OK();
}

Result<std::unique_ptr<DssWorkload>> DssWorkload::Create(
    const DssConfig& config) {
  ECOSTORE_RETURN_NOT_OK(config.Validate());
  std::unique_ptr<DssWorkload> workload(new DssWorkload(config));
  ECOSTORE_RETURN_NOT_OK(workload->Build());
  return workload;
}

Status DssWorkload::Build() {
  const DssConfig& c = config_;
  info_.name = "dss_tpch";
  info_.duration = c.duration;
  info_.num_enclosures = c.db_enclosures + 1;

  VolumeId work_volume = catalog_.AddVolume(0);
  std::vector<VolumeId> db_volumes;
  for (int e = 1; e <= c.db_enclosures; ++e) {
    db_volumes.push_back(catalog_.AddVolume(static_cast<EnclosureId>(e)));
  }

  // Table partitions: table t, partition p -> item index t*P + p.
  std::vector<std::vector<DataItemId>> table_items(kNumTables);
  for (int t = 0; t < kNumTables; ++t) {
    int64_t part_bytes = std::max<int64_t>(
        static_cast<int64_t>(static_cast<double>(kTableBytes[t]) * c.scale) /
            c.db_enclosures,
        kScanIoBytes);
    for (int p = 0; p < c.db_enclosures; ++p) {
      Result<DataItemId> id = catalog_.AddItem(
          std::string(kTableNames[t]) + "_p" + std::to_string(p),
          db_volumes[static_cast<size_t>(p)], part_bytes,
          storage::DataItemKind::kTable);
      if (!id.ok()) return id.status();
      table_items[static_cast<size_t>(t)].push_back(id.value());
      info_.total_data_bytes += part_bytes;
    }
  }

  // Work files + log on the work volume.
  std::vector<DataItemId> work_items;
  for (int w = 0; w < c.work_files; ++w) {
    Result<DataItemId> id = catalog_.AddItem(
        "workfile_" + std::to_string(w), work_volume, c.work_file_bytes,
        storage::DataItemKind::kWorkFile);
    if (!id.ok()) return id.status();
    work_items.push_back(id.value());
    info_.total_data_bytes += c.work_file_bytes;
  }
  Result<DataItemId> log_id = catalog_.AddItem(
      "dbms_log", work_volume, 4LL * kGiB, storage::DataItemKind::kLog);
  if (!log_id.ok()) return log_id.status();
  DataItemId log_item = log_id.value();
  info_.total_data_bytes += 4LL * kGiB;

  item_sizes_.resize(catalog_.item_count());
  for (const storage::DataItem& item : catalog_.items()) {
    item_sizes_[static_cast<size_t>(item.id)] = item.size_bytes;
  }

  // --- Lay out the query schedule -----------------------------------------
  // Scan time of query q = max over its tables of partition scan time (the
  // partitions scan in parallel, tables sequentially within the query).
  // Wall time = compute_stretch * (sum of its tables' scan times), chosen
  // so the 22 queries fill `duration`.
  double total_scan_seconds = 0.0;
  std::vector<double> scan_seconds(kNumQueries, 0.0);
  for (int q = 0; q < kNumQueries; ++q) {
    for (int t = 0; t < kNumTables; ++t) {
      if ((kQueryFootprint[q] & Bit(static_cast<Table>(t))) == 0) continue;
      int64_t part_bytes =
          item_sizes_[static_cast<size_t>(table_items[static_cast<size_t>(t)]
                                              .front())];
      scan_seconds[static_cast<size_t>(q)] +=
          static_cast<double>(part_bytes) / c.scan_bandwidth;
    }
    total_scan_seconds += scan_seconds[static_cast<size_t>(q)];
  }
  double stretch =
      std::max(1.2, ToSeconds(c.duration) / std::max(total_scan_seconds, 1.0));

  scripts_.assign(catalog_.item_count(), {});
  for (size_t i = 0; i < scripts_.size(); ++i) {
    scripts_[i].first = static_cast<DataItemId>(i);
  }
  query_wall_seconds_.assign(kNumQueries + 1, 0.0);

  SimTime clock = 0;
  int next_work = 0;
  for (int q = 0; q < kNumQueries; ++q) {
    SimTime query_start = clock;
    double wall = scan_seconds[static_cast<size_t>(q)] * stretch;
    query_wall_seconds_[static_cast<size_t>(q) + 1] = wall;

    // Tables scan one after another at the head of the query.
    SimTime phase_start = query_start;
    for (int t = 0; t < kNumTables; ++t) {
      if ((kQueryFootprint[q] & Bit(static_cast<Table>(t))) == 0) continue;
      for (DataItemId item : table_items[static_cast<size_t>(t)]) {
        int64_t part_bytes = item_sizes_[static_cast<size_t>(item)];
        Phase phase;
        phase.start = phase_start;
        phase.n_ios = std::max<int64_t>(part_bytes / kScanIoBytes, 1);
        phase.gap = static_cast<SimDuration>(
            static_cast<double>(kScanIoBytes) / c.scan_bandwidth *
            static_cast<double>(kSecond));
        phase.io_size = kScanIoBytes;
        phase.type = IoType::kRead;
        phase.sequential = true;
        phase.tag = q + 1;
        scripts_[static_cast<size_t>(item)].second.push_back(phase);
      }
      int64_t part_bytes = item_sizes_[static_cast<size_t>(
          table_items[static_cast<size_t>(t)].front())];
      phase_start += FromSeconds(static_cast<double>(part_bytes) /
                                 c.scan_bandwidth);
    }

    // Spilling queries write sort/join runs to three work files after the
    // scans and re-read them midway through the compute span. Three files
    // per spill means all 39 work files see I/O over the 13 spilling
    // queries (the paper's Fig. 6 has no untouched items).
    if (kQuerySpills[q]) {
      int64_t spill_bytes = std::min<int64_t>(
          c.work_file_bytes,
          static_cast<int64_t>(
              0.05 * static_cast<double>(info_.total_data_bytes) /
              kNumQueries));
      spill_bytes = std::max<int64_t>(spill_bytes, 64LL * kMiB);
      SimDuration io_gap = static_cast<SimDuration>(
          static_cast<double>(kScanIoBytes) / c.scan_bandwidth *
          static_cast<double>(kSecond));
      const int kSpillFiles = 3;
      for (int s = 0; s < kSpillFiles; ++s) {
        DataItemId wf = work_items[static_cast<size_t>(next_work++) %
                                   work_items.size()];
        int64_t n_ios = std::max<int64_t>(
            spill_bytes / kSpillFiles / kScanIoBytes, 1);

        Phase write_phase;
        write_phase.start = phase_start + s * io_gap;
        write_phase.n_ios = n_ios;
        write_phase.gap = io_gap * kSpillFiles;
        write_phase.io_size = kScanIoBytes;
        write_phase.type = IoType::kWrite;
        write_phase.sequential = true;
        write_phase.tag = q + 1;
        scripts_[static_cast<size_t>(wf)].second.push_back(write_phase);

        Phase read_phase = write_phase;
        SimTime write_end =
            write_phase.start + write_phase.n_ios * write_phase.gap;
        read_phase.start = std::max(query_start + FromSeconds(wall * 0.7),
                                    write_end + 1 * kSecond) + s * io_gap;
        read_phase.type = IoType::kRead;
        // The merge pass reads back roughly half of the spill.
        read_phase.n_ios = std::max<int64_t>(n_ios / 2, 1);
        scripts_[static_cast<size_t>(wf)].second.push_back(read_phase);
      }
    }

    clock = query_start + FromSeconds(wall);
  }

  // Sparse checkpoint writes to the DBMS log: one small burst per query.
  {
    std::vector<Phase>& log_phases =
        scripts_[static_cast<size_t>(log_item)].second;
    SimTime t = 0;
    for (int q = 0; q < kNumQueries; ++q) {
      double wall = query_wall_seconds_[static_cast<size_t>(q) + 1];
      Phase phase;
      phase.start = t + FromSeconds(wall * 0.9);
      phase.n_ios = 32;
      phase.gap = 5 * kMillisecond;
      phase.io_size = 256 * 1024;
      phase.type = IoType::kWrite;
      phase.sequential = true;
      phase.tag = q + 1;
      log_phases.push_back(phase);
      t += FromSeconds(wall);
    }
  }

  // Clamp every phase into the configured duration.
  for (auto& [item, phases] : scripts_) {
    (void)item;
    phases.erase(std::remove_if(phases.begin(), phases.end(),
                                [&](const Phase& p) {
                                  return p.start >= c.duration;
                                }),
                 phases.end());
  }

  BuildSources();
  return Status::OK();
}

void DssWorkload::BuildSources() {
  mixer_.Clear();
  for (const auto& [item, phases] : scripts_) {
    if (phases.empty()) continue;
    mixer_.Add(std::make_unique<PhasedSource>(
        item, item_sizes_[static_cast<size_t>(item)], phases));
  }
}

void DssWorkload::Reset() { BuildSources(); }

}  // namespace ecostore::workload
