#include "workload/file_server_workload.h"

#include <algorithm>
#include <cmath>

namespace ecostore::workload {

Status FileServerConfig::Validate() const {
  if (duration <= 0) return Status::InvalidArgument("duration must be > 0");
  if (num_enclosures < 2) {
    return Status::InvalidArgument("need at least 2 enclosures");
  }
  if (volumes_per_enclosure < 1) {
    return Status::InvalidArgument("need at least 1 volume per enclosure");
  }
  if (big_hot_files < 0 || small_hot_files < 0 || popular_files <= 0 ||
      tail_files < 0 || archive_files < 0) {
    return Status::InvalidArgument("file counts must be non-negative");
  }
  if (popular_size_median <= 0 || popular_size_sigma < 0 ||
      tail_size_median <= 0 || tail_size_sigma < 0) {
    return Status::InvalidArgument("invalid file size distribution");
  }
  if (popular_interval_min <= 0 ||
      popular_interval_max < popular_interval_min) {
    return Status::InvalidArgument("invalid popular episode intervals");
  }
  return Status::OK();
}

Result<std::unique_ptr<FileServerWorkload>> FileServerWorkload::Create(
    const FileServerConfig& config) {
  ECOSTORE_RETURN_NOT_OK(config.Validate());
  std::unique_ptr<FileServerWorkload> workload(
      new FileServerWorkload(config));
  ECOSTORE_RETURN_NOT_OK(workload->Build());
  return workload;
}

Status FileServerWorkload::Build() {
  const FileServerConfig& c = config_;
  info_.name = "file_server";
  info_.duration = c.duration;
  info_.num_enclosures = c.num_enclosures;

  // Volumes: volumes_per_enclosure per enclosure, in enclosure order.
  int num_volumes = c.num_enclosures * c.volumes_per_enclosure;
  std::vector<VolumeId> volumes;
  for (int v = 0; v < num_volumes; ++v) {
    volumes.push_back(catalog_.AddVolume(
        static_cast<EnclosureId>(v / c.volumes_per_enclosure)));
  }
  // Volumes on the first enclosure host the big hot files; the remainder
  // rotate over all other volumes.
  std::vector<VolumeId> first_enc_volumes(
      volumes.begin(), volumes.begin() + c.volumes_per_enclosure);
  std::vector<VolumeId> other_volumes(
      volumes.begin() + c.volumes_per_enclosure, volumes.end());

  Xoshiro256 rng(c.seed);
  auto add_file = [&](const std::string& name, VolumeId vol, int64_t size,
                      FileSpec::Role role) -> Status {
    bool metadata = role == FileSpec::Role::kMetadata;
    Result<DataItemId> id = catalog_.AddItem(
        name, vol, size,
        metadata ? storage::DataItemKind::kIndex
                 : storage::DataItemKind::kFile,
        /*pinned=*/metadata);
    if (!id.ok()) return id.status();
    FileSpec spec;
    spec.item = id.value();
    spec.size = size;
    spec.role = role;
    files_.push_back(spec);
    info_.total_data_bytes += size;
    return Status::OK();
  };

  for (int i = 0; i < c.big_hot_files; ++i) {
    ECOSTORE_RETURN_NOT_OK(add_file(
        "hotbig_" + std::to_string(i),
        first_enc_volumes[static_cast<size_t>(i) % first_enc_volumes.size()],
        c.big_hot_file_bytes, FileSpec::Role::kBigHot));
  }
  for (int i = 0; i < c.small_hot_files; ++i) {
    ECOSTORE_RETURN_NOT_OK(add_file(
        "hotsmall_" + std::to_string(i),
        other_volumes[static_cast<size_t>(i) % other_volumes.size()],
        c.small_hot_file_bytes, FileSpec::Role::kSmallHot));
  }
  for (int i = 0; i < c.popular_files; ++i) {
    auto size = static_cast<int64_t>(
        rng.LogNormal(c.popular_size_median, c.popular_size_sigma));
    size = std::max<int64_t>(size, 64 * 1024);
    ECOSTORE_RETURN_NOT_OK(add_file(
        "popular_" + std::to_string(i),
        other_volumes[static_cast<size_t>(i) % other_volumes.size()], size,
        FileSpec::Role::kPopular));
    FileSpec& spec = files_.back();
    spec.rank = i;
    spec.write_heavy = rng.NextDouble() < c.popular_write_heavy_fraction;
  }
  for (int i = 0; i < c.tail_files; ++i) {
    auto size = static_cast<int64_t>(
        rng.LogNormal(c.tail_size_median, c.tail_size_sigma));
    size = std::max<int64_t>(size, 64 * 1024);
    ECOSTORE_RETURN_NOT_OK(add_file(
        "tail_" + std::to_string(i),
        other_volumes[static_cast<size_t>(i) % other_volumes.size()], size,
        FileSpec::Role::kTail));
    files_.back().rank = i;
  }
  for (int i = 0; i < c.archive_files; ++i) {
    ECOSTORE_RETURN_NOT_OK(add_file(
        "archive_" + std::to_string(i),
        other_volumes[static_cast<size_t>(i) % other_volumes.size()],
        c.archive_file_bytes, FileSpec::Role::kArchive));
  }
  for (size_t v = 0; v < volumes.size(); ++v) {
    ECOSTORE_RETURN_NOT_OK(add_file("metadata_v" + std::to_string(v),
                                    volumes[v], c.metadata_item_bytes,
                                    FileSpec::Role::kMetadata));
  }

  BuildSources();
  return Status::OK();
}

void FileServerWorkload::BuildSources() {
  const FileServerConfig& c = config_;
  mixer_.Clear();
  uint64_t salt = 0;
  for (const FileSpec& spec : files_) {
    uint64_t seed = c.seed * 1000003 + (++salt);
    switch (spec.role) {
      case FileSpec::Role::kBigHot:
      case FileSpec::Role::kSmallHot: {
        SteadyRandomSource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.high_rate = c.hot_rate_high;
        o.low_rate = c.hot_rate_low;
        o.high_duration = 40 * kSecond;
        o.low_duration = 80 * kSecond;
        o.phase_offset = static_cast<SimTime>(salt) * 7 * kSecond;
        o.read_ratio = c.hot_read_ratio;
        o.io_size = 8 * 1024;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<SteadyRandomSource>(o));
        break;
      }
      case FileSpec::Role::kPopular: {
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        // Episode gap grows linearly with popularity rank.
        double frac = c.popular_files > 1
                          ? static_cast<double>(spec.rank) /
                                static_cast<double>(c.popular_files - 1)
                          : 0.0;
        o.episode_interval = static_cast<SimDuration>(
            static_cast<double>(c.popular_interval_min) +
            frac * static_cast<double>(c.popular_interval_max -
                                       c.popular_interval_min));
        o.episode_length = c.popular_episode_length;
        o.intra_gap = c.popular_intra_gap;
        o.read_ratio = spec.write_heavy ? 0.2 : c.popular_read_ratio;
        o.io_size = 32 * 1024;
        o.sequential = true;
        o.cap_episode_to_item_size = true;
        o.session_period = c.popular_active_period;
        o.session_length = c.popular_active_length;
        o.session_offset =
            c.popular_files > 0
                ? (c.popular_active_period * spec.rank) / c.popular_files
                : 0;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
      case FileSpec::Role::kTail: {
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = c.tail_interval;
        o.episode_length = c.tail_episode_length;
        o.intra_gap = c.tail_intra_gap;
        o.read_ratio = c.tail_read_ratio;
        o.io_size = 32 * 1024;
        o.sequential = true;
        o.session_period = c.session_period;
        o.session_length = c.session_length;
        o.session_offset = VolumeSessionOffset(spec.item);
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
      case FileSpec::Role::kMetadata: {
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = c.metadata_interval;
        o.episode_length = c.metadata_episode_length;
        o.intra_gap = c.metadata_intra_gap;
        o.read_ratio = c.metadata_read_ratio;
        o.io_size = 4 * 1024;
        o.sequential = false;
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
      case FileSpec::Role::kArchive: {
        BurstySource::Options o;
        o.item = spec.item;
        o.item_size = spec.size;
        o.episode_interval = c.archive_interval;
        o.episode_length = 20.0;
        o.intra_gap = 2 * kSecond;
        o.read_ratio = 0.98;
        o.io_size = 64 * 1024;
        o.sequential = true;
        o.session_period = c.session_period;
        o.session_length = c.session_length;
        o.session_offset = VolumeSessionOffset(spec.item);
        o.end = c.duration;
        o.seed = seed;
        mixer_.Add(std::make_unique<BurstySource>(o));
        break;
      }
    }
  }
}

SimDuration FileServerWorkload::VolumeSessionOffset(DataItemId item) const {
  if (config_.session_period <= 0) return 0;
  VolumeId vol = catalog_.item(item).volume;
  auto num_volumes = static_cast<int64_t>(catalog_.volume_count());
  return (config_.session_period * static_cast<int64_t>(vol)) / num_volumes;
}

void FileServerWorkload::Reset() { BuildSources(); }

}  // namespace ecostore::workload
