#include "workload/composite_workload.h"

#include <algorithm>
#include <limits>

namespace ecostore::workload {

Result<std::unique_ptr<CompositeWorkload>> CompositeWorkload::Create(
    std::string name, std::vector<std::unique_ptr<Workload>> children) {
  if (children.empty()) {
    return Status::InvalidArgument("composite needs at least one child");
  }
  std::unique_ptr<CompositeWorkload> composite(new CompositeWorkload());
  composite->info_.name = std::move(name);

  EnclosureId next_enclosure = 0;
  for (const std::unique_ptr<Workload>& child : children) {
    const storage::DataItemCatalog& child_catalog = child->catalog();
    composite->enclosure_offsets_.push_back(next_enclosure);
    composite->item_offsets_.push_back(
        static_cast<DataItemId>(composite->catalog_.item_count()));

    // Re-based volumes: child volume v becomes composite volume
    // (current volume count + v); the dense ordering is preserved
    // because children are processed whole.
    for (size_t v = 0; v < child_catalog.volume_count(); ++v) {
      composite->catalog_.AddVolume(
          next_enclosure +
          child_catalog.volume_enclosure(static_cast<VolumeId>(v)));
    }
    VolumeId volume_offset = static_cast<VolumeId>(
        composite->catalog_.volume_count() -
        child_catalog.volume_count());
    for (const storage::DataItem& item : child_catalog.items()) {
      Result<DataItemId> added = composite->catalog_.AddItem(
          child->info().name + "/" + item.name,
          volume_offset + item.volume, item.size_bytes, item.kind,
          item.pinned);
      if (!added.ok()) return added.status();
    }

    composite->info_.duration =
        std::max(composite->info_.duration, child->info().duration);
    composite->info_.total_data_bytes += child->info().total_data_bytes;
    next_enclosure += child->info().num_enclosures;
  }
  composite->info_.num_enclosures = next_enclosure;
  composite->children_ = std::move(children);
  composite->Reset();
  return composite;
}

/// Records buffered per child between merge steps. Small enough that the
/// k-way merge lookahead stays cache-resident, large enough to amortize
/// the per-child virtual NextBatch call.
static constexpr size_t kChildBatch = 64;

void CompositeWorkload::Reset() {
  pending_.assign(children_.size(), Pending{});
  for (size_t k = 0; k < children_.size(); ++k) {
    children_[k]->Reset();
    Refill(k);
  }
}

bool CompositeWorkload::Refill(size_t k) {
  Pending& p = pending_[k];
  if (!p.empty()) return true;
  if (children_[k]->NextBatch(&p.buf, kChildBatch) == 0) return false;
  p.pos = 0;
  DataItemId offset = item_offsets_[k];
  for (trace::LogicalIoRecord& rec : p.buf) rec.item += offset;
  return true;
}

int CompositeWorkload::EarliestChild() {
  int best = -1;
  for (size_t k = 0; k < pending_.size(); ++k) {
    if (pending_[k].empty() && !Refill(k)) continue;
    if (best < 0 ||
        pending_[k].front().time <
            pending_[static_cast<size_t>(best)].front().time) {
      best = static_cast<int>(k);
    }
  }
  return best;
}

bool CompositeWorkload::Next(trace::LogicalIoRecord* rec) {
  int best = EarliestChild();
  if (best < 0) return false;
  Pending& p = pending_[static_cast<size_t>(best)];
  *rec = p.front();
  p.pos++;
  return true;
}

size_t CompositeWorkload::NextBatch(std::vector<trace::LogicalIoRecord>* out,
                                    size_t max_records) {
  out->clear();
  while (out->size() < max_records) {
    int best = EarliestChild();
    if (best < 0) break;
    Pending& p = pending_[static_cast<size_t>(best)];
    // Runner-up head time (and the lowest child index holding it): while
    // best's head stays below it — or equal, if best still wins the
    // lowest-index tie-break — best cannot be overtaken, so its buffer
    // drains without re-scanning the other children. Their heads are
    // static here: only best's buffer is consumed.
    SimTime limit = std::numeric_limits<SimTime>::max();
    int limit_idx = -1;
    for (size_t k = 0; k < pending_.size(); ++k) {
      if (static_cast<int>(k) == best || pending_[k].empty()) continue;
      if (pending_[k].front().time < limit) {
        limit = pending_[k].front().time;
        limit_idx = static_cast<int>(k);
      }
    }
    const bool wins_ties = limit_idx < 0 || best < limit_idx;
    do {
      out->push_back(p.front());
      p.pos++;
    } while (out->size() < max_records && !p.empty() &&
             (p.front().time < limit ||
              (wins_ties && p.front().time == limit)));
  }
  return out->size();
}

}  // namespace ecostore::workload
