#include "workload/composite_workload.h"

#include <algorithm>

namespace ecostore::workload {

Result<std::unique_ptr<CompositeWorkload>> CompositeWorkload::Create(
    std::string name, std::vector<std::unique_ptr<Workload>> children) {
  if (children.empty()) {
    return Status::InvalidArgument("composite needs at least one child");
  }
  std::unique_ptr<CompositeWorkload> composite(new CompositeWorkload());
  composite->info_.name = std::move(name);

  EnclosureId next_enclosure = 0;
  for (const std::unique_ptr<Workload>& child : children) {
    const storage::DataItemCatalog& child_catalog = child->catalog();
    composite->enclosure_offsets_.push_back(next_enclosure);
    composite->item_offsets_.push_back(
        static_cast<DataItemId>(composite->catalog_.item_count()));

    // Re-based volumes: child volume v becomes composite volume
    // (current volume count + v); the dense ordering is preserved
    // because children are processed whole.
    for (size_t v = 0; v < child_catalog.volume_count(); ++v) {
      composite->catalog_.AddVolume(
          next_enclosure +
          child_catalog.volume_enclosure(static_cast<VolumeId>(v)));
    }
    VolumeId volume_offset = static_cast<VolumeId>(
        composite->catalog_.volume_count() -
        child_catalog.volume_count());
    for (const storage::DataItem& item : child_catalog.items()) {
      Result<DataItemId> added = composite->catalog_.AddItem(
          child->info().name + "/" + item.name,
          volume_offset + item.volume, item.size_bytes, item.kind,
          item.pinned);
      if (!added.ok()) return added.status();
    }

    composite->info_.duration =
        std::max(composite->info_.duration, child->info().duration);
    composite->info_.total_data_bytes += child->info().total_data_bytes;
    next_enclosure += child->info().num_enclosures;
  }
  composite->info_.num_enclosures = next_enclosure;
  composite->children_ = std::move(children);
  composite->Reset();
  return composite;
}

void CompositeWorkload::Reset() {
  pending_.assign(children_.size(), Pending{});
  for (size_t k = 0; k < children_.size(); ++k) {
    children_[k]->Reset();
    Refill(k);
  }
}

void CompositeWorkload::Refill(size_t k) {
  trace::LogicalIoRecord rec;
  if (children_[k]->Next(&rec)) {
    rec.item += item_offsets_[k];
    pending_[k].rec = rec;
    pending_[k].valid = true;
  } else {
    pending_[k].valid = false;
  }
}

bool CompositeWorkload::Next(trace::LogicalIoRecord* rec) {
  int best = -1;
  for (size_t k = 0; k < pending_.size(); ++k) {
    if (!pending_[k].valid) continue;
    if (best < 0 ||
        pending_[k].rec.time < pending_[static_cast<size_t>(best)].rec.time) {
      best = static_cast<int>(k);
    }
  }
  if (best < 0) return false;
  *rec = pending_[static_cast<size_t>(best)].rec;
  Refill(static_cast<size_t>(best));
  return true;
}

}  // namespace ecostore::workload
