#include "workload/io_sources.h"

#include <algorithm>
#include <cassert>

namespace ecostore::workload {

// ---------------------------------------------------------------------------
// SourceMixer
// ---------------------------------------------------------------------------

void SourceMixer::Add(std::unique_ptr<IoSource> source) {
  SimTime t = source->next_time();
  sources_.push_back(std::move(source));
  if (t != kNoMoreIo) {
    heap_.push(HeapEntry{t, sources_.size() - 1});
  }
}

bool SourceMixer::Next(trace::LogicalIoRecord* rec) {
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    IoSource& src = *sources_[top.index];
    if (src.next_time() != top.time) {
      // Stale entry (source advanced past it); reinsert at its real time.
      if (src.next_time() != kNoMoreIo) {
        heap_.push(HeapEntry{src.next_time(), top.index});
      }
      continue;
    }
    *rec = src.Emit();
    if (src.next_time() != kNoMoreIo) {
      heap_.push(HeapEntry{src.next_time(), top.index});
    }
    return true;
  }
  return false;
}

size_t SourceMixer::NextBatch(std::vector<trace::LogicalIoRecord>* out,
                              size_t max_records) {
  out->clear();
  while (out->size() < max_records && !heap_.empty()) {
    HeapEntry top = heap_.top();
    heap_.pop();
    IoSource& src = *sources_[top.index];
    SimTime t = src.next_time();
    if (t != top.time) {
      // Stale entry (source advanced past it); reinsert at its real time.
      if (t != kNoMoreIo) heap_.push(HeapEntry{t, top.index});
      continue;
    }
    out->push_back(src.Emit());
    t = src.next_time();
    if (t != kNoMoreIo) heap_.push(HeapEntry{t, top.index});
  }
  return out->size();
}

void SourceMixer::Clear() {
  sources_.clear();
  while (!heap_.empty()) heap_.pop();
}

// ---------------------------------------------------------------------------
// SteadyRandomSource
// ---------------------------------------------------------------------------

SteadyRandomSource::SteadyRandomSource(const Options& options)
    : options_(options), rng_(options.seed) {
  assert(options_.item_size > 0);
  assert(options_.high_rate > 0 && options_.low_rate > 0);
  next_time_ = options_.start;
  Advance();
}

double SteadyRandomSource::CurrentRate(SimTime t) const {
  SimDuration cycle = options_.high_duration + options_.low_duration;
  if (cycle <= 0) return options_.high_rate;
  SimDuration pos = (t + options_.phase_offset) % cycle;
  return pos < options_.high_duration ? options_.high_rate
                                      : options_.low_rate;
}

void SteadyRandomSource::Advance() {
  double rate = CurrentRate(next_time_);
  double gap_seconds = rng_.Exponential(1.0 / rate);
  next_time_ += std::max<SimDuration>(FromSeconds(gap_seconds), 1);
  if (next_time_ >= options_.end) next_time_ = kNoMoreIo;
}

trace::LogicalIoRecord SteadyRandomSource::Emit() {
  trace::LogicalIoRecord rec;
  rec.time = next_time_;
  rec.item = options_.item;
  rec.size = options_.io_size;
  rec.type = rng_.Bernoulli(options_.read_ratio) ? IoType::kRead
                                                 : IoType::kWrite;
  rec.sequential = options_.sequential;
  int64_t max_offset = std::max<int64_t>(options_.item_size - rec.size, 0);
  rec.offset =
      max_offset > 0
          ? (rng_.UniformInt(0, max_offset / rec.size)) * rec.size
          : 0;
  Advance();
  return rec;
}

// ---------------------------------------------------------------------------
// BurstySource
// ---------------------------------------------------------------------------

BurstySource::BurstySource(const Options& options)
    : options_(options), rng_(options.seed) {
  assert(options_.item_size > 0);
  next_time_ = options_.start;
  ScheduleNextEpisode();
}

void BurstySource::ScheduleNextEpisode() {
  double quiet =
      rng_.Exponential(ToSeconds(options_.episode_interval));
  next_time_ += std::max<SimDuration>(FromSeconds(quiet), 1);
  if (options_.session_period > 0 && options_.session_length > 0 &&
      next_time_ < options_.end) {
    // Align the episode into its volume's next activity window.
    SimDuration pos = (next_time_ + options_.session_offset) %
                      options_.session_period;
    if (pos >= options_.session_length) {
      next_time_ += options_.session_period - pos;
      // Land at a random point in the window, not always its start.
      next_time_ += FromSeconds(
          rng_.NextDouble() * ToSeconds(options_.session_length) * 0.8);
    }
  }
  if (next_time_ >= options_.end) {
    next_time_ = kNoMoreIo;
    return;
  }
  remaining_in_episode_ = std::max<int64_t>(
      1, static_cast<int64_t>(rng_.Exponential(options_.episode_length)));
  int64_t blocks =
      std::max<int64_t>(options_.item_size / options_.io_size, 1);
  if (options_.cap_episode_to_item_size) {
    remaining_in_episode_ = std::min(remaining_in_episode_, blocks);
    episode_offset_ = 0;
  } else {
    episode_offset_ = rng_.UniformInt(0, blocks - 1) * options_.io_size;
  }
}

trace::LogicalIoRecord BurstySource::Emit() {
  trace::LogicalIoRecord rec;
  rec.time = next_time_;
  rec.item = options_.item;
  rec.size = options_.io_size;
  rec.type = rng_.Bernoulli(options_.read_ratio) ? IoType::kRead
                                                 : IoType::kWrite;
  rec.sequential = options_.sequential;
  if (options_.sequential) {
    rec.offset = episode_offset_ % std::max<int64_t>(options_.item_size, 1);
    episode_offset_ += rec.size;
  } else {
    int64_t max_offset = std::max<int64_t>(options_.item_size - rec.size, 0);
    rec.offset =
        max_offset > 0
            ? rng_.UniformInt(0, max_offset / rec.size) * rec.size
            : 0;
  }

  remaining_in_episode_--;
  if (remaining_in_episode_ > 0) {
    double gap = rng_.Exponential(ToSeconds(options_.intra_gap));
    next_time_ += std::max<SimDuration>(FromSeconds(gap), 1);
    if (next_time_ >= options_.end) next_time_ = kNoMoreIo;
  } else {
    ScheduleNextEpisode();
  }
  return rec;
}

// ---------------------------------------------------------------------------
// PhasedSource
// ---------------------------------------------------------------------------

PhasedSource::PhasedSource(DataItemId item, int64_t item_size,
                           std::vector<Phase> phases)
    : item_(item), item_size_(item_size), phases_(std::move(phases)) {
  assert(item_size_ > 0);
  // Skip any degenerate phases.
  while (phase_index_ < phases_.size() &&
         phases_[phase_index_].n_ios <= 0) {
    phase_index_++;
  }
}

SimTime PhasedSource::next_time() const {
  if (phase_index_ >= phases_.size()) return kNoMoreIo;
  const Phase& p = phases_[phase_index_];
  return p.start + emitted_in_phase_ * p.gap;
}

trace::LogicalIoRecord PhasedSource::Emit() {
  const Phase& p = phases_[phase_index_];
  trace::LogicalIoRecord rec;
  rec.time = p.start + emitted_in_phase_ * p.gap;
  rec.item = item_;
  rec.size = p.io_size;
  rec.type = p.type;
  rec.sequential = p.sequential;
  rec.tag = p.tag;
  rec.offset = (p.offset_start + emitted_in_phase_ * p.io_size) %
               std::max<int64_t>(item_size_, 1);
  emitted_in_phase_++;
  if (emitted_in_phase_ >= p.n_ios) {
    emitted_in_phase_ = 0;
    phase_index_++;
    while (phase_index_ < phases_.size() &&
           phases_[phase_index_].n_ios <= 0) {
      phase_index_++;
    }
  }
  return rec;
}

}  // namespace ecostore::workload
