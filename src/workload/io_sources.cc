#include "workload/io_sources.h"

#include <algorithm>
#include <cassert>

namespace ecostore::workload {

// ---------------------------------------------------------------------------
// SourceMixer
// ---------------------------------------------------------------------------

void SourceMixer::SiftDown(size_t i) {
  const size_t n = heap_.size();
  HeapEntry moving = heap_[i];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && Earlier(heap_[child + 1], heap_[child])) child++;
    if (!Earlier(heap_[child], moving)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = moving;
}

void SourceMixer::PopRoot() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void SourceMixer::Add(std::unique_ptr<IoSource> source) {
  SimTime t = source->next_time();
  sources_.push_back(std::move(source));
  if (t == kNoMoreIo) return;
  // Sift up the new leaf.
  size_t i = heap_.size();
  heap_.push_back(HeapEntry{t, sources_.size() - 1});
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!Earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

bool SourceMixer::Next(trace::LogicalIoRecord* rec) {
  while (!heap_.empty()) {
    HeapEntry top = heap_[0];
    IoSource& src = *sources_[top.index];
    SimTime t = src.next_time();
    if (t != top.time) {
      // Stale entry (source advanced past it); re-time it in place.
      if (t == kNoMoreIo) PopRoot(); else ReplaceRoot(t);
      continue;
    }
    *rec = src.Emit();
    t = src.next_time();
    if (t == kNoMoreIo) PopRoot(); else ReplaceRoot(t);
    return true;
  }
  return false;
}

size_t SourceMixer::NextBatch(std::vector<trace::LogicalIoRecord>* out,
                              size_t max_records) {
  out->clear();
  if (out->capacity() < max_records) out->reserve(max_records);
  while (out->size() < max_records && !heap_.empty()) {
    HeapEntry top = heap_[0];
    IoSource& src = *sources_[top.index];
    SimTime t = src.next_time();
    if (t != top.time) {
      // Stale entry (source advanced past it); re-time it in place.
      if (t == kNoMoreIo) PopRoot(); else ReplaceRoot(t);
      continue;
    }
    // Run extraction: keep emitting from the root's source while it
    // stays strictly earliest — i.e. earlier (by the total (time, index)
    // order) than both children of the root. A dense source then costs
    // one comparison per record instead of a full sift, and the emitted
    // order is exactly the repeated-Next() order.
    for (;;) {
      out->push_back(src.Emit());
      t = src.next_time();
      if (t == kNoMoreIo) {
        PopRoot();
        break;
      }
      if (out->size() >= max_records) {
        ReplaceRoot(t);
        break;
      }
      HeapEntry cur{t, top.index};
      size_t best = 1;
      if (best + 1 < heap_.size() && Earlier(heap_[best + 1], heap_[best])) {
        best++;
      }
      if (best < heap_.size() && Earlier(heap_[best], cur)) {
        ReplaceRoot(t);
        break;
      }
      heap_[0].time = t;  // still the root; heap order holds
    }
  }
  return out->size();
}

void SourceMixer::Clear() {
  sources_.clear();
  heap_.clear();
}

// ---------------------------------------------------------------------------
// SteadyRandomSource
// ---------------------------------------------------------------------------

SteadyRandomSource::SteadyRandomSource(const Options& options)
    : options_(options), rng_(options.seed) {
  assert(options_.item_size > 0);
  assert(options_.high_rate > 0 && options_.low_rate > 0);
  next_time_ = options_.start;
  Advance();
}

double SteadyRandomSource::CurrentRate(SimTime t) const {
  SimDuration cycle = options_.high_duration + options_.low_duration;
  if (cycle <= 0) return options_.high_rate;
  SimDuration pos = (t + options_.phase_offset) % cycle;
  return pos < options_.high_duration ? options_.high_rate
                                      : options_.low_rate;
}

void SteadyRandomSource::Advance() {
  double rate = CurrentRate(next_time_);
  double gap_seconds = rng_.Exponential(1.0 / rate);
  next_time_ += std::max<SimDuration>(FromSeconds(gap_seconds), 1);
  if (next_time_ >= options_.end) next_time_ = kNoMoreIo;
}

trace::LogicalIoRecord SteadyRandomSource::Emit() {
  trace::LogicalIoRecord rec;
  rec.time = next_time_;
  rec.item = options_.item;
  rec.size = options_.io_size;
  rec.type = rng_.Bernoulli(options_.read_ratio) ? IoType::kRead
                                                 : IoType::kWrite;
  rec.sequential = options_.sequential;
  int64_t max_offset = std::max<int64_t>(options_.item_size - rec.size, 0);
  rec.offset =
      max_offset > 0
          ? (rng_.UniformInt(0, max_offset / rec.size)) * rec.size
          : 0;
  Advance();
  return rec;
}

// ---------------------------------------------------------------------------
// BurstySource
// ---------------------------------------------------------------------------

BurstySource::BurstySource(const Options& options)
    : options_(options), rng_(options.seed) {
  assert(options_.item_size > 0);
  next_time_ = options_.start;
  ScheduleNextEpisode();
}

void BurstySource::ScheduleNextEpisode() {
  double quiet =
      rng_.Exponential(ToSeconds(options_.episode_interval));
  next_time_ += std::max<SimDuration>(FromSeconds(quiet), 1);
  if (options_.session_period > 0 && options_.session_length > 0 &&
      next_time_ < options_.end) {
    // Align the episode into its volume's next activity window.
    SimDuration pos = (next_time_ + options_.session_offset) %
                      options_.session_period;
    if (pos >= options_.session_length) {
      next_time_ += options_.session_period - pos;
      // Land at a random point in the window, not always its start.
      next_time_ += FromSeconds(
          rng_.NextDouble() * ToSeconds(options_.session_length) * 0.8);
    }
  }
  if (next_time_ >= options_.end) {
    next_time_ = kNoMoreIo;
    return;
  }
  remaining_in_episode_ = std::max<int64_t>(
      1, static_cast<int64_t>(rng_.Exponential(options_.episode_length)));
  int64_t blocks =
      std::max<int64_t>(options_.item_size / options_.io_size, 1);
  if (options_.cap_episode_to_item_size) {
    remaining_in_episode_ = std::min(remaining_in_episode_, blocks);
    episode_offset_ = 0;
  } else {
    episode_offset_ = rng_.UniformInt(0, blocks - 1) * options_.io_size;
  }
}

trace::LogicalIoRecord BurstySource::Emit() {
  trace::LogicalIoRecord rec;
  rec.time = next_time_;
  rec.item = options_.item;
  rec.size = options_.io_size;
  rec.type = rng_.Bernoulli(options_.read_ratio) ? IoType::kRead
                                                 : IoType::kWrite;
  rec.sequential = options_.sequential;
  if (options_.sequential) {
    rec.offset = episode_offset_ % std::max<int64_t>(options_.item_size, 1);
    episode_offset_ += rec.size;
  } else {
    int64_t max_offset = std::max<int64_t>(options_.item_size - rec.size, 0);
    rec.offset =
        max_offset > 0
            ? rng_.UniformInt(0, max_offset / rec.size) * rec.size
            : 0;
  }

  remaining_in_episode_--;
  if (remaining_in_episode_ > 0) {
    double gap = rng_.Exponential(ToSeconds(options_.intra_gap));
    next_time_ += std::max<SimDuration>(FromSeconds(gap), 1);
    if (next_time_ >= options_.end) next_time_ = kNoMoreIo;
  } else {
    ScheduleNextEpisode();
  }
  return rec;
}

// ---------------------------------------------------------------------------
// PhasedSource
// ---------------------------------------------------------------------------

PhasedSource::PhasedSource(DataItemId item, int64_t item_size,
                           std::vector<Phase> phases)
    : item_(item), item_size_(item_size), phases_(std::move(phases)) {
  assert(item_size_ > 0);
  // Skip any degenerate phases.
  while (phase_index_ < phases_.size() &&
         phases_[phase_index_].n_ios <= 0) {
    phase_index_++;
  }
}

SimTime PhasedSource::next_time() const {
  if (phase_index_ >= phases_.size()) return kNoMoreIo;
  const Phase& p = phases_[phase_index_];
  return p.start + emitted_in_phase_ * p.gap;
}

trace::LogicalIoRecord PhasedSource::Emit() {
  const Phase& p = phases_[phase_index_];
  trace::LogicalIoRecord rec;
  rec.time = p.start + emitted_in_phase_ * p.gap;
  rec.item = item_;
  rec.size = p.io_size;
  rec.type = p.type;
  rec.sequential = p.sequential;
  rec.tag = p.tag;
  rec.offset = (p.offset_start + emitted_in_phase_ * p.io_size) %
               std::max<int64_t>(item_size_, 1);
  emitted_in_phase_++;
  if (emitted_in_phase_ >= p.n_ios) {
    emitted_in_phase_ = 0;
    phase_index_++;
    while (phase_index_ < phases_.size() &&
           phases_[phase_index_].n_ios <= 0) {
      phase_index_++;
    }
  }
  return rec;
}

}  // namespace ecostore::workload
