#ifndef ECOSTORE_WORKLOAD_IO_SOURCES_H_
#define ECOSTORE_WORKLOAD_IO_SOURCES_H_

#include <limits>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "trace/io_record.h"

namespace ecostore::workload {

/// Sentinel: the source has no further records.
inline constexpr SimTime kNoMoreIo = std::numeric_limits<SimTime>::max();

/// \brief One independent stream of logical I/Os for a single data item.
///
/// Sources are merged by SourceMixer; each owns a deterministic PRNG so
/// the merged trace is reproducible regardless of other sources.
class IoSource {
 public:
  virtual ~IoSource() = default;

  /// Timestamp of the next record, or kNoMoreIo.
  virtual SimTime next_time() const = 0;

  /// Emits the record at next_time() and advances the stream.
  virtual trace::LogicalIoRecord Emit() = 0;
};

/// \brief Merges many IoSources into one time-ordered stream.
class SourceMixer {
 public:
  void Add(std::unique_ptr<IoSource> source);

  /// Pops the earliest pending record; false when all sources are done.
  bool Next(trace::LogicalIoRecord* rec);

  /// Pops up to `max_records` earliest records into `out` (cleared
  /// first); returns the number popped. Same stream as repeated Next().
  size_t NextBatch(std::vector<trace::LogicalIoRecord>* out,
                   size_t max_records);

  void Clear();
  size_t source_count() const { return sources_.size(); }

 private:
  /// (time, index) is a strict total order (indices are unique), so the
  /// extraction order — and therefore the merged stream — is independent
  /// of the heap's internal arrangement.
  struct HeapEntry {
    SimTime time;
    size_t index;
  };

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.index < b.index;
  }

  /// Re-times the root in place (the source advanced) and restores the
  /// heap with a single sift-down — half the work of a pop + push.
  void ReplaceRoot(SimTime t) {
    heap_[0].time = t;
    SiftDown(0);
  }
  void PopRoot();
  void SiftDown(size_t i);

  std::vector<std::unique_ptr<IoSource>> sources_;
  std::vector<HeapEntry> heap_;
};

/// \brief Continuous random I/O with two-phase rate modulation — the
/// access process of a busy OLTP table partition or a hot file (P3
/// behaviour: no gap ever approaches the break-even time).
class SteadyRandomSource : public IoSource {
 public:
  struct Options {
    DataItemId item = kInvalidDataItem;
    int64_t item_size = 0;
    double high_rate = 10.0;          ///< IOPS during the high phase
    double low_rate = 5.0;            ///< IOPS during the low phase
    SimDuration high_duration = 30 * kSecond;
    SimDuration low_duration = 60 * kSecond;
    SimTime phase_offset = 0;         ///< staggers phases across sources
    double read_ratio = 0.5;
    int32_t io_size = 8 * 1024;
    bool sequential = false;
    SimTime start = 0;
    SimTime end = kNoMoreIo;
    uint64_t seed = 1;
  };

  explicit SteadyRandomSource(const Options& options);

  SimTime next_time() const override { return next_time_; }
  trace::LogicalIoRecord Emit() override;

 private:
  double CurrentRate(SimTime t) const;
  void Advance();

  Options options_;
  Xoshiro256 rng_;
  SimTime next_time_;
};

/// \brief Episodic access: bursts of I/O separated by long quiet spans —
/// the access process of a file-server file (P1/P2 behaviour: Long
/// Intervals between episodes, I/O Sequences within them).
class BurstySource : public IoSource {
 public:
  struct Options {
    DataItemId item = kInvalidDataItem;
    int64_t item_size = 0;
    /// Mean quiet time between episodes (exponential).
    SimDuration episode_interval = 30 * kMinute;
    /// Mean I/O count per episode (geometric-ish via exponential draw).
    double episode_length = 100.0;
    /// Mean gap between I/Os inside an episode (exponential).
    SimDuration intra_gap = 100 * kMillisecond;
    double read_ratio = 0.9;
    int32_t io_size = 8 * 1024;
    /// Episodes walk the item sequentially from a random start.
    bool sequential = true;
    /// Limit each episode to one pass over the item (no wrap-around
    /// re-reads that the shared LRU would absorb).
    bool cap_episode_to_item_size = false;
    /// Optional activity-session gating: episodes only start inside
    /// windows of `session_length` every `session_period` (offset by
    /// `session_offset`). Models volume-level activity clustering of file
    /// servers. 0 disables gating.
    SimDuration session_period = 0;
    SimDuration session_length = 0;
    SimDuration session_offset = 0;
    SimTime start = 0;
    SimTime end = kNoMoreIo;
    uint64_t seed = 1;
  };

  explicit BurstySource(const Options& options);

  SimTime next_time() const override { return next_time_; }
  trace::LogicalIoRecord Emit() override;

 private:
  void ScheduleNextEpisode();

  Options options_;
  Xoshiro256 rng_;
  SimTime next_time_;
  int64_t remaining_in_episode_ = 0;
  int64_t episode_offset_ = 0;
};

/// One scripted burst of I/O (used by the DSS generator for query scan,
/// work-file and log phases).
struct Phase {
  SimTime start = 0;
  int64_t n_ios = 0;
  SimDuration gap = 0;       ///< fixed spacing between the phase's I/Os
  int32_t io_size = 1 << 20;
  IoType type = IoType::kRead;
  bool sequential = true;
  int64_t offset_start = 0;
  int32_t tag = 0;
};

/// \brief Emits a precomputed list of phases for one item.
class PhasedSource : public IoSource {
 public:
  /// Phases must be sorted by start and non-overlapping.
  PhasedSource(DataItemId item, int64_t item_size,
               std::vector<Phase> phases);

  SimTime next_time() const override;
  trace::LogicalIoRecord Emit() override;

 private:
  DataItemId item_;
  int64_t item_size_;
  std::vector<Phase> phases_;
  size_t phase_index_ = 0;
  int64_t emitted_in_phase_ = 0;
};

}  // namespace ecostore::workload

#endif  // ECOSTORE_WORKLOAD_IO_SOURCES_H_
