#include "telemetry/stream_consumer.h"

#include <algorithm>

namespace ecostore::telemetry {

void StreamDispatcher::AddConsumer(StreamConsumer* consumer) {
  if (consumer != nullptr) consumers_.push_back(consumer);
}

void StreamDispatcher::Pump(Recorder* recorder, SimTime frontier) {
  if (recorder != nullptr) {
    recorder->DrainInto(&scratch_);
    pending_.insert(pending_.end(), scratch_.begin(), scratch_.end());
  }
  AdvanceFrontier(frontier);
}

void StreamDispatcher::AdvanceFrontier(SimTime frontier) {
  if (finished_ || frontier <= frontier_) return;
  // The concatenation of (time, shard)-sorted drain segments; one stable
  // sort restores the global batch order (intra-group record order is the
  // segment order, which matches the single-drain order because record
  // order per ring is preserved across drains).
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.shard < b.shard;
                   });
  size_t emit = 0;
  while (emit < pending_.size() && pending_[emit].time < frontier) ++emit;
  for (size_t i = 0; i < emit; ++i) Emit(pending_[i]);
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<ptrdiff_t>(emit));
  frontier_ = frontier;
  for (StreamConsumer* consumer : consumers_) consumer->OnFrontier(frontier);
}

void StreamDispatcher::Finish(const StreamFinal& final) {
  if (finished_) return;
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.shard < b.shard;
                   });
  for (const Event& event : pending_) Emit(event);
  pending_.clear();
  if (final.at > frontier_) frontier_ = final.at;
  finished_ = true;
  for (StreamConsumer* consumer : consumers_) consumer->OnFinish(final);
}

void StreamDispatcher::Emit(const Event& event) {
  for (StreamConsumer* consumer : consumers_) consumer->OnEvent(event);
}

}  // namespace ecostore::telemetry
