#ifndef ECOSTORE_TELEMETRY_EXPORT_H_
#define ECOSTORE_TELEMETRY_EXPORT_H_

// Exporters for a drained telemetry stream:
//  - JSONL: one self-describing JSON object per line (line 1 is run
//    metadata), the interchange format `tools/eco_report` and the
//    round-trip tests read back;
//  - per-enclosure power-state timeline CSV, derived from the
//    kPowerState events (the SpinningUp -> On edge is reconstructed from
//    the spin-up latency carried in the event payload);
//  - Chrome trace_event JSON for chrome://tracing / Perfetto: power
//    states as complete ("X") spans per enclosure, decisions and
//    migration milestones as instants, simulator stats as counters.
//
// The exporters are compiled unconditionally (they operate on plain
// vectors of events); a disabled-telemetry build simply has nothing to
// export.

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/analysis/latency_histogram.h"
#include "telemetry/event.h"

namespace ecostore::telemetry {

/// One (pattern, outcome) latency histogram captured with a run.
struct LatencySlot {
  uint8_t pattern = analysis::kPatternUnclassified;
  uint8_t outcome = 0;
  analysis::LatencyHistogram hist;
};

/// Run identification written into every export. Since PR 5 the meta also
/// carries the power model, the final measured energies and the latency
/// book, which makes a capture self-describing: the offline analyzer
/// (telemetry/analysis/) produces the identical summary from a parsed
/// capture and from the in-process stream. Captures written by older
/// builds parse with has_power_model == false and an empty latency book.
struct ExportMeta {
  std::string workload;
  std::string policy;
  int num_enclosures = 0;
  SimDuration duration = 0;

  /// Power / cache model parameters (storage::StorageConfig excerpt).
  bool has_power_model = false;
  double idle_power_w = 0.0;
  double active_power_w = 0.0;
  double off_power_w = 0.0;
  double spinup_power_w = 0.0;
  double controller_power_w = 0.0;
  SimDuration spinup_time_us = 0;
  SimDuration break_even_us = 0;
  SimDuration spindown_timeout_us = 0;
  int64_t cache_total_bytes = 0;
  int64_t preload_area_bytes = 0;
  int64_t write_delay_area_bytes = 0;

  /// Final measured energies (ExperimentMetrics counterpart; %.17g
  /// round-trips doubles exactly, so reconciliation is exact).
  double enclosure_energy_j = 0.0;
  double controller_energy_j = 0.0;

  /// Per-(pattern, outcome) service-time histograms; empty cells omitted.
  std::vector<LatencySlot> latency;
};

Status WriteJsonl(const std::string& path, const ExportMeta& meta,
                  const std::vector<Event>& events);

/// Parses a WriteJsonl file back (the eco_report / round-trip-test
/// reader). Unknown *type* values are skipped so the format can grow, but
/// structurally broken input — a line that is not a JSON object, an event
/// line with an unknown kind, or a file whose event count disagrees with
/// the meta header (truncation) — fails with the offending line number.
Status ParseJsonl(const std::string& path, ExportMeta* meta,
                  std::vector<Event>* events);

/// One incremental read of a growing JSONL file.
struct JsonlChunk {
  /// Complete ('\n'-terminated) lines, with the newline stripped.
  std::vector<std::string> lines;
  /// Byte offset just past the last complete line: resume here.
  int64_t next_offset = 0;
  /// The read ended on a partial line (a writer mid-append). The partial
  /// bytes are NOT consumed — next_offset points at their start, so the
  /// next call re-reads the line once the writer finishes it.
  bool partial_tail = false;
};

/// Reads every complete line of `path` starting at byte `offset` (the
/// follow/tail reader for in-flight captures). A truncated final line is
/// a normal condition, not an error: it is reported via
/// JsonlChunk::partial_tail and left for the next call, which resumes at
/// JsonlChunk::next_offset. Only open/seek failures return non-OK.
Status ReadJsonlChunk(const std::string& path, int64_t offset,
                      JsonlChunk* chunk);

/// \brief Incremental capture parser: feed it complete lines (e.g. from
/// ReadJsonlChunk) in file order and it accumulates the same (meta,
/// events) ParseJsonl produces — but it never fails on a file that is
/// still being written, because the declared-event-count reconciliation
/// is the caller's to run once the writer is known to be done
/// (complete() turns true when every declared event has been consumed).
/// ParseJsonl is implemented on top of this parser, so the two readers
/// cannot drift apart.
class CaptureTailParser {
 public:
  /// Consumes one newline-stripped line. Blank lines are ignored; unknown
  /// "type" values are skipped (format growth). Errors carry no position
  /// — the caller knows the line/offset and adds that context.
  Status Consume(const std::string& line);

  bool have_meta() const { return have_meta_; }
  const ExportMeta& meta() const { return meta_; }

  /// Events consumed so far and not yet taken.
  const std::vector<Event>& events() const { return events_; }
  /// Moves the pending events out (streaming callers bound memory by
  /// draining between chunks); consumed_events() keeps the total.
  std::vector<Event> TakeEvents();

  /// Event count the meta line declared, or -1 before the meta line (and
  /// for captures from writers that omit it).
  int64_t declared_events() const { return declared_events_; }
  int64_t consumed_events() const { return consumed_events_; }
  /// True once the meta line was seen and every declared event parsed —
  /// i.e. the writer finished the capture.
  bool complete() const {
    return have_meta_ && declared_events_ >= 0 &&
           consumed_events_ >= declared_events_;
  }

 private:
  ExportMeta meta_;
  bool have_meta_ = false;
  int64_t declared_events_ = -1;
  int64_t consumed_events_ = 0;
  std::vector<Event> events_;
};

/// One dwell interval of an enclosure's power FSM.
struct PowerSegment {
  EnclosureId enclosure = kInvalidEnclosure;
  SimTime start = 0;
  SimTime end = 0;
  uint8_t state = 2;  ///< storage::PowerState numeric value (2 == On)
};

const char* PowerSegmentStateName(uint8_t state);

/// Reconstructs every enclosure's Off / SpinningUp / On dwell timeline
/// from the kPowerState events (all enclosures start On at t = 0).
std::vector<PowerSegment> BuildPowerTimeline(const ExportMeta& meta,
                                             const std::vector<Event>& events);

Status WritePowerTimelineCsv(const std::string& path, const ExportMeta& meta,
                             const std::vector<Event>& events);

Status WriteChromeTrace(const std::string& path, const ExportMeta& meta,
                        const std::vector<Event>& events);

/// Writes all three exports: `<base>.jsonl`, `<base>.power.csv` and
/// `<base>.trace.json` (a trailing ".jsonl" on `base` is stripped first,
/// so `--telemetry=run.jsonl` and `--telemetry=run` are equivalent).
Status ExportAll(const std::string& base, const ExportMeta& meta,
                 const std::vector<Event>& events);

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_EXPORT_H_
