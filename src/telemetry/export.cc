#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

namespace ecostore::telemetry {

namespace {

constexpr EventKind kAllKinds[] = {
    EventKind::kPowerState,      EventKind::kIdleGap,
    EventKind::kCacheFlush,      EventKind::kCacheAdmit,
    EventKind::kWriteDelaySet,   EventKind::kPreloadBegin,
    EventKind::kPreloadDone,     EventKind::kPhysicalIo,
    EventKind::kMigrationBegin,  EventKind::kMigrationThrottle,
    EventKind::kMigrationEnd,    EventKind::kBlockMove,
    EventKind::kDecision,        EventKind::kHotCold,
    EventKind::kPeriodAdapt,     EventKind::kPeriodBoundary,
    EventKind::kSimStats,
};

EventKind KindFromName(const std::string& name) {
  for (EventKind kind : kAllKinds) {
    if (name == EventKindName(kind)) return kind;
  }
  return EventKind::kNone;
}

/// Minimal reader for the flat one-line JSON objects this module writes:
/// string values contain no escapes and there is no nesting, so a linear
/// scan for "key": value pairs suffices (and keeps eco_report free of
/// external JSON dependencies).
class FlatJson {
 public:
  explicit FlatJson(const std::string& line) {
    const char* p = line.c_str();
    while ((p = std::strchr(p, '"')) != nullptr) {
      const char* key_end = std::strchr(p + 1, '"');
      if (key_end == nullptr) break;
      std::string key(p + 1, key_end);
      const char* colon = key_end + 1;
      while (*colon == ' ') colon++;
      if (*colon != ':') {
        p = key_end + 1;
        continue;
      }
      const char* value = colon + 1;
      while (*value == ' ') value++;
      if (*value == '"') {
        const char* value_end = std::strchr(value + 1, '"');
        if (value_end == nullptr) break;
        keys_.emplace_back(std::move(key), std::string(value + 1, value_end));
        p = value_end + 1;
      } else {
        const char* value_end = value;
        while (*value_end != '\0' && *value_end != ',' && *value_end != '}') {
          value_end++;
        }
        keys_.emplace_back(std::move(key), std::string(value, value_end));
        p = value_end;
      }
    }
  }

  bool Has(const char* key) const { return Find(key) != nullptr; }

  std::string Str(const char* key, const std::string& fallback = "") const {
    const std::string* v = Find(key);
    return v != nullptr ? *v : fallback;
  }

  int64_t Int(const char* key, int64_t fallback = 0) const {
    const std::string* v = Find(key);
    return v != nullptr ? std::strtoll(v->c_str(), nullptr, 10) : fallback;
  }

  uint64_t U64(const char* key, uint64_t fallback = 0) const {
    const std::string* v = Find(key);
    return v != nullptr ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

 private:
  const std::string* Find(const char* key) const {
    for (const auto& [k, v] : keys_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> keys_;
};

void AppendKV(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", key,
                static_cast<long long>(value));
  *out += buf;
}

void AppendKVU(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendEventJson(std::string* out, const Event& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"type\":\"event\",\"t\":%lld,\"kind\":\"%s\"",
                static_cast<long long>(e.time), EventKindName(e.kind));
  *out += buf;
  switch (e.kind) {
    case EventKind::kPowerState:
      AppendKV(out, "enclosure", e.power.enclosure);
      AppendKV(out, "state", e.power.state);
      AppendKV(out, "spinup_us", e.power.spinup_us);
      break;
    case EventKind::kIdleGap:
      AppendKV(out, "enclosure", e.idle.enclosure);
      AppendKV(out, "gap_us", e.idle.gap);
      break;
    case EventKind::kCacheFlush:
    case EventKind::kCacheAdmit:
    case EventKind::kWriteDelaySet:
    case EventKind::kPreloadBegin:
    case EventKind::kPreloadDone:
    case EventKind::kPhysicalIo:
      AppendKV(out, "item", e.cache.item);
      AppendKV(out, "enclosure", e.cache.enclosure);
      AppendKV(out, "blocks", e.cache.blocks);
      AppendKV(out, "bytes", e.cache.bytes);
      break;
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationThrottle:
    case EventKind::kMigrationEnd:
    case EventKind::kBlockMove:
      AppendKV(out, "item", e.migration.item);
      AppendKV(out, "from", e.migration.from);
      AppendKV(out, "to", e.migration.to);
      AppendKV(out, "bytes", e.migration.bytes);
      break;
    case EventKind::kDecision:
      AppendKV(out, "item", e.decision.item);
      AppendKV(out, "pattern", e.decision.pattern);
      AppendKV(out, "actions", e.decision.actions);
      AppendKV(out, "enclosure", e.decision.enclosure);
      AppendKV(out, "long_intervals", e.decision.long_intervals);
      AppendKV(out, "io_sequences", e.decision.io_sequences);
      AppendKV(out, "read_permille", e.decision.read_permille);
      AppendKV(out, "total_ios", e.decision.total_ios);
      break;
    case EventKind::kHotCold:
      AppendKVU(out, "hot_mask", e.hot_cold.hot_mask);
      AppendKV(out, "n_hot", e.hot_cold.n_hot);
      AppendKV(out, "n_enclosures", e.hot_cold.n_enclosures);
      break;
    case EventKind::kPeriodAdapt:
      AppendKV(out, "prev_period_us", e.adapt.prev_period);
      AppendKV(out, "next_period_us", e.adapt.next_period);
      AppendKV(out, "mean_long_interval_us", e.adapt.mean_long_interval);
      break;
    case EventKind::kPeriodBoundary:
      AppendKV(out, "index", e.period.index);
      AppendKV(out, "period_start_us", e.period.period_start);
      AppendKV(out, "next_period_us", e.period.next_period);
      break;
    case EventKind::kSimStats:
      AppendKV(out, "peak_heap", e.sim_stats.peak_heap_depth);
      AppendKV(out, "live", e.sim_stats.live_events);
      AppendKV(out, "tombstones", e.sim_stats.tombstones);
      AppendKV(out, "cancelled", e.sim_stats.cancelled);
      break;
    case EventKind::kNone:
      break;
  }
  *out += "}\n";
}

Event EventFromJson(const FlatJson& json, EventKind kind) {
  Event e = MakeEvent(json.Int("t"), kind);
  switch (kind) {
    case EventKind::kPowerState:
      e.power.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.power.state = static_cast<uint8_t>(json.Int("state"));
      e.power.spinup_us = json.Int("spinup_us");
      break;
    case EventKind::kIdleGap:
      e.idle.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.idle.gap = json.Int("gap_us");
      break;
    case EventKind::kCacheFlush:
    case EventKind::kCacheAdmit:
    case EventKind::kWriteDelaySet:
    case EventKind::kPreloadBegin:
    case EventKind::kPreloadDone:
    case EventKind::kPhysicalIo:
      e.cache.item = static_cast<DataItemId>(json.Int("item"));
      e.cache.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.cache.blocks = json.Int("blocks");
      e.cache.bytes = json.Int("bytes");
      break;
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationThrottle:
    case EventKind::kMigrationEnd:
    case EventKind::kBlockMove:
      e.migration.item = static_cast<DataItemId>(json.Int("item"));
      e.migration.from = static_cast<EnclosureId>(json.Int("from"));
      e.migration.to = static_cast<EnclosureId>(json.Int("to"));
      e.migration.bytes = json.Int("bytes");
      break;
    case EventKind::kDecision:
      e.decision.item = static_cast<DataItemId>(json.Int("item"));
      e.decision.pattern = static_cast<uint8_t>(json.Int("pattern"));
      e.decision.actions = static_cast<uint8_t>(json.Int("actions"));
      e.decision.enclosure = static_cast<int16_t>(json.Int("enclosure"));
      e.decision.long_intervals =
          static_cast<int32_t>(json.Int("long_intervals"));
      e.decision.io_sequences =
          static_cast<int32_t>(json.Int("io_sequences"));
      e.decision.read_permille =
          static_cast<int32_t>(json.Int("read_permille"));
      e.decision.total_ios = json.Int("total_ios");
      break;
    case EventKind::kHotCold:
      e.hot_cold.hot_mask = json.U64("hot_mask");
      e.hot_cold.n_hot = static_cast<int32_t>(json.Int("n_hot"));
      e.hot_cold.n_enclosures =
          static_cast<int32_t>(json.Int("n_enclosures"));
      break;
    case EventKind::kPeriodAdapt:
      e.adapt.prev_period = json.Int("prev_period_us");
      e.adapt.next_period = json.Int("next_period_us");
      e.adapt.mean_long_interval = json.Int("mean_long_interval_us");
      break;
    case EventKind::kPeriodBoundary:
      e.period.index = static_cast<int32_t>(json.Int("index"));
      e.period.period_start = json.Int("period_start_us");
      e.period.next_period = json.Int("next_period_us");
      break;
    case EventKind::kSimStats:
      e.sim_stats.peak_heap_depth = json.Int("peak_heap");
      e.sim_stats.live_events = json.Int("live");
      e.sim_stats.tombstones = json.Int("tombstones");
      e.sim_stats.cancelled = json.Int("cancelled");
      break;
    case EventKind::kNone:
      break;
  }
  return e;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

const char* PowerSegmentStateName(uint8_t state) {
  switch (state) {
    case 0:
      return "off";
    case 1:
      return "spinning_up";
    case 2:
      return "on";
  }
  return "?";
}

Status WriteJsonl(const std::string& path, const ExportMeta& meta,
                  const std::vector<Event>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(),
               "{\"type\":\"meta\",\"workload\":\"%s\",\"policy\":\"%s\","
               "\"num_enclosures\":%d,\"duration_us\":%lld,"
               "\"events\":%zu}\n",
               meta.workload.c_str(), meta.policy.c_str(),
               meta.num_enclosures, static_cast<long long>(meta.duration),
               events.size());
  std::string line;
  for (const Event& e : events) {
    line.clear();
    AppendEventJson(&line, e);
    std::fwrite(line.data(), 1, line.size(), f.get());
  }
  return Status::OK();
}

Status ParseJsonl(const std::string& path, ExportMeta* meta,
                  std::vector<Event>* events) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IoError("cannot read " + path);
  if (meta != nullptr) *meta = ExportMeta{};
  events->clear();
  char buf[1024];
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    FlatJson json{std::string(buf)};
    std::string type = json.Str("type");
    if (type == "meta") {
      if (meta != nullptr) {
        meta->workload = json.Str("workload");
        meta->policy = json.Str("policy");
        meta->num_enclosures = static_cast<int>(json.Int("num_enclosures"));
        meta->duration = json.Int("duration_us");
      }
      continue;
    }
    if (type != "event") continue;
    EventKind kind = KindFromName(json.Str("kind"));
    if (kind == EventKind::kNone) continue;
    events->push_back(EventFromJson(json, kind));
  }
  return Status::OK();
}

std::vector<PowerSegment> BuildPowerTimeline(
    const ExportMeta& meta, const std::vector<Event>& events) {
  int n = meta.num_enclosures;
  if (n <= 0) {
    for (const Event& e : events) {
      if (e.kind == EventKind::kPowerState && e.power.enclosure >= n) {
        n = e.power.enclosure + 1;
      }
    }
  }
  std::vector<PowerSegment> segments;
  // Every enclosure starts On at t = 0 (the array boots powered up).
  std::vector<SimTime> seg_start(static_cast<size_t>(n), 0);
  std::vector<uint8_t> state(static_cast<size_t>(n), 2);
  auto close = [&](size_t enc, SimTime at, uint8_t next_state) {
    if (at > seg_start[enc]) {
      segments.push_back(PowerSegment{static_cast<EnclosureId>(enc),
                                      seg_start[enc], at, state[enc]});
    }
    seg_start[enc] = at;
    state[enc] = next_state;
  };
  for (const Event& e : events) {
    if (e.kind != EventKind::kPowerState) continue;
    if (e.power.enclosure < 0 || e.power.enclosure >= n) continue;
    auto enc = static_cast<size_t>(e.power.enclosure);
    if (e.power.state == 1) {
      // Spin-up initiation; the On edge follows after the configured
      // spin-up latency carried in the payload.
      close(enc, e.time, 1);
      close(enc, e.time + e.power.spinup_us, 2);
    } else {
      close(enc, e.time, e.power.state);
    }
  }
  for (size_t enc = 0; enc < static_cast<size_t>(n); ++enc) {
    SimTime end = std::max(meta.duration, seg_start[enc]);
    if (end > seg_start[enc]) {
      segments.push_back(PowerSegment{static_cast<EnclosureId>(enc),
                                      seg_start[enc], end, state[enc]});
    }
  }
  std::stable_sort(segments.begin(), segments.end(),
                   [](const PowerSegment& a, const PowerSegment& b) {
                     if (a.enclosure != b.enclosure) {
                       return a.enclosure < b.enclosure;
                     }
                     return a.start < b.start;
                   });
  return segments;
}

Status WritePowerTimelineCsv(const std::string& path, const ExportMeta& meta,
                             const std::vector<Event>& events) {
  std::vector<PowerSegment> segments = BuildPowerTimeline(meta, events);
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(), "enclosure,state,start_us,end_us,duration_s\n");
  for (const PowerSegment& s : segments) {
    std::fprintf(f.get(), "%d,%s,%lld,%lld,%.3f\n", s.enclosure,
                 PowerSegmentStateName(s.state),
                 static_cast<long long>(s.start),
                 static_cast<long long>(s.end), ToSeconds(s.end - s.start));
  }
  return Status::OK();
}

Status WriteChromeTrace(const std::string& path, const ExportMeta& meta,
                        const std::vector<Event>& events) {
  // One trace entry per line; entries are sorted by ts so viewers (and
  // the round-trip test) see a monotone stream. pid 0 = power states,
  // pid 1 = policy decisions/migrations, pid 2 = simulator counters.
  struct Entry {
    SimTime ts;
    std::string json;
  };
  std::vector<Entry> entries;
  char buf[256];

  for (const PowerSegment& s : BuildPowerTimeline(meta, events)) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"power\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":0,\"tid\":%d}",
                  PowerSegmentStateName(s.state),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end - s.start), s.enclosure);
    entries.push_back(Entry{s.start, buf});
  }
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kDecision:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"item %d P%u\",\"cat\":\"decision\","
                      "\"ph\":\"i\",\"ts\":%lld,\"pid\":1,\"tid\":0,"
                      "\"s\":\"p\"}",
                      e.decision.item, e.decision.pattern,
                      static_cast<long long>(e.time));
        entries.push_back(Entry{e.time, buf});
        break;
      case EventKind::kMigrationBegin:
      case EventKind::kMigrationThrottle:
      case EventKind::kMigrationEnd:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s item %d\",\"cat\":\"migration\","
                      "\"ph\":\"i\",\"ts\":%lld,\"pid\":1,\"tid\":1,"
                      "\"s\":\"p\"}",
                      EventKindName(e.kind), e.migration.item,
                      static_cast<long long>(e.time));
        entries.push_back(Entry{e.time, buf});
        break;
      case EventKind::kSimStats:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"sim heap\",\"ph\":\"C\",\"ts\":%lld,"
                      "\"pid\":2,\"args\":{\"live\":%lld,"
                      "\"tombstones\":%lld}}",
                      static_cast<long long>(e.time),
                      static_cast<long long>(e.sim_stats.live_events),
                      static_cast<long long>(e.sim_stats.tombstones));
        entries.push_back(Entry{e.time, buf});
        break;
      default:
        break;
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });

  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(f.get(), "%s%s\n", entries[i].json.c_str(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f.get(), "]}\n");
  return Status::OK();
}

Status ExportAll(const std::string& base, const ExportMeta& meta,
                 const std::vector<Event>& events) {
  std::string stem = base;
  const std::string suffix = ".jsonl";
  if (stem.size() > suffix.size() &&
      stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) == 0) {
    stem.resize(stem.size() - suffix.size());
  }
  ECOSTORE_RETURN_NOT_OK(WriteJsonl(stem + ".jsonl", meta, events));
  ECOSTORE_RETURN_NOT_OK(WritePowerTimelineCsv(stem + ".power.csv", meta,
                                               events));
  return WriteChromeTrace(stem + ".trace.json", meta, events);
}

}  // namespace ecostore::telemetry
