#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "telemetry/analysis/energy_ledger.h"
#include "telemetry/flat_json.h"

namespace ecostore::telemetry {

namespace {

constexpr EventKind kAllKinds[] = {
    EventKind::kPowerState,      EventKind::kIdleGap,
    EventKind::kCacheFlush,      EventKind::kCacheAdmit,
    EventKind::kWriteDelaySet,   EventKind::kPreloadBegin,
    EventKind::kPreloadDone,     EventKind::kPhysicalIo,
    EventKind::kMigrationBegin,  EventKind::kMigrationThrottle,
    EventKind::kMigrationEnd,    EventKind::kBlockMove,
    EventKind::kDecision,        EventKind::kHotCold,
    EventKind::kPeriodAdapt,     EventKind::kPeriodBoundary,
    EventKind::kSimStats,        EventKind::kEnergyFinal,
    EventKind::kWriteDelayAdmit, EventKind::kWriteDelayFlush,
};

EventKind KindFromName(const std::string& name) {
  for (EventKind kind : kAllKinds) {
    if (name == EventKindName(kind)) return kind;
  }
  return EventKind::kNone;
}

void AppendEventJson(std::string* out, const Event& e) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "{\"type\":\"event\",\"t\":%lld,\"kind\":\"%s\"",
                static_cast<long long>(e.time), EventKindName(e.kind));
  *out += buf;
  // Serial runs record shard 0 everywhere; omit the key so their capture
  // bytes are unchanged from pre-sharding captures.
  if (e.shard != 0) AppendKV(out, "shard", e.shard);
  switch (e.kind) {
    case EventKind::kPowerState:
    case EventKind::kEnergyFinal:
      AppendKV(out, "enclosure", e.power.enclosure);
      AppendKV(out, "state", e.power.state);
      AppendKV(out, "spinup_us", e.power.spinup_us);
      AppendKVF(out, "joules", e.power.joules);
      AppendKV(out, "plan", e.power.plan);
      break;
    case EventKind::kIdleGap:
      AppendKV(out, "enclosure", e.idle.enclosure);
      AppendKV(out, "gap_us", e.idle.gap);
      break;
    case EventKind::kCacheFlush:
    case EventKind::kCacheAdmit:
    case EventKind::kWriteDelaySet:
    case EventKind::kWriteDelayAdmit:
    case EventKind::kWriteDelayFlush:
    case EventKind::kPreloadBegin:
    case EventKind::kPreloadDone:
    case EventKind::kPhysicalIo:
      AppendKV(out, "item", e.cache.item);
      AppendKV(out, "enclosure", e.cache.enclosure);
      AppendKV(out, "blocks", e.cache.blocks);
      AppendKV(out, "bytes", e.cache.bytes);
      AppendKV(out, "plan", e.cache.plan);
      break;
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationThrottle:
    case EventKind::kMigrationEnd:
    case EventKind::kBlockMove:
      AppendKV(out, "item", e.migration.item);
      AppendKV(out, "from", e.migration.from);
      AppendKV(out, "to", e.migration.to);
      AppendKV(out, "bytes", e.migration.bytes);
      break;
    case EventKind::kDecision:
      AppendKV(out, "item", e.decision.item);
      AppendKV(out, "pattern", e.decision.pattern);
      AppendKV(out, "actions", e.decision.actions);
      AppendKV(out, "enclosure", e.decision.enclosure);
      AppendKV(out, "long_intervals", e.decision.long_intervals);
      AppendKV(out, "io_sequences", e.decision.io_sequences);
      AppendKV(out, "read_permille", e.decision.read_permille);
      AppendKV(out, "plan", e.decision.plan);
      AppendKV(out, "total_ios", e.decision.total_ios);
      break;
    case EventKind::kHotCold:
      AppendKVU(out, "hot_mask", e.hot_cold.hot_mask);
      AppendKV(out, "n_hot", e.hot_cold.n_hot);
      AppendKV(out, "n_enclosures", e.hot_cold.n_enclosures);
      break;
    case EventKind::kPeriodAdapt:
      AppendKV(out, "prev_period_us", e.adapt.prev_period);
      AppendKV(out, "next_period_us", e.adapt.next_period);
      AppendKV(out, "mean_long_interval_us", e.adapt.mean_long_interval);
      break;
    case EventKind::kPeriodBoundary:
      AppendKV(out, "index", e.period.index);
      AppendKV(out, "period_start_us", e.period.period_start);
      AppendKV(out, "next_period_us", e.period.next_period);
      break;
    case EventKind::kSimStats:
      AppendKV(out, "peak_heap", e.sim_stats.peak_heap_depth);
      AppendKV(out, "live", e.sim_stats.live_events);
      AppendKV(out, "tombstones", e.sim_stats.tombstones);
      AppendKV(out, "cancelled", e.sim_stats.cancelled);
      break;
    case EventKind::kNone:
      break;
  }
  *out += "}\n";
}

Event EventFromJson(const FlatJson& json, EventKind kind) {
  Event e = MakeEvent(json.Int("t"), kind);
  e.shard = static_cast<uint16_t>(json.Int("shard"));
  switch (kind) {
    case EventKind::kPowerState:
    case EventKind::kEnergyFinal:
      e.power.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.power.state = static_cast<uint8_t>(json.Int("state"));
      e.power.spinup_us = json.Int("spinup_us");
      e.power.joules = json.Dbl("joules");
      e.power.plan = static_cast<int32_t>(json.Int("plan"));
      break;
    case EventKind::kIdleGap:
      e.idle.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.idle.gap = json.Int("gap_us");
      break;
    case EventKind::kCacheFlush:
    case EventKind::kCacheAdmit:
    case EventKind::kWriteDelaySet:
    case EventKind::kWriteDelayAdmit:
    case EventKind::kWriteDelayFlush:
    case EventKind::kPreloadBegin:
    case EventKind::kPreloadDone:
    case EventKind::kPhysicalIo:
      e.cache.item = static_cast<DataItemId>(json.Int("item"));
      e.cache.enclosure = static_cast<EnclosureId>(json.Int("enclosure"));
      e.cache.blocks = json.Int("blocks");
      e.cache.bytes = json.Int("bytes");
      e.cache.plan = static_cast<int32_t>(json.Int("plan"));
      break;
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationThrottle:
    case EventKind::kMigrationEnd:
    case EventKind::kBlockMove:
      e.migration.item = static_cast<DataItemId>(json.Int("item"));
      e.migration.from = static_cast<EnclosureId>(json.Int("from"));
      e.migration.to = static_cast<EnclosureId>(json.Int("to"));
      e.migration.bytes = json.Int("bytes");
      break;
    case EventKind::kDecision:
      e.decision.item = static_cast<DataItemId>(json.Int("item"));
      e.decision.pattern = static_cast<uint8_t>(json.Int("pattern"));
      e.decision.actions = static_cast<uint8_t>(json.Int("actions"));
      e.decision.enclosure = static_cast<int16_t>(json.Int("enclosure"));
      e.decision.long_intervals =
          static_cast<int32_t>(json.Int("long_intervals"));
      e.decision.io_sequences =
          static_cast<int32_t>(json.Int("io_sequences"));
      e.decision.read_permille =
          static_cast<int32_t>(json.Int("read_permille"));
      e.decision.plan = static_cast<int32_t>(json.Int("plan"));
      e.decision.total_ios = json.Int("total_ios");
      break;
    case EventKind::kHotCold:
      e.hot_cold.hot_mask = json.U64("hot_mask");
      e.hot_cold.n_hot = static_cast<int32_t>(json.Int("n_hot"));
      e.hot_cold.n_enclosures =
          static_cast<int32_t>(json.Int("n_enclosures"));
      break;
    case EventKind::kPeriodAdapt:
      e.adapt.prev_period = json.Int("prev_period_us");
      e.adapt.next_period = json.Int("next_period_us");
      e.adapt.mean_long_interval = json.Int("mean_long_interval_us");
      break;
    case EventKind::kPeriodBoundary:
      e.period.index = static_cast<int32_t>(json.Int("index"));
      e.period.period_start = json.Int("period_start_us");
      e.period.next_period = json.Int("next_period_us");
      break;
    case EventKind::kSimStats:
      e.sim_stats.peak_heap_depth = json.Int("peak_heap");
      e.sim_stats.live_events = json.Int("live");
      e.sim_stats.tombstones = json.Int("tombstones");
      e.sim_stats.cancelled = json.Int("cancelled");
      break;
    case EventKind::kNone:
      break;
  }
  return e;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

const char* PowerSegmentStateName(uint8_t state) {
  switch (state) {
    case 0:
      return "off";
    case 1:
      return "spinning_up";
    case 2:
      return "on";
  }
  return "?";
}

Status WriteJsonl(const std::string& path, const ExportMeta& meta,
                  const std::vector<Event>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::string head;
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"meta\",\"workload\":\"%s\",\"policy\":\"%s\","
                  "\"num_enclosures\":%d,\"duration_us\":%lld",
                  meta.workload.c_str(), meta.policy.c_str(),
                  meta.num_enclosures, static_cast<long long>(meta.duration));
    head += buf;
  }
  if (meta.has_power_model) {
    AppendKV(&head, "has_power_model", 1);
    AppendKVF(&head, "idle_power_w", meta.idle_power_w);
    AppendKVF(&head, "active_power_w", meta.active_power_w);
    AppendKVF(&head, "off_power_w", meta.off_power_w);
    AppendKVF(&head, "spinup_power_w", meta.spinup_power_w);
    AppendKVF(&head, "controller_power_w", meta.controller_power_w);
    AppendKV(&head, "spinup_time_us", meta.spinup_time_us);
    AppendKV(&head, "break_even_us", meta.break_even_us);
    AppendKV(&head, "spindown_timeout_us", meta.spindown_timeout_us);
    AppendKV(&head, "cache_total_bytes", meta.cache_total_bytes);
    AppendKV(&head, "preload_area_bytes", meta.preload_area_bytes);
    AppendKV(&head, "write_delay_area_bytes", meta.write_delay_area_bytes);
    AppendKVF(&head, "enclosure_energy_j", meta.enclosure_energy_j);
    AppendKVF(&head, "controller_energy_j", meta.controller_energy_j);
  }
  AppendKV(&head, "events", static_cast<int64_t>(events.size()));
  head += "}\n";
  std::fwrite(head.data(), 1, head.size(), f.get());
  std::string line;
  for (const LatencySlot& slot : meta.latency) {
    if (slot.hist.count() == 0) continue;
    line.clear();
    line += "{\"type\":\"latency\"";
    AppendKV(&line, "pattern", slot.pattern);
    AppendKV(&line, "outcome", slot.outcome);
    AppendKV(&line, "count", slot.hist.count());
    AppendKV(&line, "sum_us", slot.hist.sum());
    AppendKV(&line, "max_us", slot.hist.max());
    line += ",\"buckets\":\"" + slot.hist.EncodeBuckets() + "\"}\n";
    std::fwrite(line.data(), 1, line.size(), f.get());
  }
  for (const Event& e : events) {
    line.clear();
    AppendEventJson(&line, e);
    std::fwrite(line.data(), 1, line.size(), f.get());
  }
  return Status::OK();
}

namespace {

/// Reads one '\n'-terminated line of arbitrary length (the latency lines
/// carry bucket strings that can exceed any fixed buffer). Returns false
/// on EOF with nothing read.
bool ReadLine(std::FILE* f, std::string* line) {
  line->clear();
  char buf[1024];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    *line += buf;
    if (!line->empty() && line->back() == '\n') return true;
  }
  return !line->empty();
}

Status LineError(const std::string& path, long lineno, const char* what) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ":%ld: ", lineno);
  return Status::InvalidArgument(path + buf + what);
}

}  // namespace

Status CaptureTailParser::Consume(const std::string& raw) {
  // Defensive trim: ReadJsonlChunk and ParseJsonl both strip the line
  // terminator, but a caller feeding raw lines should still work.
  const std::string* linep = &raw;
  std::string trimmed;
  if (!raw.empty() && (raw.back() == '\n' || raw.back() == '\r')) {
    trimmed = raw;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    linep = &trimmed;
  }
  const std::string& line = *linep;
  if (line.empty()) return Status::OK();
  if (line.front() != '{') {
    return Status::InvalidArgument("line is not a JSON object");
  }
  if (line.back() != '}') {
    return Status::InvalidArgument("unterminated JSON object (truncated?)");
  }
  FlatJson json{line};
  std::string type = json.Str("type");
  if (type.empty()) {
    return Status::InvalidArgument("missing \"type\" field");
  }
  if (type == "meta") {
    have_meta_ = true;
    if (json.Has("events")) declared_events_ = json.Int("events");
    meta_.workload = json.Str("workload");
    meta_.policy = json.Str("policy");
    meta_.num_enclosures = static_cast<int>(json.Int("num_enclosures"));
    meta_.duration = json.Int("duration_us");
    meta_.has_power_model = json.Int("has_power_model") != 0;
    if (meta_.has_power_model) {
      meta_.idle_power_w = json.Dbl("idle_power_w");
      meta_.active_power_w = json.Dbl("active_power_w");
      meta_.off_power_w = json.Dbl("off_power_w");
      meta_.spinup_power_w = json.Dbl("spinup_power_w");
      meta_.controller_power_w = json.Dbl("controller_power_w");
      meta_.spinup_time_us = json.Int("spinup_time_us");
      meta_.break_even_us = json.Int("break_even_us");
      meta_.spindown_timeout_us = json.Int("spindown_timeout_us");
      meta_.cache_total_bytes = json.Int("cache_total_bytes");
      meta_.preload_area_bytes = json.Int("preload_area_bytes");
      meta_.write_delay_area_bytes = json.Int("write_delay_area_bytes");
      meta_.enclosure_energy_j = json.Dbl("enclosure_energy_j");
      meta_.controller_energy_j = json.Dbl("controller_energy_j");
    }
    return Status::OK();
  }
  if (type == "latency") {
    LatencySlot slot;
    slot.pattern = static_cast<uint8_t>(json.Int("pattern"));
    slot.outcome = static_cast<uint8_t>(json.Int("outcome"));
    slot.hist.DecodeBuckets(json.Str("buckets"), json.Int("sum_us"),
                            json.Int("max_us"));
    if (slot.hist.count() != json.Int("count")) {
      return Status::InvalidArgument(
          "latency bucket counts disagree with \"count\"");
    }
    meta_.latency.push_back(std::move(slot));
    return Status::OK();
  }
  if (type == "event") {
    EventKind kind = KindFromName(json.Str("kind"));
    if (kind == EventKind::kNone) {
      return Status::InvalidArgument("unknown event kind");
    }
    events_.push_back(EventFromJson(json, kind));
    consumed_events_++;
    return Status::OK();
  }
  // Unknown "type" values are skipped so the format can grow.
  return Status::OK();
}

std::vector<Event> CaptureTailParser::TakeEvents() {
  std::vector<Event> out = std::move(events_);
  events_.clear();
  return out;
}

Status ReadJsonlChunk(const std::string& path, int64_t offset,
                      JsonlChunk* chunk) {
  chunk->lines.clear();
  chunk->next_offset = offset;
  chunk->partial_tail = false;
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::IoError("cannot read " + path);
  if (offset > 0 &&
      std::fseek(f.get(), static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IoError("cannot seek in " + path);
  }
  std::string pending;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    size_t start = 0;
    for (size_t i = 0; i < n; ++i) {
      if (buf[i] != '\n') continue;
      pending.append(buf + start, i - start);
      start = i + 1;
      // Consume the line's bytes (incl. the '\n') BEFORE stripping CR.
      chunk->next_offset += static_cast<int64_t>(pending.size()) + 1;
      while (!pending.empty() && pending.back() == '\r') pending.pop_back();
      if (!pending.empty()) chunk->lines.push_back(std::move(pending));
      pending.clear();
    }
    pending.append(buf + start, n - start);
  }
  // Unterminated trailing bytes: a writer mid-append. Leave them unread —
  // the caller resumes at next_offset once the writer finishes the line.
  chunk->partial_tail = !pending.empty();
  return Status::OK();
}

Status ParseJsonl(const std::string& path, ExportMeta* meta,
                  std::vector<Event>* events) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IoError("cannot read " + path);
  events->clear();
  CaptureTailParser parser;
  std::string line;
  long lineno = 0;
  while (ReadLine(f.get(), &line)) {
    lineno++;
    // Strip trailing newline / CR so structural checks see the payload.
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    Status st = parser.Consume(line);
    if (!st.ok()) return LineError(path, lineno, st.message().c_str());
  }
  if (!parser.have_meta()) {
    return Status::InvalidArgument(path + ": no meta line found");
  }
  *events = parser.TakeEvents();
  if (meta != nullptr) *meta = parser.meta();
  if (parser.declared_events() >= 0 &&
      parser.declared_events() != static_cast<int64_t>(events->size())) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  ": meta declares %lld events but %zu parsed (truncated?)",
                  static_cast<long long>(parser.declared_events()),
                  events->size());
    return Status::InvalidArgument(path + buf);
  }
  return Status::OK();
}

std::vector<PowerSegment> BuildPowerTimeline(
    const ExportMeta& meta, const std::vector<Event>& events) {
  int n = meta.num_enclosures;
  if (n <= 0) {
    for (const Event& e : events) {
      if (e.kind == EventKind::kPowerState && e.power.enclosure >= n) {
        n = e.power.enclosure + 1;
      }
    }
  }
  std::vector<PowerSegment> segments;
  // Every enclosure starts On at t = 0 (the array boots powered up).
  std::vector<SimTime> seg_start(static_cast<size_t>(n), 0);
  std::vector<uint8_t> state(static_cast<size_t>(n), 2);
  auto close = [&](size_t enc, SimTime at, uint8_t next_state) {
    if (at > seg_start[enc]) {
      segments.push_back(PowerSegment{static_cast<EnclosureId>(enc),
                                      seg_start[enc], at, state[enc]});
    }
    seg_start[enc] = at;
    state[enc] = next_state;
  };
  for (const Event& e : events) {
    if (e.kind != EventKind::kPowerState) continue;
    if (e.power.enclosure < 0 || e.power.enclosure >= n) continue;
    auto enc = static_cast<size_t>(e.power.enclosure);
    if (e.power.state == 1) {
      // Spin-up initiation; the On edge follows after the configured
      // spin-up latency carried in the payload.
      close(enc, e.time, 1);
      close(enc, e.time + e.power.spinup_us, 2);
    } else {
      close(enc, e.time, e.power.state);
    }
  }
  for (size_t enc = 0; enc < static_cast<size_t>(n); ++enc) {
    SimTime end = std::max(meta.duration, seg_start[enc]);
    if (end > seg_start[enc]) {
      segments.push_back(PowerSegment{static_cast<EnclosureId>(enc),
                                      seg_start[enc], end, state[enc]});
    }
  }
  std::stable_sort(segments.begin(), segments.end(),
                   [](const PowerSegment& a, const PowerSegment& b) {
                     if (a.enclosure != b.enclosure) {
                       return a.enclosure < b.enclosure;
                     }
                     return a.start < b.start;
                   });
  return segments;
}

Status WritePowerTimelineCsv(const std::string& path, const ExportMeta& meta,
                             const std::vector<Event>& events) {
  std::vector<PowerSegment> segments = BuildPowerTimeline(meta, events);
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(), "enclosure,state,start_us,end_us,duration_s\n");
  for (const PowerSegment& s : segments) {
    std::fprintf(f.get(), "%d,%s,%lld,%lld,%.3f\n", s.enclosure,
                 PowerSegmentStateName(s.state),
                 static_cast<long long>(s.start),
                 static_cast<long long>(s.end), ToSeconds(s.end - s.start));
  }
  return Status::OK();
}

Status WriteChromeTrace(const std::string& path, const ExportMeta& meta,
                        const std::vector<Event>& events) {
  // One trace entry per line; entries are sorted by ts so viewers (and
  // the round-trip test) see a monotone stream. pid 0 = power states,
  // pid 1 = policy decisions/migrations, pid 2 = simulator counters,
  // pid 3 = energy-ledger counters (cumulative off-window credit/debit
  // per enclosure and the running mispredict count).
  struct Entry {
    SimTime ts;
    std::string json;
  };
  std::vector<Entry> entries;
  char buf[256];

  for (const PowerSegment& s : BuildPowerTimeline(meta, events)) {
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"cat\":\"power\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":0,\"tid\":%d}",
                  PowerSegmentStateName(s.state),
                  static_cast<long long>(s.start),
                  static_cast<long long>(s.end - s.start), s.enclosure);
    entries.push_back(Entry{s.start, buf});
  }
  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kDecision:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"item %d P%u\",\"cat\":\"decision\","
                      "\"ph\":\"i\",\"ts\":%lld,\"pid\":1,\"tid\":0,"
                      "\"s\":\"p\"}",
                      e.decision.item, e.decision.pattern,
                      static_cast<long long>(e.time));
        entries.push_back(Entry{e.time, buf});
        break;
      case EventKind::kMigrationBegin:
      case EventKind::kMigrationThrottle:
      case EventKind::kMigrationEnd:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s item %d\",\"cat\":\"migration\","
                      "\"ph\":\"i\",\"ts\":%lld,\"pid\":1,\"tid\":1,"
                      "\"s\":\"p\"}",
                      EventKindName(e.kind), e.migration.item,
                      static_cast<long long>(e.time));
        entries.push_back(Entry{e.time, buf});
        break;
      case EventKind::kSimStats:
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"sim heap\",\"ph\":\"C\",\"ts\":%lld,"
                      "\"pid\":2,\"args\":{\"live\":%lld,"
                      "\"tombstones\":%lld}}",
                      static_cast<long long>(e.time),
                      static_cast<long long>(e.sim_stats.live_events),
                      static_cast<long long>(e.sim_stats.tombstones));
        entries.push_back(Entry{e.time, buf});
        break;
      default:
        break;
    }
  }

  // Counter tracks from the energy ledger: one track per enclosure with
  // the cumulative off-window credit/debit, plus a global mispredict
  // count, each stepping at the instant the window closes.
  if (meta.has_power_model) {
    analysis::EnergyLedger ledger = analysis::BuildLedger(meta, events);
    std::map<EnclosureId, std::pair<double, double>> cum;
    int64_t mispredicts = 0;
    for (const analysis::OffWindow& w : ledger.off_windows) {
      auto& c = cum[w.enclosure];
      c.first += w.credit_j;
      c.second += w.debit_j;
      std::snprintf(buf, sizeof(buf),
                    "{\"name\":\"ledger enc %d\",\"ph\":\"C\",\"ts\":%lld,"
                    "\"pid\":3,\"args\":{\"credit_j\":%.3f,"
                    "\"debit_j\":%.3f}}",
                    w.enclosure, static_cast<long long>(w.end), c.first,
                    c.second);
      entries.push_back(Entry{w.end, buf});
      if (w.mispredict) {
        mispredicts++;
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"ledger mispredicts\",\"ph\":\"C\","
                      "\"ts\":%lld,\"pid\":3,\"args\":{\"count\":%lld}}",
                      static_cast<long long>(w.end),
                      static_cast<long long>(mispredicts));
        entries.push_back(Entry{w.end, buf});
      }
    }
  }

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });

  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    std::fprintf(f.get(), "%s%s\n", entries[i].json.c_str(),
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f.get(), "]}\n");
  return Status::OK();
}

Status ExportAll(const std::string& base, const ExportMeta& meta,
                 const std::vector<Event>& events) {
  std::string stem = base;
  const std::string suffix = ".jsonl";
  if (stem.size() > suffix.size() &&
      stem.compare(stem.size() - suffix.size(), suffix.size(), suffix) == 0) {
    stem.resize(stem.size() - suffix.size());
  }
  ECOSTORE_RETURN_NOT_OK(WriteJsonl(stem + ".jsonl", meta, events));
  ECOSTORE_RETURN_NOT_OK(WritePowerTimelineCsv(stem + ".power.csv", meta,
                                               events));
  return WriteChromeTrace(stem + ".trace.json", meta, events);
}

}  // namespace ecostore::telemetry
