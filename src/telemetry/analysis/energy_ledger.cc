#include "telemetry/analysis/energy_ledger.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

namespace ecostore::telemetry::analysis {

const char* WakeCauseName(WakeCause cause) {
  switch (cause) {
    case WakeCause::kDemand: return "demand";
    case WakeCause::kFlush: return "flush";
    case WakeCause::kPreload: return "preload";
    case WakeCause::kMigration: return "migration";
    case WakeCause::kRunEnd: return "run_end";
  }
  return "?";
}

const char* AdvisoryKindName(AdvisoryEntry::Kind kind) {
  switch (kind) {
    case AdvisoryEntry::Kind::kPreload: return "preload";
    case AdvisoryEntry::Kind::kWriteDelay: return "write_delay";
    case AdvisoryEntry::Kind::kWriteDelayOccupancy:
      return "write_delay_occupancy";
  }
  return "?";
}

namespace {

/// Per-enclosure walker state for the off-window pass.
struct EncState {
  bool off = false;
  SimTime off_since = 0;
  double off_joules = 0.0;
  int32_t off_plan = 0;
  int active_migrations = 0;
  bool has_final = false;
  double final_j = 0.0;
};

}  // namespace

EnergyLedger BuildLedger(const ExportMeta& meta,
                         const std::vector<Event>& events) {
  EnergyLedger ledger;
  const double idle_w = meta.idle_power_w;
  const double spin_extra_j =
      (meta.spinup_power_w - meta.idle_power_w) * ToSeconds(meta.spinup_time_us);

  int n = meta.num_enclosures;
  for (const Event& e : events) {
    if (e.kind == EventKind::kPowerState && e.power.enclosure >= n) {
      n = e.power.enclosure + 1;
    }
  }
  std::vector<EncState> enc(static_cast<size_t>(std::max(n, 0)));
  bool controller_final = false;
  double controller_j = 0.0;

  // Plan epoch start times (first decision event carrying the plan id);
  // used to bound the advisory occupancy windows.
  std::map<int32_t, SimTime> plan_start;
  std::unordered_map<DataItemId, DecisionPayload> last_decision;
  // Advisory raw material, resolved after all off windows are known.
  struct PendingCache {
    AdvisoryEntry::Kind kind;
    DataItemId item;
    EnclosureId enclosure;
    SimTime time;
    int32_t plan;
    int64_t bytes;
  };
  std::vector<PendingCache> pending;
  /// Set-level kWriteDelaySet entries, used only when the capture has no
  /// per-item membership deltas (legacy fallback, DESIGN.md §10).
  std::vector<PendingCache> legacy_wd;
  std::map<int32_t, SimTime> first_wd_in_plan;

  // Looks around index i for same-timestamp events that identify why an
  // enclosure woke up (flush / preload destaging beats an active
  // migration beats a plain demand miss), and for the kPhysicalIo detail
  // event naming the item whose I/O forced the wake.
  auto probe_wake = [&](size_t i, EnclosureId enclosure, WakeCause* cause,
                        DataItemId* item) {
    const SimTime t = events[i].time;
    *cause = enc[static_cast<size_t>(enclosure)].active_migrations > 0
                 ? WakeCause::kMigration
                 : WakeCause::kDemand;
    *item = kInvalidDataItem;
    auto inspect = [&](const Event& e) {
      if (e.kind == EventKind::kCacheFlush &&
          e.cache.enclosure == enclosure) {
        *cause = WakeCause::kFlush;
      } else if (e.kind == EventKind::kPreloadBegin &&
                 e.cache.enclosure == enclosure &&
                 *cause != WakeCause::kFlush) {
        *cause = WakeCause::kPreload;
      } else if (e.kind == EventKind::kPhysicalIo &&
                 e.cache.enclosure == enclosure &&
                 *item == kInvalidDataItem) {
        *item = e.cache.item;
      }
    };
    for (size_t j = i; j-- > 0 && events[j].time == t;) inspect(events[j]);
    for (size_t j = i + 1; j < events.size() && events[j].time == t; ++j) {
      inspect(events[j]);
    }
  };

  auto close_window = [&](EnclosureId enclosure, SimTime end, double joules,
                          WakeCause cause, DataItemId wake_item,
                          bool terminal) {
    EncState& s = enc[static_cast<size_t>(enclosure)];
    OffWindow w;
    w.enclosure = enclosure;
    w.start = s.off_since;
    w.end = end;
    w.plan = s.off_plan;
    w.actual_j = joules - s.off_joules;
    const SimDuration dwell = end - s.off_since;
    w.credit_j = idle_w * ToSeconds(dwell) - w.actual_j;
    w.debit_j = terminal ? 0.0 : spin_extra_j;
    w.wake = cause;
    w.wake_item = wake_item;
    w.mispredict = !terminal && dwell < meta.break_even_us;
    if (wake_item != kInvalidDataItem) {
      auto it = last_decision.find(wake_item);
      if (it != last_decision.end()) {
        w.has_culprit = true;
        w.culprit = it->second;
      }
    }
    ledger.off_credit_j += w.credit_j;
    ledger.off_debit_j += w.debit_j;
    ledger.off_actual_j += w.actual_j;
    ledger.off_dwell_us += dwell;
    if (w.mispredict) {
      ledger.mispredicts++;
      ledger.mispredict_loss_j += w.debit_j - w.credit_j;
    }
    ledger.off_windows.push_back(w);
    s.off = false;
  };

  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    switch (e.kind) {
      case EventKind::kPowerState: {
        if (e.power.enclosure < 0 || e.power.enclosure >= n) break;
        EncState& s = enc[static_cast<size_t>(e.power.enclosure)];
        if (e.power.state == 0) {  // Off
          s.off = true;
          s.off_since = e.time;
          s.off_joules = e.power.joules;
          s.off_plan = e.power.plan;
        } else if (e.power.state == 1 && s.off) {  // SpinningUp
          WakeCause cause;
          DataItemId item;
          probe_wake(i, e.power.enclosure, &cause, &item);
          close_window(e.power.enclosure, e.time, e.power.joules, cause,
                       item, /*terminal=*/false);
        }
        break;
      }
      case EventKind::kEnergyFinal: {
        if (e.power.enclosure == kInvalidEnclosure) {
          controller_final = true;
          controller_j = e.power.joules;
          break;
        }
        if (e.power.enclosure < 0 || e.power.enclosure >= n) break;
        EncState& s = enc[static_cast<size_t>(e.power.enclosure)];
        if (s.off) {
          close_window(e.power.enclosure, e.time, e.power.joules,
                       WakeCause::kRunEnd, kInvalidDataItem,
                       /*terminal=*/true);
        }
        s.has_final = true;
        s.final_j = e.power.joules;
        break;
      }
      case EventKind::kMigrationBegin:
      case EventKind::kMigrationEnd: {
        const int delta = e.kind == EventKind::kMigrationBegin ? 1 : -1;
        for (EnclosureId enclosure : {e.migration.from, e.migration.to}) {
          if (enclosure >= 0 && enclosure < n) {
            int& c = enc[static_cast<size_t>(enclosure)].active_migrations;
            c = std::max(0, c + delta);
          }
        }
        if (e.kind == EventKind::kMigrationEnd && e.migration.bytes >= 0) {
          ledger.migrations++;
        }
        break;
      }
      case EventKind::kDecision: {
        ledger.decisions++;
        last_decision[e.decision.item] = e.decision;
        const int32_t plan = e.decision.plan;
        auto [it, inserted] = plan_start.emplace(plan, e.time);
        if (!inserted) it->second = std::min(it->second, e.time);
        break;
      }
      case EventKind::kPreloadBegin:
        ledger.preloads++;
        pending.push_back(PendingCache{AdvisoryEntry::Kind::kPreload,
                                       e.cache.item, e.cache.enclosure,
                                       e.time, e.cache.plan, e.cache.bytes});
        break;
      case EventKind::kWriteDelaySet: {
        ledger.write_delays++;
        legacy_wd.push_back(PendingCache{AdvisoryEntry::Kind::kWriteDelay,
                                         e.cache.item, e.cache.enclosure,
                                         e.time, e.cache.plan,
                                         e.cache.bytes});
        auto [it, inserted] = first_wd_in_plan.emplace(e.cache.plan, e.time);
        if (!inserted) it->second = std::min(it->second, e.time);
        break;
      }
      case EventKind::kWriteDelayAdmit: {
        ledger.write_delay_admits++;
        pending.push_back(PendingCache{AdvisoryEntry::Kind::kWriteDelay,
                                       e.cache.item, e.cache.enclosure,
                                       e.time, e.cache.plan, e.cache.bytes});
        auto [it, inserted] = first_wd_in_plan.emplace(e.cache.plan, e.time);
        if (!inserted) it->second = std::min(it->second, e.time);
        break;
      }
      case EventKind::kWriteDelayFlush: {
        ledger.write_delay_flushes++;
        ledger.write_delay_flush_bytes += e.cache.bytes;
        break;
      }
      default:
        break;
    }
  }
  ledger.plans =
      plan_start.empty() ? 0 : static_cast<int64_t>(plan_start.rbegin()->first);

  // Per-item write-delay attribution when the capture carries membership
  // deltas; otherwise keep the old set-level advisory entries.
  ledger.per_item_write_delay = ledger.write_delay_admits > 0;
  if (!ledger.per_item_write_delay) {
    pending.insert(pending.end(), legacy_wd.begin(), legacy_wd.end());
  }

  // Reconciliation: the per-component cumulative counters at the horizon
  // must telescope to the run's measured totals. %.17g round-trips, so a
  // capture/parse cycle keeps this exact.
  bool all_finals = controller_final && n > 0;
  double sum_final = 0.0;
  for (const EncState& s : enc) {
    all_finals = all_finals && s.has_final;
    sum_final += s.final_j;
  }
  ledger.has_finals = all_finals;
  if (all_finals) {
    ledger.ledger_enclosure_j = sum_final;
    ledger.ledger_controller_j = controller_j;
    const double measured = meta.enclosure_energy_j + meta.controller_energy_j;
    const double accounted = sum_final + controller_j;
    const double denom = std::max(std::fabs(measured), 1e-12);
    ledger.reconcile_rel_err = std::fabs(accounted - measured) / denom;
  }

  // Advisory resolution (documented model; excluded from reconciliation).
  auto plan_end = [&](int32_t plan) -> SimTime {
    auto it = plan_start.upper_bound(plan);
    return it != plan_start.end() ? it->second : meta.duration;
  };
  auto off_windows_after = [&](EnclosureId enclosure, SimTime from,
                               SimTime until) {
    int64_t count = 0;
    for (const OffWindow& w : ledger.off_windows) {
      if (w.enclosure == enclosure && w.start >= from && w.start < until) {
        count++;
      }
    }
    return count;
  };
  const double cache_bytes =
      std::max<double>(1.0, static_cast<double>(meta.cache_total_bytes));
  for (const PendingCache& p : pending) {
    AdvisoryEntry a;
    a.kind = p.kind;
    a.item = p.item;
    a.enclosure = p.enclosure;
    a.time = p.time;
    a.plan = p.plan;
    const SimTime end = std::max(plan_end(p.plan), p.time);
    const int64_t later_off = off_windows_after(p.enclosure, p.time, end);
    // Credit at most one avoided spin-up per entry, and only when the
    // enclosure actually went off later in the plan (otherwise holding
    // the data in cache avoided nothing).
    a.credit_j = later_off > 0 ? spin_extra_j : 0.0;
    if (p.kind == AdvisoryEntry::Kind::kPreload) {
      a.debit_j = meta.controller_power_w *
                  (static_cast<double>(p.bytes) / cache_bytes) *
                  ToSeconds(end - p.time);
    }
    ledger.advisory_credit_j += a.credit_j;
    ledger.advisory_debit_j += a.debit_j;
    ledger.advisory.push_back(a);
  }
  // Write-delay occupancy: one debit per plan for the reserved area, not
  // per item (the area is shared by the plan's whole write-delay set).
  for (const auto& [plan, first_t] : first_wd_in_plan) {
    AdvisoryEntry a;
    a.kind = AdvisoryEntry::Kind::kWriteDelayOccupancy;
    a.time = first_t;
    a.plan = plan;
    const SimTime end = std::max(plan_end(plan), first_t);
    a.debit_j = meta.controller_power_w *
                (static_cast<double>(meta.write_delay_area_bytes) /
                 cache_bytes) *
                ToSeconds(end - first_t);
    ledger.advisory_debit_j += a.debit_j;
    ledger.advisory.push_back(a);
  }
  return ledger;
}

}  // namespace ecostore::telemetry::analysis
