#ifndef ECOSTORE_TELEMETRY_ANALYSIS_ENERGY_LEDGER_H_
#define ECOSTORE_TELEMETRY_ANALYSIS_ENERGY_LEDGER_H_

// Energy-attribution ledger: walks a drained telemetry stream (in-process
// or parsed back from a JSONL capture) and charges joules to the
// individual decisions that caused them.
//
// The exact account is the *off-window* ledger. Every kPowerState event
// carries the enclosure's cumulative energy counter at the event instant,
// so an Off -> SpinningUp pair bounds a window whose measured energy is a
// plain difference of counters; windows are disjoint, and together with
// the kEnergyFinal events they telescope to exactly the run's
// ExperimentMetrics energy (reconcile_rel_err below). Per window:
//
//   credit = idle_power * dwell - measured        (energy saved vs idling)
//   debit  = (spinup_power - idle_power) * t_su   (extra paid to wake up)
//
// A window whose dwell is shorter than the configured break-even time has
// credit < debit by construction: the spin-down lost energy. Those are
// the *mispredicts*; each is tied back to the plan epoch that allowed the
// spin-down and — when the per-I/O detail class was recorded — to the
// classification decision (with its recorded reason) of the item whose
// demand I/O forced the wake-up.
//
// Preload / write-delay entries are *advisory*: their true savings (the
// spin-ups that did not happen) are counterfactual, so they use a
// documented model — credit one avoided spin-up if the target enclosure
// actually went off later in the same plan, debit the controller power
// share of the cache space held for the plan's remainder. Advisory
// entries are reported separately and excluded from reconciliation.

#include <cstdint>
#include <vector>

#include "telemetry/export.h"

namespace ecostore::telemetry::analysis {

/// Why an off window ended.
enum class WakeCause : uint8_t {
  kDemand = 0,     ///< demand read miss reached the enclosure
  kFlush = 1,      ///< cache flush destaged to the enclosure
  kPreload = 2,    ///< a preload bulk read targeted the enclosure
  kMigration = 3,  ///< an active migration touched the enclosure
  kRunEnd = 4,     ///< still off at the horizon (terminal window)
};

const char* WakeCauseName(WakeCause cause);

/// One enclosure power-off window, exactly accounted.
struct OffWindow {
  EnclosureId enclosure = kInvalidEnclosure;
  SimTime start = 0;
  SimTime end = 0;
  int32_t plan = 0;  ///< plan epoch in force when the spin-down fired
  double actual_j = 0.0;  ///< measured joules while off (counter delta)
  double credit_j = 0.0;  ///< idle_power * dwell - actual_j
  double debit_j = 0.0;   ///< spin-up extra over idle; 0 for terminal
  WakeCause wake = WakeCause::kDemand;
  DataItemId wake_item = kInvalidDataItem;  ///< item of the waking I/O
  bool mispredict = false;  ///< non-terminal and dwell < break-even
  bool has_culprit = false;
  /// Latest classification of wake_item before the wake (the decision —
  /// with its recorded reason fields — that mispredicted the item).
  DecisionPayload culprit;
};

/// One advisory (model-based) cache-decision entry.
struct AdvisoryEntry {
  enum class Kind : uint8_t {
    kPreload = 0,            ///< one kPreloadBegin
    kWriteDelay = 1,         ///< one item entering the write-delay set
    kWriteDelayOccupancy = 2 ///< per-plan write-delay area occupancy debit
  };
  Kind kind = Kind::kPreload;
  DataItemId item = kInvalidDataItem;
  EnclosureId enclosure = kInvalidEnclosure;
  SimTime time = 0;
  int32_t plan = 0;
  double credit_j = 0.0;
  double debit_j = 0.0;
};

const char* AdvisoryKindName(AdvisoryEntry::Kind kind);

struct EnergyLedger {
  std::vector<OffWindow> off_windows;
  std::vector<AdvisoryEntry> advisory;

  // Exact off-window account.
  double off_credit_j = 0.0;
  double off_debit_j = 0.0;
  double off_actual_j = 0.0;
  SimDuration off_dwell_us = 0;
  int64_t mispredicts = 0;
  double mispredict_loss_j = 0.0;  ///< sum of (debit - credit) over them

  // Advisory account (model estimates, not reconciled).
  double advisory_credit_j = 0.0;
  double advisory_debit_j = 0.0;

  // Reconciliation against the run's measured energy: the kEnergyFinal
  // counters must telescope to meta.enclosure_energy_j +
  // meta.controller_energy_j. has_finals is false for captures from
  // builds that predate kEnergyFinal (reconciliation then untestable).
  bool has_finals = false;
  double ledger_enclosure_j = 0.0;
  double ledger_controller_j = 0.0;
  double reconcile_rel_err = 0.0;

  // Stream tallies used by the summary.
  int64_t plans = 0;
  int64_t decisions = 0;
  int64_t migrations = 0;
  int64_t preloads = 0;
  int64_t write_delays = 0;

  // Per-item write-delay attribution (DESIGN.md §10). True when the
  // capture carries kWriteDelayAdmit/kWriteDelayFlush membership deltas;
  // advisory kWriteDelay entries are then per item with a real enclosure
  // (so the avoided-spin-up credit model applies). Captures from builds
  // that only emitted the set-level kWriteDelaySet aggregate fall back to
  // one enclosure-less advisory entry per set update.
  bool per_item_write_delay = false;
  int64_t write_delay_admits = 0;
  int64_t write_delay_flushes = 0;
  int64_t write_delay_flush_bytes = 0;
};

/// Builds the ledger from a time-ordered event stream. `meta` must carry
/// the power model (has_power_model); otherwise only the stream tallies
/// are filled.
EnergyLedger BuildLedger(const ExportMeta& meta,
                         const std::vector<Event>& events);

}  // namespace ecostore::telemetry::analysis

#endif  // ECOSTORE_TELEMETRY_ANALYSIS_ENERGY_LEDGER_H_
