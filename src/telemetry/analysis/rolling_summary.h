#ifndef ECOSTORE_TELEMETRY_ANALYSIS_ROLLING_SUMMARY_H_
#define ECOSTORE_TELEMETRY_ANALYSIS_ROLLING_SUMMARY_H_

// Rolling windows over the streaming ledger: a StreamConsumer that owns
// an IncrementalEnergyLedger, closes fixed sim-time windows [kW, (k+1)W)
// as the frontier passes them, and reports each window as the exact
// difference of the ledger's cumulative exact account (off-window
// credit/debit/actual/dwell, mispredict flags, per-enclosure roll-up,
// stream tallies). Advisory entries are deliberately NOT windowed — their
// model is future-dependent (plan-end bounded), so they only appear in
// the final cumulative record.
//
// Retention is bounded: at most Options::retention closed windows are
// kept in memory; the JSONL sink (when set) receives every window as an
// append-only line flushed immediately, which is what `eco_report tail`
// follows. Window semantics, the latency-delta attribution rule and the
// equivalence argument are documented in DESIGN.md §14.

#include <cstdint>
#include <cstdio>
#include <deque>
#include <vector>

#include "telemetry/analysis/incremental_ledger.h"
#include "telemetry/analysis/latency_histogram.h"

namespace ecostore::telemetry::analysis {

/// One closed rolling window (all energy fields are window deltas of the
/// exact account; `cum_*` fields are the cumulative totals at `end`).
struct RollingWindow {
  int64_t index = 0;
  SimTime start = 0;
  SimTime end = 0;
  bool terminal = false;  ///< the remainder window closed at run end

  // Exact-account deltas.
  double credit_j = 0.0;
  double debit_j = 0.0;
  double actual_j = 0.0;
  SimDuration dwell_us = 0;
  int64_t off_windows = 0;
  int64_t mispredicts = 0;
  double mispredict_loss_j = 0.0;

  // Stream-tally deltas.
  int64_t decisions = 0;
  int64_t migrations = 0;
  int64_t preloads = 0;
  int64_t write_delays = 0;
  int64_t write_delay_admits = 0;
  int64_t write_delay_flushes = 0;
  int64_t write_delay_flush_bytes = 0;

  // Cumulative exact account at window end.
  double cum_credit_j = 0.0;
  double cum_debit_j = 0.0;
  int64_t cum_off_windows = 0;
  int64_t cum_mispredicts = 0;

  /// Per-enclosure roll-up of the off windows that closed in this window.
  struct EncRoll {
    EnclosureId enclosure = kInvalidEnclosure;
    int64_t windows = 0;
    int64_t mispredicts = 0;
    double credit_j = 0.0;
    double debit_j = 0.0;
    SimDuration dwell_us = 0;
  };
  std::vector<EncRoll> enclosures;

  /// Mispredicted off windows that closed in this window.
  struct Flag {
    EnclosureId enclosure = kInvalidEnclosure;
    SimTime start = 0;
    SimTime end = 0;
    int32_t plan = 0;
    double loss_j = 0.0;
    WakeCause wake = WakeCause::kDemand;
    DataItemId wake_item = kInvalidDataItem;
  };
  std::vector<Flag> flags;

  /// Latency deltas per non-empty (pattern, outcome) cell, diffed from
  /// the live cumulative book (serial engine only; empty otherwise).
  struct LatCell {
    uint8_t pattern = kPatternUnclassified;
    uint8_t outcome = 0;
    LatencyHistogram hist;
  };
  std::vector<LatCell> latency;
};

/// \brief The rolling-window consumer (see file header).
class RollingSummary : public StreamConsumer {
 public:
  struct Options {
    /// Window length in sim time. Must be > 0.
    SimDuration window_us = kMinute;
    /// Closed windows kept in memory (oldest dropped first).
    size_t retention = 256;
    /// Live cumulative latency book to diff per window (may be null; the
    /// sharded engine merges books only at the horizon, so it passes
    /// null). Diffed once per window close — when the pump cadence
    /// equals the window length, the delta is exactly the window's I/Os.
    const LatencyBook* book = nullptr;
    /// Append-only JSONL sink, one line per window plus a rolling_meta
    /// head and a rolling_final trailer; flushed per line so the file is
    /// tailable mid-run. Not owned. May be null.
    std::FILE* jsonl = nullptr;
    /// Human progress sink (e.g. stdout). Not owned. May be null.
    std::FILE* progress = nullptr;
    const char* progress_prefix = "[rolling]";
  };

  RollingSummary(const ExportMeta& meta, const Options& options);

  // StreamConsumer:
  void OnEvent(const Event& event) override;
  void OnFrontier(SimTime frontier) override;
  void OnFinish(const StreamFinal& final) override;

  const std::deque<RollingWindow>& windows() const { return windows_; }
  int64_t windows_closed() const { return windows_closed_; }
  const IncrementalEnergyLedger& ledger() const { return ledger_; }
  /// Full batch-equivalent ledger (after OnFinish: the whole run).
  EnergyLedger FinalLedger() const { return ledger_.Snapshot(); }
  bool finished() const { return finished_; }
  const StreamFinal& final_record() const { return final_; }

 private:
  void CloseWindow(SimTime end, bool terminal);
  void WriteMetaLine();
  void WriteWindowLine(const RollingWindow& w);
  void WriteFinalLine();
  void WriteProgressLine(const RollingWindow& w);

  Options options_;
  IncrementalEnergyLedger ledger_;

  SimTime win_start_ = 0;
  SimTime win_end_ = 0;
  int64_t windows_closed_ = 0;
  std::deque<RollingWindow> windows_;

  // Previous cumulative exact-account snapshot (scalars + off-window
  // index), diffed at each close.
  struct Cum {
    double credit_j = 0.0;
    double debit_j = 0.0;
    double actual_j = 0.0;
    SimDuration dwell_us = 0;
    int64_t mispredicts = 0;
    double mispredict_loss_j = 0.0;
    int64_t decisions = 0;
    int64_t migrations = 0;
    int64_t preloads = 0;
    int64_t write_delays = 0;
    int64_t write_delay_admits = 0;
    int64_t write_delay_flushes = 0;
    int64_t write_delay_flush_bytes = 0;
  };
  Cum prev_;
  size_t prev_off_count_ = 0;
  LatencyBook prev_book_;

  bool finished_ = false;
  StreamFinal final_;
};

}  // namespace ecostore::telemetry::analysis

#endif  // ECOSTORE_TELEMETRY_ANALYSIS_ROLLING_SUMMARY_H_
