#include "telemetry/analysis/rolling_summary.h"

#include <algorithm>
#include <map>

#include "telemetry/flat_json.h"

namespace ecostore::telemetry::analysis {

RollingSummary::RollingSummary(const ExportMeta& meta, const Options& options)
    : options_(options), ledger_(meta) {
  if (options_.window_us <= 0) options_.window_us = kMinute;
  if (options_.retention == 0) options_.retention = 1;
  win_start_ = 0;
  win_end_ = options_.window_us;
  WriteMetaLine();
}

void RollingSummary::OnEvent(const Event& event) {
  // Windows the event time has passed are complete: the stream arrives in
  // time order, so everything below event.time has been delivered.
  while (!finished_ && event.time >= win_end_) {
    CloseWindow(win_end_, /*terminal=*/false);
  }
  ledger_.Consume(event);
}

void RollingSummary::OnFrontier(SimTime frontier) {
  while (!finished_ && win_end_ <= frontier) {
    CloseWindow(win_end_, /*terminal=*/false);
  }
}

void RollingSummary::OnFinish(const StreamFinal& final) {
  if (finished_) return;
  final_ = final;
  // Close any still-open complete windows below the horizon BEFORE
  // folding the horizon group: terminal off-window credits recorded at
  // the horizon belong to the remainder window, not an interior one.
  while (win_end_ <= final.at) CloseWindow(win_end_, /*terminal=*/false);
  ledger_.Finish(final);
  CloseWindow(std::max(final.at, win_start_), /*terminal=*/true);
  finished_ = true;
  WriteFinalLine();
}

void RollingSummary::CloseWindow(SimTime end, bool terminal) {
  ledger_.AdvanceTo(end);
  const EnergyLedger& cur = ledger_.exact();

  RollingWindow w;
  w.index = windows_closed_;
  w.start = win_start_;
  w.end = end;
  w.terminal = terminal;
  w.credit_j = cur.off_credit_j - prev_.credit_j;
  w.debit_j = cur.off_debit_j - prev_.debit_j;
  w.actual_j = cur.off_actual_j - prev_.actual_j;
  w.dwell_us = cur.off_dwell_us - prev_.dwell_us;
  w.off_windows =
      static_cast<int64_t>(cur.off_windows.size()) -
      static_cast<int64_t>(prev_off_count_);
  w.mispredicts = cur.mispredicts - prev_.mispredicts;
  w.mispredict_loss_j = cur.mispredict_loss_j - prev_.mispredict_loss_j;
  w.decisions = cur.decisions - prev_.decisions;
  w.migrations = cur.migrations - prev_.migrations;
  w.preloads = cur.preloads - prev_.preloads;
  w.write_delays = cur.write_delays - prev_.write_delays;
  w.write_delay_admits = cur.write_delay_admits - prev_.write_delay_admits;
  w.write_delay_flushes = cur.write_delay_flushes - prev_.write_delay_flushes;
  w.write_delay_flush_bytes =
      cur.write_delay_flush_bytes - prev_.write_delay_flush_bytes;
  w.cum_credit_j = cur.off_credit_j;
  w.cum_debit_j = cur.off_debit_j;
  w.cum_off_windows = static_cast<int64_t>(cur.off_windows.size());
  w.cum_mispredicts = cur.mispredicts;

  // Per-enclosure roll-up + mispredict flags over the off windows that
  // closed since the previous rolling window (attribution by close time).
  std::map<EnclosureId, RollingWindow::EncRoll> rolls;
  for (size_t i = prev_off_count_; i < cur.off_windows.size(); ++i) {
    const OffWindow& ow = cur.off_windows[i];
    RollingWindow::EncRoll& r = rolls[ow.enclosure];
    r.enclosure = ow.enclosure;
    r.windows++;
    r.credit_j += ow.credit_j;
    r.debit_j += ow.debit_j;
    r.dwell_us += ow.end - ow.start;
    if (ow.mispredict) {
      r.mispredicts++;
      w.flags.push_back(RollingWindow::Flag{ow.enclosure, ow.start, ow.end,
                                            ow.plan,
                                            ow.debit_j - ow.credit_j, ow.wake,
                                            ow.wake_item});
    }
  }
  w.enclosures.reserve(rolls.size());
  for (const auto& [id, roll] : rolls) w.enclosures.push_back(roll);

  // Latency delta: cumulative book minus the previous snapshot. The book
  // only advances between pumps, so the first window closed per pump
  // carries the delta and later ones in the same pump see zero — exactly
  // the window's own I/Os when the pump cadence equals the window length.
  if (options_.book != nullptr) {
    LatencyBook delta = *options_.book;
    delta.SubtractPrefix(prev_book_);
    prev_book_ = *options_.book;
    for (uint8_t p = 0; p < kNumPatternSlots; ++p) {
      for (uint8_t o = 0; o < kNumOutcomes; ++o) {
        const LatencyHistogram& h = delta.cell(p, o);
        if (h.count() == 0) continue;
        w.latency.push_back(RollingWindow::LatCell{p, o, h});
      }
    }
  }

  prev_.credit_j = cur.off_credit_j;
  prev_.debit_j = cur.off_debit_j;
  prev_.actual_j = cur.off_actual_j;
  prev_.dwell_us = cur.off_dwell_us;
  prev_.mispredicts = cur.mispredicts;
  prev_.mispredict_loss_j = cur.mispredict_loss_j;
  prev_.decisions = cur.decisions;
  prev_.migrations = cur.migrations;
  prev_.preloads = cur.preloads;
  prev_.write_delays = cur.write_delays;
  prev_.write_delay_admits = cur.write_delay_admits;
  prev_.write_delay_flushes = cur.write_delay_flushes;
  prev_.write_delay_flush_bytes = cur.write_delay_flush_bytes;
  prev_off_count_ = cur.off_windows.size();

  WriteWindowLine(w);
  WriteProgressLine(w);

  windows_closed_++;
  windows_.push_back(std::move(w));
  while (windows_.size() > options_.retention) windows_.pop_front();
  win_start_ = end;
  win_end_ = end + options_.window_us;
}

void RollingSummary::WriteMetaLine() {
  if (options_.jsonl == nullptr) return;
  const ExportMeta& meta = ledger_.meta();
  std::string line = "{\"type\":\"rolling_meta\"";
  AppendKV(&line, "schema", 1);
  line += ",\"workload\":\"" + meta.workload + "\"";
  line += ",\"policy\":\"" + meta.policy + "\"";
  AppendKV(&line, "num_enclosures", meta.num_enclosures);
  AppendKV(&line, "duration_us", meta.duration);
  AppendKV(&line, "window_us", options_.window_us);
  AppendKV(&line, "has_power_model", meta.has_power_model ? 1 : 0);
  line += "}\n";
  std::fputs(line.c_str(), options_.jsonl);
  std::fflush(options_.jsonl);
}

void RollingSummary::WriteWindowLine(const RollingWindow& w) {
  if (options_.jsonl == nullptr) return;
  // Scalars first: the readers (FlatJson) are linear first-match
  // scanners, so top-level keys must precede the nested arrays.
  std::string line = "{\"type\":\"window\"";
  AppendKV(&line, "index", w.index);
  AppendKV(&line, "start_us", w.start);
  AppendKV(&line, "end_us", w.end);
  AppendKV(&line, "terminal", w.terminal ? 1 : 0);
  AppendKVF(&line, "credit_j", w.credit_j);
  AppendKVF(&line, "debit_j", w.debit_j);
  AppendKVF(&line, "net_j", w.credit_j - w.debit_j);
  AppendKVF(&line, "actual_j", w.actual_j);
  AppendKV(&line, "dwell_us", w.dwell_us);
  AppendKV(&line, "off_windows", w.off_windows);
  AppendKV(&line, "mispredicts", w.mispredicts);
  AppendKVF(&line, "mispredict_loss_j", w.mispredict_loss_j);
  AppendKV(&line, "decisions", w.decisions);
  AppendKV(&line, "migrations", w.migrations);
  AppendKV(&line, "preloads", w.preloads);
  AppendKV(&line, "write_delays", w.write_delays);
  AppendKV(&line, "write_delay_admits", w.write_delay_admits);
  AppendKV(&line, "write_delay_flushes", w.write_delay_flushes);
  AppendKV(&line, "write_delay_flush_bytes", w.write_delay_flush_bytes);
  AppendKVF(&line, "cum_credit_j", w.cum_credit_j);
  AppendKVF(&line, "cum_debit_j", w.cum_debit_j);
  AppendKVF(&line, "cum_net_j", w.cum_credit_j - w.cum_debit_j);
  AppendKV(&line, "cum_off_windows", w.cum_off_windows);
  AppendKV(&line, "cum_mispredicts", w.cum_mispredicts);
  line += ",\"enclosures\":[";
  for (size_t i = 0; i < w.enclosures.size(); ++i) {
    const RollingWindow::EncRoll& r = w.enclosures[i];
    std::string item = i == 0 ? "{\"e\":" : ",{\"e\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", r.enclosure);
    item += buf;
    AppendKV(&item, "w", r.windows);
    AppendKV(&item, "mp", r.mispredicts);
    AppendKVF(&item, "cr", r.credit_j);
    AppendKVF(&item, "db", r.debit_j);
    AppendKV(&item, "dw", r.dwell_us);
    item += "}";
    line += item;
  }
  line += "]";
  line += ",\"flags\":[";
  for (size_t i = 0; i < w.flags.size(); ++i) {
    const RollingWindow::Flag& f = w.flags[i];
    std::string item = i == 0 ? "{\"e\":" : ",{\"e\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%d", f.enclosure);
    item += buf;
    AppendKV(&item, "s", f.start);
    AppendKV(&item, "t", f.end);
    AppendKV(&item, "p", f.plan);
    AppendKVF(&item, "loss", f.loss_j);
    item += ",\"wk\":\"";
    item += WakeCauseName(f.wake);
    item += "\"";
    AppendKV(&item, "it", f.wake_item);
    item += "}";
    line += item;
  }
  line += "]";
  line += ",\"latency\":[";
  for (size_t i = 0; i < w.latency.size(); ++i) {
    const RollingWindow::LatCell& c = w.latency[i];
    std::string item = i == 0 ? "{\"pattern\":\"" : ",{\"pattern\":\"";
    item += PatternSlotName(c.pattern);
    item += "\",\"outcome\":\"";
    item += IoOutcomeName(c.outcome);
    item += "\"";
    AppendKV(&item, "count", c.hist.count());
    AppendKV(&item, "sum_us", c.hist.sum());
    AppendKV(&item, "max_us", c.hist.max());
    item += ",\"buckets\":\"" + c.hist.EncodeBuckets() + "\"";
    item += "}";
    line += item;
  }
  line += "]}\n";
  std::fputs(line.c_str(), options_.jsonl);
  std::fflush(options_.jsonl);
}

void RollingSummary::WriteFinalLine() {
  if (options_.jsonl == nullptr) return;
  const EnergyLedger ledger = ledger_.Snapshot();
  std::string line = "{\"type\":\"rolling_final\"";
  AppendKV(&line, "at_us", final_.at);
  AppendKV(&line, "windows", windows_closed_);
  AppendKVF(&line, "enclosure_energy_j", ledger_.meta().enclosure_energy_j);
  AppendKVF(&line, "controller_energy_j", ledger_.meta().controller_energy_j);
  AppendKVF(&line, "total_energy_j", ledger_.meta().enclosure_energy_j +
                                         ledger_.meta().controller_energy_j);
  AppendKVF(&line, "off_credit_j", ledger.off_credit_j);
  AppendKVF(&line, "off_debit_j", ledger.off_debit_j);
  AppendKVF(&line, "net_saving_j", ledger.off_credit_j - ledger.off_debit_j);
  AppendKVF(&line, "off_actual_j", ledger.off_actual_j);
  AppendKV(&line, "off_dwell_us", ledger.off_dwell_us);
  AppendKV(&line, "off_windows",
           static_cast<int64_t>(ledger.off_windows.size()));
  AppendKV(&line, "mispredicts", ledger.mispredicts);
  AppendKVF(&line, "mispredict_loss_j", ledger.mispredict_loss_j);
  AppendKVF(&line, "advisory_credit_j", ledger.advisory_credit_j);
  AppendKVF(&line, "advisory_debit_j", ledger.advisory_debit_j);
  AppendKV(&line, "plans", ledger.plans);
  AppendKV(&line, "decisions", ledger.decisions);
  AppendKV(&line, "migrations", ledger.migrations);
  AppendKV(&line, "preloads", ledger.preloads);
  AppendKV(&line, "write_delays", ledger.write_delays);
  AppendKV(&line, "has_finals", ledger.has_finals ? 1 : 0);
  AppendKVF(&line, "reconcile_rel_err", ledger.reconcile_rel_err);
  line += "}\n";
  std::fputs(line.c_str(), options_.jsonl);
  std::fflush(options_.jsonl);
}

void RollingSummary::WriteProgressLine(const RollingWindow& w) {
  if (options_.progress == nullptr) return;
  std::fprintf(options_.progress,
               "%s w%lld [%.0fs,%.0fs)%s net %+.1f J (credit %.1f debit "
               "%.1f) off %lld mispredict %lld | cum net %+.1f J "
               "mispredict %lld\n",
               options_.progress_prefix, static_cast<long long>(w.index),
               ToSeconds(w.start), ToSeconds(w.end),
               w.terminal ? " end" : "", w.credit_j - w.debit_j, w.credit_j,
               w.debit_j, static_cast<long long>(w.off_windows),
               static_cast<long long>(w.mispredicts),
               w.cum_credit_j - w.cum_debit_j,
               static_cast<long long>(w.cum_mispredicts));
  std::fflush(options_.progress);
}

}  // namespace ecostore::telemetry::analysis
