#ifndef ECOSTORE_TELEMETRY_ANALYSIS_INCREMENTAL_LEDGER_H_
#define ECOSTORE_TELEMETRY_ANALYSIS_INCREMENTAL_LEDGER_H_

// Incremental form of BuildLedger (energy_ledger.cc): folds the telemetry
// stream event-by-event so a running replay exposes a live energy ledger.
// Batch BuildLedger stays the differential oracle — tests assert exact
// (bitwise-double) equality at every window boundary.
//
// Equivalence argument (DESIGN.md §14). BuildLedger is a single forward
// walk whose only non-local step is probe_wake, which inspects the
// same-timestamp neighborhood of a SpinningUp edge. The incremental
// ledger therefore buffers the current same-timestamp group and replays
// the identical switch over the group once a later-time event (or an
// AdvanceTo frontier) proves the group complete; probe_wake's backward
// and forward scans are exactly a scan over that group. Every remaining
// BuildLedger output is a pure function of walker state plus the meta
// (plan tallies, advisory resolution, reconciliation), computed by
// Snapshot() on copies without disturbing the stream state. A frontier B
// never splits a timestamp group (frontiers are exclusive), so after
// AdvanceTo(B), Snapshot() == BuildLedger(meta, {e : e.time < B})
// field-for-field, doubles bitwise.
//
// One documented deviation: BuildLedger pre-scans the whole input to size
// the per-enclosure table off out-of-range kPowerState events; the
// incremental walker grows the table when the kPowerState arrives. The
// two differ only for captures where an event references an enclosure
// above meta.num_enclosures *before* that enclosure's first kPowerState —
// impossible for engine-produced captures, whose meta always covers the
// fleet.

#include <cstdint>
#include <unordered_map>
#include <map>
#include <vector>

#include "telemetry/analysis/energy_ledger.h"
#include "telemetry/stream_consumer.h"

namespace ecostore::telemetry::analysis {

/// \brief Streaming BuildLedger: Consume events in (time, shard) drain
/// order, Snapshot at any frontier. Also a StreamConsumer so it can hang
/// directly off a StreamDispatcher.
class IncrementalEnergyLedger : public StreamConsumer {
 public:
  explicit IncrementalEnergyLedger(const ExportMeta& meta);

  /// Folds one event (must arrive in batch-drain order). Same-timestamp
  /// events are buffered until a later time or frontier completes them.
  void Consume(const Event& event);

  /// Declares that no event with time < `frontier` will follow; flushes
  /// the buffered group if it lies below the frontier.
  void AdvanceTo(SimTime frontier);

  /// End of stream: flushes everything and installs the measured final
  /// energies into the meta so Snapshot() reconciles.
  void Finish(const StreamFinal& final);

  /// The full batch-equivalent ledger for the events processed so far
  /// (call AdvanceTo first so the current group is included). Runs the
  /// BuildLedger tail passes — plan tallies, reconciliation, advisory
  /// resolution — on copies; O(off_windows + cache entries).
  EnergyLedger Snapshot() const;

  /// The exact-account running state without the tail passes: off-window
  /// list and cumulative credit/debit/actual/dwell, mispredicts, stream
  /// tallies. Advisory/reconciliation/plans fields are UNSET here — cheap
  /// enough to read per rolling window.
  const EnergyLedger& exact() const { return base_; }

  const ExportMeta& meta() const { return meta_; }
  bool finished() const { return finished_; }

  // StreamConsumer:
  void OnEvent(const Event& event) override { Consume(event); }
  void OnFrontier(SimTime frontier) override { AdvanceTo(frontier); }
  void OnFinish(const StreamFinal& final) override { Finish(final); }

 private:
  /// Per-enclosure walker state, identical to BuildLedger's.
  struct EncState {
    bool off = false;
    SimTime off_since = 0;
    double off_joules = 0.0;
    int32_t off_plan = 0;
    int active_migrations = 0;
    bool has_final = false;
    double final_j = 0.0;
  };

  /// Unresolved advisory raw material (BuildLedger's PendingCache).
  struct PendingCache {
    AdvisoryEntry::Kind kind;
    DataItemId item;
    EnclosureId enclosure;
    SimTime time;
    int32_t plan;
    int64_t bytes;
  };

  void ProcessGroup();
  void ProcessOne(size_t i);
  void ProbeWake(size_t i, EnclosureId enclosure, WakeCause* cause,
                 DataItemId* item) const;
  void CloseWindow(EnclosureId enclosure, SimTime end, double joules,
                   WakeCause cause, DataItemId wake_item, bool terminal);

  ExportMeta meta_;
  double idle_w_ = 0.0;
  double spin_extra_j_ = 0.0;

  std::vector<Event> group_;  ///< buffered maximal same-timestamp run
  SimTime group_time_ = 0;

  std::vector<EncState> enc_;
  bool controller_final_ = false;
  double controller_j_ = 0.0;
  std::map<int32_t, SimTime> plan_start_;
  std::unordered_map<DataItemId, DecisionPayload> last_decision_;
  std::vector<PendingCache> pending_;
  std::vector<PendingCache> legacy_wd_;
  std::map<int32_t, SimTime> first_wd_in_plan_;

  EnergyLedger base_;  ///< exact account + stream tallies (see exact())
  bool finished_ = false;
};

}  // namespace ecostore::telemetry::analysis

#endif  // ECOSTORE_TELEMETRY_ANALYSIS_INCREMENTAL_LEDGER_H_
