#include "telemetry/analysis/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>

#include "telemetry/flat_json.h"

namespace ecostore::telemetry::analysis {

namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

int PatternFromName(const std::string& name) {
  for (int p = 0; p < kNumPatternSlots; ++p) {
    if (name == PatternSlotName(static_cast<uint8_t>(p))) return p;
  }
  return kPatternUnclassified;
}

int OutcomeFromName(const std::string& name) {
  for (int o = 0; o < kNumOutcomes; ++o) {
    if (name == IoOutcomeName(static_cast<uint8_t>(o))) return o;
  }
  return 0;
}

void PrintKVF(std::FILE* f, const char* indent, const char* key, double value,
              bool comma) {
  std::fprintf(f, "%s\"%s\": %.17g%s\n", indent, key, value, comma ? "," : "");
}

void PrintKVI(std::FILE* f, const char* indent, const char* key, int64_t value,
              bool comma) {
  std::fprintf(f, "%s\"%s\": %lld%s\n", indent, key,
               static_cast<long long>(value), comma ? "," : "");
}

}  // namespace

Summary BuildSummary(const ExportMeta& meta, const std::vector<Event>& events,
                     EnergyLedger* out_ledger) {
  Summary s;
  s.workload = meta.workload;
  s.policy = meta.policy;
  s.num_enclosures = meta.num_enclosures;
  s.duration = meta.duration;
  s.enclosure_energy_j = meta.enclosure_energy_j;
  s.controller_energy_j = meta.controller_energy_j;
  s.total_energy_j = meta.enclosure_energy_j + meta.controller_energy_j;

  EnergyLedger ledger = BuildLedger(meta, events);
  s.has_ledger = meta.has_power_model && ledger.has_finals;
  s.ledger_enclosure_j = ledger.ledger_enclosure_j;
  s.reconcile_rel_err = ledger.reconcile_rel_err;
  s.off_credit_j = ledger.off_credit_j;
  s.off_debit_j = ledger.off_debit_j;
  s.net_saving_j = ledger.off_credit_j - ledger.off_debit_j;
  s.advisory_credit_j = ledger.advisory_credit_j;
  s.advisory_debit_j = ledger.advisory_debit_j;
  s.mispredict_loss_j = ledger.mispredict_loss_j;
  s.plans = ledger.plans;
  s.decisions = ledger.decisions;
  s.off_windows = static_cast<int64_t>(ledger.off_windows.size());
  s.mispredicts = ledger.mispredicts;
  s.migrations = ledger.migrations;
  s.preloads = ledger.preloads;
  s.write_delays = ledger.write_delays;

  // Latency digests in fixed (pattern, outcome) order regardless of the
  // order the capture carried them in.
  std::vector<const LatencySlot*> slots;
  for (const LatencySlot& slot : meta.latency) {
    if (slot.hist.count() > 0) slots.push_back(&slot);
  }
  std::sort(slots.begin(), slots.end(),
            [](const LatencySlot* a, const LatencySlot* b) {
              if (a->pattern != b->pattern) return a->pattern < b->pattern;
              return a->outcome < b->outcome;
            });
  for (const LatencySlot* slot : slots) {
    LatencyRow row;
    row.pattern = slot->pattern;
    row.outcome = slot->outcome;
    row.count = slot->hist.count();
    row.p50_us = slot->hist.Quantile(0.50);
    row.p95_us = slot->hist.Quantile(0.95);
    row.p99_us = slot->hist.Quantile(0.99);
    row.max_us = slot->hist.max();
    row.mean_us = slot->hist.Mean();
    s.latency.push_back(row);
  }

  if (out_ledger != nullptr) *out_ledger = std::move(ledger);
  return s;
}

Status WriteSummaryJson(const std::string& path, const Summary& s) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) return Status::IoError("cannot write " + path);
  std::fprintf(f.get(), "{\n");
  std::fprintf(f.get(), "  \"type\": \"summary\",\n");
  std::fprintf(f.get(), "  \"schema\": 1,\n");
  std::fprintf(f.get(), "  \"workload\": \"%s\",\n", s.workload.c_str());
  std::fprintf(f.get(), "  \"policy\": \"%s\",\n", s.policy.c_str());
  PrintKVI(f.get(), "  ", "num_enclosures", s.num_enclosures, true);
  PrintKVI(f.get(), "  ", "duration_us", s.duration, true);
  std::fprintf(f.get(), "  \"energy\": {\n");
  PrintKVF(f.get(), "    ", "enclosure_j", s.enclosure_energy_j, true);
  PrintKVF(f.get(), "    ", "controller_j", s.controller_energy_j, true);
  PrintKVF(f.get(), "    ", "total_j", s.total_energy_j, true);
  PrintKVI(f.get(), "    ", "has_ledger", s.has_ledger ? 1 : 0, true);
  PrintKVF(f.get(), "    ", "ledger_enclosure_j", s.ledger_enclosure_j, true);
  PrintKVF(f.get(), "    ", "reconcile_rel_err", s.reconcile_rel_err, true);
  PrintKVF(f.get(), "    ", "off_credit_j", s.off_credit_j, true);
  PrintKVF(f.get(), "    ", "off_debit_j", s.off_debit_j, true);
  PrintKVF(f.get(), "    ", "net_saving_j", s.net_saving_j, true);
  PrintKVF(f.get(), "    ", "advisory_credit_j", s.advisory_credit_j, true);
  PrintKVF(f.get(), "    ", "advisory_debit_j", s.advisory_debit_j, true);
  PrintKVF(f.get(), "    ", "mispredict_loss_j", s.mispredict_loss_j, false);
  std::fprintf(f.get(), "  },\n");
  std::fprintf(f.get(), "  \"plans\": {\n");
  PrintKVI(f.get(), "    ", "plans", s.plans, true);
  PrintKVI(f.get(), "    ", "decisions", s.decisions, true);
  PrintKVI(f.get(), "    ", "off_windows", s.off_windows, true);
  PrintKVI(f.get(), "    ", "mispredicts", s.mispredicts, true);
  PrintKVI(f.get(), "    ", "migrations", s.migrations, true);
  PrintKVI(f.get(), "    ", "preloads", s.preloads, true);
  PrintKVI(f.get(), "    ", "write_delays", s.write_delays, false);
  std::fprintf(f.get(), "  },\n");
  std::fprintf(f.get(), "  \"latency\": [\n");
  for (size_t i = 0; i < s.latency.size(); ++i) {
    const LatencyRow& r = s.latency[i];
    std::fprintf(f.get(),
                 "    {\"pattern\": \"%s\", \"outcome\": \"%s\", "
                 "\"count\": %lld, \"p50_us\": %lld, \"p95_us\": %lld, "
                 "\"p99_us\": %lld, \"max_us\": %lld, \"mean_us\": %.17g}%s\n",
                 PatternSlotName(r.pattern), IoOutcomeName(r.outcome),
                 static_cast<long long>(r.count),
                 static_cast<long long>(r.p50_us),
                 static_cast<long long>(r.p95_us),
                 static_cast<long long>(r.p99_us),
                 static_cast<long long>(r.max_us), r.mean_us,
                 i + 1 < s.latency.size() ? "," : "");
  }
  std::fprintf(f.get(), "  ]\n");
  std::fprintf(f.get(), "}\n");
  return Status::OK();
}

Status ParseSummaryFile(const std::string& path, Summary* s) {
  FilePtr f(std::fopen(path.c_str(), "r"));
  if (f == nullptr) return Status::IoError("cannot read " + path);
  *s = Summary{};
  enum class Section { kTop, kEnergy, kPlans, kLatency };
  Section section = Section::kTop;
  bool is_summary = false;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), f.get()) != nullptr) {
    std::string line(buf);
    if (line.find("\"energy\": {") != std::string::npos) {
      section = Section::kEnergy;
      continue;
    }
    if (line.find("\"plans\": {") != std::string::npos) {
      section = Section::kPlans;
      continue;
    }
    if (line.find("\"latency\": [") != std::string::npos) {
      section = Section::kLatency;
      continue;
    }
    // Section terminators ("  }," / "  ]").
    std::string trimmed = line;
    trimmed.erase(0, trimmed.find_first_not_of(" \t"));
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == '\r')) {
      trimmed.pop_back();
    }
    if (section != Section::kTop &&
        (trimmed == "}," || trimmed == "}" || trimmed == "]," ||
         trimmed == "]")) {
      section = Section::kTop;
      continue;
    }
    FlatJson json{line};
    switch (section) {
      case Section::kTop:
        if (json.Str("type") == "summary") is_summary = true;
        if (json.Has("workload")) s->workload = json.Str("workload");
        if (json.Has("policy")) s->policy = json.Str("policy");
        if (json.Has("num_enclosures")) {
          s->num_enclosures = static_cast<int>(json.Int("num_enclosures"));
        }
        if (json.Has("duration_us")) s->duration = json.Int("duration_us");
        break;
      case Section::kEnergy:
        if (json.Has("enclosure_j")) {
          s->enclosure_energy_j = json.Dbl("enclosure_j");
        }
        if (json.Has("controller_j")) {
          s->controller_energy_j = json.Dbl("controller_j");
        }
        if (json.Has("total_j")) s->total_energy_j = json.Dbl("total_j");
        if (json.Has("has_ledger")) s->has_ledger = json.Int("has_ledger") != 0;
        if (json.Has("ledger_enclosure_j")) {
          s->ledger_enclosure_j = json.Dbl("ledger_enclosure_j");
        }
        if (json.Has("reconcile_rel_err")) {
          s->reconcile_rel_err = json.Dbl("reconcile_rel_err");
        }
        if (json.Has("off_credit_j")) s->off_credit_j = json.Dbl("off_credit_j");
        if (json.Has("off_debit_j")) s->off_debit_j = json.Dbl("off_debit_j");
        if (json.Has("net_saving_j")) s->net_saving_j = json.Dbl("net_saving_j");
        if (json.Has("advisory_credit_j")) {
          s->advisory_credit_j = json.Dbl("advisory_credit_j");
        }
        if (json.Has("advisory_debit_j")) {
          s->advisory_debit_j = json.Dbl("advisory_debit_j");
        }
        if (json.Has("mispredict_loss_j")) {
          s->mispredict_loss_j = json.Dbl("mispredict_loss_j");
        }
        break;
      case Section::kPlans:
        if (json.Has("plans")) s->plans = json.Int("plans");
        if (json.Has("decisions")) s->decisions = json.Int("decisions");
        if (json.Has("off_windows")) s->off_windows = json.Int("off_windows");
        if (json.Has("mispredicts")) s->mispredicts = json.Int("mispredicts");
        if (json.Has("migrations")) s->migrations = json.Int("migrations");
        if (json.Has("preloads")) s->preloads = json.Int("preloads");
        if (json.Has("write_delays")) {
          s->write_delays = json.Int("write_delays");
        }
        break;
      case Section::kLatency:
        if (json.Has("pattern") && json.Has("outcome")) {
          LatencyRow row;
          row.pattern = static_cast<uint8_t>(PatternFromName(
              json.Str("pattern")));
          row.outcome = static_cast<uint8_t>(OutcomeFromName(
              json.Str("outcome")));
          row.count = json.Int("count");
          row.p50_us = json.Int("p50_us");
          row.p95_us = json.Int("p95_us");
          row.p99_us = json.Int("p99_us");
          row.max_us = json.Int("max_us");
          row.mean_us = json.Dbl("mean_us");
          s->latency.push_back(row);
        }
        break;
    }
  }
  if (!is_summary) {
    return Status::InvalidArgument(path + ": not a telemetry summary file");
  }
  return Status::OK();
}

namespace {

void CompareField(std::vector<SummaryDiff>* diffs, const char* field, double a,
                  double b, double tolerance) {
  // Relative comparison floored at 1.0 absolute units so zero-valued
  // counters compare exactly without dividing by zero.
  const double denom = std::max({std::fabs(a), std::fabs(b), 1.0});
  const double rel = std::fabs(a - b) / denom;
  if (rel > tolerance) diffs->push_back(SummaryDiff{field, a, b, rel});
}

}  // namespace

std::vector<SummaryDiff> CompareSummaries(const Summary& a, const Summary& b,
                                          double tolerance) {
  std::vector<SummaryDiff> diffs;
  CompareField(&diffs, "energy.enclosure_j", a.enclosure_energy_j,
               b.enclosure_energy_j, tolerance);
  CompareField(&diffs, "energy.controller_j", a.controller_energy_j,
               b.controller_energy_j, tolerance);
  CompareField(&diffs, "energy.total_j", a.total_energy_j, b.total_energy_j,
               tolerance);
  CompareField(&diffs, "energy.net_saving_j", a.net_saving_j, b.net_saving_j,
               tolerance);
  CompareField(&diffs, "energy.mispredict_loss_j", a.mispredict_loss_j,
               b.mispredict_loss_j, tolerance);
  CompareField(&diffs, "plans.plans", static_cast<double>(a.plans),
               static_cast<double>(b.plans), tolerance);
  CompareField(&diffs, "plans.decisions", static_cast<double>(a.decisions),
               static_cast<double>(b.decisions), tolerance);
  CompareField(&diffs, "plans.off_windows", static_cast<double>(a.off_windows),
               static_cast<double>(b.off_windows), tolerance);
  CompareField(&diffs, "plans.mispredicts", static_cast<double>(a.mispredicts),
               static_cast<double>(b.mispredicts), tolerance);
  CompareField(&diffs, "plans.migrations", static_cast<double>(a.migrations),
               static_cast<double>(b.migrations), tolerance);
  CompareField(&diffs, "plans.preloads", static_cast<double>(a.preloads),
               static_cast<double>(b.preloads), tolerance);
  CompareField(&diffs, "plans.write_delays",
               static_cast<double>(a.write_delays),
               static_cast<double>(b.write_delays), tolerance);

  auto row_key = [](const LatencyRow& r) {
    return std::string(PatternSlotName(r.pattern)) + "/" +
           IoOutcomeName(r.outcome);
  };
  auto find_row = [&](const Summary& s, const std::string& key)
      -> const LatencyRow* {
    for (const LatencyRow& r : s.latency) {
      if (row_key(r) == key) return &r;
    }
    return nullptr;
  };
  for (const LatencyRow& ra : a.latency) {
    const std::string key = row_key(ra);
    const LatencyRow* rb = find_row(b, key);
    if (rb == nullptr) {
      diffs.push_back(SummaryDiff{"latency." + key + ".count",
                                  static_cast<double>(ra.count), 0.0, 1.0});
      continue;
    }
    const std::string prefix = "latency." + key + ".";
    CompareField(&diffs, (prefix + "count").c_str(),
                 static_cast<double>(ra.count), static_cast<double>(rb->count),
                 tolerance);
    CompareField(&diffs, (prefix + "p50_us").c_str(),
                 static_cast<double>(ra.p50_us),
                 static_cast<double>(rb->p50_us), tolerance);
    CompareField(&diffs, (prefix + "p95_us").c_str(),
                 static_cast<double>(ra.p95_us),
                 static_cast<double>(rb->p95_us), tolerance);
    CompareField(&diffs, (prefix + "p99_us").c_str(),
                 static_cast<double>(ra.p99_us),
                 static_cast<double>(rb->p99_us), tolerance);
    CompareField(&diffs, (prefix + "max_us").c_str(),
                 static_cast<double>(ra.max_us),
                 static_cast<double>(rb->max_us), tolerance);
    CompareField(&diffs, (prefix + "mean_us").c_str(), ra.mean_us, rb->mean_us,
                 tolerance);
  }
  for (const LatencyRow& rb : b.latency) {
    if (find_row(a, row_key(rb)) == nullptr) {
      diffs.push_back(SummaryDiff{"latency." + row_key(rb) + ".count", 0.0,
                                  static_cast<double>(rb.count), 1.0});
    }
  }
  return diffs;
}

}  // namespace ecostore::telemetry::analysis
