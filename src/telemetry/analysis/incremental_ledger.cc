#include "telemetry/analysis/incremental_ledger.h"

#include <algorithm>
#include <cmath>

namespace ecostore::telemetry::analysis {

IncrementalEnergyLedger::IncrementalEnergyLedger(const ExportMeta& meta)
    : meta_(meta),
      idle_w_(meta.idle_power_w),
      spin_extra_j_((meta.spinup_power_w - meta.idle_power_w) *
                    ToSeconds(meta.spinup_time_us)),
      enc_(static_cast<size_t>(std::max(meta.num_enclosures, 0))) {}

void IncrementalEnergyLedger::Consume(const Event& event) {
  if (!group_.empty() && event.time != group_time_) ProcessGroup();
  group_time_ = event.time;
  group_.push_back(event);
}

void IncrementalEnergyLedger::AdvanceTo(SimTime frontier) {
  if (!group_.empty() && group_time_ < frontier) ProcessGroup();
}

void IncrementalEnergyLedger::Finish(const StreamFinal& final) {
  if (finished_) return;
  if (!group_.empty()) ProcessGroup();
  if (final.has_energy) {
    meta_.enclosure_energy_j = final.enclosure_energy_j;
    meta_.controller_energy_j = final.controller_energy_j;
  }
  if (meta_.duration <= 0) meta_.duration = final.at;
  finished_ = true;
}

void IncrementalEnergyLedger::ProbeWake(size_t i, EnclosureId enclosure,
                                        WakeCause* cause,
                                        DataItemId* item) const {
  // BuildLedger's probe_wake scans the same-timestamp neighborhood of
  // events[i] in both directions; since the stream is time-sorted, that
  // neighborhood is exactly the buffered group.
  *cause = enc_[static_cast<size_t>(enclosure)].active_migrations > 0
               ? WakeCause::kMigration
               : WakeCause::kDemand;
  *item = kInvalidDataItem;
  auto inspect = [&](const Event& e) {
    if (e.kind == EventKind::kCacheFlush && e.cache.enclosure == enclosure) {
      *cause = WakeCause::kFlush;
    } else if (e.kind == EventKind::kPreloadBegin &&
               e.cache.enclosure == enclosure &&
               *cause != WakeCause::kFlush) {
      *cause = WakeCause::kPreload;
    } else if (e.kind == EventKind::kPhysicalIo &&
               e.cache.enclosure == enclosure &&
               *item == kInvalidDataItem) {
      *item = e.cache.item;
    }
  };
  for (size_t j = i; j-- > 0;) inspect(group_[j]);
  for (size_t j = i + 1; j < group_.size(); ++j) inspect(group_[j]);
}

void IncrementalEnergyLedger::CloseWindow(EnclosureId enclosure, SimTime end,
                                          double joules, WakeCause cause,
                                          DataItemId wake_item,
                                          bool terminal) {
  EncState& s = enc_[static_cast<size_t>(enclosure)];
  OffWindow w;
  w.enclosure = enclosure;
  w.start = s.off_since;
  w.end = end;
  w.plan = s.off_plan;
  w.actual_j = joules - s.off_joules;
  const SimDuration dwell = end - s.off_since;
  w.credit_j = idle_w_ * ToSeconds(dwell) - w.actual_j;
  w.debit_j = terminal ? 0.0 : spin_extra_j_;
  w.wake = cause;
  w.wake_item = wake_item;
  w.mispredict = !terminal && dwell < meta_.break_even_us;
  if (wake_item != kInvalidDataItem) {
    auto it = last_decision_.find(wake_item);
    if (it != last_decision_.end()) {
      w.has_culprit = true;
      w.culprit = it->second;
    }
  }
  base_.off_credit_j += w.credit_j;
  base_.off_debit_j += w.debit_j;
  base_.off_actual_j += w.actual_j;
  base_.off_dwell_us += dwell;
  if (w.mispredict) {
    base_.mispredicts++;
    base_.mispredict_loss_j += w.debit_j - w.credit_j;
  }
  base_.off_windows.push_back(w);
  s.off = false;
}

void IncrementalEnergyLedger::ProcessOne(size_t i) {
  const Event& e = group_[i];
  const int n = static_cast<int>(enc_.size());
  switch (e.kind) {
    case EventKind::kPowerState: {
      if (e.power.enclosure < 0) break;
      if (e.power.enclosure >= n) {
        // BuildLedger pre-scans to size the table; grow on sight instead
        // (see the header's documented deviation).
        enc_.resize(static_cast<size_t>(e.power.enclosure) + 1);
      }
      EncState& s = enc_[static_cast<size_t>(e.power.enclosure)];
      if (e.power.state == 0) {  // Off
        s.off = true;
        s.off_since = e.time;
        s.off_joules = e.power.joules;
        s.off_plan = e.power.plan;
      } else if (e.power.state == 1 && s.off) {  // SpinningUp
        WakeCause cause;
        DataItemId item;
        ProbeWake(i, e.power.enclosure, &cause, &item);
        CloseWindow(e.power.enclosure, e.time, e.power.joules, cause, item,
                    /*terminal=*/false);
      }
      break;
    }
    case EventKind::kEnergyFinal: {
      if (e.power.enclosure == kInvalidEnclosure) {
        controller_final_ = true;
        controller_j_ = e.power.joules;
        break;
      }
      if (e.power.enclosure < 0 || e.power.enclosure >= n) break;
      EncState& s = enc_[static_cast<size_t>(e.power.enclosure)];
      if (s.off) {
        CloseWindow(e.power.enclosure, e.time, e.power.joules,
                    WakeCause::kRunEnd, kInvalidDataItem, /*terminal=*/true);
      }
      s.has_final = true;
      s.final_j = e.power.joules;
      break;
    }
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationEnd: {
      const int delta = e.kind == EventKind::kMigrationBegin ? 1 : -1;
      for (EnclosureId enclosure : {e.migration.from, e.migration.to}) {
        if (enclosure >= 0 && enclosure < n) {
          int& c = enc_[static_cast<size_t>(enclosure)].active_migrations;
          c = std::max(0, c + delta);
        }
      }
      if (e.kind == EventKind::kMigrationEnd && e.migration.bytes >= 0) {
        base_.migrations++;
      }
      break;
    }
    case EventKind::kDecision: {
      base_.decisions++;
      last_decision_[e.decision.item] = e.decision;
      const int32_t plan = e.decision.plan;
      auto [it, inserted] = plan_start_.emplace(plan, e.time);
      if (!inserted) it->second = std::min(it->second, e.time);
      break;
    }
    case EventKind::kPreloadBegin:
      base_.preloads++;
      pending_.push_back(PendingCache{AdvisoryEntry::Kind::kPreload,
                                      e.cache.item, e.cache.enclosure, e.time,
                                      e.cache.plan, e.cache.bytes});
      break;
    case EventKind::kWriteDelaySet: {
      base_.write_delays++;
      legacy_wd_.push_back(PendingCache{AdvisoryEntry::Kind::kWriteDelay,
                                        e.cache.item, e.cache.enclosure,
                                        e.time, e.cache.plan, e.cache.bytes});
      auto [it, inserted] = first_wd_in_plan_.emplace(e.cache.plan, e.time);
      if (!inserted) it->second = std::min(it->second, e.time);
      break;
    }
    case EventKind::kWriteDelayAdmit: {
      base_.write_delay_admits++;
      pending_.push_back(PendingCache{AdvisoryEntry::Kind::kWriteDelay,
                                      e.cache.item, e.cache.enclosure, e.time,
                                      e.cache.plan, e.cache.bytes});
      auto [it, inserted] = first_wd_in_plan_.emplace(e.cache.plan, e.time);
      if (!inserted) it->second = std::min(it->second, e.time);
      break;
    }
    case EventKind::kWriteDelayFlush: {
      base_.write_delay_flushes++;
      base_.write_delay_flush_bytes += e.cache.bytes;
      break;
    }
    default:
      break;
  }
}

void IncrementalEnergyLedger::ProcessGroup() {
  for (size_t i = 0; i < group_.size(); ++i) ProcessOne(i);
  group_.clear();
}

EnergyLedger IncrementalEnergyLedger::Snapshot() const {
  EnergyLedger ledger = base_;
  const int n = static_cast<int>(enc_.size());

  ledger.plans = plan_start_.empty()
                     ? 0
                     : static_cast<int64_t>(plan_start_.rbegin()->first);

  // Per-item write-delay attribution (BuildLedger's legacy fallback).
  std::vector<PendingCache> pending = pending_;
  ledger.per_item_write_delay = ledger.write_delay_admits > 0;
  if (!ledger.per_item_write_delay) {
    pending.insert(pending.end(), legacy_wd_.begin(), legacy_wd_.end());
  }

  // Reconciliation against the measured totals (identical arithmetic).
  bool all_finals = controller_final_ && n > 0;
  double sum_final = 0.0;
  for (const EncState& s : enc_) {
    all_finals = all_finals && s.has_final;
    sum_final += s.final_j;
  }
  ledger.has_finals = all_finals;
  if (all_finals) {
    ledger.ledger_enclosure_j = sum_final;
    ledger.ledger_controller_j = controller_j_;
    const double measured =
        meta_.enclosure_energy_j + meta_.controller_energy_j;
    const double accounted = sum_final + controller_j_;
    const double denom = std::max(std::fabs(measured), 1e-12);
    ledger.reconcile_rel_err = std::fabs(accounted - measured) / denom;
  }

  // Advisory resolution (same documented model as BuildLedger).
  auto plan_end = [&](int32_t plan) -> SimTime {
    auto it = plan_start_.upper_bound(plan);
    return it != plan_start_.end() ? it->second : meta_.duration;
  };
  auto off_windows_after = [&](EnclosureId enclosure, SimTime from,
                               SimTime until) {
    int64_t count = 0;
    for (const OffWindow& w : ledger.off_windows) {
      if (w.enclosure == enclosure && w.start >= from && w.start < until) {
        count++;
      }
    }
    return count;
  };
  const double cache_bytes =
      std::max<double>(1.0, static_cast<double>(meta_.cache_total_bytes));
  for (const PendingCache& p : pending) {
    AdvisoryEntry a;
    a.kind = p.kind;
    a.item = p.item;
    a.enclosure = p.enclosure;
    a.time = p.time;
    a.plan = p.plan;
    const SimTime end = std::max(plan_end(p.plan), p.time);
    const int64_t later_off = off_windows_after(p.enclosure, p.time, end);
    a.credit_j = later_off > 0 ? spin_extra_j_ : 0.0;
    if (p.kind == AdvisoryEntry::Kind::kPreload) {
      a.debit_j = meta_.controller_power_w *
                  (static_cast<double>(p.bytes) / cache_bytes) *
                  ToSeconds(end - p.time);
    }
    ledger.advisory_credit_j += a.credit_j;
    ledger.advisory_debit_j += a.debit_j;
    ledger.advisory.push_back(a);
  }
  for (const auto& [plan, first_t] : first_wd_in_plan_) {
    AdvisoryEntry a;
    a.kind = AdvisoryEntry::Kind::kWriteDelayOccupancy;
    a.time = first_t;
    a.plan = plan;
    const SimTime end = std::max(plan_end(plan), first_t);
    a.debit_j = meta_.controller_power_w *
                (static_cast<double>(meta_.write_delay_area_bytes) /
                 cache_bytes) *
                ToSeconds(end - first_t);
    ledger.advisory_debit_j += a.debit_j;
    ledger.advisory.push_back(a);
  }
  return ledger;
}

}  // namespace ecostore::telemetry::analysis
