#ifndef ECOSTORE_TELEMETRY_ANALYSIS_LATENCY_HISTOGRAM_H_
#define ECOSTORE_TELEMETRY_ANALYSIS_LATENCY_HISTOGRAM_H_

// Fixed-bucket log-linear latency histogram (HdrHistogram-style):
// values 0..15 land in unit-wide buckets, every power-of-two range above
// that is split into 16 linear sub-buckets, so the relative quantization
// error is bounded by 1/16 ≈ 6.25% at any magnitude. The bucket layout is
// FIXED — independent of the values recorded — so two histograms merge by
// element-wise addition, which is exactly associative and commutative
// (int64 adds), making per-thread books trivially mergeable.
//
// This is deliberately separate from common/histogram.h (a geometric-
// growth histogram whose bucket boundaries depend on construction
// parameters); the fixed layout here is what makes merge() and the
// capture round-trip bit-stable.
//
// Header-only and dependency-free below common/ so storage/ can record
// into a book without a new link edge.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace ecostore::telemetry::analysis {

class LatencyHistogram {
 public:
  /// Unit-wide buckets cover [0, kLinearMax); above that each octave has
  /// kSubBuckets linear sub-buckets.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 16
  static constexpr int kLinearMax = kSubBuckets;
  /// floor(log2(v)) of an int64 tops out at 62; octaves 4..62 each get
  /// kSubBuckets buckets after the 16 linear ones.
  static constexpr int kNumBuckets =
      kLinearMax + (62 - kSubBucketBits + 1) * kSubBuckets;

  void Record(int64_t value_us) {
    if (value_us < 0) value_us = 0;
    counts_[BucketIndex(value_us)]++;
    count_++;
    sum_ += value_us;
    max_ = std::max(max_, value_us);
  }

  /// Element-wise addition: exactly associative and commutative.
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumBuckets; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
  }

  /// Exact element-wise difference against an earlier snapshot of this
  /// same growing histogram (prefix property: every earlier count is <=
  /// the current one). Buckets, count and sum subtract exactly — the
  /// fixed layout makes cumulative snapshots diffable — but the true max
  /// of the difference is not recoverable, so it is re-estimated as the
  /// lower bound of the highest non-empty bucket (the same
  /// bucket-resolution guarantee Quantile gives).
  void SubtractPrefix(const LatencyHistogram& earlier) {
    int64_t est_max = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      counts_[i] -= earlier.counts_[i];
      if (counts_[i] > 0) est_max = BucketLow(i);
    }
    count_ -= earlier.count_;
    sum_ -= earlier.sum_;
    max_ = count_ > 0 ? std::min(max_, std::max<int64_t>(est_max, 0)) : 0;
  }

  int64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t max() const { return max_; }
  double Mean() const {
    return count_ > 0 ? static_cast<double>(sum_) / static_cast<double>(count_)
                      : 0.0;
  }

  /// Value at quantile q in [0, 1]: the lower bound of the bucket holding
  /// the ceil(q * count)-th recorded value (deterministic; relative error
  /// bounded by the bucket width). q >= 1 returns the exact max.
  int64_t Quantile(double q) const {
    if (count_ == 0) return 0;
    if (q >= 1.0) return max_;
    if (q < 0.0) q = 0.0;
    int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_)) + 1;
    if (rank > count_) rank = count_;
    int64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= rank) return std::min(BucketLow(i), max_);
    }
    return max_;
  }

  bool operator==(const LatencyHistogram& other) const {
    return count_ == other.count_ && sum_ == other.sum_ &&
           max_ == other.max_ && counts_ == other.counts_;
  }

  /// Compact "idx:count" pairs for non-empty buckets (capture format).
  std::string EncodeBuckets() const {
    std::string out;
    char buf[48];
    for (int i = 0; i < kNumBuckets; ++i) {
      if (counts_[i] == 0) continue;
      std::snprintf(buf, sizeof(buf), "%s%d:%lld", out.empty() ? "" : " ", i,
                    static_cast<long long>(counts_[i]));
      out += buf;
    }
    return out;
  }

  /// Inverse of EncodeBuckets; rebuilds counts/count/sum (sum and max are
  /// carried separately in the capture since bucketing is lossy).
  void DecodeBuckets(const std::string& encoded, int64_t sum, int64_t max) {
    counts_.assign(kNumBuckets, 0);
    count_ = 0;
    const char* p = encoded.c_str();
    while (*p != '\0') {
      char* end = nullptr;
      long idx = std::strtol(p, &end, 10);
      if (end == p || *end != ':') break;
      p = end + 1;
      long long c = std::strtoll(p, &end, 10);
      if (end == p) break;
      p = end;
      while (*p == ' ') p++;
      if (idx >= 0 && idx < kNumBuckets) {
        counts_[static_cast<size_t>(idx)] = c;
        count_ += c;
      }
    }
    sum_ = sum;
    max_ = max;
  }

  static int BucketIndex(int64_t v) {
    if (v < kLinearMax) return static_cast<int>(v);
    // floor(log2(v)) without <bit> (kept C++17-friendly).
    int lz = 63;
    while (((v >> lz) & 1) == 0) lz--;
    int shift = lz - kSubBucketBits;
    int64_t idx = kSubBuckets * static_cast<int64_t>(shift) + (v >> shift);
    return static_cast<int>(std::min<int64_t>(idx, kNumBuckets - 1));
  }

  /// Lower bound of bucket `idx` (exact inverse of BucketIndex's floor).
  static int64_t BucketLow(int idx) {
    if (idx < kLinearMax) return idx;
    int octave = idx / kSubBuckets;  // >= 1
    int sub = idx % kSubBuckets;
    return static_cast<int64_t>(kSubBuckets + sub) << (octave - 1);
  }

 private:
  std::vector<int64_t> counts_ = std::vector<int64_t>(kNumBuckets, 0);
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t max_ = 0;
};

/// Latency split axes: the paper's four I/O patterns plus "unclassified"
/// (items the policy has not classified yet, and all baseline policies).
inline constexpr int kNumPatternSlots = 5;
inline constexpr uint8_t kPatternUnclassified = 4;

/// Outcome of one logical I/O relative to the cache and power state.
enum class IoOutcome : uint8_t {
  kHit = 0,       ///< served from the controller cache
  kMiss = 1,      ///< went to an enclosure that was On
  kSpunDown = 2,  ///< went to an enclosure that was Off / SpinningUp
};
inline constexpr int kNumOutcomes = 3;

inline const char* IoOutcomeName(uint8_t outcome) {
  switch (outcome) {
    case 0: return "hit";
    case 1: return "miss";
    case 2: return "spun_down";
  }
  return "?";
}

inline const char* PatternSlotName(uint8_t pattern) {
  switch (pattern) {
    case 0: return "P0";
    case 1: return "P1";
    case 2: return "P2";
    case 3: return "P3";
    case 4: return "unclassified";
  }
  return "?";
}

/// \brief The full latency book of one run: one fixed-layout histogram
/// per (pattern, outcome) cell. Recording is two bounds-checked index
/// computations plus one bucket increment, cheap enough for the per-I/O
/// path; merging two books (e.g. per-thread shards) is element-wise.
class LatencyBook {
 public:
  LatencyBook() : cells_(kNumPatternSlots * kNumOutcomes) {}

  void Record(uint8_t pattern, IoOutcome outcome, int64_t latency_us) {
    if (pattern >= kNumPatternSlots) pattern = kPatternUnclassified;
    cells_[Index(pattern, static_cast<uint8_t>(outcome))].Record(latency_us);
  }

  void Merge(const LatencyBook& other) {
    for (size_t i = 0; i < cells_.size(); ++i) cells_[i].Merge(other.cells_[i]);
  }

  /// Cell-wise SubtractPrefix: turns two cumulative snapshots of one
  /// growing book into the exact per-window delta book.
  void SubtractPrefix(const LatencyBook& earlier) {
    for (size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].SubtractPrefix(earlier.cells_[i]);
    }
  }

  const LatencyHistogram& cell(uint8_t pattern, uint8_t outcome) const {
    return cells_[Index(pattern, outcome)];
  }
  LatencyHistogram& cell(uint8_t pattern, uint8_t outcome) {
    return cells_[Index(pattern, outcome)];
  }

  int64_t total_count() const {
    int64_t n = 0;
    for (const LatencyHistogram& h : cells_) n += h.count();
    return n;
  }

  bool operator==(const LatencyBook& other) const {
    return cells_ == other.cells_;
  }

 private:
  static size_t Index(uint8_t pattern, uint8_t outcome) {
    return static_cast<size_t>(pattern) * kNumOutcomes + outcome;
  }

  std::vector<LatencyHistogram> cells_;
};

}  // namespace ecostore::telemetry::analysis

#endif  // ECOSTORE_TELEMETRY_ANALYSIS_LATENCY_HISTOGRAM_H_
