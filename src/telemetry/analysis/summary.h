#ifndef ECOSTORE_TELEMETRY_ANALYSIS_SUMMARY_H_
#define ECOSTORE_TELEMETRY_ANALYSIS_SUMMARY_H_

// Machine-readable run summary: the stable-field-order JSON written by
// `--telemetry-summary=<path>` and by `eco_report score --summary=...`,
// and the numeric comparison behind `eco_report regress` (the CI gate).
//
// The writer emits every scalar on its own line in a fixed order, so the
// file is both human-diffable and parseable by the same flat line scanner
// the capture reader uses — no JSON library, no field reordering between
// runs.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/analysis/energy_ledger.h"
#include "telemetry/export.h"

namespace ecostore::telemetry::analysis {

/// Latency digest of one (pattern, outcome) cell.
struct LatencyRow {
  uint8_t pattern = kPatternUnclassified;
  uint8_t outcome = 0;
  int64_t count = 0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
  int64_t max_us = 0;
  double mean_us = 0.0;
};

struct Summary {
  // Run identity.
  std::string workload;
  std::string policy;
  int num_enclosures = 0;
  SimDuration duration = 0;

  // Energy (measured + ledger account).
  double enclosure_energy_j = 0.0;
  double controller_energy_j = 0.0;
  double total_energy_j = 0.0;
  bool has_ledger = false;
  double ledger_enclosure_j = 0.0;
  double reconcile_rel_err = 0.0;
  double off_credit_j = 0.0;
  double off_debit_j = 0.0;
  double net_saving_j = 0.0;  ///< off_credit - off_debit
  double advisory_credit_j = 0.0;
  double advisory_debit_j = 0.0;
  double mispredict_loss_j = 0.0;

  // Decision tallies.
  int64_t plans = 0;
  int64_t decisions = 0;
  int64_t off_windows = 0;
  int64_t mispredicts = 0;
  int64_t migrations = 0;
  int64_t preloads = 0;
  int64_t write_delays = 0;

  // Latency digests, one row per non-empty (pattern, outcome) cell in
  // (pattern, outcome) order.
  std::vector<LatencyRow> latency;
};

/// Builds the summary from a capture (meta + events). When `out_ledger`
/// is non-null the full ledger is copied out for detailed reporting.
Summary BuildSummary(const ExportMeta& meta, const std::vector<Event>& events,
                     EnergyLedger* out_ledger = nullptr);

/// Writes the summary JSON with the stable field order described above.
Status WriteSummaryJson(const std::string& path, const Summary& summary);

/// Parses a WriteSummaryJson file back.
Status ParseSummaryFile(const std::string& path, Summary* summary);

/// One numeric field that differs beyond tolerance.
struct SummaryDiff {
  std::string field;
  double a = 0.0;
  double b = 0.0;
  double rel_err = 0.0;
};

/// Compares the gate-relevant numeric fields of two summaries with a
/// relative tolerance (floored at 1.0 absolute units so zero-valued
/// counters compare exactly). Empty result == no regression.
std::vector<SummaryDiff> CompareSummaries(const Summary& a, const Summary& b,
                                          double tolerance);

}  // namespace ecostore::telemetry::analysis

#endif  // ECOSTORE_TELEMETRY_ANALYSIS_SUMMARY_H_
