#ifndef ECOSTORE_TELEMETRY_FLAT_JSON_H_
#define ECOSTORE_TELEMETRY_FLAT_JSON_H_

// Minimal reader/writer helpers for the flat one-line JSON objects the
// telemetry exporters produce: string values contain no escapes and
// there is no nesting, so a linear scan for "key": value pairs suffices
// (and keeps eco_report free of external JSON dependencies). Shared by
// the capture reader (export.cc) and the summary reader (analysis/).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ecostore::telemetry {

class FlatJson {
 public:
  explicit FlatJson(const std::string& line) {
    const char* p = line.c_str();
    while ((p = std::strchr(p, '"')) != nullptr) {
      const char* key_end = std::strchr(p + 1, '"');
      if (key_end == nullptr) break;
      std::string key(p + 1, key_end);
      const char* colon = key_end + 1;
      while (*colon == ' ') colon++;
      if (*colon != ':') {
        p = key_end + 1;
        continue;
      }
      const char* value = colon + 1;
      while (*value == ' ') value++;
      if (*value == '"') {
        const char* value_end = std::strchr(value + 1, '"');
        if (value_end == nullptr) break;
        keys_.emplace_back(std::move(key), std::string(value + 1, value_end));
        p = value_end + 1;
      } else {
        const char* value_end = value;
        while (*value_end != '\0' && *value_end != ',' && *value_end != '}') {
          value_end++;
        }
        keys_.emplace_back(std::move(key), std::string(value, value_end));
        p = value_end;
      }
    }
  }

  bool Has(const char* key) const { return Find(key) != nullptr; }

  std::string Str(const char* key, const std::string& fallback = "") const {
    const std::string* v = Find(key);
    return v != nullptr ? *v : fallback;
  }

  int64_t Int(const char* key, int64_t fallback = 0) const {
    const std::string* v = Find(key);
    return v != nullptr ? std::strtoll(v->c_str(), nullptr, 10) : fallback;
  }

  double Dbl(const char* key, double fallback = 0.0) const {
    const std::string* v = Find(key);
    return v != nullptr ? std::strtod(v->c_str(), nullptr) : fallback;
  }

  uint64_t U64(const char* key, uint64_t fallback = 0) const {
    const std::string* v = Find(key);
    return v != nullptr ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }

 private:
  const std::string* Find(const char* key) const {
    for (const auto& [k, v] : keys_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  std::vector<std::pair<std::string, std::string>> keys_;
};

inline void AppendKV(std::string* out, const char* key, int64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%lld", key,
                static_cast<long long>(value));
  *out += buf;
}

inline void AppendKVU(std::string* out, const char* key, uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                static_cast<unsigned long long>(value));
  *out += buf;
}

/// %.17g round-trips every finite double exactly, so energy values
/// survive a capture/parse cycle bit-for-bit (the ledger reconciliation
/// relies on this).
inline void AppendKVF(std::string* out, const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", key, value);
  *out += buf;
}

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_FLAT_JSON_H_
