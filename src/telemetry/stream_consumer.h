#ifndef ECOSTORE_TELEMETRY_STREAM_CONSUMER_H_
#define ECOSTORE_TELEMETRY_STREAM_CONSUMER_H_

// Streaming telemetry: consumers fed incrementally from the per-thread
// rings in sim-time order, without materializing the full capture.
//
// Protocol. The engine pumps the dispatcher at monotonically increasing
// sim-time frontiers. A frontier F is EXCLUSIVE and is a promise in both
// directions: every event with time < F has been delivered (in the exact
// order a batch Recorder::Drain() of the whole run would have produced
// them), and no event with time < F will ever arrive later. Consumers
// therefore see, at each OnFrontier(F), precisely the (time, shard)-sorted
// prefix {e : e.time < F} of the final batch capture — which is what makes
// an incremental ledger provably equivalent to the batch one at every
// window boundary (DESIGN.md §14).
//
// Ordering argument. Recorder::Drain() stable-sorts by (time, shard) and
// both engines funnel every event through rings whose record order is
// preserved per drain. The dispatcher stable-sorts the concatenation of
// successive drains; because each drain is itself (time, shard)-sorted
// with intra-group record order intact, and the frontier contract forbids
// late events below an already-announced frontier, the emitted prefix is
// identical to the batch sort. Events at or above the frontier are
// retained (bounded by one window of traffic), never re-ordered against
// later arrivals of the same (time, shard) group.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/event.h"
#include "telemetry/recorder.h"

namespace ecostore::telemetry {

/// End-of-run marker handed to consumers: the final sim time plus the
/// measured meter energies (the reconciliation targets the engine only
/// knows after FinalizeRun()).
struct StreamFinal {
  SimTime at = 0;
  double enclosure_energy_j = 0.0;
  double controller_energy_j = 0.0;
  bool has_energy = false;
};

/// \brief Interface for incremental consumers of the telemetry stream.
class StreamConsumer {
 public:
  virtual ~StreamConsumer() = default;

  /// One event, delivered in batch-drain order (see file header).
  virtual void OnEvent(const Event& event) = 0;

  /// All events with time < `frontier` have been delivered; none will
  /// follow. Frontiers are strictly increasing across calls.
  virtual void OnFrontier(SimTime frontier) = 0;

  /// The run is over: every event has been delivered (no frontier bound)
  /// and `final` carries the measured energies for reconciliation.
  virtual void OnFinish(const StreamFinal& final) = 0;
};

/// \brief Fans the incrementally drained stream out to consumers.
///
/// Owns the reorder buffer that turns per-pump ring drains into the
/// global batch order. Not thread-safe: the engine pumps from the replay
/// (or coordinator) thread only, with writers quiescent — the same
/// contract as Recorder::Drain().
class StreamDispatcher {
 public:
  /// Registers a consumer (not owned). Call before the first Pump().
  void AddConsumer(StreamConsumer* consumer);

  /// Drains `recorder` into the reorder buffer, then advances to
  /// `frontier` (see AdvanceFrontier). Resets the recorder rings, so when
  /// a full capture is also wanted, attach a CaptureBuffer consumer.
  void Pump(Recorder* recorder, SimTime frontier);

  /// Emits every buffered event with time < `frontier` to all consumers
  /// (event-major, consumers in registration order), then announces the
  /// frontier. Frontiers below the current one are ignored.
  void AdvanceFrontier(SimTime frontier);

  /// Final pump: emits everything left in the buffer (no frontier bound)
  /// and forwards `final` to every consumer. Idempotent.
  void Finish(const StreamFinal& final);

  SimTime frontier() const { return frontier_; }
  size_t pending() const { return pending_.size(); }
  bool has_consumers() const { return !consumers_.empty(); }
  bool finished() const { return finished_; }

 private:
  void Emit(const Event& event);

  std::vector<StreamConsumer*> consumers_;
  std::vector<Event> pending_;  ///< retained events >= last frontier
  std::vector<Event> scratch_;  ///< reused drain target
  SimTime frontier_ = 0;
  bool finished_ = false;
};

/// \brief Consumer that re-materializes the full capture.
///
/// Streaming pumps reset the recorder rings mid-run, so engines that also
/// export a complete JSONL capture accumulate it here instead of via a
/// final Drain().
class CaptureBuffer : public StreamConsumer {
 public:
  void OnEvent(const Event& event) override { events_.push_back(event); }
  void OnFrontier(SimTime) override {}
  void OnFinish(const StreamFinal&) override {}

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> Take() { return std::move(events_); }

 private:
  std::vector<Event> events_;
};

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_STREAM_CONSUMER_H_
