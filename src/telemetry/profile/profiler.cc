#include "telemetry/profile/profiler.h"

#ifndef ECOSTORE_PROFILE_DISABLED

#include <algorithm>

namespace ecostore::telemetry::profile {

namespace {

/// Per-thread binding cache: re-binding is just two loads when the same
/// (thread, profiler) pair records repeatedly — the common case, since
/// one engine runs on one thread (plus a bounded pool of lane workers).
struct ThreadBinding {
  const void* profiler = nullptr;
  void* ring = nullptr;
};
thread_local ThreadBinding t_binding;

/// The thread's active span sink, lane tag and correlation id. All three
/// are thread-local rather than per-profiler so interior phases (core/
/// planning code) need no plumbing: a ScopedPhase reads them directly.
thread_local Profiler* t_profiler = nullptr;
thread_local uint16_t t_lane = 0;
thread_local uint32_t t_seq = 0;

}  // namespace

Profiler* SetThreadProfiler(Profiler* profiler) {
  Profiler* previous = t_profiler;
  t_profiler = profiler;
  return previous;
}

Profiler* ThreadProfiler() { return t_profiler; }

uint16_t SetThreadProfileLane(uint16_t lane) {
  uint16_t previous = t_lane;
  t_lane = lane;
  return previous;
}

uint16_t ThreadProfileLane() { return t_lane; }

uint32_t SetThreadCorrelation(uint32_t seq) {
  uint32_t previous = t_seq;
  t_seq = seq;
  return previous;
}

uint32_t ThreadCorrelation() { return t_seq; }

Profiler::Profiler(const Options& options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  if (options_.thread_ring_capacity == 0) {
    options_.thread_ring_capacity = 1;
  }
}

Profiler::~Profiler() {
  // Invalidate the calling thread's caches if they point at us; stale
  // caches on *other* threads are the caller's lifetime bug (writers
  // must not outlive the profiler), same contract as Drain().
  if (t_binding.profiler == this) t_binding = ThreadBinding{};
  if (t_profiler == this) t_profiler = nullptr;
}

Profiler::ThreadRing* Profiler::BindThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  std::thread::id self = std::this_thread::get_id();
  for (const auto& ring : rings_) {
    if (ring->owner == self) {
      t_binding = ThreadBinding{this, ring.get()};
      return ring.get();
    }
  }
  rings_.push_back(std::make_unique<ThreadRing>());
  ThreadRing* ring = rings_.back().get();
  ring->owner = self;
  t_binding = ThreadBinding{this, ring};
  return ring;
}

void Profiler::Record(const Span& span) {
  ThreadRing* ring;
  if (t_binding.profiler == this) {
    ring = static_cast<ThreadRing*>(t_binding.ring);
  } else {
    ring = BindThisThread();
  }
  // Single-writer counter: plain load + store, no locked RMW — only the
  // owning thread writes it, and readers sum through the atomic.
  ring->recorded.store(ring->recorded.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  if (ring->spans.size() < options_.thread_ring_capacity) {
    ring->spans.push_back(span);
    return;
  }
  // Ring is at capacity: overwrite the oldest entry in place (branch
  // wrap, no divide — same hot-path shape as the event recorder).
  ring->spans[ring->head] = span;
  if (++ring->head == ring->spans.size()) ring->head = 0;
  ring->wrapped = true;
  ring->dropped.store(ring->dropped.load(std::memory_order_relaxed) + 1,
                      std::memory_order_relaxed);
}

uint64_t Profiler::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->recorded.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Span> Profiler::Drain() {
  std::vector<Span> merged;
  DrainInto(&merged);
  return merged;
}

void Profiler::DrainInto(std::vector<Span>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span>& merged = *out;
  merged.clear();
  size_t total = 0;
  for (const auto& ring : rings_) total += ring->spans.size();
  merged.reserve(total);
  for (const auto& ring : rings_) {
    if (ring->wrapped) {
      // Oldest surviving span sits at head; unroll the ring.
      merged.insert(merged.end(),
                    ring->spans.begin() + static_cast<ptrdiff_t>(ring->head),
                    ring->spans.end());
      merged.insert(merged.end(), ring->spans.begin(),
                    ring->spans.begin() + static_cast<ptrdiff_t>(ring->head));
    } else {
      merged.insert(merged.end(), ring->spans.begin(), ring->spans.end());
    }
    ring->spans.clear();
    ring->head = 0;
    ring->wrapped = false;
  }
  // Stable (start, lane) order: ties keep per-thread record order, so a
  // parent span closed after its children still sorts by its earlier
  // start and the analyzer's nesting sweep sees parents first.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Span& a, const Span& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     return a.lane < b.lane;
                   });
}

}  // namespace ecostore::telemetry::profile

#endif  // ECOSTORE_PROFILE_DISABLED
