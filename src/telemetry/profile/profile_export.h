#ifndef ECOSTORE_TELEMETRY_PROFILE_PROFILE_EXPORT_H_
#define ECOSTORE_TELEMETRY_PROFILE_PROFILE_EXPORT_H_

// Exporters for a drained wall-clock profile (DESIGN.md §15):
//  - JSONL: a profile_meta line followed by one span object per line —
//    the interchange format `eco_report profile` reads back;
//  - Chrome trace_event JSON: the *real-time* track. The sim-time trace
//    (telemetry/export.cc) uses pids 0–3 with ts = simulated µs; this
//    file uses pid 10 with ts = wall-clock µs since the profiler epoch,
//    one tid per lane. The two clock domains are correlated by the span
//    `seq` ids (period index serial / epoch index sharded), which match
//    the kPeriodBoundary indices in the sim-time stream.
//
// Compiled unconditionally (plain vectors of Span): an
// ECOSTORE_PROFILE=OFF build of eco_report still reads captures written
// by enabled builds.

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/profile/profiler.h"

namespace ecostore::telemetry::profile {

/// Run identification + engine-level wall figures written into every
/// profile export. The pool_* figures are the common::ThreadPool stats
/// snapshot (the same numbers the engine publishes as telemetry gauges,
/// so `eco_report` and the profiler share one source of truth).
struct ProfileMeta {
  std::string workload;
  std::string policy;
  int shards = 0;  ///< 0 / 1 == serial engine
  int host_cpus = 0;
  int64_t wall_ns = 0;  ///< whole-run wall time (engine entry to exit)
  uint64_t spans = 0;
  uint64_t dropped = 0;

  /// common::ThreadPool::Stats at engine exit (all zero when the run had
  /// no pool, i.e. the serial engine).
  int pool_workers = 0;
  int64_t pool_tasks = 0;
  int64_t pool_busy_ns = 0;
  int64_t pool_peak_queue = 0;
};

Status WriteProfileJsonl(const std::string& path, const ProfileMeta& meta,
                         const std::vector<Span>& spans);

/// Parses a WriteProfileJsonl file back. Unknown "type" values are
/// skipped so the format can grow; a missing meta line or a span count
/// that disagrees with the meta header fails with the line number.
Status ParseProfileJsonl(const std::string& path, ProfileMeta* meta,
                         std::vector<Span>* spans);

Status WriteProfileTrace(const std::string& path, const ProfileMeta& meta,
                         const std::vector<Span>& spans);

/// Writes both exports: `<base>.profile.jsonl` and
/// `<base>.profile.trace.json` (a trailing ".profile.jsonl" or ".jsonl"
/// on `base` is stripped first, so `--profile=run.profile.jsonl` and
/// `--profile=run` are equivalent).
Status ExportProfile(const std::string& base, const ProfileMeta& meta,
                     const std::vector<Span>& spans);

/// Phase numeric value for a PhaseName() string; Phase::kNone when the
/// name is unknown (captures from newer builds).
Phase PhaseFromName(const std::string& name);

}  // namespace ecostore::telemetry::profile

#endif  // ECOSTORE_TELEMETRY_PROFILE_PROFILE_EXPORT_H_
