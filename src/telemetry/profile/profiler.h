#ifndef ECOSTORE_TELEMETRY_PROFILE_PROFILER_H_
#define ECOSTORE_TELEMETRY_PROFILE_PROFILER_H_

// Wall-clock phase profiler for the replay engines (DESIGN.md §15).
//
// The telemetry recorder observes *simulated* time exhaustively; this
// layer observes the engine's own *wall-clock* behaviour: scoped phase
// timers on std::chrono::steady_clock writing 32-byte POD spans into
// per-thread rings with the same single-writer discipline as the
// de-atomized event recorder (telemetry/recorder.h). Spans carry a lane
// tag (0 = serial / coordinator, lane L+1 = sharded lane L) and a
// correlation id (the monitoring-period index on the serial engine, the
// epoch index on the sharded engine) so wall-time profiles line up with
// the sim-time event stream across the two clock domains.
//
// Two compile modes, exactly mirroring the recorder:
//  - enabled (default): the real profiler below. An un-profiled run pays
//    one thread-local load + branch per ScopedPhase site; a profiled
//    thread pays two steady_clock reads per span plus one 32-byte store.
//  - ECOSTORE_PROFILE_DISABLED (CMake -DECOSTORE_PROFILE=OFF): the whole
//    API collapses to empty inline stubs (sizeof(Profiler) == 1, asserted
//    by tests/profile_disabled_test.cc) and every ScopedPhase folds away.
//
// The profiler is bound per *thread*, not threaded through call
// signatures: Experiment::Run / ShardedExperiment workers install it with
// ScopedThreadProfiler, and interior phases (classify-finalise, plan,
// migrate, flush — core/ code with no profiler parameter) just open a
// ScopedPhase, which is inert unless the thread is bound. The profiler
// never touches simulator or policy state, so attaching one cannot change
// replay results (enforced by the fingerprint gate, which runs every job
// with a profiler attached).
//
// Thread model: Record() is wait-free on the recording thread once its
// ring is bound (binding takes a mutex once per (thread, profiler) pair).
// Drain() requires writers to be quiescent — it runs after the engine
// returns.

#include <chrono>
#include <cstdint>
#include <type_traits>
#include <vector>

#ifndef ECOSTORE_PROFILE_DISABLED
#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#endif

namespace ecostore::telemetry::profile {

/// Which part of the engine a span covers. Serial phases first, sharded
/// phases after; the numeric values are part of the capture format, so
/// new phases append before kCount.
enum class Phase : uint16_t {
  kNone = 0,

  // --- serial replay pipeline (replay/experiment.cc + core/) ----------
  kIngest,           ///< one replay batch: generate + submit + account
  kClassifyFinalize, ///< PatternClassifier::Finalize at a period end
  kPlan,             ///< placement / cache planning (incremental or full)
  kMigrate,          ///< migration requests enacted from one plan
  kFlush,            ///< write-delay / preload / spin-down enactment
  kLedgerPump,       ///< mid-run telemetry pump into stream consumers
  kPeriodEnd,        ///< one whole DoPeriodEnd (parent of the above)
  kFinalize,         ///< end-of-run accounting after the hot loop

  // --- sharded engine (replay/sharded_experiment.cc) -------------------
  kEpoch,       ///< one bounded sim-time epoch on the coordinator
  kScatter,     ///< routing generated records into lane inboxes
  kLaneAdvance, ///< one lane consuming its inbox up to t_stop (busy time)
  kBarrierWait, ///< coordinator blocked on lane futures (contention)
  kMerge,       ///< barrier merge: lane telemetry drain + hook replay

  kCount
};

inline const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kNone: return "none";
    case Phase::kIngest: return "ingest";
    case Phase::kClassifyFinalize: return "classify_finalize";
    case Phase::kPlan: return "plan";
    case Phase::kMigrate: return "migrate";
    case Phase::kFlush: return "flush";
    case Phase::kLedgerPump: return "ledger_pump";
    case Phase::kPeriodEnd: return "period_end";
    case Phase::kFinalize: return "finalize";
    case Phase::kEpoch: return "epoch";
    case Phase::kScatter: return "scatter";
    case Phase::kLaneAdvance: return "lane_advance";
    case Phase::kBarrierWait: return "barrier_wait";
    case Phase::kMerge: return "merge";
    case Phase::kCount: break;
  }
  return "?";
}

/// \brief One closed wall-clock span. 32-byte trivially copyable POD so
/// per-thread rings are flat arrays and recording is one bounds check +
/// one 32-byte store (the profiler's analogue of the 48-byte Event).
/// `start_ns` is relative to the owning Profiler's construction instant
/// (steady_clock), `lane` is 0 for serial / coordinator work and
/// shard + 1 for sharded lanes, `seq` is the period / epoch correlation
/// id and `detail` is a phase-specific magnitude (batch records, inbox
/// events, queue depth, ...).
struct Span {
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
  uint16_t phase = 0;  ///< Phase numeric value
  uint16_t lane = 0;
  uint32_t seq = 0;
  int64_t detail = 0;
};

static_assert(std::is_trivially_copyable_v<Span>);
static_assert(sizeof(Span) == 32, "Span grew past its 32-byte budget");

#ifdef ECOSTORE_PROFILE_DISABLED

/// Compiled-out profiler: every member is an empty inline stub, so
/// ScopedPhase sites are dead code the optimiser removes entirely. No .cc
/// symbol is referenced, so translation units compiled with
/// ECOSTORE_PROFILE_DISABLED need not link the library. sizeof(Profiler)
/// must stay 1 so embedding a profiler pointer/member costs nothing.
class Profiler {
 public:
  struct Options {
    size_t thread_ring_capacity = 1u << 18;
  };

  static constexpr bool kEnabled = false;

  Profiler() = default;
  explicit Profiler(const Options&) {}

  void Record(const Span&) {}
  uint64_t recorded() const { return 0; }
  uint64_t dropped() const { return 0; }
  std::vector<Span> Drain() { return {}; }
  void DrainInto(std::vector<Span>* out) { out->clear(); }
  int64_t NowNs() const { return 0; }
};

static_assert(sizeof(Profiler) == 1,
              "disabled Profiler must stay an empty stub");

inline Profiler* SetThreadProfiler(Profiler*) { return nullptr; }
inline Profiler* ThreadProfiler() { return nullptr; }
inline uint16_t SetThreadProfileLane(uint16_t) { return 0; }
inline uint16_t ThreadProfileLane() { return 0; }
inline uint32_t SetThreadCorrelation(uint32_t) { return 0; }
inline uint32_t ThreadCorrelation() { return 0; }

/// Compiled-out scope: constructing one is a no-op of zero size impact.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase, int64_t = 0) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
};

#else  // !ECOSTORE_PROFILE_DISABLED

/// \brief The enabled wall-clock profiler (see file header).
class Profiler {
 public:
  struct Options {
    /// Per-thread ring capacity in spans (32 B each). Once a thread's
    /// ring is full the oldest spans are overwritten and accounted in
    /// dropped(). Rings grow lazily, so an idle profiler costs nothing.
    size_t thread_ring_capacity = 1u << 18;
  };

  static constexpr bool kEnabled = true;

  Profiler() : Profiler(Options{}) {}
  explicit Profiler(const Options& options);
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Appends one span to the calling thread's ring (wait-free once the
  /// thread is bound; first call per thread binds under a mutex).
  void Record(const Span& span);

  /// Nanoseconds since this profiler's construction (its span epoch).
  int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }
  int64_t SinceEpochNs(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_)
        .count();
  }

  /// Spans successfully recorded (still resident or overwritten).
  uint64_t recorded() const;
  /// Spans overwritten because a ring wrapped, summed over all threads.
  uint64_t dropped() const;

  /// Merges all thread rings into one stream ordered by start time
  /// (stable: ties keep per-thread record order, then lane order) and
  /// resets the rings. Callers must ensure no Record() runs concurrently.
  std::vector<Span> Drain();
  void DrainInto(std::vector<Span>* out);

 private:
  /// One thread's ring; identical single-writer discipline to the
  /// recorder's ThreadBuffer (only the owning thread updates the
  /// counters, via plain load+store; readers sum through the atomic).
  struct ThreadRing {
    std::thread::id owner;
    std::vector<Span> spans;
    size_t head = 0;
    bool wrapped = false;
    std::atomic<uint64_t> recorded{0};
    std::atomic<uint64_t> dropped{0};
  };

  ThreadRing* BindThisThread();

  Options options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  ///< guards rings_
  std::vector<std::unique_ptr<ThreadRing>> rings_;
};

/// Binds `profiler` as the calling thread's span sink; every ScopedPhase
/// on this thread records into it until rebound. Returns the previous
/// binding. Thread-local on purpose: interior phases (core/ planning
/// code) need no profiler parameter, and an un-profiled run keeps the
/// binding null so every ScopedPhase is a load + branch.
Profiler* SetThreadProfiler(Profiler* profiler);
Profiler* ThreadProfiler();

/// Lane tag stamped into Span::lane (0 serial / coordinator; the sharded
/// engine tags workers with shard + 1, mirroring telemetry's thread-shard
/// tag but independent of the telemetry compile mode).
uint16_t SetThreadProfileLane(uint16_t lane);
uint16_t ThreadProfileLane();

/// Correlation id stamped into Span::seq: the monitoring-period index on
/// the serial engine, the epoch index on the sharded engine. This is the
/// join key between the wall-clock track and the sim-time event stream.
uint32_t SetThreadCorrelation(uint32_t seq);
uint32_t ThreadCorrelation();

/// \brief RAII phase timer. Reads the thread binding once at entry; when
/// the thread is unbound (the un-profiled common case) both ends are a
/// branch and no clock is read.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase, int64_t detail = 0)
      : profiler_(ThreadProfiler()) {
    if (profiler_ == nullptr) return;
    phase_ = phase;
    detail_ = detail;
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedPhase() {
    if (profiler_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    Span span;
    span.start_ns = profiler_->SinceEpochNs(start_);
    span.dur_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count();
    span.phase = static_cast<uint16_t>(phase_);
    span.lane = ThreadProfileLane();
    span.seq = ThreadCorrelation();
    span.detail = detail_;
    profiler_->Record(span);
  }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Profiler* profiler_;
  Phase phase_ = Phase::kNone;
  int64_t detail_ = 0;
  std::chrono::steady_clock::time_point start_;
};

#endif  // ECOSTORE_PROFILE_DISABLED

/// RAII thread binding: installs `profiler` (possibly null — an engine
/// configured without one deliberately masks any stale outer binding for
/// its scope) and restores the previous binding on exit.
class ScopedThreadProfiler {
 public:
  explicit ScopedThreadProfiler(Profiler* profiler)
      : previous_(SetThreadProfiler(profiler)) {}
  ~ScopedThreadProfiler() { SetThreadProfiler(previous_); }

  ScopedThreadProfiler(const ScopedThreadProfiler&) = delete;
  ScopedThreadProfiler& operator=(const ScopedThreadProfiler&) = delete;

 private:
  Profiler* previous_;
};

/// RAII lane tag for one epoch's lane advance (sharded workers).
class ScopedProfileLane {
 public:
  explicit ScopedProfileLane(uint16_t lane)
      : previous_(SetThreadProfileLane(lane)) {}
  ~ScopedProfileLane() { SetThreadProfileLane(previous_); }

  ScopedProfileLane(const ScopedProfileLane&) = delete;
  ScopedProfileLane& operator=(const ScopedProfileLane&) = delete;

 private:
  uint16_t previous_;
};

/// RAII correlation id (period index / epoch index) for a scope.
class ScopedCorrelation {
 public:
  explicit ScopedCorrelation(uint32_t seq)
      : previous_(SetThreadCorrelation(seq)) {}
  ~ScopedCorrelation() { SetThreadCorrelation(previous_); }

  ScopedCorrelation(const ScopedCorrelation&) = delete;
  ScopedCorrelation& operator=(const ScopedCorrelation&) = delete;

 private:
  uint32_t previous_;
};

}  // namespace ecostore::telemetry::profile

#endif  // ECOSTORE_TELEMETRY_PROFILE_PROFILER_H_
