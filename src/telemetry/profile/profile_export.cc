#include "telemetry/profile/profile_export.h"

#include <cstdio>
#include <cstring>

#include "telemetry/flat_json.h"

namespace ecostore::telemetry::profile {

namespace {

/// Strips a trailing ".profile.jsonl" or ".jsonl" so base paths and
/// capture paths are interchangeable on the command line.
std::string StripCaptureSuffix(const std::string& base) {
  static const char* kSuffixes[] = {".profile.jsonl", ".jsonl"};
  for (const char* suffix : kSuffixes) {
    size_t n = std::strlen(suffix);
    if (base.size() > n && base.compare(base.size() - n, n, suffix) == 0) {
      return base.substr(0, base.size() - n);
    }
  }
  return base;
}

}  // namespace

Phase PhaseFromName(const std::string& name) {
  for (uint16_t p = 0; p < static_cast<uint16_t>(Phase::kCount); ++p) {
    if (name == PhaseName(static_cast<Phase>(p))) {
      return static_cast<Phase>(p);
    }
  }
  return Phase::kNone;
}

Status WriteProfileJsonl(const std::string& path, const ProfileMeta& meta,
                         const std::vector<Span>& spans) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + path);

  std::string line;
  line = "{\"type\":\"profile_meta\"";
  line += ",\"workload\":\"" + meta.workload + "\"";
  line += ",\"policy\":\"" + meta.policy + "\"";
  AppendKV(&line, "shards", meta.shards);
  AppendKV(&line, "host_cpus", meta.host_cpus);
  AppendKV(&line, "wall_ns", meta.wall_ns);
  AppendKVU(&line, "spans", spans.size());
  AppendKVU(&line, "dropped", meta.dropped);
  AppendKV(&line, "pool_workers", meta.pool_workers);
  AppendKV(&line, "pool_tasks", meta.pool_tasks);
  AppendKV(&line, "pool_busy_ns", meta.pool_busy_ns);
  AppendKV(&line, "pool_peak_queue", meta.pool_peak_queue);
  line += "}\n";
  std::fputs(line.c_str(), f);

  for (const Span& span : spans) {
    line = "{\"type\":\"span\",\"phase\":\"";
    line += PhaseName(static_cast<Phase>(span.phase));
    line += "\"";
    AppendKV(&line, "start_ns", span.start_ns);
    AppendKV(&line, "dur_ns", span.dur_ns);
    AppendKV(&line, "lane", span.lane);
    AppendKVU(&line, "seq", span.seq);
    AppendKV(&line, "detail", span.detail);
    line += "}\n";
    std::fputs(line.c_str(), f);
  }
  if (std::fclose(f) != 0) return Status::IoError("cannot finish " + path);
  return Status::OK();
}

Status ParseProfileJsonl(const std::string& path, ProfileMeta* meta,
                         std::vector<Span>* spans) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IoError("cannot read " + path);
  *meta = ProfileMeta{};
  spans->clear();
  bool have_meta = false;
  int64_t declared = -1;
  char buf[1024];
  int line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line_no++;
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    FlatJson json(line);
    std::string type = json.Str("type");
    if (type == "profile_meta") {
      meta->workload = json.Str("workload");
      meta->policy = json.Str("policy");
      meta->shards = static_cast<int>(json.Int("shards"));
      meta->host_cpus = static_cast<int>(json.Int("host_cpus"));
      meta->wall_ns = json.Int("wall_ns");
      meta->spans = json.U64("spans");
      meta->dropped = json.U64("dropped");
      meta->pool_workers = static_cast<int>(json.Int("pool_workers"));
      meta->pool_tasks = json.Int("pool_tasks");
      meta->pool_busy_ns = json.Int("pool_busy_ns");
      meta->pool_peak_queue = json.Int("pool_peak_queue");
      declared = static_cast<int64_t>(meta->spans);
      have_meta = true;
    } else if (type == "span") {
      if (!have_meta) {
        std::fclose(f);
        char err[64];
        std::snprintf(err, sizeof(err), ": line %d: span before meta",
                      line_no);
        return Status::InvalidArgument(path + err);
      }
      Span span;
      span.phase = static_cast<uint16_t>(PhaseFromName(json.Str("phase")));
      span.start_ns = json.Int("start_ns");
      span.dur_ns = json.Int("dur_ns");
      span.lane = static_cast<uint16_t>(json.Int("lane"));
      span.seq = static_cast<uint32_t>(json.U64("seq"));
      span.detail = json.Int("detail");
      spans->push_back(span);
    }
    // Unknown "type" values are skipped so the format can grow.
  }
  std::fclose(f);
  if (!have_meta) {
    return Status::InvalidArgument(path + ": no profile_meta line found");
  }
  if (declared >= 0 && static_cast<int64_t>(spans->size()) != declared) {
    char err[96];
    std::snprintf(err, sizeof(err),
                  ": declared %lld spans but parsed %lld (truncated?)",
                  static_cast<long long>(declared),
                  static_cast<long long>(spans->size()));
    return Status::InvalidArgument(path + err);
  }
  return Status::OK();
}

Status WriteProfileTrace(const std::string& path, const ProfileMeta& meta,
                         const std::vector<Span>& spans) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot write " + path);
  // pid 10: the wall-clock domain, disjoint from the sim-time trace's
  // pids 0-3 so the two files can be concatenated into one Perfetto view.
  // tid = lane (0 serial/coordinator); span seq ids in args correlate
  // with the kPeriodBoundary indices of the sim-time stream.
  std::fprintf(f, "[\n");
  std::fprintf(f,
               "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":10,"
               "\"args\":{\"name\":\"wall clock (%s / %s)\"}}",
               meta.workload.c_str(), meta.policy.c_str());
  for (const Span& span : spans) {
    std::fprintf(
        f,
        ",\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":10,\"tid\":%u,"
        "\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"seq\":%llu,\"detail\":%lld}}",
        PhaseName(static_cast<Phase>(span.phase)),
        static_cast<unsigned>(span.lane), span.start_ns / 1000.0,
        span.dur_ns / 1000.0, static_cast<unsigned long long>(span.seq),
        static_cast<long long>(span.detail));
  }
  std::fprintf(f, "\n]\n");
  if (std::fclose(f) != 0) return Status::IoError("cannot finish " + path);
  return Status::OK();
}

Status ExportProfile(const std::string& base, const ProfileMeta& meta,
                     const std::vector<Span>& spans) {
  std::string stem = StripCaptureSuffix(base);
  ECOSTORE_RETURN_NOT_OK(
      WriteProfileJsonl(stem + ".profile.jsonl", meta, spans));
  return WriteProfileTrace(stem + ".profile.trace.json", meta, spans);
}

}  // namespace ecostore::telemetry::profile
