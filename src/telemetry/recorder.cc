#include "telemetry/recorder.h"

#ifndef ECOSTORE_TELEMETRY_DISABLED

#include <algorithm>

namespace ecostore::telemetry {

namespace {

/// Per-thread binding cache: re-binding is just two loads when the same
/// (thread, recorder) pair records repeatedly — the common case, since
/// one experiment runs on one thread.
struct ThreadBinding {
  const void* recorder = nullptr;
  void* buffer = nullptr;
};
thread_local ThreadBinding t_binding;

/// Shard tag stamped into Event::shard by Record(). Thread-local, not
/// per-recorder: one thread advances one shard at a time, whichever
/// recorder it records into.
thread_local uint16_t t_shard = 0;

}  // namespace

uint16_t SetThreadShard(uint16_t shard) {
  uint16_t previous = t_shard;
  t_shard = shard;
  return previous;
}

uint16_t ThreadShard() { return t_shard; }

Recorder::Recorder(const Options& options)
    : options_(options), mask_(options.mask) {
  if (options_.thread_buffer_capacity == 0) {
    options_.thread_buffer_capacity = 1;
  }
}

Recorder::~Recorder() {
  // Invalidate the calling thread's cache if it points at us; stale
  // caches on *other* threads are the caller's lifetime bug (writers
  // must not outlive the recorder), same contract as Drain().
  if (t_binding.recorder == this) t_binding = ThreadBinding{};
}

Recorder::ThreadBuffer* Recorder::BindThisThread() {
  std::lock_guard<std::mutex> lock(mu_);
  std::thread::id self = std::this_thread::get_id();
  for (const auto& buffer : buffers_) {
    if (buffer->owner == self) {
      t_binding = ThreadBinding{this, buffer.get()};
      return buffer.get();
    }
  }
  buffers_.push_back(std::make_unique<ThreadBuffer>());
  ThreadBuffer* buffer = buffers_.back().get();
  buffer->owner = self;
  t_binding = ThreadBinding{this, buffer};
  return buffer;
}

void Recorder::Record(const Event& event) {
  ThreadBuffer* buffer;
  if (t_binding.recorder == this) {
    buffer = static_cast<ThreadBuffer*>(t_binding.buffer);
  } else {
    buffer = BindThisThread();
  }
  // Single-writer counter: plain load + store, no locked RMW — only the
  // owning thread writes it, and readers sum through the atomic.
  buffer->recorded.store(
      buffer->recorded.load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  if (buffer->events.size() < options_.thread_buffer_capacity) {
    buffer->events.push_back(event);
    buffer->events.back().shard = t_shard;
    return;
  }
  // Ring is at capacity: overwrite the oldest entry in place. Wrap with a
  // predictable branch — a 64-bit divide has no business in this path.
  Event& slot = buffer->events[buffer->head];
  slot = event;
  slot.shard = t_shard;
  if (++buffer->head == buffer->events.size()) buffer->head = 0;
  buffer->wrapped = true;
  buffer->dropped.store(buffer->dropped.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
}

uint64_t Recorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->recorded.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Recorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<Event> Recorder::Drain() {
  std::vector<Event> merged;
  DrainInto(&merged);
  return merged;
}

void Recorder::DrainInto(std::vector<Event>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event>& merged = *out;
  merged.clear();
  size_t total = 0;
  for (const auto& buffer : buffers_) total += buffer->events.size();
  merged.reserve(total);
  for (const auto& buffer : buffers_) {
    if (buffer->wrapped) {
      // Oldest surviving event sits at head; unroll the ring.
      merged.insert(merged.end(), buffer->events.begin() +
                                      static_cast<ptrdiff_t>(buffer->head),
                    buffer->events.end());
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.begin() +
                        static_cast<ptrdiff_t>(buffer->head));
    } else {
      merged.insert(merged.end(), buffer->events.begin(),
                    buffer->events.end());
    }
    buffer->events.clear();
    buffer->head = 0;
    buffer->wrapped = false;
  }
  // Sort key (time, shard). Stable: within one (time, shard) group events
  // keep their per-thread record order, so a single-threaded run (all
  // shard 0) drains in exactly the order it recorded. In a sharded run a
  // shard executes on exactly one thread per epoch, so every (time, shard)
  // group lives in a single ring in record order, and the drained stream
  // is deterministic for any worker-thread count.
  std::stable_sort(merged.begin(), merged.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.shard < b.shard;
                   });
}

std::vector<LogLine> Recorder::DrainLogs() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogLine> out;
  out.swap(logs_);
  return out;
}

Counter* Recorder::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, ptr] : counters_) {
    if (existing == name) return ptr.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

Gauge* Recorder::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, ptr] : gauges_) {
    if (existing == name) return ptr.get();
  }
  gauges_.emplace_back(name, std::make_unique<Gauge>());
  return gauges_.back().second.get();
}

std::vector<std::pair<std::string, int64_t>> Recorder::CounterValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> Recorder::GaugeValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->value());
  }
  return out;
}

void Recorder::WriteLog(LogLevel level, SimTime sim_time, const char* file,
                        int line, const std::string& message) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_.push_back(LogLine{level, sim_time, file, line, message});
}

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_DISABLED
