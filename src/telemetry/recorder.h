#ifndef ECOSTORE_TELEMETRY_RECORDER_H_
#define ECOSTORE_TELEMETRY_RECORDER_H_

// The event recorder: fixed-size POD events appended to per-thread ring
// buffers, with typed counters/gauges and a LogSink bridge so library log
// lines land next to the event stream with simulated timestamps.
//
// Two compile modes:
//  - enabled (default): the real recorder below. A site costs one
//    pointer test + one mask test when the class is filtered out, and one
//    48-byte store into a thread-bound ring when it records.
//  - ECOSTORE_TELEMETRY_DISABLED (CMake -DECOSTORE_TELEMETRY=OFF): the
//    whole API collapses to empty inline stubs (sizeof(Recorder) == 1,
//    asserted by tests/telemetry_disabled_test.cc) and Wants() is
//    constant false, so every event site folds away at compile time.
//
// Thread model: Record() is wait-free on the recording thread once its
// buffer is bound (binding takes a mutex once per (thread, recorder)
// pair). Drain() requires writers to be quiescent — it is called after
// Experiment::Run() returns, when the single replay thread is done.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "telemetry/event.h"

namespace ecostore::telemetry {

/// One captured log line (see LogSink bridge).
struct LogLine {
  LogLevel level = LogLevel::kInfo;
  SimTime sim_time = -1;
  std::string file;
  int line = 0;
  std::string message;
};

#ifdef ECOSTORE_TELEMETRY_DISABLED

/// Compiled-out counter: all operations vanish.
class Counter {
 public:
  void Add(int64_t) {}
  void Increment() {}
  int64_t value() const { return 0; }
};

/// Compiled-out gauge.
class Gauge {
 public:
  void Set(int64_t) {}
  void Max(int64_t) {}
  int64_t value() const { return 0; }
};

/// Compiled-out recorder: every member is an empty inline stub, so call
/// sites guarded by Wants() (constant false) are dead code the optimiser
/// removes entirely. No .cc symbol is referenced, so translation units
/// compiled with ECOSTORE_TELEMETRY_DISABLED need not link the library.
/// Deliberately NOT a LogSink (no vtable): sizeof(Recorder) must stay 1
/// so embedding a recorder pointer/member costs nothing measurable.
class Recorder {
 public:
  struct Options {
    size_t thread_buffer_capacity = 1u << 18;
    uint32_t mask = kClassDefault;
  };

  static constexpr bool kEnabled = false;

  Recorder() = default;
  explicit Recorder(const Options&) {}

  uint32_t mask() const { return 0; }
  void set_mask(uint32_t) {}
  void Record(const Event&) {}
  uint64_t dropped() const { return 0; }
  uint64_t recorded() const { return 0; }
  std::vector<Event> Drain() { return {}; }
  void DrainInto(std::vector<Event>* out) { out->clear(); }
  std::vector<LogLine> DrainLogs() { return {}; }
  Counter* counter(const std::string&) {
    static Counter c;
    return &c;
  }
  Gauge* gauge(const std::string&) {
    static Gauge g;
    return &g;
  }
  std::vector<std::pair<std::string, int64_t>> CounterValues() const {
    return {};
  }
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const {
    return {};
  }
  void WriteLog(LogLevel, SimTime, const char*, int, const std::string&) {}
};

static_assert(sizeof(Recorder) == 1,
              "disabled Recorder must stay an empty stub");

#else  // !ECOSTORE_TELEMETRY_DISABLED

/// Monotonic counter, relaxed atomics (telemetry needs no ordering).
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins gauge with a monotone-max helper.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Max(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief The enabled event recorder (see file header).
class Recorder : public LogSink {
 public:
  struct Options {
    /// Per-thread ring capacity in events (48 B each). Once a thread's
    /// ring is full the oldest events are overwritten and accounted in
    /// dropped(). Rings grow lazily, so an idle recorder costs nothing.
    size_t thread_buffer_capacity = 1u << 18;
    /// Event classes to record (kClass* bitmask).
    uint32_t mask = kClassDefault;
  };

  static constexpr bool kEnabled = true;

  Recorder() : Recorder(Options{}) {}
  explicit Recorder(const Options& options);
  ~Recorder() override;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Current class filter; Wants() tests it without a virtual call.
  uint32_t mask() const { return mask_.load(std::memory_order_relaxed); }
  void set_mask(uint32_t mask) {
    mask_.store(mask, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring (wait-free once the
  /// thread is bound; first call per thread binds under a mutex).
  void Record(const Event& event);

  /// Events overwritten because a ring wrapped, summed over all threads.
  uint64_t dropped() const;
  /// Events successfully recorded (still resident or overwritten).
  uint64_t recorded() const;

  /// Merges all thread buffers into one stream ordered by simulated time
  /// (stable: same-time events keep their per-thread record order) and
  /// resets the rings. Callers must ensure no Record() runs concurrently.
  std::vector<Event> Drain();

  /// Drain() into a caller-owned buffer (cleared first). Streaming
  /// consumers pump repeatedly mid-run; reusing one scratch vector keeps
  /// each pump allocation-free once it reaches steady state.
  void DrainInto(std::vector<Event>* out);

  /// Takes the captured log lines (see WriteLog).
  std::vector<LogLine> DrainLogs();

  /// Named counter/gauge registry. Pointers stay valid for the
  /// recorder's lifetime; lookups take a mutex (keep them out of per-I/O
  /// paths: resolve once, hold the pointer).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;

  /// LogSink: captures the line with its simulated timestamp. Mutex-
  /// guarded — logging is the cold path by design.
  void WriteLog(LogLevel level, SimTime sim_time, const char* file, int line,
                const std::string& message) override;

 private:
  /// One thread's ring. `events` grows geometrically up to `capacity`;
  /// after that `head` wraps and overwrites the oldest entry. The
  /// counters are single-writer (only the owning thread updates them, via
  /// plain load+store — no locked RMW in the record path); readers sum
  /// them through the atomic in recorded()/dropped().
  struct ThreadBuffer {
    std::thread::id owner;
    std::vector<Event> events;
    size_t head = 0;
    bool wrapped = false;
    std::atomic<uint64_t> recorded{0};
    std::atomic<uint64_t> dropped{0};
  };

  ThreadBuffer* BindThisThread();

  Options options_;
  std::atomic<uint32_t> mask_;

  mutable std::mutex mu_;  ///< guards buffers_, registries and logs
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<std::pair<std::string, std::unique_ptr<Gauge>>> gauges_;
  std::vector<LogLine> logs_;
};

#endif  // ECOSTORE_TELEMETRY_DISABLED

#ifdef ECOSTORE_TELEMETRY_DISABLED

inline uint16_t SetThreadShard(uint16_t) { return 0; }
inline uint16_t ThreadShard() { return 0; }

#else

/// Sets the calling thread's shard tag; every subsequent Record() on this
/// thread (any recorder) stamps it into Event::shard. Serial runs never
/// touch it, so they record shard 0 everywhere. Returns the previous tag.
uint16_t SetThreadShard(uint16_t shard);
uint16_t ThreadShard();

#endif  // ECOSTORE_TELEMETRY_DISABLED

/// RAII shard tag for one epoch's lane advance (or the coordinator's
/// barrier work): tags the thread for the scope, restores on exit. The
/// sharded engine wraps every pool task in one of these so a worker
/// thread that serves different lanes across epochs always stamps the
/// lane it is currently advancing.
class ScopedShardTag {
 public:
  explicit ScopedShardTag(uint16_t shard) : previous_(SetThreadShard(shard)) {}
  ~ScopedShardTag() { SetThreadShard(previous_); }

  ScopedShardTag(const ScopedShardTag&) = delete;
  ScopedShardTag& operator=(const ScopedShardTag&) = delete;

 private:
  uint16_t previous_;
};

/// The universal event-site guard: one null test + one mask test when
/// telemetry is compiled in, constant false (dead code) when it is not.
inline bool Wants(const Recorder* recorder, uint32_t event_class) {
#ifdef ECOSTORE_TELEMETRY_DISABLED
  (void)recorder;
  (void)event_class;
  return false;
#else
  return recorder != nullptr && (recorder->mask() & event_class) != 0;
#endif
}

/// \brief RAII bridge: routes this thread's Logger output into `recorder`
/// with timestamps from `clock(ctx)` for the scope's duration. The clock
/// is a captureless function pointer because common/ cannot depend on
/// sim/ — the experiment passes `[](const void* s) { return
/// static_cast<const sim::Simulator*>(s)->Now(); }`.
class ScopedLoggerBridge {
 public:
  ScopedLoggerBridge(Recorder* recorder, Logger::SimTimeFn clock,
                     const void* ctx) {
#ifdef ECOSTORE_TELEMETRY_DISABLED
    (void)recorder;
    (void)clock;
    (void)ctx;
#else
    if (recorder != nullptr) {
      previous_sink_ = Logger::SetThreadSink(recorder);
      Logger::SetThreadSimClock(clock, ctx);
      active_ = true;
    }
#endif
  }

  ~ScopedLoggerBridge() {
#ifndef ECOSTORE_TELEMETRY_DISABLED
    if (active_) {
      Logger::SetThreadSink(previous_sink_);
      Logger::SetThreadSimClock(nullptr, nullptr);
    }
#endif
  }

  ScopedLoggerBridge(const ScopedLoggerBridge&) = delete;
  ScopedLoggerBridge& operator=(const ScopedLoggerBridge&) = delete;

 private:
#ifndef ECOSTORE_TELEMETRY_DISABLED
  LogSink* previous_sink_ = nullptr;
  bool active_ = false;
#endif
};

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_RECORDER_H_
