#ifndef ECOSTORE_TELEMETRY_EVENT_H_
#define ECOSTORE_TELEMETRY_EVENT_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/sim_time.h"
#include "common/types.h"

namespace ecostore::telemetry {

/// What happened. Every kind belongs to exactly one EventClass (below);
/// the recorder's runtime mask filters whole classes, so a single load +
/// test decides whether an event site pays anything at all.
enum class EventKind : uint16_t {
  kNone = 0,

  // --- storage/ -------------------------------------------------------
  kPowerState,     ///< enclosure entered SpinningUp / On / Off
  kIdleGap,        ///< an enclosure idle interval ended
  kCacheFlush,     ///< one flush demand destaged to an enclosure
  kCacheAdmit,     ///< read-miss admission into the cache (detail class)
  kWriteDelaySet,  ///< the write-delay item set was replaced
  kPreloadBegin,   ///< bulk preload read issued for an item
  kPreloadDone,    ///< item became cache-resident (or stale)
  kPhysicalIo,     ///< one physical batch hit an enclosure (detail class)

  // --- replay/migration -----------------------------------------------
  kMigrationBegin,     ///< item copy job started
  kMigrationThrottle,  ///< chunk deferred: source/target busy (§V-A)
  kMigrationEnd,       ///< item copy finished (bytes < 0: commit failed)
  kBlockMove,          ///< DDR-style block-granular move accounted

  // --- core/ ----------------------------------------------------------
  kDecision,     ///< per-item classification + enacted actions
  kHotCold,      ///< hot/cold enclosure partition of one period
  kPeriodAdapt,  ///< monitoring-period adaptation I_new (§IV-H)

  // --- replay/ / sim/ -------------------------------------------------
  kPeriodBoundary,  ///< one monitoring period ended
  kSimStats,        ///< simulator heap/cancellation snapshot

  // --- storage/ (end-of-run accounting) --------------------------------
  kEnergyFinal,  ///< cumulative joules of one component at run end

  // --- storage/ (per-item write-delay attribution; DESIGN.md §10) -------
  // Appended after kEnergyFinal so existing numeric kind values stay
  // stable for captures recorded before these existed.
  kWriteDelayAdmit,  ///< one item entered the write-delay set
  kWriteDelayFlush,  ///< one item left the set; its dirty blocks destaged
};

inline const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kPowerState: return "power_state";
    case EventKind::kIdleGap: return "idle_gap";
    case EventKind::kCacheFlush: return "cache_flush";
    case EventKind::kCacheAdmit: return "cache_admit";
    case EventKind::kWriteDelaySet: return "write_delay_set";
    case EventKind::kPreloadBegin: return "preload_begin";
    case EventKind::kPreloadDone: return "preload_done";
    case EventKind::kPhysicalIo: return "physical_io";
    case EventKind::kMigrationBegin: return "migration_begin";
    case EventKind::kMigrationThrottle: return "migration_throttle";
    case EventKind::kMigrationEnd: return "migration_end";
    case EventKind::kBlockMove: return "block_move";
    case EventKind::kDecision: return "decision";
    case EventKind::kHotCold: return "hot_cold";
    case EventKind::kPeriodAdapt: return "period_adapt";
    case EventKind::kPeriodBoundary: return "period_boundary";
    case EventKind::kSimStats: return "sim_stats";
    case EventKind::kEnergyFinal: return "energy_final";
    case EventKind::kWriteDelayAdmit: return "write_delay_admit";
    case EventKind::kWriteDelayFlush: return "write_delay_flush";
  }
  return "?";
}

/// Runtime filter classes (bitmask). The default mask records everything
/// except the per-I/O detail classes, which would multiply the event
/// volume by the logical I/O count and blow the <2% overhead budget.
inline constexpr uint32_t kClassPower = 1u << 0;
inline constexpr uint32_t kClassCache = 1u << 1;
inline constexpr uint32_t kClassMigration = 1u << 2;
inline constexpr uint32_t kClassDecision = 1u << 3;
inline constexpr uint32_t kClassPeriod = 1u << 4;
inline constexpr uint32_t kClassSim = 1u << 5;
inline constexpr uint32_t kClassIoDetail = 1u << 6;
inline constexpr uint32_t kClassDefault =
    kClassPower | kClassCache | kClassMigration | kClassDecision |
    kClassPeriod | kClassSim;
inline constexpr uint32_t kClassAll = kClassDefault | kClassIoDetail;

inline uint32_t EventClassOf(EventKind kind) {
  switch (kind) {
    case EventKind::kNone: return 0;
    case EventKind::kPowerState:
    case EventKind::kIdleGap:
    case EventKind::kEnergyFinal: return kClassPower;
    case EventKind::kCacheFlush:
    case EventKind::kWriteDelaySet:
    case EventKind::kWriteDelayAdmit:
    case EventKind::kWriteDelayFlush:
    case EventKind::kPreloadBegin:
    case EventKind::kPreloadDone: return kClassCache;
    case EventKind::kCacheAdmit:
    case EventKind::kPhysicalIo: return kClassIoDetail;
    case EventKind::kMigrationBegin:
    case EventKind::kMigrationThrottle:
    case EventKind::kMigrationEnd:
    case EventKind::kBlockMove: return kClassMigration;
    case EventKind::kDecision:
    case EventKind::kHotCold:
    case EventKind::kPeriodAdapt: return kClassDecision;
    case EventKind::kPeriodBoundary: return kClassPeriod;
    case EventKind::kSimStats: return kClassSim;
  }
  return 0;
}

// --- Payloads (each <= 32 bytes, trivially copyable) ---------------------

/// kPowerState / kEnergyFinal. `state` mirrors storage::PowerState's
/// numeric values (0 Off, 1 SpinningUp, 2 On). A SpinningUp event carries
/// the configured spin-up latency so exporters can derive the
/// SpinningUp -> On edge without instrumenting the enclosure FSM itself.
/// `joules` is the component's *cumulative* energy counter at the event
/// instant (the energy ledger telescopes these deltas, so its total
/// reconciles exactly with ExperimentMetrics). `plan` tags the
/// power-management plan epoch in force (0 before the first plan).
/// kEnergyFinal reuses this payload with state == kFinalStateMarker;
/// enclosure == -1 reports the controller's constant draw.
struct PowerPayload {
  EnclosureId enclosure = kInvalidEnclosure;
  uint8_t state = 0;
  SimDuration spinup_us = 0;
  double joules = 0.0;
  int32_t plan = 0;
};

/// PowerPayload::state marker used by kEnergyFinal events.
inline constexpr uint8_t kFinalStateMarker = 255;

/// kIdleGap.
struct IdlePayload {
  EnclosureId enclosure = kInvalidEnclosure;
  SimDuration gap = 0;
};

/// kCacheFlush / kCacheAdmit / kWriteDelaySet / kPreloadBegin /
/// kPreloadDone / kPhysicalIo. Fields that do not apply are -1/0.
/// `plan` tags the plan epoch whose cache assignment caused the action.
struct CachePayload {
  DataItemId item = kInvalidDataItem;
  EnclosureId enclosure = kInvalidEnclosure;
  int64_t blocks = 0;
  int64_t bytes = 0;
  int32_t plan = 0;
};

/// kMigrationBegin / kMigrationThrottle / kMigrationEnd / kBlockMove.
/// For kMigrationEnd, bytes < 0 means the commit failed (target full).
struct MigrationPayload {
  DataItemId item = kInvalidDataItem;
  EnclosureId from = kInvalidEnclosure;
  EnclosureId to = kInvalidEnclosure;
  int64_t bytes = 0;
};

/// Actions enacted for an item in one period plan (kDecision bitmask).
inline constexpr uint8_t kActionMigrate = 1u << 0;
inline constexpr uint8_t kActionWriteDelay = 1u << 1;
inline constexpr uint8_t kActionPreload = 1u << 2;

/// kDecision: one item's classification with the *reason* (long-interval
/// count, read ratio, I/O-sequence count; paper §IV-B) and the actions
/// the plan took. `enclosure` is where the item will live after the plan
/// (the migration target when kActionMigrate is set).
struct DecisionPayload {
  DataItemId item = kInvalidDataItem;
  uint8_t pattern = 0;  ///< core::IoPattern numeric value (P0..P3)
  uint8_t actions = 0;
  int16_t enclosure = -1;
  int32_t long_intervals = 0;
  int32_t io_sequences = 0;
  int32_t read_permille = 0;  ///< reads * 1000 / total_ios
  int32_t plan = 0;           ///< plan epoch that emitted this decision
  int64_t total_ios = 0;
};

/// kHotCold: the partition of one period. Enclosures beyond 64 (none in
/// the paper's configurations) are summarised by n_hot/n_enclosures only.
struct HotColdPayload {
  uint64_t hot_mask = 0;
  int32_t n_hot = 0;
  int32_t n_enclosures = 0;
};

/// kPeriodAdapt: I_new = mean(LI) * alpha, clamped (paper §IV-H).
struct AdaptPayload {
  SimDuration prev_period = 0;
  SimDuration next_period = 0;
  SimDuration mean_long_interval = 0;
};

/// kPeriodBoundary.
struct PeriodPayload {
  int32_t index = 0;  ///< 0-based period number
  SimTime period_start = 0;
  SimDuration next_period = 0;
};

/// kSimStats: simulator queue health at a period boundary.
struct SimStatsPayload {
  int64_t peak_heap_depth = 0;
  int64_t live_events = 0;
  int64_t tombstones = 0;
  int64_t cancelled = 0;
};

/// Event::shard value used by the sharded engine's coordinator (period
/// boundaries, migration engine, decisions): sorts after every real shard
/// at equal timestamps, which matches the barrier protocol — shard-local
/// effects at time t are applied before coordinator events at t.
inline constexpr uint16_t kCoordinatorShard = 0xffff;

/// \brief One fixed-size, simulated-time-stamped telemetry event. 48-byte
/// trivially copyable POD so per-thread ring buffers are flat memcpy-able
/// arrays and recording is one bounds check + one 48-byte store.
struct Event {
  SimTime time = 0;
  EventKind kind = EventKind::kNone;
  /// Shard that recorded the event (0 in serial runs; the sharded
  /// engine's coordinator records kCoordinatorShard). Occupies what used
  /// to be padding, so the 48-byte layout is unchanged.
  uint16_t shard = 0;
  uint32_t pad32 = 0;
  union {
    PowerPayload power;
    IdlePayload idle;
    CachePayload cache;
    MigrationPayload migration;
    DecisionPayload decision;
    HotColdPayload hot_cold;
    AdaptPayload adapt;
    PeriodPayload period;
    SimStatsPayload sim_stats;
  };

  Event() : power() {}
};

static_assert(std::is_trivially_copyable_v<Event>);
static_assert(sizeof(Event) == 48, "Event grew past its 48-byte budget");
static_assert(sizeof(PowerPayload) <= 32);
static_assert(sizeof(CachePayload) <= 32);
static_assert(sizeof(MigrationPayload) <= 32);
static_assert(sizeof(DecisionPayload) <= 32);
static_assert(sizeof(HotColdPayload) <= 32);
static_assert(sizeof(AdaptPayload) <= 32);
static_assert(sizeof(PeriodPayload) <= 32);
static_assert(sizeof(SimStatsPayload) <= 32);

// --- Constructors for the instrumented sites -----------------------------

inline Event MakeEvent(SimTime time, EventKind kind) {
  Event e;
  e.time = time;
  e.kind = kind;
  return e;
}

inline Event MakePowerEvent(SimTime time, EnclosureId enclosure,
                            uint8_t state, SimDuration spinup_us,
                            double joules = 0.0, int32_t plan = 0) {
  Event e = MakeEvent(time, EventKind::kPowerState);
  e.power = PowerPayload{enclosure, state, spinup_us, joules, plan};
  return e;
}

/// End-of-run cumulative energy of one component: an enclosure, or the
/// controller when `enclosure` is kInvalidEnclosure (-1).
inline Event MakeEnergyFinalEvent(SimTime time, EnclosureId enclosure,
                                  double joules, int32_t plan = 0) {
  Event e = MakeEvent(time, EventKind::kEnergyFinal);
  e.power = PowerPayload{enclosure, kFinalStateMarker, 0, joules, plan};
  return e;
}

inline Event MakeIdleGapEvent(SimTime time, EnclosureId enclosure,
                              SimDuration gap) {
  Event e = MakeEvent(time, EventKind::kIdleGap);
  e.idle = IdlePayload{enclosure, gap};
  return e;
}

inline Event MakeCacheEvent(SimTime time, EventKind kind, DataItemId item,
                            EnclosureId enclosure, int64_t blocks,
                            int64_t bytes, int32_t plan = 0) {
  Event e = MakeEvent(time, kind);
  e.cache = CachePayload{item, enclosure, blocks, bytes, plan};
  return e;
}

inline Event MakeMigrationEvent(SimTime time, EventKind kind, DataItemId item,
                                EnclosureId from, EnclosureId to,
                                int64_t bytes) {
  Event e = MakeEvent(time, kind);
  e.migration = MigrationPayload{item, from, to, bytes};
  return e;
}

inline Event MakeDecisionEvent(SimTime time, const DecisionPayload& payload) {
  Event e = MakeEvent(time, EventKind::kDecision);
  e.decision = payload;
  return e;
}

inline Event MakeHotColdEvent(SimTime time, uint64_t hot_mask, int32_t n_hot,
                              int32_t n_enclosures) {
  Event e = MakeEvent(time, EventKind::kHotCold);
  e.hot_cold = HotColdPayload{hot_mask, n_hot, n_enclosures};
  return e;
}

inline Event MakeAdaptEvent(SimTime time, SimDuration prev_period,
                            SimDuration next_period,
                            SimDuration mean_long_interval) {
  Event e = MakeEvent(time, EventKind::kPeriodAdapt);
  e.adapt = AdaptPayload{prev_period, next_period, mean_long_interval};
  return e;
}

inline Event MakePeriodEvent(SimTime time, int32_t index,
                             SimTime period_start, SimDuration next_period) {
  Event e = MakeEvent(time, EventKind::kPeriodBoundary);
  e.period = PeriodPayload{index, period_start, next_period};
  return e;
}

inline Event MakeSimStatsEvent(SimTime time, int64_t peak_heap_depth,
                               int64_t live_events, int64_t tombstones,
                               int64_t cancelled) {
  Event e = MakeEvent(time, EventKind::kSimStats);
  e.sim_stats =
      SimStatsPayload{peak_heap_depth, live_events, tombstones, cancelled};
  return e;
}

}  // namespace ecostore::telemetry

#endif  // ECOSTORE_TELEMETRY_EVENT_H_
