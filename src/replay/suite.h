#ifndef ECOSTORE_REPLAY_SUITE_H_
#define ECOSTORE_REPLAY_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/power_management.h"
#include "policies/storage_policy.h"
#include "replay/experiment.h"
#include "workload/workload.h"

namespace ecostore::replay {

/// Creates a fresh policy instance for one run (policies are stateful, so
/// each run gets its own).
using PolicyFactory =
    std::function<std::unique_ptr<policies::StoragePolicy>()>;

/// Creates a fresh workload instance for one run. Parallel runs cannot
/// share one workload object (Next()/Reset() mutate it), so each
/// experiment replays its own clone; factories must be deterministic —
/// every instance they produce streams the identical record sequence
/// (workload generators are seeded from their config, so building twice
/// from the same config satisfies this).
using WorkloadFactory =
    std::function<Result<std::unique_ptr<workload::Workload>>()>;

/// Execution options of the parallel suite/experiment runners.
struct SuiteOptions {
  /// Worker threads; 1 (the default) runs everything serially in the
  /// calling thread, byte-identical to RunSuite.
  int num_threads = 1;
  /// Intra-run shard count: > 1 replays each experiment on the sharded
  /// engine (replay::ShardedExperiment) with this many lanes; 1 keeps
  /// the serial Experiment. Orthogonal to num_threads, which parallelises
  /// *across* experiments.
  int shards = 1;
};

/// One independent experiment: its own workload clone, its own policy,
/// its own simulator — no shared mutable state with any other job.
struct ExperimentJob {
  WorkloadFactory workload;
  PolicyFactory policy;
  ExperimentConfig config;
};

/// \brief Runs one workload under several policies, resetting the
/// workload between runs so every policy replays the identical trace
/// (the paper's methodology, §VII-A).
Result<std::vector<ExperimentMetrics>> RunSuite(
    workload::Workload* workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config);

/// \brief Runs arbitrary independent experiments, concurrently when
/// options.num_threads > 1. Results are returned in job order regardless
/// of completion order, and each job's workload/policy instances are
/// created on the thread that runs it, so the output is deterministic and
/// identical to a serial execution of the same jobs.
Result<std::vector<ExperimentMetrics>> RunExperiments(
    const std::vector<ExperimentJob>& jobs, const SuiteOptions& options);

/// \brief Parallel counterpart of RunSuite: one workload (cloned per run
/// through `workload`) under several policies. With num_threads == 1 the
/// experiments execute serially in suite order.
Result<std::vector<ExperimentMetrics>> ParallelRunSuite(
    const WorkloadFactory& workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config, const SuiteOptions& options);

/// Finds a run by policy name (nullptr if absent).
const ExperimentMetrics* FindRun(const std::vector<ExperimentMetrics>& runs,
                                 const std::string& policy_name);

/// The paper's four comparison policies in figure order: without power
/// saving, the proposed method, PDC, DDR. `pm_config` parameterises the
/// proposed method.
std::vector<PolicyFactory> PaperPolicySet(
    const core::PowerManagementConfig& pm_config);

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_SUITE_H_
