#ifndef ECOSTORE_REPLAY_SUITE_H_
#define ECOSTORE_REPLAY_SUITE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/power_management.h"
#include "policies/storage_policy.h"
#include "replay/experiment.h"

namespace ecostore::replay {

/// Creates a fresh policy instance for one run (policies are stateful, so
/// each run gets its own).
using PolicyFactory =
    std::function<std::unique_ptr<policies::StoragePolicy>()>;

/// \brief Runs one workload under several policies, resetting the
/// workload between runs so every policy replays the identical trace
/// (the paper's methodology, §VII-A).
Result<std::vector<ExperimentMetrics>> RunSuite(
    workload::Workload* workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config);

/// Finds a run by policy name (nullptr if absent).
const ExperimentMetrics* FindRun(const std::vector<ExperimentMetrics>& runs,
                                 const std::string& policy_name);

/// The paper's four comparison policies in figure order: without power
/// saving, the proposed method, PDC, DDR. `pm_config` parameterises the
/// proposed method.
std::vector<PolicyFactory> PaperPolicySet(
    const core::PowerManagementConfig& pm_config);

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_SUITE_H_
