#include "replay/potential.h"

namespace ecostore::replay {

OraclePotential ComputeOraclePotential(
    const ExperimentMetrics& metrics,
    const storage::EnclosureConfig& enclosure) {
  OraclePotential potential;
  const Watts idle_savings = enclosure.idle_power - enclosure.off_power;
  const Joules spinup_premium =
      EnergyOf(enclosure.spinup_power - enclosure.idle_power,
               enclosure.spinup_time);
  const SimDuration break_even = enclosure.BreakEvenTime();

  for (SimDuration gap : metrics.idle_gaps) {
    if (gap <= break_even) continue;
    Joules saved =
        EnergyOf(idle_savings, gap - enclosure.spinup_time) -
        spinup_premium;
    if (saved <= 0) continue;
    potential.savable_energy += saved;
    potential.exploitable_intervals++;
  }
  potential.savable_power =
      AveragePower(potential.savable_energy, metrics.duration);
  if (metrics.enclosure_energy > 0) {
    potential.savable_pct_of_enclosures =
        100.0 * potential.savable_energy / metrics.enclosure_energy;
  }
  return potential;
}

}  // namespace ecostore::replay
