#include "replay/experiment.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/logging.h"

namespace ecostore::replay {

Experiment::Experiment(workload::Workload* workload,
                       policies::StoragePolicy* policy,
                       const ExperimentConfig& config)
    : workload_(workload), policy_(policy), config_(config) {
  config_.storage.num_enclosures = workload->info().num_enclosures;
}

Experiment::~Experiment() = default;

Result<ExperimentMetrics> Experiment::Run() {
  auto wall_start = std::chrono::steady_clock::now();
  horizon_ = config_.duration > 0 ? config_.duration
                                  : workload_->info().duration;
  if (horizon_ <= 0) {
    return Status::InvalidArgument("experiment duration must be positive");
  }

  system_ = std::make_unique<storage::StorageSystem>(
      &sim_, config_.storage, &workload_->catalog());
  ECOSTORE_RETURN_NOT_OK(system_->Init());
  migrations_ =
      std::make_unique<MigrationEngine>(&sim_, system_.get(),
                                        config_.migration);
  storage_monitor_ = std::make_unique<monitor::StorageMonitor>(
      system_->num_enclosures());
  system_->AddObserver(storage_monitor_.get());
  system_->AddObserver(this);
  system_->SetTelemetry(config_.telemetry);
  system_->SetLatencyBook(config_.latency_book);
  // Library log lines produced during the run land in the recorder with
  // the simulated timestamp (the clock is a captureless function pointer
  // because common/ cannot see sim/).
  telemetry::ScopedLoggerBridge logger_bridge(
      config_.telemetry,
      [](const void* s) { return static_cast<const sim::Simulator*>(s)->Now(); },
      &sim_);
  // Wall-clock profiling is bound per thread (always set, even to null,
  // so a run configured without a profiler masks any stale binding);
  // interior phases — classify-finalise, plan, migrate, flush — open
  // ScopedPhases from core/ without any plumbing through the policy API.
  telemetry::profile::ScopedThreadProfiler profile_bind(config_.profiler);

  metrics_ = ExperimentMetrics{};
  metrics_.workload = workload_->info().name;
  metrics_.policy = policy_->name();
  metrics_.duration = horizon_;

  workload_->Reset();
  period_index_ = 0;
  app_monitor_.SetSink(nullptr);
  app_monitor_.ResetPeriod(0);
  storage_monitor_->ResetPeriod(0);
  policy_->Start(*system_, this);
  // A policy that attached a streaming sink in Start() may also have
  // declared the per-period trace buffer unnecessary — then the monitor
  // stops retaining it and period memory scales with activity.
  app_monitor_.SetCapture(policy_->wants_logical_trace());
  SchedulePeriodEnd(policy_->initial_period());

  std::unique_ptr<storage::PowerMeter> meter;
  if (config_.power_sample_interval > 0) {
    meter = std::make_unique<storage::PowerMeter>(
        system_.get(), config_.power_sample_interval);
    ECOSTORE_RETURN_NOT_OK(meter->Start());
  }

  // Streaming pump: one compare per record against the next window mark;
  // when the trace crosses it, the recorder drains into the dispatcher at
  // the largest window boundary at or below the record time. The pump
  // runs after the simulator has advanced to rec.time, so every event
  // below the frontier has been recorded and none can appear later (sim
  // time is monotonic) — the frontier contract of StreamDispatcher.
  telemetry::StreamDispatcher* stream =
      config_.stream != nullptr && config_.stream->has_consumers()
          ? config_.stream
          : nullptr;
  const SimDuration stream_window =
      config_.stream_window_us > 0 ? config_.stream_window_us : kMinute;
  SimTime next_stream_mark = stream != nullptr
                                 ? stream_window
                                 : std::numeric_limits<SimTime>::max();

  // The hot loop consumes the workload in batches (one virtual call per
  // kReplayBatch records instead of one per logical I/O) and only enters
  // RunUntil() when an event is actually due before the record — the
  // common no-event case advances the clock with an inlined store.
  batch_.clear();
  batch_.reserve(kReplayBatch);
  bool horizon_reached = false;
  while (!horizon_reached &&
         workload_->NextBatch(&batch_, kReplayBatch) > 0) {
    // One ingest span per batch (two clock reads per kReplayBatch
    // records). Period ends firing inside RunUntil nest under it, so the
    // analyzer's self-time subtraction attributes them correctly.
    telemetry::profile::ScopedPhase ingest_span(
        telemetry::profile::Phase::kIngest,
        static_cast<int64_t>(batch_.size()));
    for (const trace::LogicalIoRecord& rec : batch_) {
      if (rec.time >= horizon_) {
        horizon_reached = true;
        break;
      }
      // Fire everything due before this I/O (flushes, period ends,
      // spin-down checks, migration chunks).
      if (sim_.NextEventTime() > rec.time) {
        sim_.AdvanceTo(rec.time);
      } else {
        sim_.RunUntil(rec.time);
      }

      if (rec.time >= next_stream_mark) {
        telemetry::profile::ScopedPhase pump_span(
            telemetry::profile::Phase::kLedgerPump);
        const SimTime frontier = rec.time - rec.time % stream_window;
        stream->Pump(config_.telemetry, frontier);
        next_stream_mark = frontier + stream_window;
      }

      app_monitor_.Record(rec);
      storage::StorageSystem::IoResult result = system_->SubmitLogicalIo(rec);

      metrics_.logical_ios++;
      if (result.cache_hit) metrics_.cache_hit_ios++;
      int64_t latency_us = result.latency;
      metrics_.response_us.Add(latency_us);
      bool is_read = rec.is_read();
      if (is_read) {
        metrics_.logical_reads++;
        metrics_.read_response_us.Add(latency_us);
      }
      if (rec.tag != 0) {
        // Single probe: one node holds the read-response sum, the read
        // count and the first-issue/last-completion bracket.
        auto [it, inserted] = metrics_.tag_stats.try_emplace(rec.tag);
        ExperimentMetrics::TagStats& stats = it->second;
        if (inserted) stats.first_issue = rec.time;
        if (is_read) {
          stats.read_response_us_sum += static_cast<double>(latency_us);
          stats.reads++;
        }
        SimTime completion = rec.time + result.latency;
        if (completion > stats.last_completion) {
          stats.last_completion = completion;
        }
      }
    }
  }

  telemetry::profile::ScopedPhase finalize_span(
      telemetry::profile::Phase::kFinalize);
  sim_.RunUntil(horizon_);
  system_->FinalizeRun();

  // --- Final accounting ---
  metrics_.enclosure_energy = system_->EnclosureEnergy();
  metrics_.controller_energy = system_->ControllerEnergy();
  metrics_.avg_enclosure_power =
      AveragePower(metrics_.enclosure_energy, horizon_);
  metrics_.avg_controller_power =
      AveragePower(metrics_.controller_energy, horizon_);
  metrics_.avg_total_power =
      metrics_.avg_enclosure_power + metrics_.avg_controller_power;
  metrics_.avg_response_ms = metrics_.response_us.Mean() / 1000.0;
  metrics_.avg_read_response_ms =
      metrics_.read_response_us.Mean() / 1000.0;
  metrics_.migrated_bytes = migrations_->migrated_bytes();
  metrics_.item_migrations = migrations_->completed_item_moves();
  metrics_.block_migrations = migrations_->block_moves();
  metrics_.placement_determinations = policy_->placement_determinations();
  for (int e = 0; e < system_->num_enclosures(); ++e) {
    storage::DiskEnclosure& enc =
        system_->enclosure(static_cast<EnclosureId>(e));
    metrics_.spinups += enc.spinup_count();
    ExperimentMetrics::EnclosureStats stats;
    stats.energy = enc.Energy(sim_.Now());
    stats.served_ios = enc.served_ios();
    stats.spinups = enc.spinup_count();
    stats.utilization =
        horizon_ > 0 ? static_cast<double>(enc.active_time()) /
                           static_cast<double>(horizon_)
                     : 0.0;
    metrics_.per_enclosure.push_back(stats);
  }
  if (meter != nullptr) {
    meter->Stop();
    metrics_.power_samples = meter->samples();
  }
  sim::Simulator::Stats sim_stats = sim_.stats();
  metrics_.monitoring_periods = period_index_;
  metrics_.sim_events_executed = sim_stats.executed;
  metrics_.sim_events_cancelled = sim_stats.cancelled;
  metrics_.sim_peak_heap_depth =
      static_cast<int64_t>(sim_stats.peak_heap_depth);
  metrics_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Final streaming pump: drain the horizon-time events (kEnergyFinal et
  // al recorded by FinalizeRun) and hand consumers the measured energies.
  if (stream != nullptr) {
    telemetry::profile::ScopedPhase pump_span(
        telemetry::profile::Phase::kLedgerPump);
    stream->Pump(config_.telemetry, horizon_);
    telemetry::StreamFinal fin;
    fin.at = horizon_;
    fin.enclosure_energy_j = metrics_.enclosure_energy;
    fin.controller_energy_j = metrics_.controller_energy;
    fin.has_energy = true;
    stream->Finish(fin);
  }
  return metrics_;
}

void Experiment::SchedulePeriodEnd(SimDuration period) {
  period = std::max<SimDuration>(period, 1 * kSecond);
  period_event_ = sim_.ScheduleAfter(period, [this] { DoPeriodEnd(); });
}

void Experiment::DoPeriodEnd() {
  // Correlation id = period index: the span seq joins the wall-clock
  // track to this period's kPeriodBoundary event in the sim-time stream.
  telemetry::profile::ScopedCorrelation period_corr(
      static_cast<uint32_t>(period_index_));
  telemetry::profile::ScopedPhase period_span(
      telemetry::profile::Phase::kPeriodEnd);
  in_period_end_ = true;
  trigger_pending_ = false;
  monitor::MonitorSnapshot snapshot;
  snapshot.period_start = app_monitor_.period_start();
  snapshot.period_end = sim_.Now();
  snapshot.application = &app_monitor_;
  snapshot.storage = storage_monitor_.get();
  SimDuration next = policy_->OnPeriodEnd(snapshot, *system_, this);
  if (telemetry::Wants(config_.telemetry, telemetry::kClassPeriod)) {
    config_.telemetry->Record(telemetry::MakePeriodEvent(
        sim_.Now(), period_index_, snapshot.period_start, next));
  }
  if (telemetry::Wants(config_.telemetry, telemetry::kClassSim)) {
    sim::Simulator::Stats s = sim_.stats();
    config_.telemetry->Record(telemetry::MakeSimStatsEvent(
        sim_.Now(), static_cast<int64_t>(s.peak_heap_depth),
        static_cast<int64_t>(s.live_events),
        static_cast<int64_t>(s.tombstones), s.cancelled));
  }
  period_index_++;
  app_monitor_.ResetPeriod(sim_.Now());
  storage_monitor_->ResetPeriod(sim_.Now());
  in_period_end_ = false;
  SchedulePeriodEnd(next);
}

void Experiment::OnPhysicalIo(const trace::PhysicalIoRecord& rec) {
  metrics_.physical_batches++;
  policy_->OnPhysicalIo(rec);
}

void Experiment::OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                              SimDuration gap) {
  if (config_.collect_idle_gaps) metrics_.idle_gaps.push_back(gap);
  policy_->OnIdleGapEnd(enclosure, at, gap);
}

void Experiment::OnPowerStateChange(EnclosureId enclosure, SimTime at,
                                    storage::PowerState state) {
  if (state == storage::PowerState::kSpinningUp) {
    policy_->OnPowerOn(enclosure, at);
  }
}

void Experiment::RequestMigration(DataItemId item, EnclosureId target) {
  migrations_->RequestItemMove(item, target);
}

void Experiment::RequestBlockMigration(EnclosureId from, EnclosureId to,
                                       int64_t bytes) {
  migrations_->RequestBlockMove(from, to, bytes);
}

void Experiment::SetWriteDelayItems(
    const std::unordered_set<DataItemId>& items) {
  Status st = system_->SetWriteDelayItems(items);
  if (!st.ok()) {
    ECOSTORE_LOG(kWarn) << "SetWriteDelayItems: " << st.ToString();
  }
}

void Experiment::SetPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& items) {
  Status st = system_->SetPreloadItems(items);
  if (!st.ok()) {
    ECOSTORE_LOG(kWarn) << "SetPreloadItems: " << st.ToString();
  }
}

void Experiment::SetSpinDownAllowed(EnclosureId enclosure, bool allowed) {
  system_->SetSpinDownAllowed(enclosure, allowed);
}

void Experiment::PublishPlan(int32_t plan_id,
                             const std::vector<uint8_t>& item_patterns) {
  system_->BeginPlanEpoch(plan_id, item_patterns);
}

void Experiment::TriggerImmediatePeriodEnd() {
  if (in_period_end_ || trigger_pending_) return;
  trigger_pending_ = true;
  sim_.Cancel(period_event_);
  period_event_ = sim_.ScheduleAfter(0, [this] { DoPeriodEnd(); });
}

}  // namespace ecostore::replay
