#include "replay/migration_engine.h"

namespace ecostore::replay {

// The serial engine's code lives here (the template body is in the
// header; this instantiation keeps the common case compiled once).
template class MigrationEngineT<storage::StorageSystem>;

}  // namespace ecostore::replay
