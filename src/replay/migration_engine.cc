#include "replay/migration_engine.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace ecostore::replay {

MigrationEngine::MigrationEngine(sim::Simulator* simulator,
                                 storage::StorageSystem* system,
                                 const Options& options)
    : sim_(simulator), system_(system), options_(options) {
  assert(simulator != nullptr);
  assert(system != nullptr);
  assert(options_.chunk_bytes > 0);
  assert(options_.rate_bytes_per_second > 0);
}

void MigrationEngine::RequestItemMove(DataItemId item, EnclosureId target) {
  if (system_->virtualization().catalog().item(item).pinned) return;
  queue_.push_back(Job{item, target, kInvalidEnclosure, 0});
  FillJobSlots();
}

void MigrationEngine::RequestBlockMove(EnclosureId from, EnclosureId to,
                                       int64_t bytes) {
  if (bytes <= 0 || from == to) return;
  telemetry::Recorder* recorder = system_->telemetry();
  if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
    recorder->Record(telemetry::MakeMigrationEvent(
        sim_->Now(), telemetry::EventKind::kBlockMove, kInvalidDataItem,
        from, to, bytes));
  }
  int64_t n_ios =
      std::max<int64_t>(1, bytes / options_.block_size);
  system_->SubmitPhysicalBulk(from, n_ios, bytes, IoType::kRead,
                              /*sequential=*/false);
  system_->SubmitPhysicalBulk(to, n_ios, bytes, IoType::kWrite,
                              /*sequential=*/false);
  migrated_bytes_ += bytes;
  block_moves_++;
}

void MigrationEngine::FillJobSlots() {
  while (active_jobs_ < options_.max_concurrent_jobs && !queue_.empty()) {
    Job job = queue_.front();
    queue_.pop_front();
    EnclosureId source = system_->virtualization().EnclosureOf(job.item);
    if (source == job.target) continue;  // stale request
    job.source = source;
    job.remaining_bytes =
        system_->virtualization().catalog().item(job.item).size_bytes;
    active_jobs_++;
    telemetry::Recorder* recorder = system_->telemetry();
    if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
      recorder->Record(telemetry::MakeMigrationEvent(
          sim_->Now(), telemetry::EventKind::kMigrationBegin, job.item,
          job.source, job.target, job.remaining_bytes));
    }
    RunChunk(std::make_shared<Job>(job));
  }
}

void MigrationEngine::RunChunk(std::shared_ptr<Job> job) {
  // Background priority: stay out of the way while either end is busy
  // with application I/O.
  SimTime now = sim_->Now();
  SimTime src_busy = system_->enclosure(job->source).busy_until();
  SimTime dst_busy = system_->enclosure(job->target).busy_until();
  if (std::max(src_busy, dst_busy) > now + options_.busy_backoff_threshold) {
    telemetry::Recorder* recorder = system_->telemetry();
    if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
      recorder->Record(telemetry::MakeMigrationEvent(
          now, telemetry::EventKind::kMigrationThrottle, job->item,
          job->source, job->target, job->remaining_bytes));
    }
    sim_->ScheduleAfter(options_.busy_backoff_delay,
                        [this, job] { RunChunk(job); });
    return;
  }

  int64_t chunk = std::min(options_.chunk_bytes, job->remaining_bytes);
  int64_t n_ios = std::max<int64_t>(1, chunk / options_.block_size);
  system_->SubmitPhysicalBulk(job->source, n_ios, chunk, IoType::kRead,
                              /*sequential=*/true);
  system_->SubmitPhysicalBulk(job->target, n_ios, chunk, IoType::kWrite,
                              /*sequential=*/true);
  migrated_bytes_ += chunk;
  job->remaining_bytes -= chunk;

  SimDuration pace = FromSeconds(static_cast<double>(chunk) /
                                 options_.rate_bytes_per_second);
  sim_->ScheduleAfter(std::max<SimDuration>(pace, 1), [this, job] {
    if (job->remaining_bytes > 0) {
      RunChunk(job);
      return;
    }
    Status st = system_->CommitItemMove(job->item, job->target);
    if (!st.ok()) {
      // Target filled up while the copy ran; the item stays where it was
      // and the next management period will re-plan.
      ECOSTORE_LOG(kDebug) << "migration commit failed: " << st.ToString();
    } else {
      completed_item_moves_++;
    }
    telemetry::Recorder* recorder = system_->telemetry();
    if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
      // bytes < 0 reports a failed commit (paper §V-A re-plan case).
      int64_t size =
          system_->virtualization().catalog().item(job->item).size_bytes;
      recorder->Record(telemetry::MakeMigrationEvent(
          sim_->Now(), telemetry::EventKind::kMigrationEnd, job->item,
          job->source, job->target, st.ok() ? size : -1));
    }
    active_jobs_--;
    FillJobSlots();
  });
}

}  // namespace ecostore::replay
