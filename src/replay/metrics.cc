#include "replay/metrics.h"

#include <algorithm>

namespace ecostore::replay {

std::vector<IntervalCdfPoint> ExperimentMetrics::IntervalCdf(
    const std::vector<SimDuration>& thresholds) const {
  std::vector<IntervalCdfPoint> points;
  points.reserve(thresholds.size());
  for (SimDuration threshold : thresholds) {
    IntervalCdfPoint p;
    p.threshold = threshold;
    for (SimDuration gap : idle_gaps) {
      if (gap >= threshold) {
        p.cumulative_seconds += ToSeconds(gap);
        p.count++;
      }
    }
    points.push_back(p);
  }
  return points;
}

double ExperimentMetrics::EnclosurePowerSavingVs(
    const ExperimentMetrics& baseline) const {
  if (baseline.avg_enclosure_power <= 0) return 0.0;
  return 100.0 *
         (baseline.avg_enclosure_power - avg_enclosure_power) /
         baseline.avg_enclosure_power;
}

double ScaledTransactionThroughput(double baseline_tpmc,
                                   const ExperimentMetrics& baseline,
                                   const ExperimentMetrics& run) {
  double r_orig = baseline.avg_read_response_ms;
  double r = run.avg_read_response_ms;
  if (r <= 0 || r_orig <= 0) return baseline_tpmc;
  // The paper prints t = t_orig * (r / r_orig), but throughput must fall
  // as response time grows; we implement the physically meaningful
  // inverse ratio (see EXPERIMENTS.md).
  return baseline_tpmc * (r_orig / r);
}

std::map<int32_t, double> ScaledQueryResponses(
    const std::map<int32_t, double>& baseline_wall_seconds,
    const ExperimentMetrics& baseline, const ExperimentMetrics& run) {
  std::map<int32_t, double> result;
  for (const auto& [tag, q_orig] : baseline_wall_seconds) {
    auto base_it = baseline.tag_stats.find(tag);
    auto run_it = run.tag_stats.find(tag);
    if (base_it == baseline.tag_stats.end() ||
        base_it->second.reads == 0 || run_it == run.tag_stats.end() ||
        run_it->second.reads == 0 ||
        base_it->second.read_response_us_sum <= 0) {
      result[tag] = q_orig;
      continue;
    }
    result[tag] = q_orig * (run_it->second.read_response_us_sum /
                            base_it->second.read_response_us_sum);
  }
  return result;
}

std::map<int32_t, double> MeasuredQueryWallSeconds(
    const ExperimentMetrics& run) {
  std::map<int32_t, double> result;
  for (const auto& [tag, stats] : run.tag_stats) {
    result[tag] = ToSeconds(stats.last_completion - stats.first_issue);
  }
  return result;
}

}  // namespace ecostore::replay
