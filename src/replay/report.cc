#include "replay/report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>

namespace ecostore::replay {

namespace {

std::string Fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

}  // namespace

void PrintPowerTable(std::ostream& out,
                     const std::vector<ExperimentMetrics>& runs) {
  if (runs.empty()) return;
  const ExperimentMetrics& base = runs.front();
  out << Fmt("%-18s %14s %14s %12s %10s\n", "policy", "enclosures[W]",
             "controller[W]", "total[W]", "saving[%]");
  for (const ExperimentMetrics& m : runs) {
    out << Fmt("%-18s %14.1f %14.1f %12.1f %10.1f\n", m.policy.c_str(),
               m.avg_enclosure_power, m.avg_controller_power,
               m.avg_total_power, m.EnclosurePowerSavingVs(base));
  }
}

void PrintResponseTable(std::ostream& out,
                        const std::vector<ExperimentMetrics>& runs) {
  out << Fmt("%-18s %14s %16s %12s %12s\n", "policy", "avg resp[ms]",
             "avg read resp[ms]", "cache hit[%]", "IOPS");
  for (const ExperimentMetrics& m : runs) {
    double hit = m.logical_ios > 0
                     ? 100.0 * static_cast<double>(m.cache_hit_ios) /
                           static_cast<double>(m.logical_ios)
                     : 0.0;
    double iops = m.duration > 0
                      ? static_cast<double>(m.logical_ios) /
                            ToSeconds(m.duration)
                      : 0.0;
    out << Fmt("%-18s %14.2f %16.2f %12.1f %12.0f\n", m.policy.c_str(),
               m.avg_response_ms, m.avg_read_response_ms, hit, iops);
  }
}

void PrintMigrationTable(std::ostream& out,
                         const std::vector<ExperimentMetrics>& runs) {
  out << Fmt("%-18s %14s %12s %12s %16s %10s\n", "policy", "migrated",
             "item moves", "block moves", "determinations", "spin-ups");
  for (const ExperimentMetrics& m : runs) {
    out << Fmt("%-18s %14s %12lld %12lld %16lld %10lld\n", m.policy.c_str(),
               FormatBytes(m.migrated_bytes).c_str(),
               static_cast<long long>(m.item_migrations),
               static_cast<long long>(m.block_migrations),
               static_cast<long long>(m.placement_determinations),
               static_cast<long long>(m.spinups));
  }
}

void PrintIntervalCdf(std::ostream& out,
                      const std::vector<ExperimentMetrics>& runs,
                      const std::vector<SimDuration>& thresholds) {
  out << Fmt("%-18s", "threshold>=");
  for (const ExperimentMetrics& m : runs) {
    out << Fmt(" %16s", m.policy.c_str());
  }
  out << "\n";
  for (SimDuration threshold : thresholds) {
    out << Fmt("%-18s", FormatDuration(threshold).c_str());
    for (const ExperimentMetrics& m : runs) {
      auto points = m.IntervalCdf({threshold});
      out << Fmt(" %14.0fs", points.front().cumulative_seconds);
    }
    out << "\n";
  }
}

void PrintPatternMix(std::ostream& out, const std::string& workload,
                     const core::ClassificationResult& classification) {
  int64_t total = 0;
  for (int64_t c : classification.pattern_counts) total += c;
  out << workload << ": ";
  for (int p = 0; p < core::kNumIoPatterns; ++p) {
    double pct =
        total > 0 ? 100.0 *
                        static_cast<double>(classification.pattern_counts[
                            static_cast<size_t>(p)]) /
                        static_cast<double>(total)
                  : 0.0;
    out << Fmt("%s=%.1f%% (%lld)  ",
               core::IoPatternName(static_cast<core::IoPattern>(p)), pct,
               static_cast<long long>(classification.pattern_counts[
                   static_cast<size_t>(p)]));
  }
  out << Fmt("[items=%lld]\n", static_cast<long long>(total));
}

void PrintEnclosureTable(std::ostream& out, const ExperimentMetrics& run) {
  out << Fmt("%-10s %12s %14s %14s %10s\n", "enclosure", "avg power",
             "served I/Os", "utilization", "spin-ups");
  for (size_t e = 0; e < run.per_enclosure.size(); ++e) {
    const ExperimentMetrics::EnclosureStats& s = run.per_enclosure[e];
    out << Fmt("%-10zu %10.1f W %14lld %13.1f%% %10lld\n", e,
               AveragePower(s.energy, run.duration),
               static_cast<long long>(s.served_ios), 100.0 * s.utilization,
               static_cast<long long>(s.spinups));
  }
}

void PrintPowerTimeline(std::ostream& out, const ExperimentMetrics& run,
                        int buckets) {
  if (run.power_samples.empty() || buckets <= 0) {
    out << "(no power samples collected)\n";
    return;
  }
  // Bucket the samples and render each as a bar scaled to the peak.
  double peak = 1.0;
  for (const storage::PowerSample& s : run.power_samples) {
    peak = std::max(peak, s.total());
  }
  size_t per_bucket = std::max<size_t>(
      1, run.power_samples.size() / static_cast<size_t>(buckets));
  for (size_t start = 0; start < run.power_samples.size();
       start += per_bucket) {
    double sum = 0;
    size_t n = 0;
    for (size_t i = start;
         i < std::min(start + per_bucket, run.power_samples.size());
         ++i, ++n) {
      sum += run.power_samples[i].total();
    }
    double avg = sum / static_cast<double>(n);
    int width = static_cast<int>(50.0 * avg / peak);
    out << Fmt("%8s %7.0f W |",
               FormatDuration(run.power_samples[start].time).c_str(), avg);
    for (int i = 0; i < width; ++i) out << '#';
    out << "\n";
  }
}

std::string Summarize(const ExperimentMetrics& m) {
  return Fmt(
      "%s/%s: enc=%.0fW total=%.0fW resp=%.2fms read=%.2fms migrated=%s "
      "det=%lld spinups=%lld",
      m.workload.c_str(), m.policy.c_str(), m.avg_enclosure_power,
      m.avg_total_power, m.avg_response_ms, m.avg_read_response_ms,
      FormatBytes(m.migrated_bytes).c_str(),
      static_cast<long long>(m.placement_determinations),
      static_cast<long long>(m.spinups));
}

}  // namespace ecostore::replay
