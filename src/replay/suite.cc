#include "replay/suite.h"

#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "policies/ddr_policy.h"
#include "policies/pdc_policy.h"

namespace ecostore::replay {

Result<std::vector<ExperimentMetrics>> RunSuite(
    workload::Workload* workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config) {
  std::vector<ExperimentMetrics> results;
  results.reserve(policies.size());
  for (const PolicyFactory& factory : policies) {
    std::unique_ptr<policies::StoragePolicy> policy = factory();
    Experiment experiment(workload, policy.get(), config);
    Result<ExperimentMetrics> metrics = experiment.Run();
    if (!metrics.ok()) return metrics.status();
    results.push_back(std::move(metrics).value());
  }
  return results;
}

const ExperimentMetrics* FindRun(const std::vector<ExperimentMetrics>& runs,
                                 const std::string& policy_name) {
  for (const ExperimentMetrics& m : runs) {
    if (m.policy == policy_name) return &m;
  }
  return nullptr;
}

std::vector<PolicyFactory> PaperPolicySet(
    const core::PowerManagementConfig& pm_config) {
  std::vector<PolicyFactory> factories;
  factories.push_back([] {
    return std::make_unique<policies::NoPowerSavingPolicy>();
  });
  factories.push_back([pm_config] {
    return std::make_unique<core::EcoStoragePolicy>(pm_config);
  });
  factories.push_back([] {
    return std::make_unique<policies::PdcPolicy>(policies::PdcPolicy::Options{});
  });
  factories.push_back([] {
    return std::make_unique<policies::DdrPolicy>(policies::DdrPolicy::Options{});
  });
  return factories;
}

}  // namespace ecostore::replay
