#include "replay/suite.h"

#include <future>
#include <utility>

#include "common/thread_pool.h"
#include "core/eco_storage_policy.h"
#include "replay/sharded_experiment.h"
#include "policies/basic_policies.h"
#include "policies/ddr_policy.h"
#include "policies/pdc_policy.h"

namespace ecostore::replay {

namespace {

Result<ExperimentMetrics> RunOneJob(const ExperimentJob& job, int shards) {
  Result<std::unique_ptr<workload::Workload>> workload = job.workload();
  if (!workload.ok()) return workload.status();
  std::unique_ptr<policies::StoragePolicy> policy = job.policy();
  if (shards > 1) {
    ShardedExperiment experiment(workload.value().get(), policy.get(),
                                 job.config, shards);
    return experiment.Run();
  }
  Experiment experiment(workload.value().get(), policy.get(), job.config);
  return experiment.Run();
}

}  // namespace

Result<std::vector<ExperimentMetrics>> RunSuite(
    workload::Workload* workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config) {
  std::vector<ExperimentMetrics> results;
  results.reserve(policies.size());
  for (const PolicyFactory& factory : policies) {
    std::unique_ptr<policies::StoragePolicy> policy = factory();
    Experiment experiment(workload, policy.get(), config);
    Result<ExperimentMetrics> metrics = experiment.Run();
    if (!metrics.ok()) return metrics.status();
    results.push_back(std::move(metrics).value());
  }
  return results;
}

Result<std::vector<ExperimentMetrics>> RunExperiments(
    const std::vector<ExperimentJob>& jobs, const SuiteOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }

  if (options.num_threads == 1 || jobs.size() <= 1) {
    std::vector<ExperimentMetrics> results;
    results.reserve(jobs.size());
    for (const ExperimentJob& job : jobs) {
      Result<ExperimentMetrics> metrics = RunOneJob(job, options.shards);
      if (!metrics.ok()) return metrics.status();
      results.push_back(std::move(metrics).value());
    }
    return results;
  }

  std::vector<std::future<Result<ExperimentMetrics>>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(options.num_threads);
    for (const ExperimentJob& job : jobs) {
      futures.push_back(pool.Submit(
          [&job, &options] { return RunOneJob(job, options.shards); }));
    }
    // Collect before the pool dies: the destructor discards queued tasks,
    // and get() blocks until each job finished (or rethrows its error).
    std::vector<ExperimentMetrics> results;
    results.reserve(jobs.size());
    Status first_error = Status::OK();
    for (std::future<Result<ExperimentMetrics>>& future : futures) {
      Result<ExperimentMetrics> metrics = future.get();
      if (!metrics.ok()) {
        if (first_error.ok()) first_error = metrics.status();
        continue;
      }
      results.push_back(std::move(metrics).value());
    }
    if (!first_error.ok()) return first_error;
    return results;
  }
}

Result<std::vector<ExperimentMetrics>> ParallelRunSuite(
    const WorkloadFactory& workload,
    const std::vector<PolicyFactory>& policies,
    const ExperimentConfig& config, const SuiteOptions& options) {
  std::vector<ExperimentJob> jobs;
  jobs.reserve(policies.size());
  for (const PolicyFactory& policy : policies) {
    jobs.push_back(ExperimentJob{workload, policy, config});
  }
  return RunExperiments(jobs, options);
}

const ExperimentMetrics* FindRun(const std::vector<ExperimentMetrics>& runs,
                                 const std::string& policy_name) {
  for (const ExperimentMetrics& m : runs) {
    if (m.policy == policy_name) return &m;
  }
  return nullptr;
}

std::vector<PolicyFactory> PaperPolicySet(
    const core::PowerManagementConfig& pm_config) {
  std::vector<PolicyFactory> factories;
  factories.push_back([] {
    return std::make_unique<policies::NoPowerSavingPolicy>();
  });
  factories.push_back([pm_config] {
    return std::make_unique<core::EcoStoragePolicy>(pm_config);
  });
  factories.push_back([] {
    return std::make_unique<policies::PdcPolicy>(policies::PdcPolicy::Options{});
  });
  factories.push_back([] {
    return std::make_unique<policies::DdrPolicy>(policies::DdrPolicy::Options{});
  });
  return factories;
}

}  // namespace ecostore::replay
