#ifndef ECOSTORE_REPLAY_MIGRATION_ENGINE_H_
#define ECOSTORE_REPLAY_MIGRATION_ENGINE_H_

#include <deque>

#include "common/sim_time.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"

namespace ecostore::replay {

/// \brief Executes data-item migrations in the background, one item at a
/// time, rate-throttled so application I/O is not disturbed (the paper's
/// runtime movement function, §V-A).
///
/// Each chunk issues a bulk read on the source enclosure and a bulk write
/// on the target; when the item's last chunk lands, the virtualization
/// mapping flips to the new enclosure. Block-level moves (for DDR-style
/// baselines) are accounted immediately as a read/write pair without any
/// remapping.
class MigrationEngine {
 public:
  struct Options {
    int64_t chunk_bytes = 4LL * 1024 * 1024;
    /// Sustained copy throughput per job (bytes/second).
    double rate_bytes_per_second = 48.0 * 1024 * 1024;
    int32_t block_size = 64 * 1024;
    /// Items copied concurrently (distinct enclosure pairs in practice).
    int max_concurrent_jobs = 4;
    /// Background-priority throttle: a chunk is deferred while its source
    /// or target queue is this far behind (paper §V-A: migration "controls
    /// data transfer I/O throughputs so as to not influence the
    /// applications' performance").
    SimDuration busy_backoff_threshold = 50 * kMillisecond;
    SimDuration busy_backoff_delay = 500 * kMillisecond;
  };

  MigrationEngine(sim::Simulator* simulator, storage::StorageSystem* system,
                  const Options& options);

  /// Enqueues a whole-item move (FIFO). Stale requests (item already on
  /// target by the time the job starts) are dropped.
  void RequestItemMove(DataItemId item, EnclosureId target);

  /// Accounts an immediate block-granular move of `bytes`.
  void RequestBlockMove(EnclosureId from, EnclosureId to, int64_t bytes);

  int64_t migrated_bytes() const { return migrated_bytes_; }
  int64_t completed_item_moves() const { return completed_item_moves_; }
  int64_t block_moves() const { return block_moves_; }
  bool idle() const { return active_jobs_ == 0 && queue_.empty(); }
  size_t queued_moves() const { return queue_.size(); }

 private:
  struct Job {
    DataItemId item;
    EnclosureId target;
    EnclosureId source = kInvalidEnclosure;
    int64_t remaining_bytes = 0;
  };

  void FillJobSlots();
  void RunChunk(std::shared_ptr<Job> job);

  sim::Simulator* sim_;
  storage::StorageSystem* system_;
  Options options_;

  std::deque<Job> queue_;
  int active_jobs_ = 0;

  int64_t migrated_bytes_ = 0;
  int64_t completed_item_moves_ = 0;
  int64_t block_moves_ = 0;
};

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_MIGRATION_ENGINE_H_
