#ifndef ECOSTORE_REPLAY_MIGRATION_ENGINE_H_
#define ECOSTORE_REPLAY_MIGRATION_ENGINE_H_

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>

#include "common/logging.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"

namespace ecostore::replay {

/// \brief Executes data-item migrations in the background, one item at a
/// time, rate-throttled so application I/O is not disturbed (the paper's
/// runtime movement function, §V-A).
///
/// Each chunk issues a bulk read on the source enclosure and a bulk write
/// on the target; when the item's last chunk lands, the virtualization
/// mapping flips to the new enclosure. Block-level moves (for DDR-style
/// baselines) are accounted immediately as a read/write pair without any
/// remapping.
///
/// Templated on the storage facade so the sharded engine can route the
/// same logic through its cross-shard `ShardRouter` (which forwards each
/// enclosure's I/O to the owning lane); `System` must provide
/// virtualization(), enclosure(), SubmitPhysicalBulk(), CommitItemMove()
/// and telemetry() with StorageSystem's signatures. Serial code uses the
/// `MigrationEngine` alias below, explicitly instantiated in the .cc.
/// Engine tuning knobs, shared by every MigrationEngineT instantiation so
/// one ExperimentConfig::migration value drives serial and sharded runs.
struct MigrationOptions {
  int64_t chunk_bytes = 4LL * 1024 * 1024;
  /// Sustained copy throughput per job (bytes/second).
  double rate_bytes_per_second = 48.0 * 1024 * 1024;
  int32_t block_size = 64 * 1024;
  /// Items copied concurrently (distinct enclosure pairs in practice).
  int max_concurrent_jobs = 4;
  /// Background-priority throttle: a chunk is deferred while its source
  /// or target queue is this far behind (paper §V-A: migration "controls
  /// data transfer I/O throughputs so as to not influence the
  /// applications' performance").
  SimDuration busy_backoff_threshold = 50 * kMillisecond;
  SimDuration busy_backoff_delay = 500 * kMillisecond;
};

template <typename System>
class MigrationEngineT {
 public:
  using Options = MigrationOptions;

  MigrationEngineT(sim::Simulator* simulator, System* system,
                   const Options& options)
      : sim_(simulator), system_(system), options_(options) {
    assert(simulator != nullptr);
    assert(system != nullptr);
    assert(options_.chunk_bytes > 0);
    assert(options_.rate_bytes_per_second > 0);
  }

  /// Enqueues a whole-item move (FIFO). Stale requests (item already on
  /// target by the time the job starts) are dropped.
  void RequestItemMove(DataItemId item, EnclosureId target) {
    if (system_->virtualization().catalog().item(item).pinned) return;
    queue_.push_back(Job{item, target, kInvalidEnclosure, 0});
    FillJobSlots();
  }

  /// Accounts an immediate block-granular move of `bytes`.
  void RequestBlockMove(EnclosureId from, EnclosureId to, int64_t bytes) {
    if (bytes <= 0 || from == to) return;
    telemetry::Recorder* recorder = system_->telemetry();
    if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
      recorder->Record(telemetry::MakeMigrationEvent(
          sim_->Now(), telemetry::EventKind::kBlockMove, kInvalidDataItem,
          from, to, bytes));
    }
    int64_t n_ios =
        std::max<int64_t>(1, bytes / options_.block_size);
    system_->SubmitPhysicalBulk(from, n_ios, bytes, IoType::kRead,
                                /*sequential=*/false);
    system_->SubmitPhysicalBulk(to, n_ios, bytes, IoType::kWrite,
                                /*sequential=*/false);
    migrated_bytes_ += bytes;
    block_moves_++;
  }

  int64_t migrated_bytes() const { return migrated_bytes_; }
  int64_t completed_item_moves() const { return completed_item_moves_; }
  int64_t block_moves() const { return block_moves_; }
  bool idle() const { return active_jobs_ == 0 && queue_.empty(); }
  size_t queued_moves() const { return queue_.size(); }

 private:
  struct Job {
    DataItemId item;
    EnclosureId target;
    EnclosureId source = kInvalidEnclosure;
    int64_t remaining_bytes = 0;
  };

  void FillJobSlots() {
    while (active_jobs_ < options_.max_concurrent_jobs && !queue_.empty()) {
      Job job = queue_.front();
      queue_.pop_front();
      EnclosureId source = system_->virtualization().EnclosureOf(job.item);
      if (source == job.target) continue;  // stale request
      job.source = source;
      job.remaining_bytes =
          system_->virtualization().catalog().item(job.item).size_bytes;
      active_jobs_++;
      telemetry::Recorder* recorder = system_->telemetry();
      if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
        recorder->Record(telemetry::MakeMigrationEvent(
            sim_->Now(), telemetry::EventKind::kMigrationBegin, job.item,
            job.source, job.target, job.remaining_bytes));
      }
      RunChunk(std::make_shared<Job>(job));
    }
  }

  void RunChunk(std::shared_ptr<Job> job) {
    // Background priority: stay out of the way while either end is busy
    // with application I/O.
    SimTime now = sim_->Now();
    SimTime src_busy = system_->enclosure(job->source).busy_until();
    SimTime dst_busy = system_->enclosure(job->target).busy_until();
    if (std::max(src_busy, dst_busy) > now + options_.busy_backoff_threshold) {
      telemetry::Recorder* recorder = system_->telemetry();
      if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
        recorder->Record(telemetry::MakeMigrationEvent(
            now, telemetry::EventKind::kMigrationThrottle, job->item,
            job->source, job->target, job->remaining_bytes));
      }
      sim_->ScheduleAfter(options_.busy_backoff_delay,
                          [this, job] { RunChunk(job); });
      return;
    }

    int64_t chunk = std::min(options_.chunk_bytes, job->remaining_bytes);
    int64_t n_ios = std::max<int64_t>(1, chunk / options_.block_size);
    system_->SubmitPhysicalBulk(job->source, n_ios, chunk, IoType::kRead,
                                /*sequential=*/true);
    system_->SubmitPhysicalBulk(job->target, n_ios, chunk, IoType::kWrite,
                                /*sequential=*/true);
    migrated_bytes_ += chunk;
    job->remaining_bytes -= chunk;

    SimDuration pace = FromSeconds(static_cast<double>(chunk) /
                                   options_.rate_bytes_per_second);
    sim_->ScheduleAfter(std::max<SimDuration>(pace, 1), [this, job] {
      if (job->remaining_bytes > 0) {
        RunChunk(job);
        return;
      }
      Status st = system_->CommitItemMove(job->item, job->target);
      if (!st.ok()) {
        // Target filled up while the copy ran; the item stays where it was
        // and the next management period will re-plan.
        ECOSTORE_LOG(kDebug) << "migration commit failed: " << st.ToString();
      } else {
        completed_item_moves_++;
      }
      telemetry::Recorder* recorder = system_->telemetry();
      if (telemetry::Wants(recorder, telemetry::kClassMigration)) {
        // bytes < 0 reports a failed commit (paper §V-A re-plan case).
        int64_t size =
            system_->virtualization().catalog().item(job->item).size_bytes;
        recorder->Record(telemetry::MakeMigrationEvent(
            sim_->Now(), telemetry::EventKind::kMigrationEnd, job->item,
            job->source, job->target, st.ok() ? size : -1));
      }
      active_jobs_--;
      FillJobSlots();
    });
  }

  sim::Simulator* sim_;
  System* system_;
  Options options_;

  std::deque<Job> queue_;
  int active_jobs_ = 0;

  int64_t migrated_bytes_ = 0;
  int64_t completed_item_moves_ = 0;
  int64_t block_moves_ = 0;
};

/// The serial engine: migrations run directly against the one
/// StorageSystem. Explicitly instantiated in migration_engine.cc so
/// existing translation units keep linking against compiled code.
using MigrationEngine = MigrationEngineT<storage::StorageSystem>;

extern template class MigrationEngineT<storage::StorageSystem>;

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_MIGRATION_ENGINE_H_
