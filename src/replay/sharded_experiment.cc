#include "replay/sharded_experiment.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "monitor/snapshot.h"
#include "storage/power_meter.h"
#include "telemetry/profile/profiler.h"

namespace ecostore::replay {

namespace {

/// Captureless sim clock for the logger bridge (common/ cannot see sim/).
SimTime SimClock(const void* s) {
  return static_cast<const sim::Simulator*>(s)->Now();
}

}  // namespace

// ---------------------------------------------------------------------------
// Lane: one shard's private world — event heap, masked storage system,
// cache slice, metric partials, and the epoch logs the barrier merges.
// ---------------------------------------------------------------------------

struct ShardedExperiment::Lane final : storage::StorageObserver {
  int shard_id = 0;
  bool collect_idle_gaps = true;

  sim::Simulator sim;
  std::unique_ptr<storage::StorageSystem> system;
  /// Lane-local event ring; drained into the run recorder at barriers so
  /// the merged stream's tie order is lane order, not thread-bind order.
  std::unique_ptr<telemetry::Recorder> recorder;
  std::unique_ptr<telemetry::analysis::LatencyBook> book;
  std::unique_ptr<storage::PowerMeter> meter;

  /// This epoch's records (all < t_stop), in global trace order.
  std::vector<trace::LogicalIoRecord> inbox;

  /// One observer callback captured during lane-local execution, replayed
  /// into the storage monitor and the policy at the barrier.
  struct Hook {
    enum class Kind : uint8_t { kPhysicalIo, kIdleGap, kPowerState };
    Kind kind = Kind::kPhysicalIo;
    SimTime at = 0;
    EnclosureId enclosure = kInvalidEnclosure;
    SimDuration gap = 0;
    storage::PowerState state = storage::PowerState::kOn;
    trace::PhysicalIoRecord rec;
  };
  std::vector<Hook> hooks;

  /// Lane-local slice of the run metrics, reduced after the horizon.
  ExperimentMetrics partial;

  // --- storage::StorageObserver (lane-local; worker thread in epochs,
  // coordinator thread during barrier work) ---
  void OnPhysicalIo(const trace::PhysicalIoRecord& rec) override {
    partial.physical_batches++;
    Hook h;
    h.kind = Hook::Kind::kPhysicalIo;
    h.at = rec.time;
    h.enclosure = rec.enclosure;
    h.rec = rec;
    hooks.push_back(h);
  }

  void OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                    SimDuration gap) override {
    if (collect_idle_gaps) partial.idle_gaps.push_back(gap);
    Hook h;
    h.kind = Hook::Kind::kIdleGap;
    h.at = at;
    h.enclosure = enclosure;
    h.gap = gap;
    hooks.push_back(h);
  }

  void OnPowerStateChange(EnclosureId enclosure, SimTime at,
                          storage::PowerState state) override {
    Hook h;
    h.kind = Hook::Kind::kPowerState;
    h.at = at;
    h.enclosure = enclosure;
    h.state = state;
    hooks.push_back(h);
  }

  /// One epoch: submit this lane's records with the serial engine's exact
  /// clock discipline and per-record accounting, then run out the local
  /// heap and pin the clock to the barrier.
  void Advance(SimTime t_stop) {
    for (const trace::LogicalIoRecord& rec : inbox) {
      if (sim.NextEventTime() > rec.time) {
        sim.AdvanceTo(rec.time);
      } else {
        sim.RunUntil(rec.time);
      }

      storage::StorageSystem::IoResult result = system->SubmitLogicalIo(rec);

      partial.logical_ios++;
      if (result.cache_hit) partial.cache_hit_ios++;
      int64_t latency_us = result.latency;
      partial.response_us.Add(latency_us);
      bool is_read = rec.is_read();
      if (is_read) {
        partial.logical_reads++;
        partial.read_response_us.Add(latency_us);
      }
      if (rec.tag != 0) {
        auto [it, inserted] = partial.tag_stats.try_emplace(rec.tag);
        ExperimentMetrics::TagStats& stats = it->second;
        if (inserted) stats.first_issue = rec.time;
        if (is_read) {
          stats.read_response_us_sum += static_cast<double>(latency_us);
          stats.reads++;
        }
        SimTime completion = rec.time + result.latency;
        if (completion > stats.last_completion) {
          stats.last_completion = completion;
        }
      }
    }
    inbox.clear();
    // Fire everything due through the barrier (events exactly at t_stop
    // included), then pin the clock: a lane that quiesced early must stamp
    // barrier-time work (cross-shard flushes, plan deltas) with t_stop.
    sim.RunUntil(t_stop);
    sim.AdvanceTo(t_stop);
  }
};

// ---------------------------------------------------------------------------
// ShardRouter: the migration engine's storage facade. Placement truth
// lives on the master; each enclosure's I/O goes to its owning lane.
// ---------------------------------------------------------------------------

class ShardedExperiment::ShardRouter {
 public:
  explicit ShardRouter(ShardedExperiment* owner) : owner_(owner) {}

  const storage::BlockVirtualization& virtualization() const {
    return owner_->master_->virtualization();
  }

  storage::DiskEnclosure& enclosure(EnclosureId id) {
    return lane_of(id).system->enclosure(id);
  }

  SimTime SubmitPhysicalBulk(EnclosureId enclosure, int64_t n_ios,
                             int64_t bytes, IoType type, bool sequential) {
    // Barrier context: the lane clock is pinned to the coordinator's Now.
    return lane_of(enclosure).system->SubmitPhysicalBulk(enclosure, n_ios,
                                                         bytes, type,
                                                         sequential);
  }

  /// The sharded equivalent of StorageSystem::CommitItemMove: flip the
  /// master mapping (authoritative), mirror it into every lane, rehome the
  /// source lane's cached blocks, and — on a cross-lane move — hand the
  /// item's cache membership (write-delay / preload selection) to the
  /// target lane. The displaced dirty blocks are rewritten at the item's
  /// new home by the target lane, as the serial engine does.
  Status CommitItemMove(DataItemId item, EnclosureId target) {
    storage::StorageSystem& master = *owner_->master_;
    EnclosureId source = master.virtualization().EnclosureOf(item);
    ECOSTORE_RETURN_NOT_OK(master.virtualization().MoveItem(item, target));
    for (auto& lane : owner_->lanes_) {
      Status st = lane->system->virtualization().MoveItem(item, target);
      if (!st.ok()) {
        // Mirrors replay the identical placement history, so a divergent
        // outcome means the engine state is corrupt, not recoverable.
        ECOSTORE_LOG(kError) << "shard mirror MoveItem diverged: "
                             << st.ToString();
        return st;
      }
    }
    Lane& src = lane_of(source);
    Lane& dst = lane_of(target);
    std::vector<storage::FlushDemand> demands =
        src.system->mutable_cache().InvalidateItem(item);
    if (&src != &dst) {
      storage::StorageCache::ItemState state =
          src.system->mutable_cache().ExportItemState(item);
      src.system->mutable_cache().DropItemState(item);
      dst.system->mutable_cache().AdoptItemState(item, state);
    }
    dst.system->ApplyExternalFlushDemands(demands);
    return Status::OK();
  }

  telemetry::Recorder* telemetry() const {
    return owner_->config_.telemetry;
  }

 private:
  Lane& lane_of(EnclosureId id) const {
    return *owner_->lanes_[static_cast<size_t>(
        owner_->shard_map_.ShardOf(id))];
  }

  ShardedExperiment* owner_;
};

// ---------------------------------------------------------------------------
// ShardedExperiment
// ---------------------------------------------------------------------------

ShardedExperiment::ShardedExperiment(workload::Workload* workload,
                                     policies::StoragePolicy* policy,
                                     const ExperimentConfig& config,
                                     int shards, int worker_threads)
    : workload_(workload), policy_(policy), config_(config) {
  config_.storage.num_enclosures = workload->info().num_enclosures;
  int max_shards = std::max(1, config_.storage.num_enclosures);
  shard_map_.shards = std::clamp(shards, 1, max_shards);
  if (worker_threads > 0) {
    worker_threads_ = worker_threads;
  } else {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 1;
    worker_threads_ = std::max(1, std::min(shard_map_.shards, hw));
  }
}

ShardedExperiment::~ShardedExperiment() = default;

Result<ExperimentMetrics> ShardedExperiment::Run() {
  if (shard_map_.shards <= 1) {
    // One shard is *defined* as the serial engine: same object, same event
    // interleaving, bit-identical metrics and capture.
    Experiment serial(workload_, policy_, config_);
    return serial.Run();
  }
  return RunSharded();
}

Result<ExperimentMetrics> ShardedExperiment::RunSharded() {
  auto wall_start = std::chrono::steady_clock::now();
  horizon_ = config_.duration > 0 ? config_.duration
                                  : workload_->info().duration;
  if (horizon_ <= 0) {
    return Status::InvalidArgument("experiment duration must be positive");
  }

  const int num_enclosures = config_.storage.num_enclosures;
  const int S = shard_map_.shards;

  master_ = std::make_unique<storage::StorageSystem>(
      &sim_, config_.storage, &workload_->catalog());
  ECOSTORE_RETURN_NOT_OK(master_->Init());

  lanes_.clear();
  for (int s = 0; s < S; ++s) {
    auto lane = std::make_unique<Lane>();
    lane->shard_id = s;
    lane->collect_idle_gaps = config_.collect_idle_gaps;
    lane->system = std::make_unique<storage::StorageSystem>(
        &lane->sim, config_.storage, &workload_->catalog());
    ECOSTORE_RETURN_NOT_OK(lane->system->Init());
    lane->system->SetOwnedEnclosures(
        shard_map_.OwnedMask(num_enclosures, s));
    lane->system->AddObserver(lane.get());
    if (config_.telemetry != nullptr) {
      telemetry::Recorder::Options opts;
      opts.mask = config_.telemetry->mask();
      lane->recorder = std::make_unique<telemetry::Recorder>(opts);
      lane->system->SetTelemetry(lane->recorder.get());
    }
    if (config_.latency_book != nullptr) {
      lane->book = std::make_unique<telemetry::analysis::LatencyBook>();
      lane->system->SetLatencyBook(lane->book.get());
    }
    lanes_.push_back(std::move(lane));
  }

  router_ = std::make_unique<ShardRouter>(this);
  migrations_ = std::make_unique<MigrationEngineT<ShardRouter>>(
      &sim_, router_.get(), config_.migration);
  storage_monitor_ =
      std::make_unique<monitor::StorageMonitor>(num_enclosures);
  pool_ = std::make_unique<ThreadPool>(worker_threads_);

  // The coordinator's own events (periods, migration control, the final
  // controller energy, log lines) are tagged kCoordinatorShard — it sorts
  // after every lane at equal timestamps, matching the barrier protocol
  // (coordinator work runs after lane work at each t_stop).
  telemetry::ScopedShardTag coordinator_tag(telemetry::kCoordinatorShard);
  telemetry::ScopedLoggerBridge logger_bridge(config_.telemetry, &SimClock,
                                              &sim_);
  // Wall-clock profiling (DESIGN.md §15): the coordinator is lane 0; pool
  // workers bind per-epoch in AdvanceLanes with lane = shard + 1. The
  // profiler only reads the wall clock and its own rings, so attaching it
  // cannot perturb replay results.
  telemetry::profile::ScopedThreadProfiler profile_bind(config_.profiler);

  ExperimentMetrics metrics;
  metrics.workload = workload_->info().name;
  metrics.policy = policy_->name();
  metrics.duration = horizon_;

  workload_->Reset();
  window_.clear();
  gen_batch_.clear();
  gen_batch_.reserve(kGenBatch);
  last_generated_time_ = 0;
  stream_done_ = false;
  period_index_ = 0;
  plan_epoch_ = 0;
  in_period_end_ = false;
  trigger_pending_ = false;
  app_monitor_.SetSink(nullptr);
  app_monitor_.ResetPeriod(0);
  storage_monitor_->ResetPeriod(0);

  policy_->Start(*master_, this);
  app_monitor_.SetCapture(policy_->wants_logical_trace());
  SchedulePeriodEnd(policy_->initial_period());
  // Start() may have seeded preloads or spin-down flags; deliver the
  // resulting observer callbacks now, as the serial engine would inline.
  MergeBarrier();

  if (config_.power_sample_interval > 0) {
    for (auto& lane : lanes_) {
      lane->meter = std::make_unique<storage::PowerMeter>(
          lane->system.get(), config_.power_sample_interval);
      ECOSTORE_RETURN_NOT_OK(lane->meter->Start());
    }
  }

  // Streaming pump, same contract as the serial engine but evaluated at
  // epoch granularity: after `MergeBarrier(); sim_.RunUntil(t_stop)` every
  // lane clock and the coordinator clock are pinned at t_stop and all lane
  // rings have been re-recorded into the shared recorder, so no event
  // below t_stop can appear later — t_stop is a valid exclusive frontier.
  // Events at exactly t_stop (e.g. lane work the barrier just scheduled)
  // stay pending in the dispatcher until a later frontier passes them.
  telemetry::StreamDispatcher* stream =
      config_.stream != nullptr && config_.stream->has_consumers()
          ? config_.stream
          : nullptr;
  const SimDuration stream_window =
      config_.stream_window_us > 0 ? config_.stream_window_us : kMinute;
  SimTime next_stream_mark = stream != nullptr
                                 ? stream_window
                                 : std::numeric_limits<SimTime>::max();

  // --- Epoch loop: generate → scatter → parallel lane advance → barrier
  // merge → coordinator events, with t_stop chosen so no lane ever runs
  // past the next cross-shard effect. ---
  uint32_t epoch_index = 0;
  while (true) {
    // The epoch index is the sharded engine's correlation key: every span
    // the coordinator or a lane records this iteration carries it, so the
    // contention report can line up lane busy time, barrier waits and
    // merges per epoch.
    telemetry::profile::ScopedCorrelation epoch_corr(epoch_index);
    telemetry::profile::ScopedPhase epoch_span(
        telemetry::profile::Phase::kEpoch);
    EnsureGenerated(sim_.Now());
    SimTime window_limit = stream_done_ ? horizon_ : last_generated_time_;
    SimTime t_stop =
        std::min(horizon_, std::min(window_limit, sim_.NextEventTime()));

    {
      telemetry::profile::ScopedPhase scatter_span(
          telemetry::profile::Phase::kScatter,
          static_cast<int64_t>(window_.size()));
      ScatterUpTo(t_stop);
    }
    AdvanceLanes(t_stop);
    // The coordinator's clock reaches the barrier before the merged hooks
    // replay, so a pattern-change trigger fired during replay lands its
    // immediate period end at exactly t_stop (run by RunUntil below).
    sim_.AdvanceTo(t_stop);
    MergeBarrier();
    sim_.RunUntil(t_stop);

    if (t_stop >= next_stream_mark) {
      stream->Pump(config_.telemetry, t_stop);
      next_stream_mark = (t_stop / stream_window + 1) * stream_window;
    }

    if (t_stop >= horizon_) break;
    epoch_index++;
  }

  // --- Horizon: all clocks are pinned to the horizon. Destage and report
  // final idle gaps per lane (serial FinalizeRun order within each lane,
  // lanes in shard order), deliver the resulting callbacks, then emit the
  // controller's energy final exactly once. ---
  {
    telemetry::profile::ScopedPhase finalize_span(
        telemetry::profile::Phase::kFinalize);
    for (auto& lane : lanes_) {
      telemetry::ScopedShardTag tag(
          static_cast<uint16_t>(lane->shard_id + 1));
      telemetry::ScopedLoggerBridge bridge(lane->recorder.get(), &SimClock,
                                           &lane->sim);
      lane->system->FinalizeRun();
    }
    MergeBarrier();
  }
  if (telemetry::Wants(config_.telemetry, telemetry::kClassPower)) {
    config_.telemetry->Record(telemetry::MakeEnergyFinalEvent(
        sim_.Now(), kInvalidEnclosure, master_->ControllerEnergy(),
        plan_epoch_));
  }
  for (auto& lane : lanes_) {
    if (lane->meter != nullptr) lane->meter->Stop();
  }

  // Publish the pool's contention gauges — the single source of truth the
  // profile export and eco_report read (busy time is wall-clock, so the
  // values vary run to run; they never feed back into replay results).
  if (config_.telemetry != nullptr && pool_ != nullptr) {
    ThreadPool::Stats ps = pool_->GetStats();
    config_.telemetry->gauge("pool.workers")->Set(ps.workers);
    config_.telemetry->gauge("pool.tasks_executed")->Set(ps.tasks_executed);
    config_.telemetry->gauge("pool.peak_queued")->Set(ps.peak_queued);
    config_.telemetry->gauge("pool.busy_us")->Set(ps.busy_ns / 1000);
  }

  ReduceMetrics(&metrics);
  metrics.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  // Final streaming pump: the horizon-time events (per-enclosure finals
  // from FinalizeRun, the controller final above) plus the reduced
  // measured energies. Mirrors the serial engine's epilogue.
  if (stream != nullptr) {
    stream->Pump(config_.telemetry, horizon_);
    telemetry::StreamFinal fin;
    fin.at = horizon_;
    fin.enclosure_energy_j = metrics.enclosure_energy;
    fin.controller_energy_j = metrics.controller_energy;
    fin.has_energy = true;
    stream->Finish(fin);
  }
  return metrics;
}

void ShardedExperiment::EnsureGenerated(SimTime beyond) {
  while (!stream_done_ && (last_generated_time_ <= beyond ||
                           window_.size() < kWindowTarget)) {
    gen_batch_.clear();
    if (workload_->NextBatch(&gen_batch_, kGenBatch) == 0) {
      stream_done_ = true;
      break;
    }
    for (const trace::LogicalIoRecord& rec : gen_batch_) {
      // First at-or-past-horizon record permanently ends generation — the
      // serial hot loop breaks here and never reads further.
      if (rec.time >= horizon_) {
        stream_done_ = true;
        break;
      }
      window_.push_back(rec);
      last_generated_time_ = rec.time;
    }
  }
}

void ShardedExperiment::ScatterUpTo(SimTime t_stop) {
  // Routing uses the *current* master mapping: commits only happen in
  // barrier context at times >= t_stop, so every record scattered here
  // observes the same placement the serial engine would at its own time.
  while (!window_.empty() && window_.front().time < t_stop) {
    const trace::LogicalIoRecord& rec = window_.front();
    app_monitor_.Record(rec);
    lanes_[static_cast<size_t>(LaneOfItem(rec.item))]->inbox.push_back(rec);
    window_.pop_front();
  }
}

void ShardedExperiment::AdvanceLanes(SimTime t_stop) {
  // Pool workers carry no thread-local profiler binding of their own, so
  // each task re-binds the run's profiler and stamps its spans with the
  // lane id (shard + 1; the coordinator is lane 0) and the epoch index the
  // coordinator holds right now.
  telemetry::profile::Profiler* profiler = config_.profiler;
  const uint32_t epoch = telemetry::profile::ThreadCorrelation();
  std::vector<std::future<void>> pending;
  for (auto& lane_ptr : lanes_) {
    Lane* lane = lane_ptr.get();
    if (lane->inbox.empty() && lane->sim.NextEventTime() > t_stop) {
      // Nothing to run: pin the clock without paying for a pool hop.
      lane->sim.AdvanceTo(t_stop);
      continue;
    }
    pending.push_back(pool_->Submit([lane, t_stop, profiler, epoch] {
      telemetry::ScopedShardTag tag(
          static_cast<uint16_t>(lane->shard_id + 1));
      telemetry::ScopedLoggerBridge bridge(lane->recorder.get(), &SimClock,
                                           &lane->sim);
      telemetry::profile::ScopedThreadProfiler profile_bind(profiler);
      telemetry::profile::ScopedProfileLane lane_tag(
          static_cast<uint16_t>(lane->shard_id + 1));
      telemetry::profile::ScopedCorrelation corr(epoch);
      telemetry::profile::ScopedPhase advance_span(
          telemetry::profile::Phase::kLaneAdvance,
          static_cast<int64_t>(lane->inbox.size()));
      lane->Advance(t_stop);
    }));
  }
  // Barrier wait: coordinator wall time spent blocked on lane futures.
  // `detail` records how many tasks were still queued when the wait
  // began — the queue-depth signal for the contention report.
  telemetry::profile::ScopedPhase wait_span(
      telemetry::profile::Phase::kBarrierWait,
      pool_ != nullptr ? pool_->GetStats().queued : 0);
  for (auto& f : pending) f.get();
}

void ShardedExperiment::MergeBarrier() {
  telemetry::profile::ScopedPhase merge_span(
      telemetry::profile::Phase::kMerge);
  DrainLaneTelemetry();
  // Hook replay can make the policy act (e.g. a DDR block move), which
  // produces new lane hooks; loop until quiescent, as the serial engine's
  // synchronous observer nesting would.
  while (ReplayLaneHooks() > 0) DrainLaneTelemetry();
}

void ShardedExperiment::DrainLaneTelemetry() {
  if (config_.telemetry == nullptr) return;
  for (auto& lane : lanes_) {
    if (lane->recorder == nullptr) continue;
    // Re-recording on the coordinator thread funnels every lane's events
    // into one ring in lane order: the drained stream's tie order is then
    // deterministic for any worker-thread count. The re-record stamps the
    // lane's shard tag (not the coordinator's).
    telemetry::ScopedShardTag tag(
        static_cast<uint16_t>(lane->shard_id + 1));
    for (const telemetry::Event& event : lane->recorder->Drain()) {
      config_.telemetry->Record(event);
    }
    for (const telemetry::LogLine& line : lane->recorder->DrainLogs()) {
      config_.telemetry->WriteLog(line.level, line.sim_time,
                                  line.file.c_str(), line.line,
                                  line.message);
    }
  }
}

size_t ShardedExperiment::ReplayLaneHooks() {
  struct Ref {
    SimTime at;
    EnclosureId enclosure;
    int lane;
    size_t idx;
  };
  std::vector<std::vector<Lane::Hook>> taken(lanes_.size());
  std::vector<Ref> order;
  size_t total = 0;
  for (size_t l = 0; l < lanes_.size(); ++l) {
    taken[l].swap(lanes_[l]->hooks);
    total += taken[l].size();
  }
  if (total == 0) return 0;
  order.reserve(total);
  for (size_t l = 0; l < taken.size(); ++l) {
    for (size_t i = 0; i < taken[l].size(); ++i) {
      order.push_back(
          Ref{taken[l][i].at, taken[l][i].enclosure, static_cast<int>(l), i});
    }
  }
  // Canonical merge order: (time, enclosure, lane, index). Enclosure-major
  // at equal times keeps the replayed stream stable across shard counts;
  // (lane, index) makes it a total order.
  std::sort(order.begin(), order.end(), [](const Ref& a, const Ref& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.enclosure != b.enclosure) return a.enclosure < b.enclosure;
    if (a.lane != b.lane) return a.lane < b.lane;
    return a.idx < b.idx;
  });
  for (const Ref& r : order) {
    const Lane::Hook& h = taken[static_cast<size_t>(r.lane)][r.idx];
    switch (h.kind) {
      case Lane::Hook::Kind::kPhysicalIo:
        // Serial observer order: the storage monitor is attached before
        // the experiment, so it sees each record first.
        storage_monitor_->OnPhysicalIo(h.rec);
        policy_->OnPhysicalIo(h.rec);
        break;
      case Lane::Hook::Kind::kIdleGap:
        policy_->OnIdleGapEnd(h.enclosure, h.at, h.gap);
        break;
      case Lane::Hook::Kind::kPowerState:
        storage_monitor_->OnPowerStateChange(h.enclosure, h.at, h.state);
        if (h.state == storage::PowerState::kSpinningUp) {
          policy_->OnPowerOn(h.enclosure, h.at);
        }
        break;
    }
  }
  return total;
}

void ShardedExperiment::SchedulePeriodEnd(SimDuration period) {
  period = std::max<SimDuration>(period, 1 * kSecond);
  period_event_ = sim_.ScheduleAfter(period, [this] { DoPeriodEnd(); });
}

void ShardedExperiment::DoPeriodEnd() {
  telemetry::profile::ScopedPhase period_span(
      telemetry::profile::Phase::kPeriodEnd,
      static_cast<int64_t>(period_index_));
  in_period_end_ = true;
  trigger_pending_ = false;
  // Coordinator events earlier in this same barrier (migration chunks at
  // this timestamp) may have produced lane hooks; fold them into the
  // monitor before the snapshot, as the serial observers already had.
  MergeBarrier();
  monitor::MonitorSnapshot snapshot;
  snapshot.period_start = app_monitor_.period_start();
  snapshot.period_end = sim_.Now();
  snapshot.application = &app_monitor_;
  snapshot.storage = storage_monitor_.get();
  SimDuration next = policy_->OnPeriodEnd(snapshot, *master_, this);
  // Plan application just acted on the lanes (write-delay flushes, preload
  // reads). Serial delivers those callbacks inside the period end, before
  // the monitors reset; match that.
  MergeBarrier();
  if (telemetry::Wants(config_.telemetry, telemetry::kClassPeriod)) {
    config_.telemetry->Record(telemetry::MakePeriodEvent(
        sim_.Now(), period_index_, snapshot.period_start, next));
  }
  if (telemetry::Wants(config_.telemetry, telemetry::kClassSim)) {
    // Coordinator heap only; the lanes' heaps are reduced into the final
    // metrics instead (a mid-run cross-thread probe would race).
    sim::Simulator::Stats s = sim_.stats();
    config_.telemetry->Record(telemetry::MakeSimStatsEvent(
        sim_.Now(), static_cast<int64_t>(s.peak_heap_depth),
        static_cast<int64_t>(s.live_events),
        static_cast<int64_t>(s.tombstones), s.cancelled));
  }
  period_index_++;
  app_monitor_.ResetPeriod(sim_.Now());
  storage_monitor_->ResetPeriod(sim_.Now());
  in_period_end_ = false;
  SchedulePeriodEnd(next);
}

int ShardedExperiment::LaneOfItem(DataItemId item) const {
  return shard_map_.ShardOf(master_->virtualization().EnclosureOf(item));
}

void ShardedExperiment::ReduceMetrics(ExperimentMetrics* out) {
  for (auto& lane : lanes_) {
    const ExperimentMetrics& p = lane->partial;
    out->logical_ios += p.logical_ios;
    out->logical_reads += p.logical_reads;
    out->physical_batches += p.physical_batches;
    out->cache_hit_ios += p.cache_hit_ios;
    out->response_us.Merge(p.response_us);
    out->read_response_us.Merge(p.read_response_us);
    for (const auto& [tag, stats] : p.tag_stats) {
      auto [it, inserted] = out->tag_stats.try_emplace(tag);
      ExperimentMetrics::TagStats& merged = it->second;
      if (inserted || stats.first_issue < merged.first_issue) {
        merged.first_issue = stats.first_issue;
      }
      merged.read_response_us_sum += stats.read_response_us_sum;
      merged.reads += stats.reads;
      if (stats.last_completion > merged.last_completion) {
        merged.last_completion = stats.last_completion;
      }
    }
    out->idle_gaps.insert(out->idle_gaps.end(), p.idle_gaps.begin(),
                          p.idle_gaps.end());
  }

  // Per-enclosure stats come from each enclosure's owner lane, visited in
  // enclosure order — the same summation order as the serial engine's
  // EnclosureEnergy(), so enclosure_energy matches it bitwise.
  for (int e = 0; e < config_.storage.num_enclosures; ++e) {
    Lane& owner =
        *lanes_[static_cast<size_t>(shard_map_.ShardOf(e))];
    storage::DiskEnclosure& enc =
        owner.system->enclosure(static_cast<EnclosureId>(e));
    out->spinups += enc.spinup_count();
    ExperimentMetrics::EnclosureStats stats;
    stats.energy = enc.Energy(sim_.Now());
    stats.served_ios = enc.served_ios();
    stats.spinups = enc.spinup_count();
    stats.utilization =
        horizon_ > 0 ? static_cast<double>(enc.active_time()) /
                           static_cast<double>(horizon_)
                     : 0.0;
    out->per_enclosure.push_back(stats);
    out->enclosure_energy += stats.energy;
  }

  out->controller_energy = master_->ControllerEnergy();
  out->avg_enclosure_power = AveragePower(out->enclosure_energy, horizon_);
  out->avg_controller_power =
      AveragePower(out->controller_energy, horizon_);
  out->avg_total_power =
      out->avg_enclosure_power + out->avg_controller_power;
  out->avg_response_ms = out->response_us.Mean() / 1000.0;
  out->avg_read_response_ms = out->read_response_us.Mean() / 1000.0;
  out->migrated_bytes = migrations_->migrated_bytes();
  out->item_migrations = migrations_->completed_item_moves();
  out->block_migrations = migrations_->block_moves();
  out->placement_determinations = policy_->placement_determinations();

  if (config_.latency_book != nullptr) {
    for (auto& lane : lanes_) {
      if (lane->book != nullptr) config_.latency_book->Merge(*lane->book);
    }
  }

  if (!lanes_.empty() && lanes_[0]->meter != nullptr) {
    // Sample-index-wise merge: every lane ticks at the same instants, so
    // sample i is the same interval everywhere. Enclosure watts add across
    // lanes (each lane meters only its owned enclosures); the controller
    // column is the constant draw, identical in every lane — keep lane
    // 0's.
    out->power_samples = lanes_[0]->meter->samples();
    for (size_t l = 1; l < lanes_.size(); ++l) {
      const std::vector<storage::PowerSample>& more =
          lanes_[l]->meter->samples();
      size_t n = std::min(out->power_samples.size(), more.size());
      for (size_t i = 0; i < n; ++i) {
        out->power_samples[i].enclosures += more[i].enclosures;
      }
    }
  }

  out->monitoring_periods = period_index_;
  sim::Simulator::Stats coordinator = sim_.stats();
  int64_t executed = coordinator.executed;
  int64_t cancelled = coordinator.cancelled;
  size_t peak = coordinator.peak_heap_depth;
  for (auto& lane : lanes_) {
    sim::Simulator::Stats s = lane->sim.stats();
    executed += s.executed;
    cancelled += s.cancelled;
    peak = std::max(peak, s.peak_heap_depth);
  }
  out->sim_events_executed = executed;
  out->sim_events_cancelled = cancelled;
  out->sim_peak_heap_depth = static_cast<int64_t>(peak);
}

// --- policies::PolicyActuator ---

void ShardedExperiment::RequestMigration(DataItemId item,
                                         EnclosureId target) {
  migrations_->RequestItemMove(item, target);
}

void ShardedExperiment::RequestBlockMigration(EnclosureId from,
                                              EnclosureId to,
                                              int64_t bytes) {
  migrations_->RequestBlockMove(from, to, bytes);
}

void ShardedExperiment::SetWriteDelayItems(
    const std::unordered_set<DataItemId>& items) {
  std::vector<std::unordered_set<DataItemId>> split =
      core::SplitWriteDelayItems(items, master_->virtualization(),
                                 shard_map_);
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Status st = lanes_[s]->system->SetWriteDelayItems(split[s]);
    if (!st.ok()) {
      ECOSTORE_LOG(kWarn) << "SetWriteDelayItems: " << st.ToString();
    }
  }
}

void ShardedExperiment::SetPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& items) {
  // Per-lane caches each have the full preload area, so the serial
  // engine's array-wide capacity gate must run here, before the split.
  int64_t total = 0;
  for (const auto& entry : items) total += entry.second;
  if (total > config_.storage.cache.preload_area_bytes) {
    ECOSTORE_LOG(kWarn)
        << "SetPreloadItems: "
        << Status::CapacityExceeded(
               "preload selection exceeds preload area")
               .ToString();
    return;
  }
  std::vector<std::vector<std::pair<DataItemId, int64_t>>> split =
      core::SplitPreloadItems(items, master_->virtualization(), shard_map_);
  for (size_t s = 0; s < lanes_.size(); ++s) {
    Status st = lanes_[s]->system->SetPreloadItems(split[s]);
    if (!st.ok()) {
      ECOSTORE_LOG(kWarn) << "SetPreloadItems: " << st.ToString();
    }
  }
}

void ShardedExperiment::SetSpinDownAllowed(EnclosureId enclosure,
                                           bool allowed) {
  // Owner lane only; the master replica never spins down (its enclosures
  // carry no I/O and its energy is never read).
  lanes_[static_cast<size_t>(shard_map_.ShardOf(enclosure))]
      ->system->SetSpinDownAllowed(enclosure, allowed);
}

void ShardedExperiment::TriggerImmediatePeriodEnd() {
  if (in_period_end_ || trigger_pending_) return;
  trigger_pending_ = true;
  sim_.Cancel(period_event_);
  period_event_ = sim_.ScheduleAfter(0, [this] { DoPeriodEnd(); });
}

void ShardedExperiment::PublishPlan(
    int32_t plan_id, const std::vector<uint8_t>& item_patterns) {
  plan_epoch_ = plan_id;
  master_->BeginPlanEpoch(plan_id, item_patterns);
  for (auto& lane : lanes_) {
    lane->system->BeginPlanEpoch(plan_id, item_patterns);
  }
}

}  // namespace ecostore::replay
