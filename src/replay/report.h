#ifndef ECOSTORE_REPLAY_REPORT_H_
#define ECOSTORE_REPLAY_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/pattern_classifier.h"
#include "replay/metrics.h"

namespace ecostore::replay {

/// Prints the power comparison (paper Figs. 8 / 11 / 14): enclosure,
/// controller and total average watts per policy plus the saving against
/// the first (no-power-saving) run.
void PrintPowerTable(std::ostream& out,
                     const std::vector<ExperimentMetrics>& runs);

/// Prints average (and read) response times per policy (Fig. 9).
void PrintResponseTable(std::ostream& out,
                        const std::vector<ExperimentMetrics>& runs);

/// Prints migrated data sizes and placement determinations
/// (Figs. 10 / 13 / 16 and the §VII-D counts).
void PrintMigrationTable(std::ostream& out,
                         const std::vector<ExperimentMetrics>& runs);

/// Prints the Fig. 17-19 interval curves: cumulative idle-interval length
/// above each threshold, per policy.
void PrintIntervalCdf(std::ostream& out,
                      const std::vector<ExperimentMetrics>& runs,
                      const std::vector<SimDuration>& thresholds);

/// Prints a Fig. 6-style logical I/O pattern mix.
void PrintPatternMix(std::ostream& out, const std::string& workload,
                     const core::ClassificationResult& classification);

/// Prints a per-enclosure breakdown (energy, served I/O, utilization,
/// spin-ups) of one run — the hot/cold structure made visible.
void PrintEnclosureTable(std::ostream& out, const ExperimentMetrics& run);

/// Prints a coarse ASCII power-over-time profile from the run's sampled
/// power series (requires ExperimentConfig::power_sample_interval > 0).
void PrintPowerTimeline(std::ostream& out, const ExperimentMetrics& run,
                        int buckets = 24);

/// One-line run summary (debugging aid).
std::string Summarize(const ExperimentMetrics& m);

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_REPORT_H_
