#ifndef ECOSTORE_REPLAY_EXPERIMENT_H_
#define ECOSTORE_REPLAY_EXPERIMENT_H_

#include <memory>

#include "common/result.h"
#include "monitor/application_monitor.h"
#include "monitor/storage_monitor.h"
#include "policies/storage_policy.h"
#include "replay/metrics.h"
#include "replay/migration_engine.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "telemetry/profile/profiler.h"
#include "telemetry/stream_consumer.h"
#include "workload/workload.h"

namespace ecostore::replay {

/// Run parameters beyond the storage array itself.
struct ExperimentConfig {
  storage::StorageConfig storage;

  /// 0: run for the workload's full duration.
  SimDuration duration = 0;

  MigrationEngine::Options migration;

  /// Collect the idle-gap list for Fig. 17-19 style analysis.
  bool collect_idle_gaps = true;

  /// Sampling interval for the wall power meter; 0 disables sampling.
  SimDuration power_sample_interval = 0;

  /// Event recorder for the run (not owned; may be nullptr). When set,
  /// the run binds it to the storage system, bridges library logging into
  /// it with simulated timestamps, and emits period/sim events.
  telemetry::Recorder* telemetry = nullptr;

  /// Latency book the storage system records per-I/O service times into
  /// (not owned; may be nullptr). Independent of the event recorder so a
  /// run can collect latency histograms without paying for event capture.
  telemetry::analysis::LatencyBook* latency_book = nullptr;

  /// Streaming consumer fan-out (not owned; may be nullptr). When set
  /// alongside `telemetry`, the hot loop pumps the recorder into the
  /// dispatcher at every stream_window_us sim-time boundary the trace
  /// crosses, and once more at the horizon with the measured energies
  /// (StreamDispatcher::Finish). Pumps reset the recorder rings, so runs
  /// that also want the full capture attach a telemetry::CaptureBuffer.
  telemetry::StreamDispatcher* stream = nullptr;

  /// Pump cadence / rolling-window length in sim time; <= 0 uses 1 min.
  SimDuration stream_window_us = 0;

  /// Wall-clock phase profiler (not owned; may be nullptr). When set,
  /// Run() binds it to the replay thread for its duration and the engine
  /// + period-end pipeline record phase spans (DESIGN.md §15). The
  /// profiler only ever reads the wall clock and writes its own rings,
  /// so attaching one cannot change replay results (fingerprint-gated).
  telemetry::profile::Profiler* profiler = nullptr;
};

/// \brief The trace-replay harness (paper §VII-A.2 / Fig. 7): streams a
/// workload's logical I/O into the simulated array under the control of
/// one power-management policy and measures power, response times and
/// data movement.
///
/// One Experiment = one run; construct a fresh one per (workload, policy)
/// pair. The workload is Reset() at the start of Run(), so the same
/// workload object can be reused across runs and every policy sees the
/// identical trace.
class Experiment : public storage::StorageObserver,
                   public policies::PolicyActuator {
 public:
  Experiment(workload::Workload* workload, policies::StoragePolicy* policy,
             const ExperimentConfig& config);
  ~Experiment() override;

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Executes the run to completion and returns the measurements.
  Result<ExperimentMetrics> Run();

  // --- storage::StorageObserver ---
  void OnPhysicalIo(const trace::PhysicalIoRecord& rec) override;
  void OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                    SimDuration gap) override;
  void OnPowerStateChange(EnclosureId enclosure, SimTime at,
                          storage::PowerState state) override;

  // --- policies::PolicyActuator ---
  SimTime Now() const override { return sim_.Now(); }
  void RequestMigration(DataItemId item, EnclosureId target) override;
  void RequestBlockMigration(EnclosureId from, EnclosureId to,
                             int64_t bytes) override;
  void SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items) override;
  void SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& items) override;
  void SetSpinDownAllowed(EnclosureId enclosure, bool allowed) override;
  void TriggerImmediatePeriodEnd() override;
  void PublishPlan(int32_t plan_id,
                   const std::vector<uint8_t>& item_patterns) override;
  bool AttachLogicalIoSink(monitor::LogicalIoSink* sink) override {
    app_monitor_.SetSink(sink);
    return true;
  }
  telemetry::Recorder* telemetry() const override {
    return config_.telemetry;
  }

  /// The storage system under test (valid during and after Run()).
  storage::StorageSystem* system() { return system_.get(); }

  /// The application monitor (inspection: trace capture mode, totals).
  const monitor::ApplicationMonitor& application_monitor() const {
    return app_monitor_;
  }

 private:
  void SchedulePeriodEnd(SimDuration period);
  void DoPeriodEnd();

  workload::Workload* workload_;
  policies::StoragePolicy* policy_;
  ExperimentConfig config_;

  sim::Simulator sim_;
  std::unique_ptr<storage::StorageSystem> system_;
  std::unique_ptr<MigrationEngine> migrations_;
  monitor::ApplicationMonitor app_monitor_;
  std::unique_ptr<monitor::StorageMonitor> storage_monitor_;

  ExperimentMetrics metrics_;
  SimDuration horizon_ = 0;
  sim::EventId period_event_ = 0;
  int32_t period_index_ = 0;
  bool in_period_end_ = false;
  bool trigger_pending_ = false;

  /// Records pulled per Workload::NextBatch call in Run()'s hot loop.
  static constexpr size_t kReplayBatch = 256;
  /// Reused batch scratch; no allocation per batch in steady state.
  std::vector<trace::LogicalIoRecord> batch_;
};

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_EXPERIMENT_H_
