#ifndef ECOSTORE_REPLAY_METRICS_H_
#define ECOSTORE_REPLAY_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "common/units.h"
#include "storage/power_meter.h"

namespace ecostore::replay {

/// One point of the paper's Fig. 17-19 curves: the cumulative length of
/// all enclosure idle intervals at least `threshold` long.
struct IntervalCdfPoint {
  SimDuration threshold = 0;
  double cumulative_seconds = 0.0;
  int64_t count = 0;
};

/// \brief Everything measured during one experiment run (one workload x
/// one policy) — the simulated counterpart of the paper's power meter and
/// trace-replayer instrumentation (§VII-A.4).
struct ExperimentMetrics {
  std::string workload;
  std::string policy;
  SimDuration duration = 0;

  // --- Energy / power (Figs. 8, 11, 14) ---
  Joules enclosure_energy = 0.0;
  Joules controller_energy = 0.0;
  Watts avg_enclosure_power = 0.0;
  Watts avg_controller_power = 0.0;
  Watts avg_total_power = 0.0;

  // --- Response times (Figs. 9, 12, 15) ---
  Histogram response_us;       ///< all logical I/Os
  Histogram read_response_us;  ///< logical reads only
  double avg_response_ms = 0.0;
  double avg_read_response_ms = 0.0;

  // --- Volume counters ---
  int64_t logical_ios = 0;
  int64_t logical_reads = 0;
  int64_t physical_batches = 0;
  int64_t cache_hit_ios = 0;

  // --- Data movement (Figs. 10, 13, 16) ---
  int64_t migrated_bytes = 0;
  int64_t item_migrations = 0;
  int64_t block_migrations = 0;
  int64_t placement_determinations = 0;

  // --- Power-state activity ---
  int64_t spinups = 0;

  // --- Host-side execution cost (excluded from the replay fingerprint:
  // wall time is nondeterministic, simulator counters are diagnostics) ---
  double wall_seconds = 0.0;  ///< host wall-clock of Experiment::Run()
  int64_t monitoring_periods = 0;
  int64_t sim_events_executed = 0;
  int64_t sim_events_cancelled = 0;
  int64_t sim_peak_heap_depth = 0;

  // --- Per-tag accounting (TPC-H query-response model) ---
  /// Everything measured for one tag. `first_issue` / `last_completion`
  /// bracket the measured query wall time (start-to-last-I/O) under each
  /// policy; the read-response sum feeds the §VII-A.5 scaling model.
  /// `reads == 0` means the tag never issued a read (the sum is then
  /// meaningless and the scaling model falls back to the baseline).
  struct TagStats {
    double read_response_us_sum = 0.0;
    int64_t reads = 0;
    SimTime first_issue = 0;
    SimTime last_completion = 0;
  };
  /// One entry per tag seen; filled by the replay hot loop with a single
  /// map probe per tagged record.
  std::map<int32_t, TagStats> tag_stats;

  // --- Enclosure idle intervals (>= the configured notify floor) ---
  std::vector<SimDuration> idle_gaps;

  // --- Per-enclosure breakdown ---
  struct EnclosureStats {
    Joules energy = 0.0;
    int64_t served_ios = 0;
    int64_t spinups = 0;
    /// Fraction of the run spent actively serving I/O.
    double utilization = 0.0;
  };
  std::vector<EnclosureStats> per_enclosure;

  // --- Sampled power time series (when sampling was enabled) ---
  std::vector<storage::PowerSample> power_samples;

  /// Evaluates the Fig. 17-19 curve at the given thresholds.
  std::vector<IntervalCdfPoint> IntervalCdf(
      const std::vector<SimDuration>& thresholds) const;

  /// Percentage power reduction of the enclosures relative to `baseline`.
  double EnclosurePowerSavingVs(const ExperimentMetrics& baseline) const;
};

/// Paper §VII-A.5: transaction throughput scaled by the read-response
/// ratio against the no-power-saving run:
///   t = t_orig * (r_orig / r).
double ScaledTransactionThroughput(double baseline_tpmc,
                                   const ExperimentMetrics& baseline,
                                   const ExperimentMetrics& run);

/// Paper §VII-A.5: per-query response time scaled by the summed read
/// response ratio: q = q_orig * (sum(r) / sum(r_orig)). `baseline_wall`
/// maps tag -> q_orig seconds. Note: under open-loop replay, spin-up
/// stalls inflate the response *sum* far more than the wall time; prefer
/// MeasuredQueryWallSeconds for Fig.-15-style comparisons.
std::map<int32_t, double> ScaledQueryResponses(
    const std::map<int32_t, double>& baseline_wall_seconds,
    const ExperimentMetrics& baseline, const ExperimentMetrics& run);

/// Directly measured query wall time per tag: last I/O completion minus
/// first I/O issue (seconds).
std::map<int32_t, double> MeasuredQueryWallSeconds(
    const ExperimentMetrics& run);

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_METRICS_H_
