#ifndef ECOSTORE_REPLAY_SHARDED_EXPERIMENT_H_
#define ECOSTORE_REPLAY_SHARDED_EXPERIMENT_H_

#include <deque>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/shard_plan.h"
#include "monitor/application_monitor.h"
#include "monitor/storage_monitor.h"
#include "policies/storage_policy.h"
#include "replay/experiment.h"
#include "replay/metrics.h"
#include "replay/migration_engine.h"
#include "sim/simulator.h"
#include "storage/storage_system.h"
#include "workload/workload.h"

namespace ecostore::replay {

/// \brief The sharded replay engine (DESIGN.md §11): one experiment run
/// spread across worker threads.
///
/// Enclosures are partitioned into S shards (enclosure e -> shard e % S,
/// core::ShardMap); each shard is a *lane* owning a private POD event heap
/// (sim::Simulator), a structurally complete StorageSystem whose
/// accounting is masked to the owned enclosures, a full-capacity
/// controller-cache slice, and (when sampling is on) its own power meter.
/// Lanes advance concurrently in bounded sim-time epochs:
///
///   t_stop = min(horizon, generated-window limit, coordinator's next
///               event time)
///
/// so no lane ever runs past the next cross-shard effect. At the epoch
/// barrier the coordinator — the only thread that touches shared state —
/// merges lane telemetry and observer hooks in canonical
/// (time, enclosure, lane, index) order, then executes its own due events
/// (monitoring-period ends, migration chunks, triggered period ends)
/// with every lane clock pinned to exactly t_stop. Cross-shard effects
/// (item-move commits, plan publication, preload/write-delay deltas)
/// happen only in barrier context, routed per owning lane.
///
/// Determinism contract:
///  - shards <= 1 delegates to the serial Experiment: bit-identical.
///  - fixed S: bit-identical metrics for any worker-thread count (the
///    barrier serializes all cross-lane merges in lane order).
///  - vs serial: integer counters and per-enclosure energies are exact;
///    run-wide floating-point reductions (histogram sums, tag read-time
///    sums, sampled power) differ only by summation order, within the
///    bench §7 energy-quantization rule. Caches are per-lane, so configs
///    where capacity pressure (LRU eviction, threshold destage) would
///    couple shards are outside the exact-equivalence domain — see
///    DESIGN.md §11 for the full list of documented divergences.
class ShardedExperiment : public policies::PolicyActuator {
 public:
  /// \param shards number of lanes; clamped to [1, num_enclosures].
  /// \param worker_threads pool size; <= 0 picks min(shards, hardware
  ///        concurrency). Has no effect on results, only wall time.
  ShardedExperiment(workload::Workload* workload,
                    policies::StoragePolicy* policy,
                    const ExperimentConfig& config, int shards,
                    int worker_threads = 0);
  ~ShardedExperiment() override;

  ShardedExperiment(const ShardedExperiment&) = delete;
  ShardedExperiment& operator=(const ShardedExperiment&) = delete;

  /// Executes the run to completion and returns the reduced measurements.
  Result<ExperimentMetrics> Run();

  int shards() const { return shard_map_.shards; }

  // --- policies::PolicyActuator (all calls arrive in barrier context on
  // the coordinator thread; lanes are quiescent at exactly Now()) ---
  SimTime Now() const override { return sim_.Now(); }
  void RequestMigration(DataItemId item, EnclosureId target) override;
  void RequestBlockMigration(EnclosureId from, EnclosureId to,
                             int64_t bytes) override;
  void SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items) override;
  void SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& items) override;
  void SetSpinDownAllowed(EnclosureId enclosure, bool allowed) override;
  void TriggerImmediatePeriodEnd() override;
  void PublishPlan(int32_t plan_id,
                   const std::vector<uint8_t>& item_patterns) override;
  bool AttachLogicalIoSink(monitor::LogicalIoSink* sink) override {
    // The scatter phase feeds the monitor in global time order on the
    // coordinator thread, so streaming ingest observes the exact record
    // sequence the serial engine would.
    app_monitor_.SetSink(sink);
    return true;
  }
  telemetry::Recorder* telemetry() const override {
    return config_.telemetry;
  }

 private:
  struct Lane;
  class ShardRouter;

  Result<ExperimentMetrics> RunSharded();

  /// Pulls workload batches until the window reaches past `beyond` (or the
  /// stream ends / hits the horizon) plus a count-based prefetch.
  void EnsureGenerated(SimTime beyond);
  /// Routes every buffered record with time < t_stop to its owner lane
  /// (by the *current* master mapping) and logs it in the application
  /// monitor, preserving global trace order.
  void ScatterUpTo(SimTime t_stop);
  /// Runs every lane to exactly t_stop (events at t_stop included, clock
  /// pinned), on the pool when the lane has work, inline otherwise.
  void AdvanceLanes(SimTime t_stop);
  /// Barrier merge: lane telemetry rings into the run recorder (lane
  /// order), then observer hooks into the storage monitor and policy in
  /// canonical (time, enclosure, lane, index) order.
  void MergeBarrier();
  void DrainLaneTelemetry();
  /// Replays (and clears) all pending lane hooks once; returns how many.
  size_t ReplayLaneHooks();

  void SchedulePeriodEnd(SimDuration period);
  void DoPeriodEnd();
  void ReduceMetrics(ExperimentMetrics* out);

  int LaneOfItem(DataItemId item) const;

  workload::Workload* workload_;
  policies::StoragePolicy* policy_;
  ExperimentConfig config_;
  core::ShardMap shard_map_;
  int worker_threads_ = 1;

  /// Coordinator clock: period ends, migration pacing, trigger events.
  sim::Simulator sim_;
  /// Authoritative placement replica. Policies read it (layout, config,
  /// catalog); it never serves I/O, never spins down, owns no telemetry.
  std::unique_ptr<storage::StorageSystem> master_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<MigrationEngineT<ShardRouter>> migrations_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::unique_ptr<ThreadPool> pool_;

  monitor::ApplicationMonitor app_monitor_;
  std::unique_ptr<monitor::StorageMonitor> storage_monitor_;

  SimDuration horizon_ = 0;
  sim::EventId period_event_ = 0;
  int32_t period_index_ = 0;
  int32_t plan_epoch_ = 0;
  bool in_period_end_ = false;
  bool trigger_pending_ = false;

  // --- Generation window (global FIFO; scattered per epoch) ---
  std::deque<trace::LogicalIoRecord> window_;
  std::vector<trace::LogicalIoRecord> gen_batch_;
  SimTime last_generated_time_ = 0;
  bool stream_done_ = false;

  /// Records pulled per Workload::NextBatch call while filling the window.
  static constexpr size_t kGenBatch = 1024;
  /// Window prefetch target (records buffered ahead of the scatter).
  static constexpr size_t kWindowTarget = 32768;
};

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_SHARDED_EXPERIMENT_H_
