#ifndef ECOSTORE_REPLAY_POTENTIAL_H_
#define ECOSTORE_REPLAY_POTENTIAL_H_

#include "common/units.h"
#include "replay/metrics.h"
#include "storage/storage_config.h"

namespace ecostore::replay {

/// Result of the clairvoyant spin-down analysis.
struct OraclePotential {
  /// Energy a clairvoyant controller would have saved by powering off
  /// during every idle interval longer than the break-even time (no
  /// timeout loss, spin-up completing exactly at the next I/O).
  Joules savable_energy = 0.0;

  /// The same, as average watts over the run.
  Watts savable_power = 0.0;

  /// As a percentage of the run's enclosure power.
  double savable_pct_of_enclosures = 0.0;

  /// Number of intervals that clear the break-even bar.
  int64_t exploitable_intervals = 0;
};

/// \brief Computes the offline upper bound on spin-down savings from a
/// run's observed idle intervals (paper §II-B's break-even trade-off,
/// evaluated with hindsight).
///
/// For each recorded idle gap g > break-even, a clairvoyant controller
/// saves (idle_power - off_power) * (g - spinup_time) minus the spin-up
/// premium (spinup_power - idle_power) * spinup_time. Real policies pay
/// the spin-down timeout on top; the gap between a policy's measured
/// saving and this bound quantifies how much an even better policy could
/// still extract from the same trace.
OraclePotential ComputeOraclePotential(
    const ExperimentMetrics& metrics,
    const storage::EnclosureConfig& enclosure);

}  // namespace ecostore::replay

#endif  // ECOSTORE_REPLAY_POTENTIAL_H_
