#include "core/shard_plan.h"

namespace ecostore::core {

std::vector<bool> ShardMap::OwnedMask(int num_enclosures, int shard) const {
  std::vector<bool> mask(static_cast<size_t>(num_enclosures), false);
  for (int e = 0; e < num_enclosures; ++e) {
    if (ShardOf(static_cast<EnclosureId>(e)) == shard) {
      mask[static_cast<size_t>(e)] = true;
    }
  }
  return mask;
}

std::vector<std::unordered_set<DataItemId>> SplitWriteDelayItems(
    const std::unordered_set<DataItemId>& items,
    const storage::BlockVirtualization& virt, const ShardMap& map) {
  std::vector<std::unordered_set<DataItemId>> out(
      static_cast<size_t>(map.shards));
  for (DataItemId item : items) {
    out[static_cast<size_t>(map.ShardOf(virt.EnclosureOf(item)))].insert(
        item);
  }
  return out;
}

std::vector<std::vector<std::pair<DataItemId, int64_t>>> SplitPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& items,
    const storage::BlockVirtualization& virt, const ShardMap& map) {
  std::vector<std::vector<std::pair<DataItemId, int64_t>>> out(
      static_cast<size_t>(map.shards));
  for (const auto& entry : items) {
    out[static_cast<size_t>(map.ShardOf(virt.EnclosureOf(entry.first)))]
        .push_back(entry);
  }
  return out;
}

}  // namespace ecostore::core
