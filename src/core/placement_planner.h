#ifndef ECOSTORE_CORE_PLACEMENT_PLANNER_H_
#define ECOSTORE_CORE_PLACEMENT_PLANNER_H_

#include <cstdint>
#include <vector>

#include "core/hot_cold_planner.h"
#include "core/pattern_classifier.h"
#include "core/planner_index.h"
#include "storage/block_virtualization.h"

namespace ecostore::core {

/// One planned whole-item move between enclosures.
struct Migration {
  DataItemId item = kInvalidDataItem;
  EnclosureId from = kInvalidEnclosure;
  EnclosureId to = kInvalidEnclosure;
};

/// Output of the placement computation.
struct PlacementPlan {
  /// Final hot/cold partition (n_hot may exceed the initial estimate when
  /// Algorithm 2's IOPS guard forced a retry).
  HotColdPartition partition;

  /// Ordered migrations: P0/P1/P2 evictions (hot -> cold) first, then P3
  /// consolidations (cold -> hot), matching the runtime order of paper
  /// §V-A.
  std::vector<Migration> migrations;
};

/// \brief Computes the data placement for one monitoring period: paper
/// Algorithm 2 (P3 items) with Algorithm 3 (P0/P1/P2 items) as its
/// space-making subroutine, wrapped in the "increase N_hot and retry"
/// loop.
///
/// Fleet-scale implementation (DESIGN.md §12): enclosures are traversed
/// through addressable indexed heaps keyed (working IOPS, enclosure id)
/// and updated in O(log n) per ApplyMove, and Algorithm 3's movable-item
/// scan reads per-enclosure buckets built once per TryPlace. Decisions
/// are bit-identical to the stable_sort reference kept in
/// bench/legacy_planner.h — the heap comparators encode exactly the
/// tie-breaks stable sorting implied, and the replay goldens plus
/// tests/planner_differential_test.cc hold the two to the same plans.
class PlacementPlanner {
 public:
  struct Options {
    /// O: maximum random IOPS an enclosure can serve.
    double max_enclosure_iops = 900.0;
    /// S: usable capacity of an enclosure.
    int64_t enclosure_capacity = 0;
  };

  PlacementPlanner(const Options& options, const HotColdPlanner* hot_cold)
      : options_(options), hot_cold_(hot_cold) {}

  /// Computes the placement. Non-const: scratch buffers (working state,
  /// heaps, movable buckets) persist across periods so steady-state
  /// planning allocates nothing.
  ///
  /// \param candidates when non-null, restricts Algorithm 2's mover list
  ///        to these item ids (ascending, deduplicated) — the incremental
  ///        re-plan path. The caller must guarantee the list is a superset
  ///        of every item that is currently P3-and-on-cold (see
  ///        PowerManagementFunction); the plan then equals the full one.
  /// \param p3_on_cold when non-null, receives the ids (ascending) of the
  ///        P3-on-cold movable items the returned plan actually placed —
  ///        the residue the incremental path folds into the next period's
  ///        candidate set.
  PlacementPlan Plan(const ClassificationResult& classification,
                     const storage::BlockVirtualization& virt,
                     const std::vector<DataItemId>* candidates = nullptr,
                     std::vector<DataItemId>* p3_on_cold = nullptr);

 private:
  /// Mutable per-enclosure load/space model used while planning. Starts
  /// from the current placement and is updated as moves are decided.
  struct WorkingState {
    std::vector<double> iops;        // sum of resident items' avg IOPS
    std::vector<int64_t> used;       // resident bytes
    std::vector<EnclosureId> where;  // item -> enclosure

    void ApplyMove(const ItemClassification& cls, EnclosureId to) {
      EnclosureId from = where[static_cast<size_t>(cls.item)];
      iops[static_cast<size_t>(from)] -= cls.avg_iops;
      used[static_cast<size_t>(from)] -= cls.size_bytes;
      iops[static_cast<size_t>(to)] += cls.avg_iops;
      used[static_cast<size_t>(to)] += cls.size_bytes;
      where[static_cast<size_t>(cls.item)] = to;
    }
  };

  /// Runs Algorithms 2+3 against a fixed partition. Returns false when the
  /// IOPS guard fires (caller must retry with a larger N_hot).
  bool TryPlace(const ClassificationResult& classification,
                const storage::BlockVirtualization& virt,
                const HotColdPartition& partition,
                const std::vector<DataItemId>* candidates,
                std::vector<Migration>* evictions,
                std::vector<Migration>* p3_moves,
                std::vector<DataItemId>* p3_on_cold);

  Options options_;
  const HotColdPlanner* hot_cold_;

  // ---- reusable scratch (valid only within one Plan call) ----
  WorkingState state_;
  IndexedEnclosureHeap<ColdTargetOrder> cold_;  // cold enclosures
  IndexedEnclosureHeap<HotSourceOrder> hot_;    // hot enclosures
  std::vector<EnclosureId> hot_scan_;   // per-item fixed hot pop order
  std::vector<EnclosureId> cold_scan_;  // find_cold_target pop stash
  std::vector<const ItemClassification*> movers_;  // Algorithm 2's m
  std::vector<Migration> evictions_scratch_;
  std::vector<Migration> p3_moves_scratch_;
  /// Per-enclosure movable (non-P3, unpinned) items, bucketed once per
  /// TryPlace on the first make_space call and sorted lazily per bucket.
  std::vector<std::vector<const ItemClassification*>> buckets_;
  std::vector<uint8_t> bucket_sorted_;
  bool buckets_built_ = false;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PLACEMENT_PLANNER_H_
