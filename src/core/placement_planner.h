#ifndef ECOSTORE_CORE_PLACEMENT_PLANNER_H_
#define ECOSTORE_CORE_PLACEMENT_PLANNER_H_

#include <vector>

#include "core/hot_cold_planner.h"
#include "core/pattern_classifier.h"
#include "storage/block_virtualization.h"

namespace ecostore::core {

/// One planned whole-item move between enclosures.
struct Migration {
  DataItemId item = kInvalidDataItem;
  EnclosureId from = kInvalidEnclosure;
  EnclosureId to = kInvalidEnclosure;
};

/// Output of the placement computation.
struct PlacementPlan {
  /// Final hot/cold partition (n_hot may exceed the initial estimate when
  /// Algorithm 2's IOPS guard forced a retry).
  HotColdPartition partition;

  /// Ordered migrations: P0/P1/P2 evictions (hot -> cold) first, then P3
  /// consolidations (cold -> hot), matching the runtime order of paper
  /// §V-A.
  std::vector<Migration> migrations;
};

/// \brief Computes the data placement for one monitoring period: paper
/// Algorithm 2 (P3 items) with Algorithm 3 (P0/P1/P2 items) as its
/// space-making subroutine, wrapped in the "increase N_hot and retry"
/// loop.
class PlacementPlanner {
 public:
  struct Options {
    /// O: maximum random IOPS an enclosure can serve.
    double max_enclosure_iops = 900.0;
    /// S: usable capacity of an enclosure.
    int64_t enclosure_capacity = 0;
  };

  PlacementPlanner(const Options& options, const HotColdPlanner* hot_cold)
      : options_(options), hot_cold_(hot_cold) {}

  PlacementPlan Plan(const ClassificationResult& classification,
                     const storage::BlockVirtualization& virt) const;

 private:
  struct WorkingState;

  /// Runs Algorithms 2+3 against a fixed partition. Returns false when the
  /// IOPS guard fires (caller must retry with a larger N_hot).
  bool TryPlace(const ClassificationResult& classification,
                const storage::BlockVirtualization& virt,
                const HotColdPartition& partition,
                std::vector<Migration>* evictions,
                std::vector<Migration>* p3_moves) const;

  Options options_;
  const HotColdPlanner* hot_cold_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PLACEMENT_PLANNER_H_
