#include "core/eco_storage_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "telemetry/profile/profiler.h"
#include "telemetry/recorder.h"

namespace ecostore::core {

void EcoStoragePolicy::Start(const storage::StorageSystem& system,
                             policies::PolicyActuator* actuator) {
  actuator_ = actuator;
  function_ = std::make_unique<PowerManagementFunction>(config_, system);
  // Fleet-scale monitoring mode (DESIGN.md §13): feed the classifier from
  // the monitor's logical I/O stream so period ends only finalise. When
  // the runtime supports it, wants_logical_trace() then releases the
  // per-period trace buffer. Runtimes without sink support (bare test
  // actuators) fall back to replaying the captured trace — identical
  // classifications either way.
  streaming_ = actuator->AttachLogicalIoSink(function_->classifier());
  if (streaming_) {
    function_->classifier()->BeginPeriod(actuator->Now());
  }
  current_period_ = config_.initial_period;
  period_start_ = actuator->Now();
  is_hot_.assign(static_cast<size_t>(system.num_enclosures()), true);
  cold_power_on_counts_.assign(
      static_cast<size_t>(system.num_enclosures()), 0);
  // Until the first plan exists every enclosure is treated as hot: no
  // spin-down (the method needs one observation period before acting).
  for (int e = 0; e < system.num_enclosures(); ++e) {
    actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), false);
  }
}

SimDuration EcoStoragePolicy::OnPeriodEnd(
    const monitor::MonitorSnapshot& snapshot,
    const storage::StorageSystem& system,
    policies::PolicyActuator* actuator) {
  // A §V-D trigger caused this period end iff the flag is still up: that
  // is direct evidence of a sudden pattern change, so the management
  // function must re-plan from scratch rather than incrementally.
  last_plan_ =
      function_->Run(snapshot, system, current_period_,
                     /*force_full=*/triggered_this_period_,
                     /*streaming_ingest=*/streaming_);
  if (streaming_) {
    // The engine resets the application monitor right after this hook
    // returns, both at Now(): no record can arrive in between, so the
    // classifier's next period aligns exactly with the monitor's.
    function_->classifier()->BeginPeriod(actuator->Now());
  }
  placement_determinations_++;
  if (last_plan_.incremental) incremental_replans_++;
  if (last_plan_.placement_skipped) placements_skipped_++;
  pattern_history_.push_back(last_plan_.classification->pattern_counts);

  // Publish the plan epoch — 1-based, so epoch 0 means "no plan yet" —
  // and the per-item pattern table *before* enacting anything, so every
  // action the plan triggers (flushes, preloads, spin-downs and the I/O
  // they cause) is tagged with the plan that decided it.
  const int32_t plan_id = static_cast<int32_t>(placement_determinations_);
  // The classifier's pattern table (indexed by item id, refreshed by the
  // Finalize inside Run) is exactly the PublishPlan payload — no
  // per-period rebuild.
  actuator->PublishPlan(plan_id, function_->classifier()->patterns());

  // Enact the plan. Migrations first request P0/P1/P2 evictions, then P3
  // consolidations (the planner already ordered them; paper §V-A).
  {
    telemetry::profile::ScopedPhase migrate_span(
        telemetry::profile::Phase::kMigrate,
        static_cast<int64_t>(last_plan_.migrations.size()));
    for (const Migration& mig : last_plan_.migrations) {
      actuator->RequestMigration(mig.item, mig.to);
    }
  }
  // Items that were selected last period and saw no conflicting traffic
  // stay selected (paper §V-C: already-preloaded items are kept). This
  // damps churn when an item merely went quiet (P0) for one period.
  auto still_cold_non_p3 = [&](DataItemId item) {
    const auto& items = last_plan_.classification->items;
    if (item < 0 || static_cast<size_t>(item) >= items.size()) return false;
    if (items[static_cast<size_t>(item)].pattern == IoPattern::kP3) {
      return false;
    }
    EnclosureId enc = system.virtualization().EnclosureOf(item);
    return static_cast<size_t>(enc) < last_plan_.partition.is_hot.size() &&
           !last_plan_.partition.IsHot(enc);
  };

  {
  telemetry::profile::ScopedPhase flush_span(
      telemetry::profile::Phase::kFlush,
      static_cast<int64_t>(last_plan_.cache.write_delay.size() +
                           last_plan_.cache.preload.size()));
  // The carried selection lives in a sorted id vector — assigning from a
  // hash set would bake stdlib-dependent iteration order into persistent
  // policy state — and every merge below reuses member scratch, so a
  // steady-state period allocates nothing.
  wd_fresh_scratch_.assign(last_plan_.cache.write_delay.begin(),
                           last_plan_.cache.write_delay.end());
  std::sort(wd_fresh_scratch_.begin(), wd_fresh_scratch_.end());
  wd_carry_scratch_.clear();
  for (DataItemId item : prev_write_delay_) {
    if (still_cold_non_p3(item)) wd_carry_scratch_.push_back(item);
  }
  prev_write_delay_.clear();
  std::set_union(wd_fresh_scratch_.begin(), wd_fresh_scratch_.end(),
                 wd_carry_scratch_.begin(), wd_carry_scratch_.end(),
                 std::back_inserter(prev_write_delay_));
  wd_actuator_scratch_.clear();
  wd_actuator_scratch_.insert(prev_write_delay_.begin(),
                              prev_write_delay_.end());
  actuator->SetWriteDelayItems(wd_actuator_scratch_);

  // Preload keeps enact order: fresh picks first (planner density order —
  // the order the preload I/O issues in), surviving carryover after.
  preload_scratch_ = last_plan_.cache.preload;
  int64_t budget = function_->config().preload_area_bytes;
  fresh_ids_scratch_.clear();
  for (const auto& [item, size] : preload_scratch_) {
    fresh_ids_scratch_.push_back(item);
    budget -= size;
  }
  std::sort(fresh_ids_scratch_.begin(), fresh_ids_scratch_.end());
  for (const auto& [item, size] : prev_preload_) {
    if (std::binary_search(fresh_ids_scratch_.begin(),
                           fresh_ids_scratch_.end(), item) ||
        !still_cold_non_p3(item) || size > budget) {
      continue;
    }
    preload_scratch_.emplace_back(item, size);
    budget -= size;
  }
  prev_preload_ = preload_scratch_;
  actuator->SetPreloadItems(preload_scratch_);
  for (size_t e = 0; e < last_plan_.spin_down_allowed.size(); ++e) {
    actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e),
                                 last_plan_.spin_down_allowed[e]);
  }
  }  // flush_span

  // Decision audit: one event per active item with the classification
  // *reason* (long intervals, read ratio, I/O sequences) and the actions
  // the enacted plan took, plus the partition and period adaptation.
  telemetry::Recorder* recorder = actuator->telemetry();
  if (telemetry::Wants(recorder, telemetry::kClassDecision)) {
    // Sorted scratch vectors instead of per-period hash tables: the
    // lookups below are binary searches over id-sorted ranges.
    migration_target_scratch_.clear();
    for (const Migration& mig : last_plan_.migrations) {
      migration_target_scratch_.emplace_back(mig.item, mig.to);
    }
    std::sort(migration_target_scratch_.begin(),
              migration_target_scratch_.end());
    preload_ids_scratch_.clear();
    for (const auto& [item, size] : preload_scratch_) {
      preload_ids_scratch_.push_back(item);
    }
    std::sort(preload_ids_scratch_.begin(), preload_ids_scratch_.end());
    auto migration_of = [&](DataItemId item) -> const EnclosureId* {
      auto it = std::lower_bound(
          migration_target_scratch_.begin(), migration_target_scratch_.end(),
          item,
          [](const std::pair<DataItemId, EnclosureId>& a, DataItemId b) {
            return a.first < b;
          });
      if (it == migration_target_scratch_.end() || it->first != item) {
        return nullptr;
      }
      return &it->second;
    };
    SimTime now = actuator->Now();
    for (const ItemClassification& cls : last_plan_.classification->items) {
      telemetry::DecisionPayload d;
      d.item = cls.item;
      d.pattern = static_cast<uint8_t>(cls.pattern);
      const EnclosureId* mig = migration_of(cls.item);
      if (mig != nullptr) d.actions |= telemetry::kActionMigrate;
      if (std::binary_search(prev_write_delay_.begin(),
                             prev_write_delay_.end(), cls.item)) {
        d.actions |= telemetry::kActionWriteDelay;
      }
      if (std::binary_search(preload_ids_scratch_.begin(),
                             preload_ids_scratch_.end(), cls.item)) {
        d.actions |= telemetry::kActionPreload;
      }
      if (cls.total_ios() == 0 && d.actions == 0) continue;  // untouched
      d.enclosure = static_cast<int16_t>(
          mig != nullptr ? *mig
                         : system.virtualization().EnclosureOf(cls.item));
      d.long_intervals = static_cast<int32_t>(cls.long_interval_count);
      d.io_sequences = static_cast<int32_t>(cls.io_sequences);
      d.read_permille = cls.total_ios() > 0
                            ? static_cast<int32_t>(cls.reads * 1000 /
                                                   cls.total_ios())
                            : 0;
      d.plan = plan_id;
      d.total_ios = cls.total_ios();
      recorder->Record(telemetry::MakeDecisionEvent(now, d));
    }
    uint64_t hot_mask = 0;
    const auto& hot = last_plan_.partition.is_hot;
    for (size_t e = 0; e < hot.size() && e < 64; ++e) {
      if (hot[e]) hot_mask |= uint64_t{1} << e;
    }
    recorder->Record(telemetry::MakeHotColdEvent(
        now, hot_mask, last_plan_.partition.n_hot,
        static_cast<int32_t>(hot.size())));
    recorder->Record(telemetry::MakeAdaptEvent(
        now, current_period_, last_plan_.next_period,
        last_plan_.classification->mean_long_interval));
  }

  is_hot_ = last_plan_.partition.is_hot;
  std::fill(cold_power_on_counts_.begin(), cold_power_on_counts_.end(), 0);
  period_start_ = actuator->Now();
  triggered_this_period_ = false;
  current_period_ = last_plan_.next_period;
  ECOSTORE_LOG(kDebug) << "period plan: n_hot=" << last_plan_.partition.n_hot
                       << " migrations=" << last_plan_.migrations.size()
                       << " wd=" << last_plan_.cache.write_delay.size()
                       << " preload=" << last_plan_.cache.preload.size()
                       << (last_plan_.placement_skipped
                               ? " [incremental: skipped]"
                               : last_plan_.incremental ? " [incremental]"
                                                        : "")
                       << " next=" << FormatDuration(current_period_);
  return current_period_;
}

void EcoStoragePolicy::OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                                    SimDuration gap) {
  if (!config_.enable_pattern_change_triggers || triggered_this_period_ ||
      actuator_ == nullptr) {
    return;
  }
  // Rate limit: a re-plan window shorter than the minimum period cannot
  // classify patterns reliably (an ordinary long episode would look P3).
  if (at - period_start_ < config_.min_period) return;
  // Paper §V-D condition i: a hot enclosure's I/O interval exceeded the
  // break-even time — the pattern shifted; re-plan now.
  if (static_cast<size_t>(enclosure) < is_hot_.size() &&
      is_hot_[static_cast<size_t>(enclosure)] && gap > config_.break_even) {
    triggered_this_period_ = true;
    actuator_->TriggerImmediatePeriodEnd();
  }
}

void EcoStoragePolicy::OnPowerOn(EnclosureId enclosure, SimTime at) {
  if (!config_.enable_pattern_change_triggers || triggered_this_period_ ||
      actuator_ == nullptr) {
    return;
  }
  if (static_cast<size_t>(enclosure) >= is_hot_.size() ||
      is_hot_[static_cast<size_t>(enclosure)]) {
    return;
  }
  // Paper §V-D condition ii: a cold enclosure powered on more than
  // m = 2 * (t_c - t_e) / l_b times since the period started. Evaluated
  // only once the period is at least one break-even old, so that a single
  // routine wake right after a period boundary does not force a re-plan.
  int64_t count = ++cold_power_on_counts_[static_cast<size_t>(enclosure)];
  if (at - period_start_ < config_.min_period) return;
  double m = 2.0 * static_cast<double>(at - period_start_) /
             static_cast<double>(config_.break_even);
  if (static_cast<double>(count) > m) {
    triggered_this_period_ = true;
    actuator_->TriggerImmediatePeriodEnd();
  }
}

}  // namespace ecostore::core
