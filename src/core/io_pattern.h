#ifndef ECOSTORE_CORE_IO_PATTERN_H_
#define ECOSTORE_CORE_IO_PATTERN_H_

#include <cstdint>

namespace ecostore::core {

/// \brief The four logical I/O patterns of the paper (§II-C.2).
///
/// - P0: no I/O in the monitoring period (a single Long Interval).
/// - P1: >=1 Long Interval, >=1 I/O Sequence, reads > 50% of sequence
///   I/Os — preload candidate.
/// - P2: >=1 Long Interval, >=1 I/O Sequence, reads <= 50% — write-delay
///   candidate.
/// - P3: one I/O Sequence spanning the period, no Long Interval — not a
///   power-saving candidate; kept on hot enclosures.
enum class IoPattern : uint8_t { kP0 = 0, kP1 = 1, kP2 = 2, kP3 = 3 };

inline constexpr int kNumIoPatterns = 4;

inline const char* IoPatternName(IoPattern p) {
  switch (p) {
    case IoPattern::kP0:
      return "P0";
    case IoPattern::kP1:
      return "P1";
    case IoPattern::kP2:
      return "P2";
    case IoPattern::kP3:
      return "P3";
  }
  return "?";
}

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_IO_PATTERN_H_
