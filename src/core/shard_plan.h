#ifndef ECOSTORE_CORE_SHARD_PLAN_H_
#define ECOSTORE_CORE_SHARD_PLAN_H_

#include <unordered_set>
#include <utility>
#include <vector>

#include "common/types.h"
#include "storage/block_virtualization.h"

namespace ecostore::core {

/// \brief The deterministic enclosure→shard partition of the sharded
/// engine, and helpers that cut a policy's array-wide plan into the
/// per-shard deltas each lane applies locally.
///
/// Enclosure e belongs to shard e % shards: cheap, stable under any
/// enclosure count, and it stripes the paper's RAID-group-major layouts
/// across shards so consecutive hot groups do not pile into one lane. An
/// item belongs to the shard of its *current* enclosure, so ownership
/// follows migration commits.
struct ShardMap {
  int shards = 1;

  int ShardOf(EnclosureId enclosure) const {
    return static_cast<int>(enclosure) % shards;
  }

  /// Ownership mask for one shard (StorageSystem::SetOwnedEnclosures).
  std::vector<bool> OwnedMask(int num_enclosures, int shard) const;
};

/// Splits a plan-wide write-delay set into per-shard subsets keyed by each
/// item's current enclosure. Every item lands in exactly one subset.
std::vector<std::unordered_set<DataItemId>> SplitWriteDelayItems(
    const std::unordered_set<DataItemId>& items,
    const storage::BlockVirtualization& virt, const ShardMap& map);

/// Splits an ordered preload list into per-shard lists, preserving the
/// planner's submission order within each shard (the order determines the
/// sequence of preload reads a lane issues, so it must be stable).
std::vector<std::vector<std::pair<DataItemId, int64_t>>> SplitPreloadItems(
    const std::vector<std::pair<DataItemId, int64_t>>& items,
    const storage::BlockVirtualization& virt, const ShardMap& map);

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_SHARD_PLAN_H_
