#ifndef ECOSTORE_CORE_HOT_COLD_PLANNER_H_
#define ECOSTORE_CORE_HOT_COLD_PLANNER_H_

#include <vector>

#include "core/pattern_classifier.h"
#include "storage/block_virtualization.h"

namespace ecostore::core {

/// Hot/cold split of the array's enclosures (paper §IV-C).
struct HotColdPartition {
  /// is_hot[e] is true when enclosure e is hot (keeps serving P3 items and
  /// is never powered off).
  std::vector<bool> is_hot;
  int n_hot = 0;

  bool IsHot(EnclosureId e) const {
    return is_hot.at(static_cast<size_t>(e));
  }
  int num_enclosures() const { return static_cast<int>(is_hot.size()); }
  int n_cold() const { return num_enclosures() - n_hot; }
};

/// \brief Chooses hot and cold disk enclosures from the P3 data items'
/// demand (paper §IV-C Steps 1-3).
///
/// N_hot = max(ceil(I_max / O), ceil(sum of P3 sizes / S)); the N_hot
/// enclosures holding the most P3 bytes become hot (minimising the P3
/// bytes that must migrate off cold enclosures). Selection is an O(n)
/// nth_element top-k — set-equivalent to the stable_sort reference in
/// bench/legacy_planner.h because the tie-break (enclosure id ascending)
/// makes the order total (DESIGN.md §12).
class HotColdPlanner {
 public:
  struct Options {
    /// O: maximum random IOPS a disk enclosure can serve (paper Table II).
    double max_enclosure_iops = 900.0;
    /// S: usable capacity of an enclosure.
    int64_t enclosure_capacity = 0;
  };

  explicit HotColdPlanner(const Options& options) : options_(options) {}

  /// Computes the partition for a given minimum hot count (used by the
  /// placement planner's "increase N_hot and retry" escape, paper Alg. 2).
  HotColdPartition Plan(const ClassificationResult& classification,
                        const storage::BlockVirtualization& virt,
                        int min_n_hot = 0) const;

 private:
  Options options_;
  /// Scratch reused across periods (single-threaded planner use).
  mutable std::vector<int64_t> p3_bytes_scratch_;
  mutable std::vector<int> order_scratch_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_HOT_COLD_PLANNER_H_
