#ifndef ECOSTORE_CORE_CACHE_PLANNER_H_
#define ECOSTORE_CORE_CACHE_PLANNER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/pattern_classifier.h"
#include "core/placement_planner.h"

namespace ecostore::core {

/// Cache assignments for one monitoring period.
struct CachePlan {
  /// Items whose writes are kept in the write-delay cache area
  /// (paper §IV-E).
  std::vector<DataItemId> write_delay;

  /// Items to pin in the preload area, with their sizes (paper §IV-F).
  std::vector<std::pair<DataItemId, int64_t>> preload;
};

/// \brief Selects write-delay and preload data items among the cold
/// enclosures' items (paper §IV-E and §IV-F).
///
/// Write delay: all P2 items on cold enclosures, then — if the area's
/// budget still has room — the P1 items with the most writes. The budget
/// is assessed against the items' written bytes in the last period (a
/// proxy for their dirty working set).
///
/// Preload: P1 items on cold enclosures by descending read-I/O density
/// (reads per byte), greedily while they fit the preload area.
///
/// Both budgeted selections run as lazy heap top-k (pop best-first, stop
/// when the budget is spent) instead of full sorts; output is bit-equal
/// to the stable_sort reference in bench/legacy_planner.h (DESIGN.md
/// §12 — the budget makes k data-dependent, which is why this leg uses a
/// heap where HotColdPlanner can use nth_element).
class CachePlanner {
 public:
  struct Options {
    int64_t preload_area_bytes = 0;
    int64_t write_delay_area_bytes = 0;
  };

  /// One scored selection candidate; index is the discovery (catalog)
  /// order, the total-order tie-break.
  struct Candidate {
    const ItemClassification* cls;
    double density;
    uint32_t index;
  };

  explicit CachePlanner(const Options& options) : options_(options) {}

  /// Non-const: the candidate scratch persists across periods so
  /// steady-state planning allocates nothing.
  ///
  /// \param final_enclosure item -> enclosure after the planned
  ///        migrations complete
  /// \param partition the hot/cold split the placement settled on
  CachePlan Plan(const ClassificationResult& classification,
                 const HotColdPartition& partition,
                 const std::vector<EnclosureId>& final_enclosure);

 private:
  Options options_;
  std::vector<Candidate> candidate_scratch_;
};

/// \brief Adapts the monitoring-period length: I_new = avg(Long Intervals)
/// * alpha, clamped to [min_period, max_period] (paper §IV-H).
class MonitoringPeriodController {
 public:
  struct Options {
    double alpha = 1.2;
    SimDuration min_period = 52 * kSecond;
    SimDuration max_period = 2 * kHour;
  };

  explicit MonitoringPeriodController(const Options& options)
      : options_(options) {}

  SimDuration Next(const ClassificationResult& classification,
                   SimDuration current) const;

 private:
  Options options_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_CACHE_PLANNER_H_
