#ifndef ECOSTORE_CORE_POWER_MANAGEMENT_H_
#define ECOSTORE_CORE_POWER_MANAGEMENT_H_

#include <vector>

#include "common/status.h"
#include "core/cache_planner.h"
#include "core/hot_cold_planner.h"
#include "core/pattern_classifier.h"
#include "core/placement_planner.h"
#include "monitor/snapshot.h"
#include "storage/storage_system.h"

namespace ecostore::core {

/// Tunables of the proposed method (paper Table II) plus feature flags for
/// ablation studies.
struct PowerManagementConfig {
  /// Break-even time of the off/on cycle.
  SimDuration break_even = 52 * kSecond;

  /// O and S of the planners (max IOPS / capacity per enclosure).
  double max_enclosure_iops = 900.0;
  int64_t enclosure_capacity = 0;  // 0: take from the storage config

  /// Cache areas dedicated to the method.
  int64_t preload_area_bytes = 0;       // 0: take from the storage config
  int64_t write_delay_area_bytes = 0;   // 0: take from the storage config

  /// Monitoring-period adaptation (paper §IV-H). The floor equals the
  /// initial period (ten break-even times, Table II): shorter windows
  /// cannot distinguish P3 from a single long episode, which would make
  /// the placement chase transients. The floor also rate-limits the §V-D
  /// immediate re-plan triggers.
  double alpha = 1.2;
  SimDuration initial_period = 520 * kSecond;
  SimDuration min_period = 520 * kSecond;
  SimDuration max_period = 2 * kHour;

  /// Feature flags (all on for the full method; toggled by the ablation
  /// benchmark).
  bool enable_placement = true;
  bool enable_preload = true;
  bool enable_write_delay = true;
  bool enable_adaptive_period = true;
  bool enable_pattern_change_triggers = true;
  /// Incremental re-planning (DESIGN.md §12): when the hot/cold partition
  /// is unchanged since the last period, Algorithm 2 only considers items
  /// whose classified pattern changed, that moved enclosure since the last
  /// plan, or that were P3-on-cold last time — and skips placement
  /// entirely when that union is empty. Plans are provably identical to
  /// full re-planning, so this is safe to leave on; the flag exists for
  /// ablation and the equivalence tests.
  bool enable_incremental_replan = true;
  /// Enclosure-of cache: maintain the item → post-plan enclosure map and
  /// the per-enclosure P3 population incrementally (keyed on the
  /// BlockVirtualization move journal + the classifier's dirty set)
  /// instead of walking the full item table each period for the cache
  /// planner's final-enclosure map and the P3-on-cold safety net. The
  /// resulting plans are identical (set semantics of the safety net);
  /// the flag exists for the equivalence tests.
  bool enable_enclosure_cache = true;

  Status Validate() const;
};

/// The complete decision of one power-management invocation (the body of
/// paper Algorithm 1).
struct ManagementPlan {
  /// The period's classification, aliasing the classifier-owned table
  /// inside PowerManagementFunction (valid until its next Run — every
  /// in-repo consumer reads the plan before then). A pointer, not a
  /// copy: at fleet scale the table is the plan's only O(catalog) part,
  /// and copying it would put the catalog back into the period-end cost
  /// that the streaming classifier just removed (DESIGN.md §13).
  const ClassificationResult* classification = nullptr;
  HotColdPartition partition;
  std::vector<Migration> migrations;
  CachePlan cache;
  /// Per-enclosure spin-down permission (true = cold, may power off).
  std::vector<bool> spin_down_allowed;
  SimDuration next_period = 0;

  /// Incremental re-plan audit (DESIGN.md §12). `incremental` is true
  /// when Algorithm 2 ran against the candidate set instead of the full
  /// catalog; `placement_skipped` when the empty-candidate fast path
  /// bypassed placement entirely (migrations trivially empty).
  bool incremental = false;
  bool placement_skipped = false;
  int64_t dirty_items = 0;        ///< pattern changes since the last period
  int64_t replan_candidates = 0;  ///< dirty ∪ moved ∪ residue handed over
};

/// \brief The power-management function (paper Algorithm 1): classify
/// patterns, split hot/cold, plan placement, pick write-delay and preload
/// items, configure power-off, and adapt the monitoring period.
///
/// Stateful across invocations: it remembers the previous period's
/// pattern table, the partition the placement settled on, the residual
/// P3-on-cold set and a cursor into the virtualization layer's move
/// journal, which together drive the incremental re-plan path
/// (DESIGN.md §12). One instance serves one experiment run.
class PowerManagementFunction {
 public:
  /// \param config method parameters; zero-valued capacity/cache fields
  ///        are filled from `system`'s configuration
  PowerManagementFunction(const PowerManagementConfig& config,
                          const storage::StorageSystem& system);

  const PowerManagementConfig& config() const { return config_; }

  /// Runs one management decision over a period snapshot.
  ///
  /// \param force_full bypass the incremental path for this invocation
  ///        (the §V-D sudden-change triggers request this: the trigger
  ///        itself is evidence the pattern landscape shifted).
  /// \param streaming_ingest the period's I/O already reached the
  ///        classifier through the monitor sink (DESIGN.md §13): only
  ///        finalise — never replay snapshot.application->buffer(). The
  ///        caller owns the BeginPeriod()/ingest lifecycle. When false,
  ///        the captured trace buffer is replayed into the classifier,
  ///        which yields the identical result.
  ManagementPlan Run(const monitor::MonitorSnapshot& snapshot,
                     const storage::StorageSystem& system,
                     SimDuration current_period, bool force_full = false,
                     bool streaming_ingest = false);

  /// The streaming classifier: policies attach it as the monitor's
  /// logical I/O sink and drive BeginPeriod() around Run().
  PatternClassifier* classifier() { return &classifier_; }

 private:
  PowerManagementConfig config_;
  PatternClassifier classifier_;
  HotColdPlanner hot_cold_;
  PlacementPlanner placement_;
  CachePlanner cache_;
  MonitoringPeriodController period_;

  // ---- incremental re-plan state (DESIGN.md §12) ----
  // The pattern table and its period-over-period diff live in the
  // classifier, which emits the dirty set as a finalisation by-product —
  // no O(catalog) diff here (DESIGN.md §13).
  bool have_prev_ = false;
  /// Partition the last placement settled on (pre safety-net).
  HotColdPartition prev_partition_;
  /// Residue: items that were P3-on-cold at the last placement (their
  /// migrations may still be in flight or may have failed).
  std::vector<DataItemId> prev_p3_cold_;
  /// Consumed prefix of BlockVirtualization::move_log().
  size_t journal_cursor_ = 0;
  std::vector<DataItemId> candidate_scratch_;

  // ---- enclosure-of cache (frontier-sized period ends) ----
  // Invariant between Run()s: final_enclosure_[i] is where item i ends
  // up under the *last emitted plan* (journal truth ⊕ that plan's
  // migrations), cached_is_p3_[i] mirrors the last classification, and
  // p3_final_count_[e] == #{i : cached_is_p3_[i] && final_enclosure_[i]
  // == e}. Each Run() reverts the optimistic migration overlay to the
  // move-journal truth (planned moves may not have committed), folds the
  // journal suffix and the classifier's dirty set, then overlays the new
  // plan — all frontier-sized work. The safety net then scans enclosures
  // (p3_final_count_ > 0), not items.
  bool have_enclosure_cache_ = false;
  std::vector<EnclosureId> final_enclosure_;  ///< item → post-plan enclosure
  std::vector<uint8_t> cached_is_p3_;         ///< item → pattern == P3
  std::vector<int64_t> p3_final_count_;       ///< enclosure → cached P3 items
  /// Consumed move_log() prefix — separate from journal_cursor_, which
  /// only advances on the enable_placement path.
  size_t enclosure_cache_cursor_ = 0;
  /// Items overlaid with the last plan's migration targets (reverted to
  /// journal truth at the next Run).
  std::vector<DataItemId> overlay_items_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_POWER_MANAGEMENT_H_
