#ifndef ECOSTORE_CORE_PLANNER_INDEX_H_
#define ECOSTORE_CORE_PLANNER_INDEX_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ecostore::core {

/// Top-first order for cold migration targets: Algorithm 3 prefers the
/// cold enclosure with the largest working IOPS, ties broken toward the
/// smaller enclosure id (the order a stable_sort over an id-ascending list
/// produces — the tie-break every replay golden is keyed to).
struct ColdTargetOrder {
  bool operator()(double key_a, EnclosureId a, double key_b,
                  EnclosureId b) const {
    if (key_a != key_b) return key_a > key_b;
    return a < b;
  }
};

/// Top-first order for hot placement sources: Algorithm 2 fills the
/// least-loaded hot enclosure first, same id-ascending tie-break.
struct HotSourceOrder {
  bool operator()(double key_a, EnclosureId a, double key_b,
                  EnclosureId b) const {
    if (key_a != key_b) return key_a < key_b;
    return a < b;
  }
};

/// \brief Addressable binary heap over enclosure ids keyed by a double
/// (working IOPS while planning).
///
/// The planner needs two operations a plain priority queue lacks: update
/// the key of an arbitrary enclosure in O(log n) after an ApplyMove, and
/// traverse enclosures in exact sorted order (pop, examine, push back)
/// so decisions match the stable_sort reference bit for bit. A dense
/// position index (enclosure id -> heap slot) provides both. Because the
/// comparators above are strict total orders — the id breaks every tie —
/// the pop sequence is the unique sorted order, independent of the
/// heap's internal layout.
template <typename TopFirst>
class IndexedEnclosureHeap {
 public:
  /// Empties the heap and re-sizes the position index for ids [0, n).
  void Reset(int num_enclosures) {
    heap_.clear();
    pos_.assign(static_cast<size_t>(num_enclosures), -1);
    key_.assign(static_cast<size_t>(num_enclosures), 0.0);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  bool Contains(EnclosureId e) const {
    return pos_[static_cast<size_t>(e)] >= 0;
  }
  double KeyOf(EnclosureId e) const { return key_[static_cast<size_t>(e)]; }

  /// The enclosure the active order puts first. Heap must be non-empty.
  EnclosureId Top() const { return heap_.front(); }

  void Push(EnclosureId e, double key) {
    assert(pos_[static_cast<size_t>(e)] < 0);
    key_[static_cast<size_t>(e)] = key;
    pos_[static_cast<size_t>(e)] = static_cast<int32_t>(heap_.size());
    heap_.push_back(e);
    SiftUp(heap_.size() - 1);
  }

  EnclosureId Pop() {
    EnclosureId top = heap_.front();
    RemoveAt(0);
    return top;
  }

  /// Re-keys an enclosure already in the heap; O(log n).
  void Update(EnclosureId e, double key) {
    auto i = static_cast<size_t>(pos_[static_cast<size_t>(e)]);
    assert(i < heap_.size());
    key_[static_cast<size_t>(e)] = key;
    if (!SiftUp(i)) SiftDown(i);
  }

  void Remove(EnclosureId e) {
    auto i = static_cast<size_t>(pos_[static_cast<size_t>(e)]);
    assert(i < heap_.size());
    RemoveAt(i);
  }

 private:
  bool Before(EnclosureId a, EnclosureId b) const {
    return TopFirst{}(key_[static_cast<size_t>(a)], a,
                      key_[static_cast<size_t>(b)], b);
  }

  void Place(size_t i, EnclosureId e) {
    heap_[i] = e;
    pos_[static_cast<size_t>(e)] = static_cast<int32_t>(i);
  }

  bool SiftUp(size_t i) {
    EnclosureId e = heap_[i];
    bool moved = false;
    while (i > 0) {
      size_t parent = (i - 1) / 2;
      if (!Before(e, heap_[parent])) break;
      Place(i, heap_[parent]);
      i = parent;
      moved = true;
    }
    if (moved) Place(i, e);
    return moved;
  }

  void SiftDown(size_t i) {
    EnclosureId e = heap_[i];
    size_t n = heap_.size();
    bool moved = false;
    while (true) {
      size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && Before(heap_[child + 1], heap_[child])) ++child;
      if (!Before(heap_[child], e)) break;
      Place(i, heap_[child]);
      i = child;
      moved = true;
    }
    if (moved) Place(i, e);
  }

  void RemoveAt(size_t i) {
    EnclosureId removed = heap_[i];
    pos_[static_cast<size_t>(removed)] = -1;
    EnclosureId last = heap_.back();
    heap_.pop_back();
    if (i < heap_.size()) {
      Place(i, last);
      if (!SiftUp(i)) SiftDown(i);
    }
  }

  std::vector<EnclosureId> heap_;
  std::vector<int32_t> pos_;  // enclosure id -> heap slot, -1 when absent
  std::vector<double> key_;   // enclosure id -> current key
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PLANNER_INDEX_H_
