#include "core/pattern_classifier.h"

#include <algorithm>
#include <cassert>

#include "trace/trace_stats.h"

namespace ecostore::core {

ClassificationResult PatternClassifier::Classify(
    const trace::LogicalTraceBuffer& buffer,
    const storage::DataItemCatalog& catalog, SimTime period_start,
    SimTime period_end) const {
  assert(period_end >= period_start);
  ClassificationResult result;
  result.items.resize(catalog.item_count());

  // Gather each item's (time, is_read) pairs and byte counts in one pass.
  std::vector<std::vector<std::pair<SimTime, bool>>> per_item(
      catalog.item_count());
  std::vector<std::pair<int64_t, int64_t>> bytes(catalog.item_count(),
                                                 {0, 0});
  for (const trace::LogicalIoRecord& rec : buffer.records()) {
    if (rec.item < 0 ||
        static_cast<size_t>(rec.item) >= catalog.item_count()) {
      continue;  // unknown item: not classifiable
    }
    auto idx = static_cast<size_t>(rec.item);
    per_item[idx].emplace_back(rec.time, rec.is_read());
    if (rec.is_read()) {
      bytes[idx].first += rec.size;
    } else {
      bytes[idx].second += rec.size;
    }
  }

  double period_seconds = ToSeconds(period_end - period_start);
  double long_interval_sum = 0.0;
  int64_t long_interval_count = 0;

  for (size_t i = 0; i < catalog.item_count(); ++i) {
    ItemClassification& cls = result.items[i];
    cls.item = static_cast<DataItemId>(i);
    cls.size_bytes = catalog.item(cls.item).size_bytes;
    cls.read_bytes = bytes[i].first;
    cls.write_bytes = bytes[i].second;

    IntervalProfile profile = AnalyzeIntervals(
        per_item[i], period_start, period_end, options_.break_even);
    cls.reads = profile.total_reads();
    cls.writes = profile.total_writes();
    cls.avg_iops = period_seconds > 0
                       ? static_cast<double>(cls.total_ios()) / period_seconds
                       : 0.0;
    cls.long_intervals = std::move(profile.long_intervals);

    for (SimDuration li : cls.long_intervals) {
      long_interval_sum += static_cast<double>(li);
      long_interval_count++;
    }

    // Paper §IV-B Step 3.
    if (per_item[i].empty()) {
      cls.pattern = IoPattern::kP0;
    } else if (cls.long_intervals.empty()) {
      cls.pattern = IoPattern::kP3;
    } else if (cls.reads * 2 > cls.total_ios()) {
      cls.pattern = IoPattern::kP1;
    } else {
      cls.pattern = IoPattern::kP2;
    }
    result.pattern_counts[static_cast<size_t>(cls.pattern)]++;
  }

  if (long_interval_count > 0) {
    result.mean_long_interval = static_cast<SimDuration>(
        long_interval_sum / static_cast<double>(long_interval_count));
  }

  // Aggregate IOPS series of the P3 items -> I_max (paper §IV-C Step 1).
  trace::IopsSeries p3_series(period_start, std::max(period_end,
                                                     period_start + 1),
                              options_.iops_bucket);
  bool any_p3 = false;
  for (size_t i = 0; i < result.items.size(); ++i) {
    if (result.items[i].pattern != IoPattern::kP3) continue;
    any_p3 = true;
    for (const auto& [t, is_read] : per_item[i]) {
      (void)is_read;
      p3_series.Add(t);
    }
  }
  result.p3_max_iops = any_p3 ? p3_series.MaxIops() : 0.0;
  return result;
}

}  // namespace ecostore::core
