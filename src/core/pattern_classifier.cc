#include "core/pattern_classifier.h"

#include <algorithm>
#include <cassert>

#include "trace/trace_stats.h"

namespace ecostore::core {

ClassificationResult PatternClassifier::Classify(
    const trace::LogicalTraceBuffer& buffer,
    const storage::DataItemCatalog& catalog, SimTime period_start,
    SimTime period_end) const {
  assert(period_end >= period_start);
  ClassificationResult result;
  const size_t n_items = catalog.item_count();
  result.items.resize(n_items);

  // One streaming pass over the trace, which must be time-ordered per
  // item (the monitor appends it in global time order). Per item, a gap
  // between consecutive I/Os (including the leading gap from the period
  // start) strictly longer than the break-even time is a Long Interval
  // (paper §IV-B Steps 1-2). The read/write counters double as the I/O
  // Sequence totals because every I/O belongs to some sequence, so no
  // per-item copy of the trace is ever materialised.
  Scratch& s = scratch_;
  s.state.assign(n_items, ItemState{period_start, 0, 0, 0, 0, 0});
  for (const trace::LogicalIoRecord& rec : buffer.records()) {
    if (rec.item < 0 || static_cast<size_t>(rec.item) >= n_items) {
      continue;  // unknown item: not classifiable
    }
    auto idx = static_cast<size_t>(rec.item);
    ItemState& st = s.state[idx];
    assert(rec.time >= st.last_time);
    SimDuration gap = rec.time - st.last_time;
    if (gap > options_.break_even) {
      result.items[idx].long_intervals.push_back(gap);
    }
    // A new I/O Sequence starts at the item's first I/O and after every
    // Long Interval (the two coincide when the leading gap is long).
    if (st.reads + st.writes == 0 || gap > options_.break_even) {
      st.sequences++;
    }
    if (rec.is_read()) {
      st.reads++;
      st.read_bytes += rec.size;
    } else {
      st.writes++;
      st.write_bytes += rec.size;
    }
    st.last_time = rec.time;
  }

  double period_seconds = ToSeconds(period_end - period_start);
  double long_interval_sum = 0.0;
  int64_t long_interval_count = 0;
  s.is_p3.assign(n_items, 0);
  bool any_p3 = false;

  for (size_t i = 0; i < n_items; ++i) {
    const ItemState& st = s.state[i];
    ItemClassification& cls = result.items[i];
    cls.item = static_cast<DataItemId>(i);
    cls.size_bytes = catalog.item(cls.item).size_bytes;
    cls.reads = st.reads;
    cls.writes = st.writes;
    cls.read_bytes = st.read_bytes;
    cls.write_bytes = st.write_bytes;
    cls.io_sequences = st.sequences;

    if (cls.total_ios() == 0) {
      // An untouched item has the single full-period Long Interval.
      cls.long_intervals.push_back(period_end - period_start);
    } else {
      SimDuration trailing = period_end - st.last_time;
      if (trailing > options_.break_even) {
        cls.long_intervals.push_back(trailing);
      }
    }
    cls.avg_iops = period_seconds > 0
                       ? static_cast<double>(cls.total_ios()) / period_seconds
                       : 0.0;

    for (SimDuration li : cls.long_intervals) {
      long_interval_sum += static_cast<double>(li);
      long_interval_count++;
    }

    // Paper §IV-B Step 3.
    if (cls.total_ios() == 0) {
      cls.pattern = IoPattern::kP0;
    } else if (cls.long_intervals.empty()) {
      cls.pattern = IoPattern::kP3;
      s.is_p3[i] = 1;
      any_p3 = true;
    } else if (cls.reads * 2 > cls.total_ios()) {
      cls.pattern = IoPattern::kP1;
    } else {
      cls.pattern = IoPattern::kP2;
    }
    result.pattern_counts[static_cast<size_t>(cls.pattern)]++;
  }

  if (long_interval_count > 0) {
    result.mean_long_interval = static_cast<SimDuration>(
        long_interval_sum / static_cast<double>(long_interval_count));
  }

  // Aggregate IOPS series of the P3 items -> I_max (paper §IV-C Step 1).
  // Second pass over the trace; AddOrdered exploits the usual global
  // time order but stays correct for merely per-item-ordered input.
  if (any_p3) {
    trace::IopsSeries p3_series(
        period_start, std::max(period_end, period_start + 1),
        options_.iops_bucket);
    for (const trace::LogicalIoRecord& rec : buffer.records()) {
      if (rec.item < 0 || static_cast<size_t>(rec.item) >= n_items) continue;
      if (s.is_p3[static_cast<size_t>(rec.item)]) {
        p3_series.AddOrdered(rec.time);
      }
    }
    result.p3_max_iops = p3_series.MaxIops();
  }
  return result;
}

}  // namespace ecostore::core
