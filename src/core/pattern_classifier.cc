#include "core/pattern_classifier.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <limits>
#include <thread>

#include "common/thread_pool.h"

namespace ecostore::core {

PatternClassifier::PatternClassifier(const Options& options)
    : options_(options), epoch_(1) {}

PatternClassifier::~PatternClassifier() = default;

void PatternClassifier::BeginPeriod(SimTime period_start) {
  period_start_ = period_start;
  ingested_ = 0;
  touched_.clear();
  if (++epoch_ == 0) {
    // uint32 epoch wrapped (once per ~4G periods): invalidate eagerly so
    // epoch 1 cannot collide with surviving stamps.
    for (ItemState& st : state_) st.epoch = 0;
    epoch_ = 1;
  }
  // The P3-candidate chunk pool is period-local; survivors were folded by
  // the previous Finalize and stale per-item heads die with their epoch.
  pool_.clear();
  free_head_ = -1;
}

PatternClassifier::ItemState& PatternClassifier::StateFor(size_t idx) {
  if (idx >= state_.size()) {
    state_.resize(std::max(idx + 1, state_.size() * 2));
  }
  ItemState& st = state_[idx];
  if (st.epoch != epoch_) {
    st = ItemState{};
    st.last_time = period_start_;
    st.epoch = epoch_;
    touched_.push_back(idx);
  }
  return st;
}

void PatternClassifier::AppendBucket(ItemState* st, int64_t bucket) {
  auto b32 = static_cast<int32_t>(
      std::min<int64_t>(bucket, std::numeric_limits<int32_t>::max()));
  if (st->chunk_tail >= 0) {
    IopsChunk& tail = pool_[static_cast<size_t>(st->chunk_tail)];
    if (tail.n > 0 && tail.bucket[tail.n - 1] == b32) {
      tail.count[tail.n - 1]++;
      return;
    }
    if (tail.n < IopsChunk::kEntries) {
      tail.bucket[tail.n] = b32;
      tail.count[tail.n] = 1;
      tail.n++;
      return;
    }
  }
  int32_t idx;
  if (free_head_ >= 0) {
    idx = free_head_;
    free_head_ = pool_[static_cast<size_t>(idx)].next;
  } else {
    idx = static_cast<int32_t>(pool_.size());
    pool_.emplace_back();
  }
  IopsChunk& chunk = pool_[static_cast<size_t>(idx)];
  chunk.next = -1;
  chunk.n = 1;
  chunk.bucket[0] = b32;
  chunk.count[0] = 1;
  if (st->chunk_tail >= 0) {
    pool_[static_cast<size_t>(st->chunk_tail)].next = idx;
  } else {
    st->chunk_head = idx;
  }
  st->chunk_tail = idx;
}

void PatternClassifier::ReleaseChunks(ItemState* st) {
  if (st->chunk_head < 0) return;
  pool_[static_cast<size_t>(st->chunk_tail)].next = free_head_;
  free_head_ = st->chunk_head;
  st->chunk_head = -1;
  st->chunk_tail = -1;
}

void PatternClassifier::OnLogicalIo(const trace::LogicalIoRecord& rec) {
  if (rec.item < 0) return;  // unknown item: not classifiable
  ItemState& st = StateFor(static_cast<size_t>(rec.item));
  assert(rec.time >= st.last_time);
  SimDuration gap = rec.time - st.last_time;
  bool long_gap = gap > options_.break_even;
  if (long_gap) {
    st.long_intervals++;
    st.long_interval_sum += gap;
    // The item can no longer classify P3 this period; its bucket runs are
    // dead weight, so recycle them now (memory stays O(live candidates)).
    ReleaseChunks(&st);
  }
  // A new I/O Sequence starts at the item's first I/O and after every
  // Long Interval (the two coincide when the leading gap is long).
  if (st.reads + st.writes == 0 || long_gap) {
    st.sequences++;
  }
  if (rec.is_read()) {
    st.reads++;
    st.read_bytes += rec.size;
  } else {
    st.writes++;
    st.write_bytes += rec.size;
  }
  st.last_time = rec.time;
  if (st.long_intervals == 0) {
    // Still a P3 candidate: bucket this I/O for the I_max series.
    AppendBucket(&st, (rec.time - period_start_) / options_.iops_bucket);
  }
  ingested_++;
}

void PatternClassifier::WriteQuietRow(
    size_t i, const storage::DataItemCatalog& catalog) {
  ItemClassification& cls = result_.items[i];
  cls.item = static_cast<DataItemId>(i);
  // Item sizes are immutable after AddItem (storage/data_item.cc), so a
  // quiet row never goes stale — the whole persistent-row design leans on
  // this.
  cls.size_bytes = catalog.item(cls.item).size_bytes;
  cls.reads = 0;
  cls.writes = 0;
  cls.read_bytes = 0;
  cls.write_bytes = 0;
  cls.io_sequences = 0;
  cls.avg_iops = 0.0;
  cls.long_interval_count = 1;
  cls.pattern = IoPattern::kP0;
}

void PatternClassifier::FinalizeRange(
    const size_t* idxs, size_t count, SimTime period_end,
    double period_seconds, size_t n_buckets, bool track_dirty,
    ShardAccum* accum) {
  const SimDuration full_period = period_end - period_start_;
  for (size_t k = 0; k < count; ++k) {
    const size_t i = idxs[k];
    ItemClassification& cls = result_.items[i];
    const ItemState& st = state_[i];
    IoPattern pattern;
    if (st.epoch != epoch_ || st.reads + st.writes == 0) {
      // Resident last period, quiet now: the row returns to its quiet
      // form (single full-period Long Interval, P0) and leaves the
      // frontier after this finalise.
      cls.reads = 0;
      cls.writes = 0;
      cls.read_bytes = 0;
      cls.write_bytes = 0;
      cls.io_sequences = 0;
      cls.avg_iops = 0.0;
      cls.long_interval_count = 1;
      accum->long_interval_sum += full_period;
      accum->long_interval_count++;
      pattern = IoPattern::kP0;
    } else {
      cls.reads = st.reads;
      cls.writes = st.writes;
      cls.read_bytes = st.read_bytes;
      cls.write_bytes = st.write_bytes;
      cls.io_sequences = st.sequences;
      int64_t li_count = st.long_intervals;
      int64_t li_sum = st.long_interval_sum;
      SimDuration trailing = period_end - st.last_time;
      if (trailing > options_.break_even) {
        li_count++;
        li_sum += trailing;
      }
      cls.long_interval_count = li_count;
      cls.avg_iops =
          period_seconds > 0
              ? static_cast<double>(cls.total_ios()) / period_seconds
              : 0.0;
      accum->long_interval_sum += li_sum;
      accum->long_interval_count += li_count;
      // Paper §IV-B Step 3.
      if (li_count == 0) {
        pattern = IoPattern::kP3;
        if (!accum->any_p3) {
          accum->any_p3 = true;
          accum->p3_buckets.assign(n_buckets, 0);
        }
        for (int32_t c = st.chunk_head; c >= 0;
             c = pool_[static_cast<size_t>(c)].next) {
          const IopsChunk& chunk = pool_[static_cast<size_t>(c)];
          for (int32_t k = 0; k < chunk.n; ++k) {
            auto b = static_cast<size_t>(chunk.bucket[k]);
            if (b >= n_buckets) b = n_buckets - 1;
            accum->p3_buckets[b] += chunk.count[k];
          }
        }
      } else if (cls.reads * 2 > cls.total_ios()) {
        pattern = IoPattern::kP1;
      } else {
        pattern = IoPattern::kP2;
      }
    }
    cls.pattern = pattern;
    accum->pattern_counts[static_cast<size_t>(pattern)]++;
    auto pb = static_cast<uint8_t>(pattern);
    if (track_dirty && prev_patterns_[i] != pb) {
      accum->dirty.push_back(static_cast<DataItemId>(i));
    }
    prev_patterns_[i] = pb;
  }
}

const ClassificationResult& PatternClassifier::Finalize(
    const storage::DataItemCatalog& catalog, SimTime period_end) {
  assert(period_end >= period_start_);
  const size_t n_items = catalog.item_count();
  if (state_.size() < n_items) state_.resize(n_items);

  // Dirty tracking mirrors the pre-streaming classifier: disabled for the
  // period in which the catalog changed size (evaluated before the row
  // table catches up).
  const bool track_dirty = has_previous_ && prev_patterns_.size() == n_items;

  if (n_items < init_items_) {
    // Catalog shrank (no current workload does this): rebuild the rows.
    result_.items.clear();
    resident_.clear();
    init_items_ = 0;
  }
  if (init_items_ < n_items) {
    // First finalise, or the catalog grew: write quiet rows once for the
    // new range. This is the only O(catalog) pass the classifier ever
    // does; quiet rows have no period-dependent field, so they are
    // carried verbatim until the item shows activity.
    result_.items.resize(n_items);
    prev_patterns_.resize(n_items, static_cast<uint8_t>(IoPattern::kP0));
    for (size_t i = init_items_; i < n_items; ++i) WriteQuietRow(i, catalog);
    init_items_ = n_items;
  }
  prev_patterns_.resize(n_items);

  result_.pattern_counts = {0, 0, 0, 0};
  result_.p3_max_iops = 0.0;
  result_.mean_long_interval = 0;

  const double period_seconds = ToSeconds(period_end - period_start_);
  const SimDuration width = options_.iops_bucket;
  // Bucket count of the legacy IopsSeries(start, max(end, start+1), w).
  auto n_buckets = static_cast<size_t>(
      (std::max(period_end, period_start_ + 1) - period_start_ + width - 1) /
      width);
  if (n_buckets < 1) n_buckets = 1;

  // The frontier: items touched this period plus rows still carrying
  // last period's activity (they must be reset to quiet form). Sorted
  // merge keeps every downstream artifact — rows, dirty set, shard
  // slices — in ascending item order. Ingest may have touched indices
  // beyond the catalog (unknown items); they stay out of the frontier
  // until the catalog covers them.
  std::sort(touched_.begin(), touched_.end());
  auto ta = touched_.begin();
  auto te = std::lower_bound(touched_.begin(), touched_.end(), n_items);
  auto ra = resident_.begin();
  auto re = resident_.end();
  frontier_.clear();
  while (ta != te && ra != re) {
    if (*ta < *ra) {
      frontier_.push_back(*ta++);
    } else if (*ra < *ta) {
      frontier_.push_back(*ra++);
    } else {
      frontier_.push_back(*ta++);
      ++ra;
    }
  }
  frontier_.insert(frontier_.end(), ta, te);
  frontier_.insert(frontier_.end(), ra, re);
  const size_t n_front = frontier_.size();

  int shards = options_.finalize_shards;
  if (shards <= 0) {
    shards = static_cast<int>((static_cast<int64_t>(n_front) +
                               options_.items_per_shard - 1) /
                              options_.items_per_shard);
  }
  shards = std::clamp(shards, 1, 16);

  shard_accums_.resize(static_cast<size_t>(shards));
  for (ShardAccum& a : shard_accums_) {
    a.pattern_counts = {0, 0, 0, 0};
    a.long_interval_sum = 0;
    a.long_interval_count = 0;
    a.any_p3 = false;
    a.dirty.clear();
    a.p3_buckets.clear();
  }

  const size_t per_shard =
      shards > 1 ? (n_front + static_cast<size_t>(shards) - 1) /
                       static_cast<size_t>(shards)
                 : n_front;
  if (shards > 1) {
    if (finalize_pool_ == nullptr) {
      auto hw = std::max(1u, std::thread::hardware_concurrency());
      int threads = static_cast<int>(
          std::min<unsigned>(static_cast<unsigned>(shards - 1), hw));
      finalize_pool_ = std::make_unique<ThreadPool>(threads);
    }
    std::vector<std::future<void>> futures;
    futures.reserve(static_cast<size_t>(shards) - 1);
    for (int s = 1; s < shards; ++s) {
      size_t lo = static_cast<size_t>(s) * per_shard;
      size_t hi = std::min(n_front, lo + per_shard);
      if (lo >= hi) break;
      futures.push_back(finalize_pool_->Submit(
          [this, lo, hi, period_end, period_seconds, n_buckets, track_dirty,
           s] {
            FinalizeRange(frontier_.data() + lo, hi - lo, period_end,
                          period_seconds, n_buckets, track_dirty,
                          &shard_accums_[static_cast<size_t>(s)]);
          }));
    }
    FinalizeRange(frontier_.data(), std::min(n_front, per_shard), period_end,
                  period_seconds, n_buckets, track_dirty, &shard_accums_[0]);
    for (std::future<void>& f : futures) f.get();
  } else {
    FinalizeRange(frontier_.data(), n_front, period_end, period_seconds,
                  n_buckets, track_dirty, &shard_accums_[0]);
  }

  // Deterministic merge: shards cover ascending frontier slices and every
  // cross-shard reduction below is integral, so the result is identical
  // for any shard/worker count — and to the serial (1-shard) pass. The
  // quiet remainder (rows outside the frontier) contributes in closed
  // form: n_quiet single full-period Long Intervals and n_quiet P0s,
  // the same integers a per-item pass would add one by one.
  const auto n_quiet = static_cast<int64_t>(n_items - n_front);
  result_.pattern_counts[static_cast<size_t>(IoPattern::kP0)] += n_quiet;
  int64_t li_sum = n_quiet * (period_end - period_start_);
  int64_t li_count = n_quiet;
  dirty_.clear();
  std::vector<int64_t>* p3_total = nullptr;
  for (ShardAccum& a : shard_accums_) {
    for (size_t p = 0; p < result_.pattern_counts.size(); ++p) {
      result_.pattern_counts[p] += a.pattern_counts[p];
    }
    li_sum += a.long_interval_sum;
    li_count += a.long_interval_count;
    dirty_.insert(dirty_.end(), a.dirty.begin(), a.dirty.end());
    if (a.any_p3) {
      if (p3_total == nullptr) {
        p3_total = &a.p3_buckets;
      } else {
        for (size_t b = 0; b < n_buckets; ++b) {
          (*p3_total)[b] += a.p3_buckets[b];
        }
      }
    }
  }
  if (li_count > 0) {
    // Long-Interval sums are exact in int64 µs and below 2^53 in every
    // supported domain, so this division reproduces the legacy flat
    // double accumulation bit-for-bit (DESIGN.md §13).
    result_.mean_long_interval = static_cast<SimDuration>(
        static_cast<double>(li_sum) / static_cast<double>(li_count));
  }
  if (p3_total != nullptr) {
    int64_t best = 0;
    for (int64_t c : *p3_total) best = std::max(best, c);
    result_.p3_max_iops = static_cast<double>(best) / ToSeconds(width);
  }

  // Next period's frontier seed: exactly the rows left non-quiet, which
  // are the touched in-catalog items (an ingested I/O always leaves
  // reads+writes > 0).
  resident_.assign(touched_.begin(), te);

  has_previous_ = true;
  NotePeak();
  return result_;
}

void PatternClassifier::Finalize(const storage::DataItemCatalog& catalog,
                                 SimTime period_end,
                                 ClassificationResult* result) {
  *result = Finalize(catalog, period_end);
}

ClassificationResult PatternClassifier::Classify(
    const trace::LogicalTraceBuffer& buffer,
    const storage::DataItemCatalog& catalog, SimTime period_start,
    SimTime period_end) {
  BeginPeriod(period_start);
  for (const trace::LogicalIoRecord& rec : buffer.records()) {
    OnLogicalIo(rec);
  }
  return Finalize(catalog, period_end);
}

size_t PatternClassifier::state_bytes() const {
  size_t bytes = state_.capacity() * sizeof(ItemState) +
                 pool_.capacity() * sizeof(IopsChunk) +
                 prev_patterns_.capacity() * sizeof(uint8_t) +
                 dirty_.capacity() * sizeof(DataItemId) +
                 result_.items.capacity() * sizeof(ItemClassification) +
                 (touched_.capacity() + resident_.capacity() +
                  frontier_.capacity()) *
                     sizeof(size_t);
  for (const ShardAccum& a : shard_accums_) {
    bytes += sizeof(ShardAccum) + a.dirty.capacity() * sizeof(DataItemId) +
             a.p3_buckets.capacity() * sizeof(int64_t);
  }
  return bytes;
}

void PatternClassifier::NotePeak() {
  peak_state_bytes_ = std::max(peak_state_bytes_, state_bytes());
}

}  // namespace ecostore::core
