#include "core/placement_planner.h"

#include <algorithm>
#include <cassert>

namespace ecostore::core {

/// Mutable per-enclosure load/space model used while planning. Starts from
/// the current placement and is updated as moves are decided.
struct PlacementPlanner::WorkingState {
  std::vector<double> iops;        // sum of resident items' avg IOPS
  std::vector<int64_t> used;       // resident bytes
  std::vector<EnclosureId> where;  // item -> enclosure

  void ApplyMove(const ItemClassification& cls, EnclosureId to) {
    EnclosureId from = where[static_cast<size_t>(cls.item)];
    iops[static_cast<size_t>(from)] -= cls.avg_iops;
    used[static_cast<size_t>(from)] -= cls.size_bytes;
    iops[static_cast<size_t>(to)] += cls.avg_iops;
    used[static_cast<size_t>(to)] += cls.size_bytes;
    where[static_cast<size_t>(cls.item)] = to;
  }
};

PlacementPlan PlacementPlanner::Plan(
    const ClassificationResult& classification,
    const storage::BlockVirtualization& virt) const {
  int n = virt.num_enclosures();
  PlacementPlan plan;
  int min_hot = 0;
  while (true) {
    plan.partition = hot_cold_->Plan(classification, virt, min_hot);
    if (plan.partition.n_hot >= n) {
      // Everything is hot: no cold enclosures, nothing to move (and no
      // power saving this period).
      plan.migrations.clear();
      return plan;
    }
    std::vector<Migration> evictions;
    std::vector<Migration> p3_moves;
    if (TryPlace(classification, virt, plan.partition, &evictions,
                 &p3_moves)) {
      plan.migrations = std::move(evictions);
      plan.migrations.insert(plan.migrations.end(), p3_moves.begin(),
                             p3_moves.end());
      return plan;
    }
    // Paper Algorithm 2: "Increase N_hot and retry this algorithm".
    min_hot = plan.partition.n_hot + 1;
  }
}

bool PlacementPlanner::TryPlace(const ClassificationResult& classification,
                                const storage::BlockVirtualization& virt,
                                const HotColdPartition& partition,
                                std::vector<Migration>* evictions,
                                std::vector<Migration>* p3_moves) const {
  const double kO = options_.max_enclosure_iops;
  const int64_t kS = options_.enclosure_capacity > 0
                         ? options_.enclosure_capacity
                         : virt.capacity_bytes();
  int n = virt.num_enclosures();

  WorkingState state;
  state.iops.assign(static_cast<size_t>(n), 0.0);
  state.used.assign(static_cast<size_t>(n), 0);
  state.where.resize(classification.items.size());
  for (const ItemClassification& cls : classification.items) {
    EnclosureId enc = virt.EnclosureOf(cls.item);
    state.where[static_cast<size_t>(cls.item)] = enc;
    state.iops[static_cast<size_t>(enc)] += cls.avg_iops;
    state.used[static_cast<size_t>(enc)] += cls.size_bytes;
  }

  std::vector<EnclosureId> hot;
  std::vector<EnclosureId> cold;
  for (int e = 0; e < n; ++e) {
    (partition.IsHot(e) ? hot : cold).push_back(e);
  }

  // Algorithm 3's target choice: the cold enclosure with the largest
  // working IOPS that satisfies both guards.
  auto find_cold_target = [&](const ItemClassification& cls) -> EnclosureId {
    std::vector<EnclosureId> order = cold;
    std::stable_sort(order.begin(), order.end(), [&](EnclosureId a,
                                                     EnclosureId b) {
      return state.iops[static_cast<size_t>(a)] >
             state.iops[static_cast<size_t>(b)];
    });
    for (EnclosureId c : order) {
      bool fits = cls.size_bytes <= kS - state.used[static_cast<size_t>(c)];
      bool serves =
          state.iops[static_cast<size_t>(c)] + cls.avg_iops < kO;
      if (fits && serves) return c;
    }
    return kInvalidEnclosure;
  };

  // Algorithm 3 as a space-maker: evict P0/P1/P2 items from a hot
  // enclosure until `need` bytes are free. Largest items first minimises
  // the number of moves.
  auto make_space = [&](EnclosureId s, int64_t need) -> bool {
    std::vector<const ItemClassification*> movable;
    for (const ItemClassification& cls : classification.items) {
      if (state.where[static_cast<size_t>(cls.item)] == s &&
          cls.pattern != IoPattern::kP3 &&
          !virt.catalog().item(cls.item).pinned) {
        movable.push_back(&cls);
      }
    }
    std::stable_sort(movable.begin(), movable.end(),
                     [](const ItemClassification* a,
                        const ItemClassification* b) {
                       return a->size_bytes > b->size_bytes;
                     });
    for (const ItemClassification* cls : movable) {
      if (kS - state.used[static_cast<size_t>(s)] >= need) break;
      EnclosureId target = find_cold_target(*cls);
      if (target == kInvalidEnclosure) continue;
      evictions->push_back(Migration{cls->item, s, target});
      state.ApplyMove(*cls, target);
    }
    return kS - state.used[static_cast<size_t>(s)] >= need;
  };

  // Algorithm 2: move P3 items off cold enclosures, most demanding
  // (IOPS per byte) first.
  std::vector<const ItemClassification*> m;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern == IoPattern::kP3 &&
        !partition.IsHot(state.where[static_cast<size_t>(cls.item)]) &&
        !virt.catalog().item(cls.item).pinned) {
      m.push_back(&cls);
    }
  }
  std::stable_sort(m.begin(), m.end(), [](const ItemClassification* a,
                                          const ItemClassification* b) {
    double da = a->size_bytes > 0 ? a->avg_iops / static_cast<double>(
                                                      a->size_bytes)
                                  : a->avg_iops;
    double db = b->size_bytes > 0 ? b->avg_iops / static_cast<double>(
                                                      b->size_bytes)
                                  : b->avg_iops;
    return da > db;
  });

  for (const ItemClassification* d : m) {
    std::vector<EnclosureId> order = hot;
    std::stable_sort(order.begin(), order.end(), [&](EnclosureId a,
                                                     EnclosureId b) {
      return state.iops[static_cast<size_t>(a)] <
             state.iops[static_cast<size_t>(b)];
    });
    bool placed = false;
    for (EnclosureId s : order) {
      if (d->avg_iops + state.iops[static_cast<size_t>(s)] >= kO) {
        // Even the least-loaded hot enclosure would saturate: the hot set
        // is too small (paper: increase N_hot and retry). Candidates are
        // IOPS-ascending, so no later candidate can pass either.
        return false;
      }
      if (d->size_bytes + state.used[static_cast<size_t>(s)] <= kS) {
        p3_moves->push_back(
            Migration{d->item, state.where[static_cast<size_t>(d->item)],
                      s});
        state.ApplyMove(*d, s);
        placed = true;
        break;
      }
    }
    if (!placed) {
      // All hot enclosures lack space: free some with Algorithm 3.
      for (EnclosureId s : order) {
        int64_t need =
            d->size_bytes -
            (kS - state.used[static_cast<size_t>(s)]);
        if (make_space(s, need)) {
          p3_moves->push_back(
              Migration{d->item, state.where[static_cast<size_t>(d->item)],
                        s});
          state.ApplyMove(*d, s);
          placed = true;
          break;
        }
      }
    }
    if (!placed) return false;
  }
  return true;
}

}  // namespace ecostore::core
