#include "core/placement_planner.h"

#include <algorithm>
#include <cassert>

namespace ecostore::core {

PlacementPlan PlacementPlanner::Plan(
    const ClassificationResult& classification,
    const storage::BlockVirtualization& virt,
    const std::vector<DataItemId>* candidates,
    std::vector<DataItemId>* p3_on_cold) {
  int n = virt.num_enclosures();
  PlacementPlan plan;
  int min_hot = 0;
  while (true) {
    plan.partition = hot_cold_->Plan(classification, virt, min_hot);
    if (plan.partition.n_hot >= n) {
      // Everything is hot: no cold enclosures, nothing to move (and no
      // power saving this period).
      plan.migrations.clear();
      if (p3_on_cold != nullptr) p3_on_cold->clear();
      return plan;
    }
    evictions_scratch_.clear();
    p3_moves_scratch_.clear();
    if (TryPlace(classification, virt, plan.partition, candidates,
                 &evictions_scratch_, &p3_moves_scratch_, p3_on_cold)) {
      plan.migrations.reserve(evictions_scratch_.size() +
                              p3_moves_scratch_.size());
      plan.migrations.assign(evictions_scratch_.begin(),
                             evictions_scratch_.end());
      plan.migrations.insert(plan.migrations.end(),
                             p3_moves_scratch_.begin(),
                             p3_moves_scratch_.end());
      return plan;
    }
    // Paper Algorithm 2: "Increase N_hot and retry this algorithm".
    min_hot = plan.partition.n_hot + 1;
  }
}

bool PlacementPlanner::TryPlace(const ClassificationResult& classification,
                                const storage::BlockVirtualization& virt,
                                const HotColdPartition& partition,
                                const std::vector<DataItemId>* candidates,
                                std::vector<Migration>* evictions,
                                std::vector<Migration>* p3_moves,
                                std::vector<DataItemId>* p3_on_cold) {
  const double kO = options_.max_enclosure_iops;
  const int64_t kS = options_.enclosure_capacity > 0
                         ? options_.enclosure_capacity
                         : virt.capacity_bytes();
  int n = virt.num_enclosures();

  WorkingState& state = state_;
  state.iops.assign(static_cast<size_t>(n), 0.0);
  state.used.assign(static_cast<size_t>(n), 0);
  state.where.resize(classification.items.size());
  for (const ItemClassification& cls : classification.items) {
    EnclosureId enc = virt.EnclosureOf(cls.item);
    state.where[static_cast<size_t>(cls.item)] = enc;
    state.iops[static_cast<size_t>(enc)] += cls.avg_iops;
    state.used[static_cast<size_t>(enc)] += cls.size_bytes;
  }

  cold_.Reset(n);
  hot_.Reset(n);
  for (int e = 0; e < n; ++e) {
    if (partition.IsHot(e)) {
      hot_.Push(e, state.iops[static_cast<size_t>(e)]);
    } else {
      cold_.Push(e, state.iops[static_cast<size_t>(e)]);
    }
  }
  buckets_built_ = false;

  // Algorithm 3's target choice: the cold enclosure with the largest
  // working IOPS that satisfies both guards. The heap pops cold
  // enclosures in exactly (IOPS desc, id asc) order; everything examined
  // is pushed back, and the caller re-keys the chosen target after the
  // move applies.
  auto find_cold_target = [&](const ItemClassification& cls) -> EnclosureId {
    EnclosureId found = kInvalidEnclosure;
    cold_scan_.clear();
    while (!cold_.empty()) {
      EnclosureId c = cold_.Pop();
      cold_scan_.push_back(c);
      bool fits =
          cls.size_bytes <= kS - state.used[static_cast<size_t>(c)];
      bool serves = state.iops[static_cast<size_t>(c)] + cls.avg_iops < kO;
      if (fits && serves) {
        found = c;
        break;
      }
    }
    for (EnclosureId c : cold_scan_) {
      cold_.Push(c, state.iops[static_cast<size_t>(c)]);
    }
    cold_scan_.clear();
    return found;
  };

  // One pass over the catalog builds every hot enclosure's movable list;
  // deferred until a make_space actually needs it. Movable items only
  // ever leave a hot enclosure (evictions target cold ones), so lazy
  // where-checks keep the buckets current without re-bucketing.
  auto build_buckets = [&]() {
    if (buckets_built_) return;
    buckets_built_ = true;
    if (buckets_.size() < static_cast<size_t>(n)) {
      buckets_.resize(static_cast<size_t>(n));
    }
    for (int e = 0; e < n; ++e) buckets_[static_cast<size_t>(e)].clear();
    bucket_sorted_.assign(static_cast<size_t>(n), 0);
    for (const ItemClassification& cls : classification.items) {
      if (cls.pattern != IoPattern::kP3 &&
          !virt.catalog().item(cls.item).pinned) {
        buckets_[static_cast<size_t>(
                     state.where[static_cast<size_t>(cls.item)])]
            .push_back(&cls);
      }
    }
  };

  // Algorithm 3 as a space-maker: evict P0/P1/P2 items from a hot
  // enclosure until `need` bytes are free. Largest items first minimises
  // the number of moves. On failure every eviction this call added is
  // rolled back — the target hot enclosure is being abandoned, so none
  // of the space made on it may leak into the plan.
  auto make_space = [&](EnclosureId s, int64_t need) -> bool {
    build_buckets();
    std::vector<const ItemClassification*>& bucket =
        buckets_[static_cast<size_t>(s)];
    if (!bucket_sorted_[static_cast<size_t>(s)]) {
      bucket_sorted_[static_cast<size_t>(s)] = 1;
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const ItemClassification* a,
                          const ItemClassification* b) {
                         return a->size_bytes > b->size_bytes;
                       });
    }
    const size_t mark = evictions->size();
    for (const ItemClassification* cls : bucket) {
      if (state.where[static_cast<size_t>(cls->item)] != s) continue;
      if (kS - state.used[static_cast<size_t>(s)] >= need) break;
      EnclosureId target = find_cold_target(*cls);
      if (target == kInvalidEnclosure) continue;
      evictions->push_back(Migration{cls->item, s, target});
      state.ApplyMove(*cls, target);
      cold_.Update(target, state.iops[static_cast<size_t>(target)]);
    }
    if (kS - state.used[static_cast<size_t>(s)] >= need) return true;
    while (evictions->size() > mark) {
      const Migration& mig = evictions->back();
      state.ApplyMove(classification.items[static_cast<size_t>(mig.item)],
                      s);
      cold_.Update(mig.to, state.iops[static_cast<size_t>(mig.to)]);
      evictions->pop_back();
    }
    return false;
  };

  // Algorithm 2: move P3 items off cold enclosures, most demanding
  // (IOPS per byte) first. The incremental path hands in a candidate
  // superset instead of scanning the whole catalog; the filter below
  // makes both forms select the identical mover set.
  movers_.clear();
  auto consider = [&](const ItemClassification& cls) {
    if (cls.pattern == IoPattern::kP3 &&
        !partition.IsHot(state.where[static_cast<size_t>(cls.item)]) &&
        !virt.catalog().item(cls.item).pinned) {
      movers_.push_back(&cls);
    }
  };
  if (candidates == nullptr) {
    for (const ItemClassification& cls : classification.items) {
      consider(cls);
    }
  } else {
    for (DataItemId id : *candidates) {
      if (id < 0 || static_cast<size_t>(id) >= classification.items.size()) {
        continue;
      }
      consider(classification.items[static_cast<size_t>(id)]);
    }
  }
  if (p3_on_cold != nullptr) {
    // Captured before the density sort: the candidate/filter pass visits
    // items in ascending id order, which is the order the residue keeps.
    p3_on_cold->clear();
    p3_on_cold->reserve(movers_.size());
    for (const ItemClassification* cls : movers_) {
      p3_on_cold->push_back(cls->item);
    }
  }
  std::stable_sort(movers_.begin(), movers_.end(),
                   [](const ItemClassification* a,
                      const ItemClassification* b) {
                     double da = a->size_bytes > 0
                                     ? a->avg_iops /
                                           static_cast<double>(a->size_bytes)
                                     : a->avg_iops;
                     double db = b->size_bytes > 0
                                     ? b->avg_iops /
                                           static_cast<double>(b->size_bytes)
                                     : b->avg_iops;
                     return da > db;
                   });

  for (const ItemClassification* d : movers_) {
    // Pop hot enclosures in (IOPS asc, id asc) order — the snapshot the
    // reference re-sorted per item. The pop sequence doubles as that
    // fixed snapshot for the make_space pass below.
    hot_scan_.clear();
    EnclosureId placed_on = kInvalidEnclosure;
    while (!hot_.empty()) {
      EnclosureId s = hot_.Pop();
      hot_scan_.push_back(s);
      if (d->avg_iops + state.iops[static_cast<size_t>(s)] >= kO) {
        // Even the least-loaded hot enclosure would saturate: the hot set
        // is too small (paper: increase N_hot and retry). Candidates are
        // IOPS-ascending, so no later candidate can pass either.
        return false;
      }
      if (d->size_bytes + state.used[static_cast<size_t>(s)] <= kS) {
        placed_on = s;
        break;
      }
    }
    if (placed_on != kInvalidEnclosure) {
      EnclosureId from = state.where[static_cast<size_t>(d->item)];
      p3_moves->push_back(Migration{d->item, from, placed_on});
      state.ApplyMove(*d, placed_on);
      // The mover left a cold enclosure; its working IOPS dropped, and
      // find_cold_target orders by live IOPS — re-key it or later
      // eviction targets diverge from the reference.
      if (cold_.Contains(from)) {
        cold_.Update(from, state.iops[static_cast<size_t>(from)]);
      }
    } else {
      // All hot enclosures lack space: free some with Algorithm 3, in the
      // same fixed IOPS-ascending order (indices — make_space's rollback
      // path never touches hot_scan_, but stay defensive about growth).
      for (size_t i = 0; i < hot_scan_.size(); ++i) {
        EnclosureId s = hot_scan_[i];
        int64_t need =
            d->size_bytes - (kS - state.used[static_cast<size_t>(s)]);
        if (make_space(s, need)) {
          EnclosureId from = state.where[static_cast<size_t>(d->item)];
          p3_moves->push_back(Migration{d->item, from, s});
          state.ApplyMove(*d, s);
          if (cold_.Contains(from)) {
            cold_.Update(from, state.iops[static_cast<size_t>(from)]);
          }
          placed_on = s;
          break;
        }
      }
      if (placed_on == kInvalidEnclosure) return false;
    }
    for (EnclosureId s : hot_scan_) {
      hot_.Push(s, state.iops[static_cast<size_t>(s)]);
    }
    hot_scan_.clear();
  }
  return true;
}

}  // namespace ecostore::core
