#include "core/power_management.h"

#include <algorithm>

namespace ecostore::core {

namespace {

bool SamePartition(const HotColdPartition& a, const HotColdPartition& b) {
  return a.n_hot == b.n_hot && a.is_hot == b.is_hot;
}

PowerManagementConfig FillDefaults(PowerManagementConfig config,
                                   const storage::StorageSystem& system) {
  const storage::StorageConfig& sc = system.config();
  if (config.enclosure_capacity == 0) {
    config.enclosure_capacity = sc.enclosure.capacity_bytes;
  }
  if (config.preload_area_bytes == 0) {
    config.preload_area_bytes = sc.cache.preload_area_bytes;
  }
  if (config.write_delay_area_bytes == 0) {
    config.write_delay_area_bytes = sc.cache.write_delay_area_bytes;
  }
  return config;
}

}  // namespace

Status PowerManagementConfig::Validate() const {
  if (break_even <= 0) {
    return Status::InvalidArgument("break-even time must be positive");
  }
  if (max_enclosure_iops <= 0) {
    return Status::InvalidArgument("max enclosure IOPS must be positive");
  }
  if (alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1 (paper §IV-H)");
  }
  if (initial_period <= 0 || min_period <= 0 ||
      max_period < min_period) {
    return Status::InvalidArgument("invalid monitoring-period bounds");
  }
  return Status::OK();
}

PowerManagementFunction::PowerManagementFunction(
    const PowerManagementConfig& config,
    const storage::StorageSystem& system)
    : config_(FillDefaults(config, system)),
      classifier_(PatternClassifier::Options{config_.break_even,
                                             1 * kSecond}),
      hot_cold_(HotColdPlanner::Options{config_.max_enclosure_iops,
                                        config_.enclosure_capacity}),
      placement_(PlacementPlanner::Options{config_.max_enclosure_iops,
                                           config_.enclosure_capacity},
                 &hot_cold_),
      cache_(CachePlanner::Options{config_.preload_area_bytes,
                                   config_.write_delay_area_bytes}),
      period_(MonitoringPeriodController::Options{
          config_.alpha, config_.min_period, config_.max_period}) {}

ManagementPlan PowerManagementFunction::Run(
    const monitor::MonitorSnapshot& snapshot,
    const storage::StorageSystem& system,
    SimDuration current_period, bool force_full) {
  ManagementPlan plan;
  const storage::BlockVirtualization& virt = system.virtualization();

  // Algorithm 1 line: determine Logical I/O pattern of data items.
  plan.classification = classifier_.Classify(
      snapshot.application->buffer(), virt.catalog(), snapshot.period_start,
      snapshot.period_end);

  // Determine hot/cold enclosures + data placement.
  if (config_.enable_placement) {
    const size_t n_items = plan.classification.items.size();
    bool planned = false;

    // Incremental path (DESIGN.md §12). Sound because every item that can
    // be P3-and-on-cold *now* is reachable from one of three facts: its
    // pattern changed since the last plan (dirty), its residency changed
    // since the last plan (move journal — in-flight migrations commit
    // between periods), or it was already P3-on-cold at the last plan
    // (residue). Anything else kept both its pattern and its enclosure,
    // and under an unchanged partition an unchanged P3 item still sits
    // hot. A partition shift invalidates that last step, so it falls back
    // to the full plan.
    if (config_.enable_incremental_replan && !force_full && have_prev_ &&
        prev_patterns_.size() == n_items &&
        journal_cursor_ <= virt.move_log_size()) {
      candidate_scratch_.clear();
      for (size_t i = 0; i < n_items; ++i) {
        if (static_cast<uint8_t>(plan.classification.items[i].pattern) !=
            prev_patterns_[i]) {
          candidate_scratch_.push_back(static_cast<DataItemId>(i));
        }
      }
      plan.dirty_items = static_cast<int64_t>(candidate_scratch_.size());
      const std::vector<DataItemId>& log = virt.move_log();
      candidate_scratch_.insert(candidate_scratch_.end(),
                                log.begin() + static_cast<ptrdiff_t>(
                                                  journal_cursor_),
                                log.end());
      candidate_scratch_.insert(candidate_scratch_.end(),
                                prev_p3_cold_.begin(), prev_p3_cold_.end());
      std::sort(candidate_scratch_.begin(), candidate_scratch_.end());
      candidate_scratch_.erase(std::unique(candidate_scratch_.begin(),
                                           candidate_scratch_.end()),
                               candidate_scratch_.end());
      plan.replan_candidates =
          static_cast<int64_t>(candidate_scratch_.size());

      HotColdPartition fresh = hot_cold_.Plan(plan.classification, virt);
      if (SamePartition(fresh, prev_partition_)) {
        if (candidate_scratch_.empty()) {
          // Fast path: nothing can have become P3-on-cold, so the full
          // planner would compute an empty mover list and no migrations.
          plan.partition = std::move(fresh);
          plan.migrations.clear();
          prev_p3_cold_.clear();
          plan.incremental = true;
          plan.placement_skipped = true;
          planned = true;
        } else {
          PlacementPlan placement =
              placement_.Plan(plan.classification, virt,
                              &candidate_scratch_, &prev_p3_cold_);
          plan.partition = std::move(placement.partition);
          plan.migrations = std::move(placement.migrations);
          plan.incremental = true;
          planned = true;
        }
      }
    }

    if (!planned) {
      PlacementPlan placement =
          placement_.Plan(plan.classification, virt, nullptr,
                          &prev_p3_cold_);
      plan.partition = std::move(placement.partition);
      plan.migrations = std::move(placement.migrations);
    }

    // Snapshot the state the next period's incremental decision needs:
    // the settled partition *before* the safety net below mutates it,
    // the pattern table, and the consumed journal prefix.
    prev_partition_ = plan.partition;
    prev_patterns_.resize(n_items);
    for (size_t i = 0; i < n_items; ++i) {
      prev_patterns_[i] =
          static_cast<uint8_t>(plan.classification.items[i].pattern);
    }
    journal_cursor_ = virt.move_log_size();
    have_prev_ = true;
  } else {
    plan.partition = hot_cold_.Plan(plan.classification, virt);
    // Items stay put; cold enclosures may still hold P3 items. Such
    // enclosures must not power off, so mark them hot.
    for (const ItemClassification& cls : plan.classification.items) {
      if (cls.pattern == IoPattern::kP3) {
        auto enc = static_cast<size_t>(virt.EnclosureOf(cls.item));
        if (!plan.partition.is_hot[enc]) {
          plan.partition.is_hot[enc] = true;
          plan.partition.n_hot++;
        }
      }
    }
  }

  // Final placement after migrations for the cache planner.
  std::vector<EnclosureId> final_enclosure(plan.classification.items.size());
  for (const ItemClassification& cls : plan.classification.items) {
    final_enclosure[static_cast<size_t>(cls.item)] =
        virt.EnclosureOf(cls.item);
  }
  for (const Migration& mig : plan.migrations) {
    final_enclosure[static_cast<size_t>(mig.item)] = mig.to;
  }

  // Safety net: any P3 item that ends up on a cold enclosure (pinned, or
  // unplaceable) forces that enclosure hot — powering it off would stall
  // the application.
  for (const ItemClassification& cls : plan.classification.items) {
    if (cls.pattern != IoPattern::kP3) continue;
    auto enc = static_cast<size_t>(
        final_enclosure[static_cast<size_t>(cls.item)]);
    if (!plan.partition.is_hot[enc]) {
      plan.partition.is_hot[enc] = true;
      plan.partition.n_hot++;
    }
  }

  // Determine write delay first, then preload (paper §IV-A rationale).
  CachePlan cache_plan =
      cache_.Plan(plan.classification, plan.partition, final_enclosure);
  if (config_.enable_write_delay) {
    plan.cache.write_delay = std::move(cache_plan.write_delay);
  }
  if (config_.enable_preload) {
    plan.cache.preload = std::move(cache_plan.preload);
  }

  // Determine the power-control method: power-off only for cold
  // enclosures (paper §IV-G).
  plan.spin_down_allowed.assign(plan.partition.is_hot.size(), false);
  for (size_t e = 0; e < plan.partition.is_hot.size(); ++e) {
    plan.spin_down_allowed[e] = !plan.partition.is_hot[e];
  }

  // Determine the length of the next monitoring period (paper §IV-H).
  plan.next_period = config_.enable_adaptive_period
                         ? period_.Next(plan.classification, current_period)
                         : current_period;
  return plan;
}

}  // namespace ecostore::core
