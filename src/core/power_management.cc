#include "core/power_management.h"

namespace ecostore::core {

namespace {

PowerManagementConfig FillDefaults(PowerManagementConfig config,
                                   const storage::StorageSystem& system) {
  const storage::StorageConfig& sc = system.config();
  if (config.enclosure_capacity == 0) {
    config.enclosure_capacity = sc.enclosure.capacity_bytes;
  }
  if (config.preload_area_bytes == 0) {
    config.preload_area_bytes = sc.cache.preload_area_bytes;
  }
  if (config.write_delay_area_bytes == 0) {
    config.write_delay_area_bytes = sc.cache.write_delay_area_bytes;
  }
  return config;
}

}  // namespace

Status PowerManagementConfig::Validate() const {
  if (break_even <= 0) {
    return Status::InvalidArgument("break-even time must be positive");
  }
  if (max_enclosure_iops <= 0) {
    return Status::InvalidArgument("max enclosure IOPS must be positive");
  }
  if (alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1 (paper §IV-H)");
  }
  if (initial_period <= 0 || min_period <= 0 ||
      max_period < min_period) {
    return Status::InvalidArgument("invalid monitoring-period bounds");
  }
  return Status::OK();
}

PowerManagementFunction::PowerManagementFunction(
    const PowerManagementConfig& config,
    const storage::StorageSystem& system)
    : config_(FillDefaults(config, system)),
      classifier_(PatternClassifier::Options{config_.break_even,
                                             1 * kSecond}),
      hot_cold_(HotColdPlanner::Options{config_.max_enclosure_iops,
                                        config_.enclosure_capacity}),
      placement_(PlacementPlanner::Options{config_.max_enclosure_iops,
                                           config_.enclosure_capacity},
                 &hot_cold_),
      cache_(CachePlanner::Options{config_.preload_area_bytes,
                                   config_.write_delay_area_bytes}),
      period_(MonitoringPeriodController::Options{
          config_.alpha, config_.min_period, config_.max_period}) {}

ManagementPlan PowerManagementFunction::Run(
    const monitor::MonitorSnapshot& snapshot,
    const storage::StorageSystem& system,
    SimDuration current_period) const {
  ManagementPlan plan;
  const storage::BlockVirtualization& virt = system.virtualization();

  // Algorithm 1 line: determine Logical I/O pattern of data items.
  plan.classification = classifier_.Classify(
      snapshot.application->buffer(), virt.catalog(), snapshot.period_start,
      snapshot.period_end);

  // Determine hot/cold enclosures + data placement.
  if (config_.enable_placement) {
    PlacementPlan placement = placement_.Plan(plan.classification, virt);
    plan.partition = std::move(placement.partition);
    plan.migrations = std::move(placement.migrations);
  } else {
    plan.partition = hot_cold_.Plan(plan.classification, virt);
    // Items stay put; cold enclosures may still hold P3 items. Such
    // enclosures must not power off, so mark them hot.
    for (const ItemClassification& cls : plan.classification.items) {
      if (cls.pattern == IoPattern::kP3) {
        auto enc = static_cast<size_t>(virt.EnclosureOf(cls.item));
        if (!plan.partition.is_hot[enc]) {
          plan.partition.is_hot[enc] = true;
          plan.partition.n_hot++;
        }
      }
    }
  }

  // Final placement after migrations for the cache planner.
  std::vector<EnclosureId> final_enclosure(plan.classification.items.size());
  for (const ItemClassification& cls : plan.classification.items) {
    final_enclosure[static_cast<size_t>(cls.item)] =
        virt.EnclosureOf(cls.item);
  }
  for (const Migration& mig : plan.migrations) {
    final_enclosure[static_cast<size_t>(mig.item)] = mig.to;
  }

  // Safety net: any P3 item that ends up on a cold enclosure (pinned, or
  // unplaceable) forces that enclosure hot — powering it off would stall
  // the application.
  for (const ItemClassification& cls : plan.classification.items) {
    if (cls.pattern != IoPattern::kP3) continue;
    auto enc = static_cast<size_t>(
        final_enclosure[static_cast<size_t>(cls.item)]);
    if (!plan.partition.is_hot[enc]) {
      plan.partition.is_hot[enc] = true;
      plan.partition.n_hot++;
    }
  }

  // Determine write delay first, then preload (paper §IV-A rationale).
  CachePlan cache_plan =
      cache_.Plan(plan.classification, plan.partition, final_enclosure);
  if (config_.enable_write_delay) {
    plan.cache.write_delay = std::move(cache_plan.write_delay);
  }
  if (config_.enable_preload) {
    plan.cache.preload = std::move(cache_plan.preload);
  }

  // Determine the power-control method: power-off only for cold
  // enclosures (paper §IV-G).
  plan.spin_down_allowed.assign(plan.partition.is_hot.size(), false);
  for (size_t e = 0; e < plan.partition.is_hot.size(); ++e) {
    plan.spin_down_allowed[e] = !plan.partition.is_hot[e];
  }

  // Determine the length of the next monitoring period (paper §IV-H).
  plan.next_period = config_.enable_adaptive_period
                         ? period_.Next(plan.classification, current_period)
                         : current_period;
  return plan;
}

}  // namespace ecostore::core
