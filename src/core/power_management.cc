#include "core/power_management.h"

#include <algorithm>
#include <cassert>

#include "telemetry/profile/profiler.h"

namespace ecostore::core {

namespace {

bool SamePartition(const HotColdPartition& a, const HotColdPartition& b) {
  return a.n_hot == b.n_hot && a.is_hot == b.is_hot;
}

PowerManagementConfig FillDefaults(PowerManagementConfig config,
                                   const storage::StorageSystem& system) {
  const storage::StorageConfig& sc = system.config();
  if (config.enclosure_capacity == 0) {
    config.enclosure_capacity = sc.enclosure.capacity_bytes;
  }
  if (config.preload_area_bytes == 0) {
    config.preload_area_bytes = sc.cache.preload_area_bytes;
  }
  if (config.write_delay_area_bytes == 0) {
    config.write_delay_area_bytes = sc.cache.write_delay_area_bytes;
  }
  return config;
}

}  // namespace

Status PowerManagementConfig::Validate() const {
  if (break_even <= 0) {
    return Status::InvalidArgument("break-even time must be positive");
  }
  if (max_enclosure_iops <= 0) {
    return Status::InvalidArgument("max enclosure IOPS must be positive");
  }
  if (alpha < 1.0) {
    return Status::InvalidArgument("alpha must be >= 1 (paper §IV-H)");
  }
  if (initial_period <= 0 || min_period <= 0 ||
      max_period < min_period) {
    return Status::InvalidArgument("invalid monitoring-period bounds");
  }
  return Status::OK();
}

PowerManagementFunction::PowerManagementFunction(
    const PowerManagementConfig& config,
    const storage::StorageSystem& system)
    : config_(FillDefaults(config, system)),
      classifier_(PatternClassifier::Options{config_.break_even,
                                             1 * kSecond}),
      hot_cold_(HotColdPlanner::Options{config_.max_enclosure_iops,
                                        config_.enclosure_capacity}),
      placement_(PlacementPlanner::Options{config_.max_enclosure_iops,
                                           config_.enclosure_capacity},
                 &hot_cold_),
      cache_(CachePlanner::Options{config_.preload_area_bytes,
                                   config_.write_delay_area_bytes}),
      period_(MonitoringPeriodController::Options{
          config_.alpha, config_.min_period, config_.max_period}) {}

ManagementPlan PowerManagementFunction::Run(
    const monitor::MonitorSnapshot& snapshot,
    const storage::StorageSystem& system,
    SimDuration current_period, bool force_full, bool streaming_ingest) {
  ManagementPlan plan;
  const storage::BlockVirtualization& virt = system.virtualization();

  // Algorithm 1 line: determine Logical I/O pattern of data items. With
  // streaming ingest the interval analysis already happened as the I/Os
  // arrived; the period end only finalises (DESIGN.md §13). The replay
  // path feeds the captured trace through the same state machine, so
  // both produce bit-identical classifications.
  if (streaming_ingest) {
    assert(classifier_.period_start() == snapshot.period_start);
  } else {
    classifier_.BeginPeriod(snapshot.period_start);
    for (const trace::LogicalIoRecord& rec :
         snapshot.application->buffer().records()) {
      classifier_.OnLogicalIo(rec);
    }
  }
  const ClassificationResult* classification_ptr;
  {
    telemetry::profile::ScopedPhase classify_span(
        telemetry::profile::Phase::kClassifyFinalize);
    classification_ptr =
        &classifier_.Finalize(virt.catalog(), snapshot.period_end);
  }
  const ClassificationResult& classification = *classification_ptr;
  plan.classification = &classification;

  telemetry::profile::ScopedPhase plan_span(
      telemetry::profile::Phase::kPlan);

  // ---- enclosure-of cache refresh, part 1: re-sync with reality ----
  // Revert the last plan's optimistic migration overlay to the move-
  // journal truth (planned moves may not have committed), fold the
  // journal suffix, and apply the classifier's pattern flips. All
  // frontier-sized; the O(catalog) rebuild runs only on the first period
  // or when the catalog / enclosure count changed underneath us.
  const size_t cache_items = classification.items.size();
  const size_t cache_encs = static_cast<size_t>(system.num_enclosures());
  const bool use_enclosure_cache = config_.enable_enclosure_cache;
  if (use_enclosure_cache) {
    auto move_cached = [this](DataItemId item, EnclosureId to) {
      const size_t idx = static_cast<size_t>(item);
      const EnclosureId from = final_enclosure_[idx];
      if (from == to) return;
      if (cached_is_p3_[idx] != 0) {
        p3_final_count_[static_cast<size_t>(from)]--;
        p3_final_count_[static_cast<size_t>(to)]++;
      }
      final_enclosure_[idx] = to;
    };
    if (have_enclosure_cache_ && classifier_.has_previous() &&
        final_enclosure_.size() == cache_items &&
        p3_final_count_.size() == cache_encs &&
        enclosure_cache_cursor_ <= virt.move_log_size()) {
      for (DataItemId item : overlay_items_) {
        move_cached(item, virt.EnclosureOf(item));
      }
      const std::vector<DataItemId>& log = virt.move_log();
      for (size_t i = enclosure_cache_cursor_; i < log.size(); ++i) {
        move_cached(log[i], virt.EnclosureOf(log[i]));
      }
      const std::vector<uint8_t>& patterns = classifier_.patterns();
      for (DataItemId item : classifier_.dirty_items()) {
        const size_t idx = static_cast<size_t>(item);
        const uint8_t p3 =
            patterns[idx] == static_cast<uint8_t>(IoPattern::kP3) ? 1 : 0;
        if (p3 != cached_is_p3_[idx]) {
          p3_final_count_[static_cast<size_t>(final_enclosure_[idx])] +=
              p3 != 0 ? 1 : -1;
          cached_is_p3_[idx] = p3;
        }
      }
    } else {
      final_enclosure_.assign(cache_items, 0);
      cached_is_p3_.assign(cache_items, 0);
      p3_final_count_.assign(cache_encs, 0);
      for (const ItemClassification& cls : classification.items) {
        const size_t idx = static_cast<size_t>(cls.item);
        const EnclosureId enc = virt.EnclosureOf(cls.item);
        final_enclosure_[idx] = enc;
        if (cls.pattern == IoPattern::kP3) {
          cached_is_p3_[idx] = 1;
          p3_final_count_[static_cast<size_t>(enc)]++;
        }
      }
      have_enclosure_cache_ = true;
    }
    enclosure_cache_cursor_ = virt.move_log_size();
    overlay_items_.clear();
  }

  // Determine hot/cold enclosures + data placement.
  if (config_.enable_placement) {
    const size_t n_items = classification.items.size();
    bool planned = false;

    // Incremental path (DESIGN.md §12). Sound because every item that can
    // be P3-and-on-cold *now* is reachable from one of three facts: its
    // pattern changed since the last plan (dirty), its residency changed
    // since the last plan (move journal — in-flight migrations commit
    // between periods), or it was already P3-on-cold at the last plan
    // (residue). Anything else kept both its pattern and its enclosure,
    // and under an unchanged partition an unchanged P3 item still sits
    // hot. A partition shift invalidates that last step, so it falls back
    // to the full plan.
    if (config_.enable_incremental_replan && !force_full && have_prev_ &&
        classifier_.has_previous() &&
        classifier_.patterns().size() == n_items &&
        journal_cursor_ <= virt.move_log_size()) {
      // The dirty set (pattern-changed items, including newly-quiet P3s)
      // fell out of the classifier's finalisation — activity-sized, no
      // full-catalog diff (DESIGN.md §13).
      const std::vector<DataItemId>& dirty = classifier_.dirty_items();
      candidate_scratch_.assign(dirty.begin(), dirty.end());
      plan.dirty_items = static_cast<int64_t>(candidate_scratch_.size());
      const std::vector<DataItemId>& log = virt.move_log();
      candidate_scratch_.insert(candidate_scratch_.end(),
                                log.begin() + static_cast<ptrdiff_t>(
                                                  journal_cursor_),
                                log.end());
      candidate_scratch_.insert(candidate_scratch_.end(),
                                prev_p3_cold_.begin(), prev_p3_cold_.end());
      std::sort(candidate_scratch_.begin(), candidate_scratch_.end());
      candidate_scratch_.erase(std::unique(candidate_scratch_.begin(),
                                           candidate_scratch_.end()),
                               candidate_scratch_.end());
      plan.replan_candidates =
          static_cast<int64_t>(candidate_scratch_.size());

      HotColdPartition fresh = hot_cold_.Plan(classification, virt);
      if (SamePartition(fresh, prev_partition_)) {
        if (candidate_scratch_.empty()) {
          // Fast path: nothing can have become P3-on-cold, so the full
          // planner would compute an empty mover list and no migrations.
          plan.partition = std::move(fresh);
          plan.migrations.clear();
          prev_p3_cold_.clear();
          plan.incremental = true;
          plan.placement_skipped = true;
          planned = true;
        } else {
          PlacementPlan placement =
              placement_.Plan(classification, virt,
                              &candidate_scratch_, &prev_p3_cold_);
          plan.partition = std::move(placement.partition);
          plan.migrations = std::move(placement.migrations);
          plan.incremental = true;
          planned = true;
        }
      }
    }

    if (!planned) {
      PlacementPlan placement =
          placement_.Plan(classification, virt, nullptr,
                          &prev_p3_cold_);
      plan.partition = std::move(placement.partition);
      plan.migrations = std::move(placement.migrations);
    }

    // Snapshot the state the next period's incremental decision needs:
    // the settled partition *before* the safety net below mutates it and
    // the consumed journal prefix (the pattern table already lives in
    // the classifier).
    prev_partition_ = plan.partition;
    journal_cursor_ = virt.move_log_size();
    have_prev_ = true;
  } else {
    plan.partition = hot_cold_.Plan(classification, virt);
    // Items stay put; cold enclosures may still hold P3 items. Such
    // enclosures must not power off, so mark them hot. With the cache,
    // p3_final_count_ already reflects current residency + patterns
    // (migrations are empty on this branch), so the general safety net
    // below covers it; the legacy walk is kept as the flag-off oracle.
    if (!use_enclosure_cache) {
      for (const ItemClassification& cls : classification.items) {
        if (cls.pattern == IoPattern::kP3) {
          auto enc = static_cast<size_t>(virt.EnclosureOf(cls.item));
          if (!plan.partition.is_hot[enc]) {
            plan.partition.is_hot[enc] = true;
            plan.partition.n_hot++;
          }
        }
      }
    }
  }

  // ---- enclosure-of cache refresh, part 2: overlay this plan ----
  // Final placement after migrations for the cache planner. With the
  // cache, final_enclosure_ was synced above and only the new plan's
  // migrations (frontier-sized) are folded in; the legacy path rebuilds
  // the full map every period.
  std::vector<EnclosureId> legacy_final_enclosure;
  if (use_enclosure_cache) {
    overlay_items_.reserve(plan.migrations.size());
    for (const Migration& mig : plan.migrations) {
      const size_t idx = static_cast<size_t>(mig.item);
      overlay_items_.push_back(mig.item);
      if (final_enclosure_[idx] != mig.to) {
        if (cached_is_p3_[idx] != 0) {
          p3_final_count_[static_cast<size_t>(final_enclosure_[idx])]--;
          p3_final_count_[static_cast<size_t>(mig.to)]++;
        }
        final_enclosure_[idx] = mig.to;
      }
    }
  } else {
    legacy_final_enclosure.resize(classification.items.size());
    for (const ItemClassification& cls : classification.items) {
      legacy_final_enclosure[static_cast<size_t>(cls.item)] =
          virt.EnclosureOf(cls.item);
    }
    for (const Migration& mig : plan.migrations) {
      legacy_final_enclosure[static_cast<size_t>(mig.item)] = mig.to;
    }
  }
  const std::vector<EnclosureId>& final_enclosure =
      use_enclosure_cache ? final_enclosure_ : legacy_final_enclosure;

  // Safety net: any P3 item that ends up on a cold enclosure (pinned, or
  // unplaceable) forces that enclosure hot — powering it off would stall
  // the application. The item-order walk has pure set semantics, so the
  // enclosure-count scan produces the identical partition.
  if (use_enclosure_cache) {
    for (size_t e = 0; e < p3_final_count_.size(); ++e) {
      if (p3_final_count_[e] > 0 && !plan.partition.is_hot[e]) {
        plan.partition.is_hot[e] = true;
        plan.partition.n_hot++;
      }
    }
  } else {
    for (const ItemClassification& cls : classification.items) {
      if (cls.pattern != IoPattern::kP3) continue;
      auto enc = static_cast<size_t>(
          final_enclosure[static_cast<size_t>(cls.item)]);
      if (!plan.partition.is_hot[enc]) {
        plan.partition.is_hot[enc] = true;
        plan.partition.n_hot++;
      }
    }
  }

  // Determine write delay first, then preload (paper §IV-A rationale).
  CachePlan cache_plan =
      cache_.Plan(classification, plan.partition, final_enclosure);
  if (config_.enable_write_delay) {
    plan.cache.write_delay = std::move(cache_plan.write_delay);
  }
  if (config_.enable_preload) {
    plan.cache.preload = std::move(cache_plan.preload);
  }

  // Determine the power-control method: power-off only for cold
  // enclosures (paper §IV-G).
  plan.spin_down_allowed.assign(plan.partition.is_hot.size(), false);
  for (size_t e = 0; e < plan.partition.is_hot.size(); ++e) {
    plan.spin_down_allowed[e] = !plan.partition.is_hot[e];
  }

  // Determine the length of the next monitoring period (paper §IV-H).
  plan.next_period = config_.enable_adaptive_period
                         ? period_.Next(classification, current_period)
                         : current_period;
  return plan;
}

}  // namespace ecostore::core
