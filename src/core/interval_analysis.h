#ifndef ECOSTORE_CORE_INTERVAL_ANALYSIS_H_
#define ECOSTORE_CORE_INTERVAL_ANALYSIS_H_

#include <span>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace ecostore::core {

/// A maximal run of I/Os in which every internal gap is at most the
/// break-even time (paper §II-C.2, Fig. 1).
struct IoSequence {
  SimTime start = 0;
  SimTime end = 0;
  int64_t reads = 0;
  int64_t writes = 0;

  int64_t total() const { return reads + writes; }
};

/// Long Intervals and I/O Sequences of one data item over one monitoring
/// period.
struct IntervalProfile {
  /// Gaps strictly longer than the break-even time, including the leading
  /// gap (period start -> first I/O) and trailing gap (last I/O -> period
  /// end); for an item with no I/O this is the single full-period gap.
  std::vector<SimDuration> long_intervals;
  std::vector<IoSequence> sequences;

  int64_t total_reads() const;
  int64_t total_writes() const;
};

/// \brief Splits one item's period trace into Long Intervals and I/O
/// Sequences (paper §IV-B Steps 1-2), reusing `profile`'s buffers.
///
/// Callers that analyze many items per period (tools, benchmarks) should
/// reuse one long-lived profile so the hot path performs no allocation
/// once the profile's vectors have grown to their steady-state capacity.
/// (PatternClassifier::Classify derives the same quantities in a single
/// streaming pass over the whole trace instead of calling this per item.)
///
/// \param ios (time, IoType-as-read-flag) pairs in non-decreasing time
///        order; times must lie within [period_start, period_end].
/// \param period_start start of the monitoring period
/// \param period_end end of the monitoring period
/// \param break_even the break-even time; gaps strictly longer than this
///        are Long Intervals
/// \param profile output; previous contents are cleared (capacity kept)
void AnalyzeIntervalsInto(std::span<const std::pair<SimTime, bool>> ios,
                          SimTime period_start, SimTime period_end,
                          SimDuration break_even, IntervalProfile* profile);

/// Convenience wrapper returning a freshly allocated profile.
IntervalProfile AnalyzeIntervals(
    const std::vector<std::pair<SimTime, bool>>& ios, SimTime period_start,
    SimTime period_end, SimDuration break_even);

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_INTERVAL_ANALYSIS_H_
