#include "core/cache_planner.h"

#include <algorithm>

namespace ecostore::core {

CachePlan CachePlanner::Plan(
    const ClassificationResult& classification,
    const HotColdPartition& partition,
    const std::vector<EnclosureId>& final_enclosure) const {
  CachePlan plan;

  auto on_cold = [&](const ItemClassification& cls) {
    EnclosureId enc = final_enclosure.at(static_cast<size_t>(cls.item));
    return !partition.IsHot(enc);
  };

  // --- Write delay (paper §IV-E) ---
  int64_t wd_budget = options_.write_delay_area_bytes;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern == IoPattern::kP2 && on_cold(cls)) {
      plan.write_delay.push_back(cls.item);
      wd_budget -= cls.write_bytes;
    }
  }
  // Remaining budget goes to the most write-heavy cold P1 items.
  if (wd_budget > 0) {
    std::vector<const ItemClassification*> p1;
    for (const ItemClassification& cls : classification.items) {
      if (cls.pattern == IoPattern::kP1 && on_cold(cls) && cls.writes > 0) {
        p1.push_back(&cls);
      }
    }
    std::stable_sort(p1.begin(), p1.end(),
                     [](const ItemClassification* a,
                        const ItemClassification* b) {
                       return a->writes > b->writes;
                     });
    for (const ItemClassification* cls : p1) {
      if (cls->write_bytes > wd_budget) continue;
      plan.write_delay.push_back(cls->item);
      wd_budget -= cls->write_bytes;
    }
  }

  // --- Preload (paper §IV-F) ---
  std::vector<const ItemClassification*> candidates;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern == IoPattern::kP1 && on_cold(cls) && cls.reads > 0) {
      candidates.push_back(&cls);
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const ItemClassification* a,
                      const ItemClassification* b) {
                     double da = a->size_bytes > 0
                                     ? static_cast<double>(a->reads) /
                                           static_cast<double>(a->size_bytes)
                                     : 0.0;
                     double db = b->size_bytes > 0
                                     ? static_cast<double>(b->reads) /
                                           static_cast<double>(b->size_bytes)
                                     : 0.0;
                     return da > db;
                   });
  int64_t pl_budget = options_.preload_area_bytes;
  for (const ItemClassification* cls : candidates) {
    if (cls->size_bytes > pl_budget) continue;
    plan.preload.emplace_back(cls->item, cls->size_bytes);
    pl_budget -= cls->size_bytes;
  }
  return plan;
}

SimDuration MonitoringPeriodController::Next(
    const ClassificationResult& classification, SimDuration current) const {
  if (classification.mean_long_interval <= 0) return current;
  auto next = static_cast<SimDuration>(
      static_cast<double>(classification.mean_long_interval) *
      options_.alpha);
  return std::clamp(next, options_.min_period, options_.max_period);
}

}  // namespace ecostore::core
