#include "core/cache_planner.h"

#include <algorithm>

namespace ecostore::core {

namespace {

/// Heap "less" for the write-delay leg: the best candidate (most writes,
/// then smallest discovery index) must surface at the heap top, so the
/// comparator orders *away* from that. Pop order is therefore exactly the
/// (writes desc, catalog order asc) sequence the historical stable_sort
/// produced — the index makes the order total.
struct WorseWriter {
  bool operator()(const CachePlanner::Candidate& a,
                  const CachePlanner::Candidate& b) const {
    if (a.cls->writes != b.cls->writes) return a.cls->writes < b.cls->writes;
    return a.index > b.index;
  }
};

/// Same for the preload leg: (read density desc, catalog order asc).
struct WorseReader {
  bool operator()(const CachePlanner::Candidate& a,
                  const CachePlanner::Candidate& b) const {
    if (a.density != b.density) return a.density < b.density;
    return a.index > b.index;
  }
};

}  // namespace

CachePlan CachePlanner::Plan(
    const ClassificationResult& classification,
    const HotColdPartition& partition,
    const std::vector<EnclosureId>& final_enclosure) {
  CachePlan plan;

  auto on_cold = [&](const ItemClassification& cls) {
    EnclosureId enc = final_enclosure.at(static_cast<size_t>(cls.item));
    return !partition.IsHot(enc);
  };

  // --- Write delay (paper §IV-E) ---
  int64_t wd_budget = options_.write_delay_area_bytes;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern == IoPattern::kP2 && on_cold(cls)) {
      plan.write_delay.push_back(cls.item);
      wd_budget -= cls.write_bytes;
    }
  }
  // Remaining budget goes to the most write-heavy cold P1 items. Lazy
  // top-k: pop candidates best-first and stop once the budget is spent —
  // O(n + k log n) against the reference's full sort. The selection stays
  // exact because a zero-write-bytes item is admitted even at budget 0
  // (0 > 0 is false); the early exit only fires when no such item is in
  // the pool.
  if (wd_budget > 0) {
    candidate_scratch_.clear();
    bool has_zero_write_bytes = false;
    uint32_t index = 0;
    for (const ItemClassification& cls : classification.items) {
      if (cls.pattern == IoPattern::kP1 && on_cold(cls) && cls.writes > 0) {
        candidate_scratch_.push_back(Candidate{&cls, 0.0, index++});
        if (cls.write_bytes == 0) has_zero_write_bytes = true;
      }
    }
    std::make_heap(candidate_scratch_.begin(), candidate_scratch_.end(),
                   WorseWriter{});
    size_t live = candidate_scratch_.size();
    while (live > 0) {
      if (wd_budget <= 0 && !has_zero_write_bytes) break;
      std::pop_heap(candidate_scratch_.begin(),
                    candidate_scratch_.begin() + static_cast<ptrdiff_t>(live),
                    WorseWriter{});
      --live;
      const ItemClassification* cls = candidate_scratch_[live].cls;
      if (cls->write_bytes > wd_budget) continue;
      plan.write_delay.push_back(cls->item);
      wd_budget -= cls->write_bytes;
    }
  }

  // --- Preload (paper §IV-F) ---
  // P1 items on cold enclosures by descending read-I/O density, greedily
  // while they fit the remaining area — the same lazy-heap traversal
  // (density precomputed once per candidate; identical FP expression to
  // the reference comparator, so ordering is bit-equal).
  candidate_scratch_.clear();
  bool has_zero_size = false;
  uint32_t index = 0;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern == IoPattern::kP1 && on_cold(cls) && cls.reads > 0) {
      double density = cls.size_bytes > 0
                           ? static_cast<double>(cls.reads) /
                                 static_cast<double>(cls.size_bytes)
                           : 0.0;
      candidate_scratch_.push_back(Candidate{&cls, density, index++});
      if (cls.size_bytes == 0) has_zero_size = true;
    }
  }
  std::make_heap(candidate_scratch_.begin(), candidate_scratch_.end(),
                 WorseReader{});
  int64_t pl_budget = options_.preload_area_bytes;
  size_t live = candidate_scratch_.size();
  while (live > 0) {
    if (pl_budget <= 0 && !has_zero_size) break;
    std::pop_heap(candidate_scratch_.begin(),
                  candidate_scratch_.begin() + static_cast<ptrdiff_t>(live),
                  WorseReader{});
    --live;
    const ItemClassification* cls = candidate_scratch_[live].cls;
    if (cls->size_bytes > pl_budget) continue;
    plan.preload.emplace_back(cls->item, cls->size_bytes);
    pl_budget -= cls->size_bytes;
  }
  return plan;
}

SimDuration MonitoringPeriodController::Next(
    const ClassificationResult& classification, SimDuration current) const {
  if (classification.mean_long_interval <= 0) return current;
  auto next = static_cast<SimDuration>(
      static_cast<double>(classification.mean_long_interval) *
      options_.alpha);
  return std::clamp(next, options_.min_period, options_.max_period);
}

}  // namespace ecostore::core
