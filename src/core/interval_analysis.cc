#include "core/interval_analysis.h"

#include <cassert>

namespace ecostore::core {

int64_t IntervalProfile::total_reads() const {
  int64_t n = 0;
  for (const IoSequence& s : sequences) n += s.reads;
  return n;
}

int64_t IntervalProfile::total_writes() const {
  int64_t n = 0;
  for (const IoSequence& s : sequences) n += s.writes;
  return n;
}

void AnalyzeIntervalsInto(std::span<const std::pair<SimTime, bool>> ios,
                          SimTime period_start, SimTime period_end,
                          SimDuration break_even, IntervalProfile* profile) {
  assert(period_end >= period_start);
  profile->long_intervals.clear();
  profile->sequences.clear();

  if (ios.empty()) {
    profile->long_intervals.push_back(period_end - period_start);
    return;
  }

  IoSequence current;
  bool in_sequence = false;
  SimTime prev = period_start;

  auto close_sequence = [&] {
    if (in_sequence) {
      profile->sequences.push_back(current);
      in_sequence = false;
    }
  };
  auto open_sequence = [&](SimTime at) {
    current = IoSequence{};
    current.start = at;
    current.end = at;
    in_sequence = true;
  };

  for (size_t i = 0; i < ios.size(); ++i) {
    const auto& [t, is_read] = ios[i];
    assert(t >= prev);
    SimDuration gap = t - prev;
    if (gap > break_even) {
      // Gaps longer than the break-even time separate sequences; the
      // leading gap (i == 0) also counts (Fig. 1: Long Interval #1 may
      // start at the period start).
      close_sequence();
      profile->long_intervals.push_back(gap);
    }
    if (!in_sequence) open_sequence(t);
    current.end = t;
    if (is_read) {
      current.reads++;
    } else {
      current.writes++;
    }
    prev = t;
  }

  SimDuration trailing = period_end - prev;
  if (trailing > break_even) {
    close_sequence();
    profile->long_intervals.push_back(trailing);
  } else {
    close_sequence();
  }
}

IntervalProfile AnalyzeIntervals(
    const std::vector<std::pair<SimTime, bool>>& ios, SimTime period_start,
    SimTime period_end, SimDuration break_even) {
  IntervalProfile profile;
  AnalyzeIntervalsInto(ios, period_start, period_end, break_even, &profile);
  return profile;
}

}  // namespace ecostore::core
