#include "core/hot_cold_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ecostore::core {

HotColdPartition HotColdPlanner::Plan(
    const ClassificationResult& classification,
    const storage::BlockVirtualization& virt, int min_n_hot) const {
  int n = virt.num_enclosures();
  HotColdPartition partition;
  partition.is_hot.assign(static_cast<size_t>(n), false);

  // Per-enclosure total size of resident P3 items, and global P3 totals.
  std::vector<int64_t>& p3_bytes = p3_bytes_scratch_;
  p3_bytes.assign(static_cast<size_t>(n), 0);
  int64_t p3_total_bytes = 0;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern != IoPattern::kP3) continue;
    EnclosureId enc = virt.EnclosureOf(cls.item);
    p3_bytes[static_cast<size_t>(enc)] += cls.size_bytes;
    p3_total_bytes += cls.size_bytes;
  }

  // Paper §IV-C Step 2.
  int by_iops = static_cast<int>(
      std::ceil(classification.p3_max_iops / options_.max_enclosure_iops));
  int by_size = options_.enclosure_capacity > 0
                    ? static_cast<int>(std::ceil(
                          static_cast<double>(p3_total_bytes) /
                          static_cast<double>(options_.enclosure_capacity)))
                    : 0;
  int n_hot = std::max({by_iops, by_size, min_n_hot});
  n_hot = std::min(n_hot, n);
  partition.n_hot = n_hot;

  // Paper §IV-C Step 3: hot = the n_hot enclosures richest in P3 bytes.
  // Only the top-n_hot *set* matters (the prefix is never ordered again),
  // and the comparator below is a strict total order — bytes descending
  // with the enclosure id breaking ties exactly as the historical
  // stable_sort did — so nth_element selects the identical set in O(n)
  // instead of O(n log n).
  if (n_hot > 0 && n_hot < n) {
    std::vector<int>& order = order_scratch_;
    order.resize(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    auto hotter = [&](int a, int b) {
      int64_t ba = p3_bytes[static_cast<size_t>(a)];
      int64_t bb = p3_bytes[static_cast<size_t>(b)];
      if (ba != bb) return ba > bb;
      return a < b;
    };
    std::nth_element(order.begin(), order.begin() + n_hot, order.end(),
                     hotter);
    for (int i = 0; i < n_hot; ++i) {
      partition.is_hot[static_cast<size_t>(order[static_cast<size_t>(i)])] =
          true;
    }
  } else if (n_hot >= n) {
    partition.is_hot.assign(static_cast<size_t>(n), true);
  }
  return partition;
}

}  // namespace ecostore::core
