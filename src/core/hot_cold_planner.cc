#include "core/hot_cold_planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ecostore::core {

HotColdPartition HotColdPlanner::Plan(
    const ClassificationResult& classification,
    const storage::BlockVirtualization& virt, int min_n_hot) const {
  int n = virt.num_enclosures();
  HotColdPartition partition;
  partition.is_hot.assign(static_cast<size_t>(n), false);

  // Per-enclosure total size of resident P3 items, and global P3 totals.
  std::vector<int64_t> p3_bytes(static_cast<size_t>(n), 0);
  int64_t p3_total_bytes = 0;
  for (const ItemClassification& cls : classification.items) {
    if (cls.pattern != IoPattern::kP3) continue;
    EnclosureId enc = virt.EnclosureOf(cls.item);
    p3_bytes[static_cast<size_t>(enc)] += cls.size_bytes;
    p3_total_bytes += cls.size_bytes;
  }

  // Paper §IV-C Step 2.
  int by_iops = static_cast<int>(
      std::ceil(classification.p3_max_iops / options_.max_enclosure_iops));
  int by_size = options_.enclosure_capacity > 0
                    ? static_cast<int>(std::ceil(
                          static_cast<double>(p3_total_bytes) /
                          static_cast<double>(options_.enclosure_capacity)))
                    : 0;
  int n_hot = std::max({by_iops, by_size, min_n_hot});
  n_hot = std::min(n_hot, n);
  partition.n_hot = n_hot;

  // Paper §IV-C Step 3: hot = the n_hot enclosures richest in P3 bytes.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return p3_bytes[static_cast<size_t>(a)] > p3_bytes[static_cast<size_t>(b)];
  });
  for (int i = 0; i < n_hot; ++i) {
    partition.is_hot[static_cast<size_t>(order[static_cast<size_t>(i)])] =
        true;
  }
  return partition;
}

}  // namespace ecostore::core
