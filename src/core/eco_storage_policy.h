#ifndef ECOSTORE_CORE_ECO_STORAGE_POLICY_H_
#define ECOSTORE_CORE_ECO_STORAGE_POLICY_H_

#include <array>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/power_management.h"
#include "policies/storage_policy.h"

namespace ecostore::core {

/// \brief The proposed application-collaborative power-saving method as a
/// runnable policy (paper §II-§V).
///
/// At each monitoring-period end it runs the PowerManagementFunction and
/// enacts the plan through the actuator: background migrations (paper
/// §V-A), write-delay and preload cache assignments (§V-B/C), spin-down
/// permission for cold enclosures only (§IV-G), and the adapted next
/// period (§IV-H). Between periods it watches for sudden I/O-pattern
/// changes (§V-D) and re-triggers the management function immediately.
class EcoStoragePolicy : public policies::StoragePolicy {
 public:
  explicit EcoStoragePolicy(const PowerManagementConfig& config)
      : config_(config) {}

  std::string name() const override { return "proposed"; }
  SimDuration initial_period() const override {
    return config_.initial_period;
  }

  void Start(const storage::StorageSystem& system,
             policies::PolicyActuator* actuator) override;

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          policies::PolicyActuator* actuator) override;

  void OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                    SimDuration gap) override;
  void OnPowerOn(EnclosureId enclosure, SimTime at) override;

  int64_t placement_determinations() const override {
    return placement_determinations_;
  }

  /// With a streaming sink attached the captured trace is never read —
  /// the engine may release the per-period buffer (DESIGN.md §13).
  bool wants_logical_trace() const override { return !streaming_; }

  /// Whether Start() attached the classifier to the monitor's I/O stream.
  bool streaming_active() const { return streaming_; }

  /// High-water mark of the streaming classifier's running state in
  /// bytes (per-item states, P3 bucket pool, pattern/dirty tables) — the
  /// fleet-scale replacement for the per-period trace buffer.
  size_t classifier_peak_state_bytes() const {
    return function_ != nullptr
               ? function_->classifier()->peak_state_bytes()
               : 0;
  }

  /// Pattern mix of each completed period (for the Fig. 6 bench and the
  /// §VI-C stability analysis).
  const std::vector<std::array<int64_t, kNumIoPatterns>>& pattern_history()
      const {
    return pattern_history_;
  }

  /// The most recent plan (inspection/testing).
  const ManagementPlan& last_plan() const { return last_plan_; }

  /// How many period ends took the incremental re-plan path, and how many
  /// of those skipped placement entirely (DESIGN.md §12).
  int64_t incremental_replans() const { return incremental_replans_; }
  int64_t placements_skipped() const { return placements_skipped_; }

 private:
  PowerManagementConfig config_;
  std::unique_ptr<PowerManagementFunction> function_;
  policies::PolicyActuator* actuator_ = nullptr;

  SimDuration current_period_ = 0;
  SimTime period_start_ = 0;
  bool triggered_this_period_ = false;
  /// Classifier ingests via the monitor sink (set in Start()).
  bool streaming_ = false;

  /// Latest hot/cold view for the §V-D triggers.
  std::vector<bool> is_hot_;
  std::vector<int64_t> cold_power_on_counts_;

  /// Previous cache selections, kept sticky across periods (paper §V-C).
  /// prev_write_delay_ is maintained sorted by item id: persistent policy
  /// state must not depend on hash-set iteration order. prev_preload_
  /// keeps enact order (it drives the preload I/O sequence).
  std::vector<DataItemId> prev_write_delay_;
  std::vector<std::pair<DataItemId, int64_t>> prev_preload_;

  ManagementPlan last_plan_;
  int64_t placement_determinations_ = 0;
  int64_t incremental_replans_ = 0;
  int64_t placements_skipped_ = 0;
  std::vector<std::array<int64_t, kNumIoPatterns>> pattern_history_;

  /// Per-period scratch, member-owned so steady state allocates nothing.
  std::vector<DataItemId> wd_fresh_scratch_;
  std::vector<DataItemId> wd_carry_scratch_;
  std::unordered_set<DataItemId> wd_actuator_scratch_;
  std::vector<std::pair<DataItemId, int64_t>> preload_scratch_;
  std::vector<DataItemId> fresh_ids_scratch_;
  std::vector<DataItemId> preload_ids_scratch_;
  std::vector<std::pair<DataItemId, EnclosureId>> migration_target_scratch_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_ECO_STORAGE_POLICY_H_
