#ifndef ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
#define ECOSTORE_CORE_PATTERN_CLASSIFIER_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "core/interval_analysis.h"
#include "core/io_pattern.h"
#include "storage/data_item.h"
#include "trace/trace_buffer.h"

namespace ecostore::core {

/// Classification and period statistics of one data item.
struct ItemClassification {
  DataItemId item = kInvalidDataItem;
  IoPattern pattern = IoPattern::kP0;
  int64_t size_bytes = 0;

  /// I/O counts within the item's I/O Sequences (== all its I/Os).
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;

  /// Number of I/O Sequences (paper §IV-B): one starts at the item's
  /// first I/O of the period and after every Long Interval. 0 for an
  /// untouched item.
  int64_t io_sequences = 0;

  /// Mean IOPS of the item over the full period.
  double avg_iops = 0.0;

  std::vector<SimDuration> long_intervals;

  int64_t total_ios() const { return reads + writes; }
};

/// Result of classifying one monitoring period.
struct ClassificationResult {
  /// One entry per catalog item (items with no I/O appear as P0).
  std::vector<ItemClassification> items;

  /// Count of items per pattern (index by IoPattern).
  std::array<int64_t, kNumIoPatterns> pattern_counts = {0, 0, 0, 0};

  /// Maximum over time buckets of the aggregate IOPS of all P3 items:
  /// I_max of paper §IV-C Step 1.
  double p3_max_iops = 0.0;

  /// Mean of all items' Long Intervals (input of the monitoring-period
  /// adaptation, paper §IV-H); 0 when no Long Intervals were observed.
  SimDuration mean_long_interval = 0;

  double PatternFraction(IoPattern p) const {
    int64_t total = 0;
    for (int64_t c : pattern_counts) total += c;
    return total > 0 ? static_cast<double>(
                           pattern_counts[static_cast<size_t>(p)]) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// \brief Determines the Logical I/O Pattern of every data item from one
/// monitoring period's logical trace (paper §IV-B).
///
/// Classification runs at the end of every monitoring period, so its cost
/// is continuous monitoring overhead (paper §III-A, §VII-D). The period's
/// Long Intervals and I/O Sequences are therefore derived in ONE
/// streaming pass over the time-ordered trace against per-item running
/// state (last I/O time, counters) held in a scratch that is reused
/// across periods — the classifier never materialises a per-item copy of
/// the trace, so the hot path is allocation-free once warm (only the
/// returned result allocates). A second, branch-light pass accumulates
/// the P3 IOPS series for I_max. Consequently a PatternClassifier
/// instance is NOT safe for concurrent Classify calls; parallel
/// experiments each own their classifier (see DESIGN.md, "Threading
/// model & determinism").
class PatternClassifier {
 public:
  struct Options {
    /// Break-even time of the enclosures (paper Table II: 52 s).
    SimDuration break_even = 52 * kSecond;
    /// Bucket width for the aggregate P3 IOPS series used for I_max.
    SimDuration iops_bucket = 1 * kSecond;
  };

  explicit PatternClassifier(const Options& options) : options_(options) {}

  const Options& options() const { return options_; }

  ClassificationResult Classify(const trace::LogicalTraceBuffer& buffer,
                                const storage::DataItemCatalog& catalog,
                                SimTime period_start,
                                SimTime period_end) const;

 private:
  /// Per-item running state of the streaming pass. Kept compact (40
  /// bytes) so the whole per-item working set stays cache-resident while
  /// the pass scatters into it.
  struct ItemState {
    SimTime last_time = 0;  ///< previous I/O time (period start initially)
    int32_t reads = 0;
    int32_t writes = 0;
    int32_t sequences = 0;  ///< I/O Sequences started so far
    int64_t read_bytes = 0;
    int64_t write_bytes = 0;
  };

  /// Reusable per-period working set (allocation-free once warm).
  struct Scratch {
    std::vector<ItemState> state;  ///< one slot per catalog item
    std::vector<uint8_t> is_p3;    ///< per item: pattern == P3 flag
  };

  Options options_;
  mutable Scratch scratch_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
