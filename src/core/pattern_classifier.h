#ifndef ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
#define ECOSTORE_CORE_PATTERN_CLASSIFIER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "core/interval_analysis.h"
#include "core/io_pattern.h"
#include "monitor/io_sink.h"
#include "storage/data_item.h"
#include "trace/trace_buffer.h"

namespace ecostore {
class ThreadPool;
}  // namespace ecostore

namespace ecostore::core {

/// Classification and period statistics of one data item. Plain data —
/// a quiet item carries no heap allocation, so a fleet-scale result is
/// one flat array (DESIGN.md §13).
struct ItemClassification {
  DataItemId item = kInvalidDataItem;
  IoPattern pattern = IoPattern::kP0;
  int64_t size_bytes = 0;

  /// I/O counts within the item's I/O Sequences (== all its I/Os).
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;

  /// Number of I/O Sequences (paper §IV-B): one starts at the item's
  /// first I/O of the period and after every Long Interval. 0 for an
  /// untouched item.
  int64_t io_sequences = 0;

  /// Mean IOPS of the item over the full period.
  double avg_iops = 0.0;

  /// Number of Long Intervals observed (an untouched item has exactly
  /// one, spanning the whole period). The interval values themselves are
  /// folded into ClassificationResult::mean_long_interval.
  int64_t long_interval_count = 0;

  int64_t total_ios() const { return reads + writes; }
};

/// Result of classifying one monitoring period.
struct ClassificationResult {
  /// One entry per catalog item (items with no I/O appear as P0).
  std::vector<ItemClassification> items;

  /// Count of items per pattern (index by IoPattern).
  std::array<int64_t, kNumIoPatterns> pattern_counts = {0, 0, 0, 0};

  /// Maximum over time buckets of the aggregate IOPS of all P3 items:
  /// I_max of paper §IV-C Step 1.
  double p3_max_iops = 0.0;

  /// Mean of all items' Long Intervals (input of the monitoring-period
  /// adaptation, paper §IV-H); 0 when no Long Intervals were observed.
  SimDuration mean_long_interval = 0;

  double PatternFraction(IoPattern p) const {
    int64_t total = 0;
    for (int64_t c : pattern_counts) total += c;
    return total > 0 ? static_cast<double>(
                           pattern_counts[static_cast<size_t>(p)]) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// \brief Streaming determination of the Logical I/O Pattern of every data
/// item over one monitoring period (paper §IV-B, DESIGN.md §13).
///
/// Classification runs continuously: interval analysis is folded into
/// ingest, so each logical I/O updates a compact per-item running state
/// (Long-Interval count/sum, I/O-Sequence count, byte counters) the moment
/// the monitor observes it — either through the ApplicationMonitor sink
/// (OnLogicalIo) or by replaying a captured trace buffer (Classify). The
/// period end therefore only finalises trailing intervals, buckets the P3
/// IOPS series for I_max, and emits the result — and no per-period trace
/// needs to be retained.
///
/// The result table is owned by the classifier and maintained
/// incrementally: a quiet item's row has no field that depends on the
/// period (counters zero, one full-period Long Interval, avg_iops 0, size
/// from the immutable catalog entry), so rows are written once and a
/// period end only rewrites the *frontier* — items touched this period
/// plus items still carrying last period's activity. The untouched
/// remainder contributes to the aggregates in closed form (all integral,
/// so regrouping is exact). Period-end cost thus scales with activity,
/// not catalog size.
///
/// Finalisation is sharded by contiguous slices of the (item-ordered)
/// frontier across a common::ThreadPool with a deterministic item-ordered
/// merge (the ShardedExperiment discipline):
/// every cross-shard reduction is integral, so the result is bit-identical
/// for any shard or worker count, and bit-identical to the pre-streaming
/// classifier preserved in bench/legacy_classifier.h (the differential
/// oracle).
///
/// Across periods the classifier keeps the previous pattern table and
/// emits the dirty set — items whose pattern changed, which includes
/// newly-quiet P3s — feeding the incremental re-plan without an O(catalog)
/// diff in the management function.
///
/// Not safe for concurrent ingest; one instance serves one experiment
/// (see DESIGN.md §5).
class PatternClassifier : public monitor::LogicalIoSink {
 public:
  struct Options {
    /// Break-even time of the enclosures (paper Table II: 52 s).
    SimDuration break_even = 52 * kSecond;
    /// Bucket width for the aggregate P3 IOPS series used for I_max.
    SimDuration iops_bucket = 1 * kSecond;
    /// Finalisation shard count; 0 picks one shard per
    /// `items_per_shard` frontier items (serial below one shard's worth).
    /// Any value yields bit-identical results.
    int finalize_shards = 0;
    /// Auto-sharding granularity.
    int64_t items_per_shard = 1 << 17;
  };

  explicit PatternClassifier(const Options& options);
  ~PatternClassifier() override;

  const Options& options() const { return options_; }

  // --- Streaming interface ---

  /// Starts a new monitoring period at `period_start`. Per-item state is
  /// invalidated lazily (epoch-stamped), so this is O(1) in the catalog.
  void BeginPeriod(SimTime period_start);

  /// Ingests one logical I/O of the current period (monitor sink entry
  /// point). Records must arrive in non-decreasing time order per item.
  void OnLogicalIo(const trace::LogicalIoRecord& rec) override;

  /// Finalises the current period at `period_end`: trailing intervals,
  /// patterns, P3 I_max, mean Long Interval, dirty set. Returns the
  /// classifier-owned result table (valid until the next Finalize; one
  /// flat row per catalog item). Does not start the next period — call
  /// BeginPeriod() afterwards. Idempotent over the same ingested state.
  const ClassificationResult& Finalize(const storage::DataItemCatalog& catalog,
                                       SimTime period_end);

  /// Snapshot variant: finalises and copies the result into `result`.
  /// O(catalog) for the copy — tests and small-scale callers only.
  void Finalize(const storage::DataItemCatalog& catalog, SimTime period_end,
                ClassificationResult* result);

  // --- Replay convenience (tests, policies without a sink attachment) ---

  /// BeginPeriod + ingest of `buffer` + Finalize in one call. Replaces
  /// any in-flight streaming period.
  ClassificationResult Classify(const trace::LogicalTraceBuffer& buffer,
                                const storage::DataItemCatalog& catalog,
                                SimTime period_start, SimTime period_end);

  // --- Cross-period dirty tracking ---

  /// True once a previous period's pattern table (of the same catalog
  /// size) exists, i.e. dirty_items() is meaningful.
  bool has_previous() const { return has_previous_; }

  /// Items whose pattern changed in the last Finalize() relative to the
  /// period before, ascending by id. Empty when !has_previous().
  const std::vector<DataItemId>& dirty_items() const { return dirty_; }

  /// Pattern table of the last Finalize() (IoPattern as uint8_t, indexed
  /// by item id).
  const std::vector<uint8_t>& patterns() const { return prev_patterns_; }

  // --- Introspection ---

  SimTime period_start() const { return period_start_; }
  int64_t ingested() const { return ingested_; }

  /// Bytes of classifier-owned running state right now (per-item states,
  /// P3 bucket chunk pool, pattern table, dirty list).
  size_t state_bytes() const;
  /// High-water mark of state_bytes() over the classifier's lifetime.
  size_t peak_state_bytes() const { return peak_state_bytes_; }

 private:
  /// Per-item running state, updated per ingested I/O. 64 bytes: the
  /// whole fleet working set stays one cache line per item.
  struct ItemState {
    SimTime last_time = 0;        ///< previous I/O time
    int64_t read_bytes = 0;
    int64_t write_bytes = 0;
    int64_t long_interval_sum = 0;  ///< µs; exact in int64
    int32_t reads = 0;
    int32_t writes = 0;
    int32_t sequences = 0;        ///< I/O Sequences started so far
    int32_t long_intervals = 0;   ///< Long Intervals closed so far
    int32_t chunk_head = -1;      ///< P3-candidate bucket run list
    int32_t chunk_tail = -1;
    uint32_t epoch = 0;           ///< valid iff == epoch_
  };

  /// Chunk of (bucket, count) runs for one P3 candidate's IOPS series.
  /// Consecutive I/Os in one bucket extend the tail run, so storage is
  /// bounded by bucket transitions, not I/Os.
  struct IopsChunk {
    static constexpr int kEntries = 6;
    int32_t next = -1;
    int32_t n = 0;
    int32_t bucket[kEntries];
    int32_t count[kEntries];
  };

  /// Deterministic per-shard reduction, merged in item/shard order.
  struct ShardAccum {
    std::array<int64_t, kNumIoPatterns> pattern_counts = {0, 0, 0, 0};
    int64_t long_interval_sum = 0;
    int64_t long_interval_count = 0;
    bool any_p3 = false;
    std::vector<DataItemId> dirty;
    std::vector<int64_t> p3_buckets;
  };

  ItemState& StateFor(size_t idx);
  void AppendBucket(ItemState* st, int64_t bucket);
  void ReleaseChunks(ItemState* st);
  void WriteQuietRow(size_t i, const storage::DataItemCatalog& catalog);
  void FinalizeRange(const size_t* idxs, size_t count, SimTime period_end,
                     double period_seconds, size_t n_buckets,
                     bool track_dirty, ShardAccum* accum);
  void NotePeak();

  Options options_;
  SimTime period_start_ = 0;
  uint32_t epoch_ = 0;
  int64_t ingested_ = 0;

  std::vector<ItemState> state_;
  std::vector<IopsChunk> pool_;
  int32_t free_head_ = -1;

  bool has_previous_ = false;
  std::vector<uint8_t> prev_patterns_;
  std::vector<DataItemId> dirty_;

  /// Persistent result table (see class comment): rows beyond the
  /// frontier are quiet and carried verbatim across periods.
  ClassificationResult result_;
  size_t init_items_ = 0;          ///< rows [0, init_items_) initialised
  std::vector<size_t> touched_;    ///< first-touch item indices, this period
  std::vector<size_t> resident_;   ///< sorted: rows currently non-quiet
  std::vector<size_t> frontier_;   ///< scratch: touched ∪ resident, sorted

  std::vector<ShardAccum> shard_accums_;
  std::unique_ptr<ThreadPool> finalize_pool_;
  size_t peak_state_bytes_ = 0;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
