#ifndef ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
#define ECOSTORE_CORE_PATTERN_CLASSIFIER_H_

#include <array>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "core/interval_analysis.h"
#include "core/io_pattern.h"
#include "storage/data_item.h"
#include "trace/trace_buffer.h"

namespace ecostore::core {

/// Classification and period statistics of one data item.
struct ItemClassification {
  DataItemId item = kInvalidDataItem;
  IoPattern pattern = IoPattern::kP0;
  int64_t size_bytes = 0;

  /// I/O counts within the item's I/O Sequences (== all its I/Os).
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;

  /// Mean IOPS of the item over the full period.
  double avg_iops = 0.0;

  std::vector<SimDuration> long_intervals;

  int64_t total_ios() const { return reads + writes; }
};

/// Result of classifying one monitoring period.
struct ClassificationResult {
  /// One entry per catalog item (items with no I/O appear as P0).
  std::vector<ItemClassification> items;

  /// Count of items per pattern (index by IoPattern).
  std::array<int64_t, kNumIoPatterns> pattern_counts = {0, 0, 0, 0};

  /// Maximum over time buckets of the aggregate IOPS of all P3 items:
  /// I_max of paper §IV-C Step 1.
  double p3_max_iops = 0.0;

  /// Mean of all items' Long Intervals (input of the monitoring-period
  /// adaptation, paper §IV-H); 0 when no Long Intervals were observed.
  SimDuration mean_long_interval = 0;

  double PatternFraction(IoPattern p) const {
    int64_t total = 0;
    for (int64_t c : pattern_counts) total += c;
    return total > 0 ? static_cast<double>(
                           pattern_counts[static_cast<size_t>(p)]) /
                           static_cast<double>(total)
                     : 0.0;
  }
};

/// \brief Determines the Logical I/O Pattern of every data item from one
/// monitoring period's logical trace (paper §IV-B).
class PatternClassifier {
 public:
  struct Options {
    /// Break-even time of the enclosures (paper Table II: 52 s).
    SimDuration break_even = 52 * kSecond;
    /// Bucket width for the aggregate P3 IOPS series used for I_max.
    SimDuration iops_bucket = 1 * kSecond;
  };

  explicit PatternClassifier(const Options& options) : options_(options) {}

  const Options& options() const { return options_; }

  ClassificationResult Classify(const trace::LogicalTraceBuffer& buffer,
                                const storage::DataItemCatalog& catalog,
                                SimTime period_start,
                                SimTime period_end) const;

 private:
  Options options_;
};

}  // namespace ecostore::core

#endif  // ECOSTORE_CORE_PATTERN_CLASSIFIER_H_
