#ifndef ECOSTORE_TRACE_TRACE_STATS_H_
#define ECOSTORE_TRACE_TRACE_STATS_H_

#include <map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "trace/io_record.h"
#include "trace/trace_buffer.h"

namespace ecostore::trace {

/// Per-data-item aggregate over one monitoring period.
struct ItemPeriodStats {
  DataItemId item = kInvalidDataItem;
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t read_bytes = 0;
  int64_t write_bytes = 0;
  SimTime first_io = 0;
  SimTime last_io = 0;

  int64_t total_ios() const { return reads + writes; }
  double read_ratio() const {
    int64_t t = total_ios();
    return t > 0 ? static_cast<double>(reads) / static_cast<double>(t) : 0.0;
  }
};

/// \brief Time-bucketed IOPS series for a set of items, used to compute
/// I_max in the hot/cold planner (paper §IV-C Step 1).
///
/// Buckets are fixed-width spans of `bucket_width`; Ips(bucket) is the
/// number of I/Os in the bucket divided by the bucket width in seconds.
class IopsSeries {
 public:
  IopsSeries(SimTime start, SimTime end, SimDuration bucket_width);

  void Add(SimTime t, int64_t ios = 1);

  /// Equivalent to Add() for any input, but optimised for times arriving
  /// in (mostly) non-decreasing order: an internal bucket cursor advances
  /// instead of dividing, and only a backward time jump falls back to
  /// Add()'s division. Bulk-loading a time-ordered trace therefore costs
  /// no 64-bit division per event.
  void AddOrdered(SimTime t, int64_t ios = 1);

  void Merge(const IopsSeries& other);

  size_t bucket_count() const { return counts_.size(); }
  SimDuration bucket_width() const { return bucket_width_; }

  /// IOPS of one bucket.
  double IopsAt(size_t bucket) const;

  /// Maximum bucket IOPS across the series (0 when empty).
  double MaxIops() const;

  /// Mean IOPS over the whole [start, end) span.
  double AverageIops() const;

 private:
  SimTime start_;
  SimDuration bucket_width_;
  std::vector<int64_t> counts_;
  /// AddOrdered() cursor: current bucket and its exclusive end time.
  size_t cursor_ = 0;
  SimTime cursor_end_ = 0;
};

/// Computes per-item aggregates from a logical trace buffer.
std::map<DataItemId, ItemPeriodStats> ComputeItemStats(
    const LogicalTraceBuffer& buffer);

/// Extracts, for one item's I/O timestamps within [period_start,
/// period_end], the list of inter-I/O gaps including the leading gap
/// (period_start → first I/O) and trailing gap (last I/O → period_end).
/// `times` must be sorted. An empty `times` yields one gap spanning the
/// whole period.
std::vector<SimDuration> ExtractGaps(const std::vector<SimTime>& times,
                                     SimTime period_start,
                                     SimTime period_end);

}  // namespace ecostore::trace

#endif  // ECOSTORE_TRACE_TRACE_STATS_H_
