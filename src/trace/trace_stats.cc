#include "trace/trace_stats.h"

#include <algorithm>
#include <cassert>

namespace ecostore::trace {

IopsSeries::IopsSeries(SimTime start, SimTime end, SimDuration bucket_width)
    : start_(start), bucket_width_(bucket_width) {
  assert(end >= start);
  assert(bucket_width > 0);
  size_t buckets =
      static_cast<size_t>((end - start + bucket_width - 1) / bucket_width);
  counts_.assign(std::max<size_t>(buckets, 1), 0);
  cursor_end_ = start_ + bucket_width_;
}

void IopsSeries::AddOrdered(SimTime t, int64_t ios) {
  if (t < start_) return;
  if (t < cursor_end_ - bucket_width_) {
    // Backward jump before the cursor's bucket: recompute by division,
    // exactly as Add() does.
    size_t bucket = static_cast<size_t>((t - start_) / bucket_width_);
    if (bucket >= counts_.size()) bucket = counts_.size() - 1;
    cursor_ = bucket;
    cursor_end_ =
        start_ + static_cast<SimDuration>(bucket + 1) * bucket_width_;
  } else {
    while (t >= cursor_end_ && cursor_ + 1 < counts_.size()) {
      cursor_++;
      cursor_end_ += bucket_width_;
    }
  }
  counts_[cursor_] += ios;
}

void IopsSeries::Add(SimTime t, int64_t ios) {
  if (t < start_) return;
  size_t bucket = static_cast<size_t>((t - start_) / bucket_width_);
  if (bucket >= counts_.size()) bucket = counts_.size() - 1;
  counts_[bucket] += ios;
}

void IopsSeries::Merge(const IopsSeries& other) {
  assert(bucket_width_ == other.bucket_width_);
  assert(start_ == other.start_);
  size_t n = std::min(counts_.size(), other.counts_.size());
  for (size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
}

double IopsSeries::IopsAt(size_t bucket) const {
  assert(bucket < counts_.size());
  return static_cast<double>(counts_[bucket]) / ToSeconds(bucket_width_);
}

double IopsSeries::MaxIops() const {
  int64_t best = 0;
  for (int64_t c : counts_) best = std::max(best, c);
  return static_cast<double>(best) / ToSeconds(bucket_width_);
}

double IopsSeries::AverageIops() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  double span_seconds =
      ToSeconds(bucket_width_) * static_cast<double>(counts_.size());
  return span_seconds > 0 ? static_cast<double>(total) / span_seconds : 0.0;
}

std::map<DataItemId, ItemPeriodStats> ComputeItemStats(
    const LogicalTraceBuffer& buffer) {
  std::map<DataItemId, ItemPeriodStats> stats;
  for (const LogicalIoRecord& rec : buffer.records()) {
    ItemPeriodStats& s = stats[rec.item];
    if (s.total_ios() == 0) {
      s.item = rec.item;
      s.first_io = rec.time;
    }
    s.last_io = rec.time;
    if (rec.is_read()) {
      s.reads++;
      s.read_bytes += rec.size;
    } else {
      s.writes++;
      s.write_bytes += rec.size;
    }
  }
  return stats;
}

std::vector<SimDuration> ExtractGaps(const std::vector<SimTime>& times,
                                     SimTime period_start,
                                     SimTime period_end) {
  assert(period_end >= period_start);
  std::vector<SimDuration> gaps;
  if (times.empty()) {
    gaps.push_back(period_end - period_start);
    return gaps;
  }
  assert(std::is_sorted(times.begin(), times.end()));
  gaps.reserve(times.size() + 1);
  gaps.push_back(times.front() - period_start);
  for (size_t i = 1; i < times.size(); ++i) {
    gaps.push_back(times[i] - times[i - 1]);
  }
  gaps.push_back(period_end - times.back());
  return gaps;
}

}  // namespace ecostore::trace
