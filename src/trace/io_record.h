#ifndef ECOSTORE_TRACE_IO_RECORD_H_
#define ECOSTORE_TRACE_IO_RECORD_H_

#include <cstdint>

#include "common/sim_time.h"
#include "common/types.h"

namespace ecostore::trace {

/// \brief One application-level (logical) I/O request (paper §III-A).
///
/// Carries the timestamp of issue, the data item touched, the offset within
/// the item, the transfer size, and the direction. `sequential` is a replay
/// hint for the enclosure service-time model (sequential streams sustain
/// higher IOPS). `tag` carries workload-specific context, e.g. the TPC-H
/// query number, used by the application performance model; it does not
/// influence storage behaviour.
struct LogicalIoRecord {
  SimTime time = 0;
  DataItemId item = kInvalidDataItem;
  int64_t offset = 0;
  int32_t size = 0;
  IoType type = IoType::kRead;
  bool sequential = false;
  int32_t tag = 0;

  bool is_read() const { return type == IoType::kRead; }
  bool is_write() const { return type == IoType::kWrite; }
};

/// \brief One block-level (physical) I/O executed against a disk enclosure
/// (paper §III-B), as observed below the block-virtualization layer.
struct PhysicalIoRecord {
  SimTime time = 0;
  EnclosureId enclosure = kInvalidEnclosure;
  int64_t block = 0;
  int32_t size = 0;
  IoType type = IoType::kRead;
  bool sequential = false;

  bool is_read() const { return type == IoType::kRead; }
  bool is_write() const { return type == IoType::kWrite; }
};

}  // namespace ecostore::trace

#endif  // ECOSTORE_TRACE_IO_RECORD_H_
