#ifndef ECOSTORE_TRACE_TRACE_CSV_H_
#define ECOSTORE_TRACE_TRACE_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "trace/io_record.h"

namespace ecostore::trace {

/// Writes logical I/O records as CSV with a header row
/// (`time_us,item,offset,size,type,sequential,tag`).
Status WriteLogicalCsv(std::ostream& out,
                       const std::vector<LogicalIoRecord>& records);

/// Parses logical I/O records from CSV produced by WriteLogicalCsv.
/// Tolerates a missing header row. Fails on malformed rows.
Result<std::vector<LogicalIoRecord>> ReadLogicalCsv(std::istream& in);

/// Convenience file wrappers.
Status WriteLogicalCsvFile(const std::string& path,
                           const std::vector<LogicalIoRecord>& records);
Result<std::vector<LogicalIoRecord>> ReadLogicalCsvFile(
    const std::string& path);

}  // namespace ecostore::trace

#endif  // ECOSTORE_TRACE_TRACE_CSV_H_
