#include "trace/trace_buffer.h"

namespace ecostore::trace {

std::unordered_map<DataItemId, std::vector<size_t>>
LogicalTraceBuffer::GroupByItem() const {
  std::unordered_map<DataItemId, std::vector<size_t>> groups;
  for (size_t i = 0; i < records_.size(); ++i) {
    groups[records_[i].item].push_back(i);
  }
  return groups;
}

}  // namespace ecostore::trace
