#include "trace/trace_csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>

namespace ecostore::trace {

namespace {

constexpr std::string_view kHeader = "time_us,item,offset,size,type,sequential,tag";

bool ParseInt(std::string_view field, int64_t* out) {
  auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), *out);
  return ec == std::errc() && ptr == field.data() + field.size();
}

// Splits a CSV line into exactly `n` comma-separated fields.
bool SplitFields(std::string_view line, std::string_view* fields, size_t n) {
  size_t start = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t comma = line.find(',', start);
    bool last = (i == n - 1);
    if (last) {
      if (comma != std::string_view::npos) return false;  // too many fields
      fields[i] = line.substr(start);
    } else {
      if (comma == std::string_view::npos) return false;  // too few fields
      fields[i] = line.substr(start, comma - start);
      start = comma + 1;
    }
  }
  return true;
}

}  // namespace

Status WriteLogicalCsv(std::ostream& out,
                       const std::vector<LogicalIoRecord>& records) {
  out << kHeader << '\n';
  for (const LogicalIoRecord& r : records) {
    out << r.time << ',' << r.item << ',' << r.offset << ',' << r.size << ','
        << IoTypeName(r.type) << ',' << (r.sequential ? 1 : 0) << ',' << r.tag
        << '\n';
  }
  if (!out.good()) return Status::IoError("write failed");
  return Status::OK();
}

Result<std::vector<LogicalIoRecord>> ReadLogicalCsv(std::istream& in) {
  std::vector<LogicalIoRecord> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    line_no++;
    if (line.empty()) continue;
    if (line_no == 1 && line == kHeader) continue;
    std::string_view fields[7];
    if (!SplitFields(line, fields, 7)) {
      return Status::IoError("malformed CSV row at line " +
                             std::to_string(line_no));
    }
    LogicalIoRecord rec;
    int64_t v = 0;
    if (!ParseInt(fields[0], &v)) {
      return Status::IoError("bad time at line " + std::to_string(line_no));
    }
    rec.time = v;
    if (!ParseInt(fields[1], &v)) {
      return Status::IoError("bad item at line " + std::to_string(line_no));
    }
    rec.item = static_cast<DataItemId>(v);
    if (!ParseInt(fields[2], &v)) {
      return Status::IoError("bad offset at line " + std::to_string(line_no));
    }
    rec.offset = v;
    if (!ParseInt(fields[3], &v)) {
      return Status::IoError("bad size at line " + std::to_string(line_no));
    }
    rec.size = static_cast<int32_t>(v);
    if (fields[4] == "R") {
      rec.type = IoType::kRead;
    } else if (fields[4] == "W") {
      rec.type = IoType::kWrite;
    } else {
      return Status::IoError("bad type at line " + std::to_string(line_no));
    }
    if (!ParseInt(fields[5], &v) || (v != 0 && v != 1)) {
      return Status::IoError("bad sequential flag at line " +
                             std::to_string(line_no));
    }
    rec.sequential = (v == 1);
    if (!ParseInt(fields[6], &v)) {
      return Status::IoError("bad tag at line " + std::to_string(line_no));
    }
    rec.tag = static_cast<int32_t>(v);
    records.push_back(rec);
  }
  return records;
}

Status WriteLogicalCsvFile(const std::string& path,
                           const std::vector<LogicalIoRecord>& records) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return WriteLogicalCsv(out, records);
}

Result<std::vector<LogicalIoRecord>> ReadLogicalCsvFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ReadLogicalCsv(in);
}

}  // namespace ecostore::trace
