#ifndef ECOSTORE_TRACE_TRACE_BUFFER_H_
#define ECOSTORE_TRACE_TRACE_BUFFER_H_

#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "trace/io_record.h"

namespace ecostore::trace {

/// \brief Append-only buffer of logical I/O records for one monitoring
/// period (the Application Monitor's in-memory repository, paper §III-A).
///
/// Records must be appended in non-decreasing time order; the classifier
/// and statistics helpers rely on that ordering.
class LogicalTraceBuffer {
 public:
  void Append(const LogicalIoRecord& rec) { records_.push_back(rec); }

  /// Empties the buffer for the next period while KEEPING the backing
  /// storage, so a steady-state workload appends without reallocating:
  /// after the first few periods the monitor's record-capture hot path is
  /// allocation-free.
  void Clear() { records_.clear(); }

  /// Pre-grows the backing storage (e.g. to an expected period volume).
  void Reserve(size_t n) { records_.reserve(n); }

  const std::vector<LogicalIoRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  size_t capacity() const { return records_.capacity(); }
  bool empty() const { return records_.empty(); }

  /// Groups record indices by data item. Order within each group follows
  /// trace (time) order.
  std::unordered_map<DataItemId, std::vector<size_t>> GroupByItem() const;

 private:
  std::vector<LogicalIoRecord> records_;
};

/// \brief Append-only buffer of physical I/O records for one monitoring
/// period (the Storage Monitor's repository, paper §III-B).
class PhysicalTraceBuffer {
 public:
  void Append(const PhysicalIoRecord& rec) { records_.push_back(rec); }

  /// Empties the buffer, keeping capacity (see LogicalTraceBuffer::Clear).
  void Clear() { records_.clear(); }

  /// Pre-grows the backing storage.
  void Reserve(size_t n) { records_.reserve(n); }

  const std::vector<PhysicalIoRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

 private:
  std::vector<PhysicalIoRecord> records_;
};

}  // namespace ecostore::trace

#endif  // ECOSTORE_TRACE_TRACE_BUFFER_H_
