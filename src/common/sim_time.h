#ifndef ECOSTORE_COMMON_SIM_TIME_H_
#define ECOSTORE_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace ecostore {

/// Simulated time, in microseconds since the start of the simulation.
///
/// All timestamps inside the library are simulated; the library never reads
/// the wall clock. A plain integer alias (rather than std::chrono) keeps
/// trace records trivially copyable and serializable.
using SimTime = int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;

/// Converts a duration to fractional seconds.
inline constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Converts fractional seconds to a duration (rounds toward zero).
inline constexpr SimDuration FromSeconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond));
}

/// Renders a duration as a compact human-readable string, e.g. "1.5s",
/// "520s", "2h".
std::string FormatDuration(SimDuration d);

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_SIM_TIME_H_
