#include "common/sim_time.h"

#include <cstdio>

namespace ecostore {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  double abs = d < 0 ? -static_cast<double>(d) : static_cast<double>(d);
  if (abs < kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(d));
  } else if (abs < kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3gms",
                  static_cast<double>(d) / kMillisecond);
  } else if (abs < kHour) {
    std::snprintf(buf, sizeof(buf), "%.4gs",
                  static_cast<double>(d) / kSecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gh",
                  static_cast<double>(d) / kHour);
  }
  return buf;
}

}  // namespace ecostore
