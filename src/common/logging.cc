#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace ecostore {

LogLevel Logger::threshold = LogLevel::kWarn;

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

Logger::Logger(LogLevel level, const char* file, int line)
    : enabled_(level >= threshold && level != LogLevel::kOff) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

Logger::~Logger() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace ecostore
