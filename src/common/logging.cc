#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace ecostore {

std::atomic<LogLevel> Logger::threshold{LogLevel::kWarn};

namespace {

/// Thread-local logging context. Each experiment worker binds its own
/// recorder and simulator, so the fast path needs no locks and threads
/// never observe another worker's sink.
thread_local LogSink* t_sink = nullptr;
thread_local Logger::SimTimeFn t_clock_fn = nullptr;
thread_local const void* t_clock_ctx = nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogSink* Logger::SetThreadSink(LogSink* sink) {
  LogSink* previous = t_sink;
  t_sink = sink;
  return previous;
}

void Logger::SetThreadSimClock(SimTimeFn fn, const void* ctx) {
  t_clock_fn = fn;
  t_clock_ctx = ctx;
}

Logger::Logger(LogLevel level, const char* file, int line)
    : enabled_(level >= threshold.load(std::memory_order_relaxed) &&
               level != LogLevel::kOff),
      file_(file),
      line_(line),
      level_(level) {}

Logger::~Logger() {
  if (!enabled_) return;
  if (t_sink != nullptr) {
    SimTime sim_time =
        t_clock_fn != nullptr ? t_clock_fn(t_clock_ctx) : SimTime{-1};
    t_sink->WriteLog(level_, sim_time, Basename(file_), line_,
                     stream_.str());
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace ecostore
