#ifndef ECOSTORE_COMMON_STATUS_H_
#define ECOSTORE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ecostore {

/// \brief Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCapacityExceeded,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kNotSupported,
};

/// \brief Returns a short human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Lightweight success/error value used across the library instead of
/// exceptions (RocksDB-style error model).
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Library functions that can fail return a
/// Status (or a Result<T> when they also produce a value); callers are
/// expected to check `ok()` before using any outputs.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCapacityExceeded() const {
    return code_ == StatusCode::kCapacityExceeded;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define ECOSTORE_RETURN_NOT_OK(expr)                 \
  do {                                               \
    ::ecostore::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_STATUS_H_
