#include "common/random.h"

#include <algorithm>

namespace ecostore {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Xoshiro256::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of the generator.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Xoshiro256::Next() {
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Xoshiro256::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = (~0ull) - (~0ull) % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Xoshiro256::Normal(double mean, double stddev) {
  // Box-Muller; one value per call keeps the generator stateless.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) *
             std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

double Xoshiro256::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(int64_t n, double theta) : n_(n), theta_(theta) {
  assert(n > 0);
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[static_cast<size_t>(i)] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

int64_t ZipfGenerator::Sample(Xoshiro256& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace ecostore
