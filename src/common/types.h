#ifndef ECOSTORE_COMMON_TYPES_H_
#define ECOSTORE_COMMON_TYPES_H_

#include <cstdint>

namespace ecostore {

/// Identifier of an application-level data item (a table, index, file or
/// work file fragment living wholly on one disk enclosure; paper §II-C.1).
using DataItemId = int32_t;

/// Identifier of a logical volume exposed by the block-virtualization layer.
using VolumeId = int32_t;

/// Identifier of a disk enclosure (the power-saving unit; paper §II-A).
using EnclosureId = int32_t;

inline constexpr DataItemId kInvalidDataItem = -1;
inline constexpr VolumeId kInvalidVolume = -1;
inline constexpr EnclosureId kInvalidEnclosure = -1;

/// Direction of an I/O request.
enum class IoType : uint8_t { kRead = 0, kWrite = 1 };

inline const char* IoTypeName(IoType t) {
  return t == IoType::kRead ? "R" : "W";
}

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_TYPES_H_
