#include "common/units.h"

#include <cstdio>

namespace ecostore {

std::string FormatBytes(int64_t bytes) {
  char buf[64];
  double b = static_cast<double>(bytes);
  if (bytes < kKiB) {
    std::snprintf(buf, sizeof(buf), "%lld B", static_cast<long long>(bytes));
  } else if (bytes < kMiB) {
    std::snprintf(buf, sizeof(buf), "%.3g KiB", b / kKiB);
  } else if (bytes < kGiB) {
    std::snprintf(buf, sizeof(buf), "%.3g MiB", b / kMiB);
  } else if (bytes < kTiB) {
    std::snprintf(buf, sizeof(buf), "%.4g GiB", b / kGiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g TiB", b / kTiB);
  }
  return buf;
}

}  // namespace ecostore
