#ifndef ECOSTORE_COMMON_THREAD_POOL_H_
#define ECOSTORE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ecostore {

/// \brief Fixed-size pool of worker threads with a single shared FIFO
/// queue.
///
/// Used to run independent (workload, policy) experiments concurrently
/// (replay::ParallelRunSuite). Tasks must not share mutable state unless
/// they synchronise it themselves; the pool only guarantees that a task
/// submitted before another is dequeued no later than it.
///
/// Exceptions thrown by a task are captured in the std::future returned by
/// Submit() and rethrown on future.get(); they never terminate a worker.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks that have not started are discarded;
  /// running tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. The future
  /// rethrows any exception `fn` raised.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    wake_.notify_one();
    return result;
  }

  /// Number of tasks queued but not yet started (diagnostic).
  size_t QueuedTasks() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_THREAD_POOL_H_
