#ifndef ECOSTORE_COMMON_THREAD_POOL_H_
#define ECOSTORE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ecostore {

/// \brief Fixed-size pool of worker threads with a single shared FIFO
/// queue.
///
/// Used to run independent (workload, policy) experiments concurrently
/// (replay::ParallelRunSuite). Tasks must not share mutable state unless
/// they synchronise it themselves; the pool only guarantees that a task
/// submitted before another is dequeued no later than it.
///
/// Exceptions thrown by a task are captured in the std::future returned by
/// Submit() and rethrown on future.get(); they never terminate a worker.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: pending tasks that have not started are discarded;
  /// running tasks are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn` and returns a future for its result. The future
  /// rethrows any exception `fn` raised.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
      if (static_cast<int64_t>(queue_.size()) > peak_queued_) {
        peak_queued_ = static_cast<int64_t>(queue_.size());
      }
    }
    wake_.notify_one();
    return result;
  }

  /// Number of tasks queued but not yet started (diagnostic).
  size_t QueuedTasks() const;

  /// One consistent snapshot of the pool's lifetime accounting. This is
  /// the single source of truth the engines publish as telemetry gauges
  /// and the wall-clock profiler folds into its capture meta — consumers
  /// must not re-derive utilization from their own task timing.
  struct Stats {
    int workers = 0;
    int64_t tasks_executed = 0;  ///< tasks completed (task() returned)
    int64_t queued = 0;          ///< tasks enqueued, not yet started
    int64_t peak_queued = 0;     ///< high-water queue depth since start
    int64_t busy_ns = 0;         ///< wall time workers spent inside tasks
  };
  Stats GetStats() const;

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  int64_t peak_queued_ = 0;  ///< guarded by mutex_ (updated in Submit)
  /// Relaxed atomics: workers accumulate outside the lock; two clock
  /// reads per task are noise against lane-advance-sized work items.
  std::atomic<int64_t> tasks_executed_{0};
  std::atomic<int64_t> busy_ns_{0};
  std::vector<std::thread> workers_;
};

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_THREAD_POOL_H_
