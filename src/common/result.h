#ifndef ECOSTORE_COMMON_RESULT_H_
#define ECOSTORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace ecostore {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// The usual usage pattern is:
/// \code
///   Result<Plan> plan = planner.Compute(snapshot);
///   if (!plan.ok()) return plan.status();
///   Use(plan.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit so functions can
  /// `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error status. `status.ok()` must be
  /// false.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in the error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define ECOSTORE_ASSIGN_OR_RETURN(lhs, expr)         \
  do {                                               \
    auto _res = (expr);                              \
    if (!_res.ok()) return _res.status();            \
    lhs = std::move(_res).value();                   \
  } while (false)

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_RESULT_H_
