#ifndef ECOSTORE_COMMON_RANDOM_H_
#define ECOSTORE_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ecostore {

/// \brief Deterministic xoshiro256** pseudo-random generator.
///
/// All randomness in the library flows through this generator so that every
/// experiment is bit-reproducible from its seed. The engine satisfies the
/// C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  /// Re-seeds the state via splitmix64 expansion of `seed`.
  void Seed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()() { return Next(); }

  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed value (Box-Muller).
  double Normal(double mean, double stddev);

  /// Log-normally distributed value with the given *median* and log-space
  /// sigma: exp(N(ln(median), sigma)).
  double LogNormal(double median, double sigma) {
    return median * std::exp(Normal(0.0, sigma));
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipf-distributed integer sampler over {0, ..., n-1}.
///
/// Rank 0 is the most popular. Uses the classical normalized-harmonic
/// inversion with a precomputed CDF; sampling is O(log n).
class ZipfGenerator {
 public:
  /// \param n number of distinct items (> 0)
  /// \param theta skew parameter (>= 0; 0 is uniform, ~0.99 is typical
  ///        for storage popularity distributions)
  ZipfGenerator(int64_t n, double theta);

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

  /// Samples an item rank in [0, n).
  int64_t Sample(Xoshiro256& rng) const;

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

/// \brief TPC-C NURand non-uniform random number generator.
///
/// NURand(A, x, y) = (((random(0,A) | random(x,y)) + C) % (y - x + 1)) + x
/// per TPC-C specification clause 2.1.6.
class NuRand {
 public:
  NuRand(int64_t a, int64_t x, int64_t y, int64_t c)
      : a_(a), x_(x), y_(y), c_(c) {
    assert(x <= y);
  }

  int64_t Sample(Xoshiro256& rng) const {
    int64_t r1 = rng.UniformInt(0, a_);
    int64_t r2 = rng.UniformInt(x_, y_);
    return (((r1 | r2) + c_) % (y_ - x_ + 1)) + x_;
  }

 private:
  int64_t a_;
  int64_t x_;
  int64_t y_;
  int64_t c_;
};

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_RANDOM_H_
