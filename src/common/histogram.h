#ifndef ECOSTORE_COMMON_HISTOGRAM_H_
#define ECOSTORE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecostore {

/// \brief Log-bucketed histogram of non-negative values with exact count,
/// sum, min and max.
///
/// Buckets grow geometrically (factor ~1.5 starting at 1), which keeps
/// relative quantile error bounded while using a fixed, small footprint.
/// Used for response times (microseconds) and interval lengths.
class Histogram {
 public:
  Histogram();

  void Add(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  int64_t min() const { return count_ > 0 ? min_ : 0; }
  int64_t max() const { return max_; }

  /// Arithmetic mean of added values (0 when empty).
  double Mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

  /// Approximate quantile (q in [0, 1]) via linear interpolation within the
  /// containing bucket.
  double Quantile(double q) const;

  /// Number of values strictly greater than `threshold` (approximate at
  /// bucket granularity; exact when threshold is a bucket boundary).
  int64_t CountAbove(int64_t threshold) const;

  /// One-line summary: count / mean / p50 / p95 / p99 / max.
  std::string ToString() const;

 private:
  size_t BucketFor(int64_t value) const;

  std::vector<int64_t> bucket_limits_;  // upper bounds, inclusive
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_HISTOGRAM_H_
