#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace ecostore {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    queue_.clear();
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::QueuedTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ThreadPool::Stats ThreadPool::GetStats() const {
  Stats stats;
  stats.workers = static_cast<int>(workers_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.queued = static_cast<int64_t>(queue_.size());
    stats.peak_queued = peak_queued_;
  }
  stats.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  stats.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return stats;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches the task's exceptions and stores them in the
    // future, so this call never throws out of the worker.
    auto start = std::chrono::steady_clock::now();
    task();
    auto end = std::chrono::steady_clock::now();
    busy_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                           end - start)
                           .count(),
                       std::memory_order_relaxed);
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ecostore
