#include "common/thread_pool.h"

#include <algorithm>

namespace ecostore {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
    queue_.clear();
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::QueuedTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task catches the task's exceptions and stores them in the
    // future, so this call never throws out of the worker.
    task();
  }
}

}  // namespace ecostore
