#include "common/status.h"

namespace ecostore {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace ecostore
