#ifndef ECOSTORE_COMMON_LOGGING_H_
#define ECOSTORE_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

#include "common/sim_time.h"

namespace ecostore {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// \brief Destination for finished log lines. The default (no sink) is
/// stderr; the telemetry recorder installs itself per thread so library
/// log lines are captured with *simulated* timestamps next to the event
/// stream instead of interleaving on stderr.
class LogSink {
 public:
  virtual ~LogSink() = default;

  /// `sim_time` is the simulated clock at emission, or -1 when no
  /// simulated clock is bound to the logging thread.
  virtual void WriteLog(LogLevel level, SimTime sim_time, const char* file,
                        int line, const std::string& message) = 0;
};

/// \brief Minimal stream-style logger writing to stderr (or the thread's
/// LogSink when one is installed).
///
/// The library logs sparingly (policy decisions, migrations, state
/// transitions at kDebug). Benchmarks and tests raise the threshold to
/// kWarn/kOff to keep output clean.
///
/// Thread safety: `threshold` is atomic (relaxed — a stale read merely
/// drops or admits a borderline line) so concurrent experiment workers
/// can log while a driver adjusts verbosity. The sink and the simulated
/// clock are thread-local by construction: each worker thread binds its
/// own experiment's recorder/simulator, so no cross-thread
/// synchronisation is needed on the logging fast path.
class Logger {
 public:
  /// Global severity threshold; messages below it are dropped.
  static std::atomic<LogLevel> threshold;

  /// Function-pointer clock: common/ cannot depend on sim/, so whoever
  /// owns a simulator registers `fn(ctx) -> SimTime` for its thread.
  using SimTimeFn = SimTime (*)(const void* ctx);

  /// Installs `sink` as this thread's log destination (nullptr restores
  /// stderr). Returns the previous sink.
  static LogSink* SetThreadSink(LogSink* sink);

  /// Binds a simulated clock to this thread's log lines (fn == nullptr
  /// unbinds). Returns nothing; pair with SetThreadSink via
  /// telemetry::ScopedLoggerBridge.
  static void SetThreadSimClock(SimTimeFn fn, const void* ctx);

  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  const char* file_;
  int line_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace ecostore

#define ECOSTORE_LOG(level)                                              \
  ::ecostore::Logger(::ecostore::LogLevel::level, __FILE__, __LINE__)

#endif  // ECOSTORE_COMMON_LOGGING_H_
