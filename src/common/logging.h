#ifndef ECOSTORE_COMMON_LOGGING_H_
#define ECOSTORE_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ecostore {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError, kOff };

/// \brief Minimal stream-style logger writing to stderr.
///
/// The library logs sparingly (policy decisions, migrations, state
/// transitions at kDebug). Benchmarks and tests raise the threshold to
/// kWarn/kOff to keep output clean.
class Logger {
 public:
  /// Global severity threshold; messages below it are dropped.
  static LogLevel threshold;

  Logger(LogLevel level, const char* file, int line);
  ~Logger();

  template <typename T>
  Logger& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace ecostore

#define ECOSTORE_LOG(level)                                              \
  ::ecostore::Logger(::ecostore::LogLevel::level, __FILE__, __LINE__)

#endif  // ECOSTORE_COMMON_LOGGING_H_
