#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace ecostore {

Histogram::Histogram() {
  // Geometric bucket limits: 1, 2, 3, 5, 8, 12, ... up to > 4e18.
  int64_t limit = 1;
  while (limit < std::numeric_limits<int64_t>::max() / 2) {
    bucket_limits_.push_back(limit);
    int64_t next = limit + std::max<int64_t>(1, limit / 2);
    limit = next;
  }
  bucket_limits_.push_back(std::numeric_limits<int64_t>::max());
  counts_.assign(bucket_limits_.size(), 0);
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0;
  max_ = 0;
}

size_t Histogram::BucketFor(int64_t value) const {
  auto it = std::lower_bound(bucket_limits_.begin(), bucket_limits_.end(),
                             value);
  return static_cast<size_t>(it - bucket_limits_.begin());
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  counts_[BucketFor(value)]++;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_++;
  sum_ += static_cast<double>(value);
}

void Histogram::Merge(const Histogram& other) {
  assert(bucket_limits_.size() == other.bucket_limits_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (static_cast<double>(seen + counts_[i]) >= target) {
      int64_t lo = (i == 0) ? 0 : bucket_limits_[i - 1];
      int64_t hi = std::min(bucket_limits_[i], max_);
      double within =
          (target - static_cast<double>(seen)) / static_cast<double>(counts_[i]);
      return static_cast<double>(lo) +
             within * static_cast<double>(hi - lo);
    }
    seen += counts_[i];
  }
  return static_cast<double>(max_);
}

int64_t Histogram::CountAbove(int64_t threshold) const {
  size_t start = BucketFor(threshold);
  int64_t total = 0;
  // Values equal to threshold live in bucket `start`; count only buckets
  // strictly above it, which makes the result exact for boundary thresholds
  // and conservative otherwise.
  for (size_t i = start + 1; i < counts_.size(); ++i) total += counts_[i];
  return total;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%lld",
                static_cast<long long>(count_), Mean(), Quantile(0.5),
                Quantile(0.95), Quantile(0.99),
                static_cast<long long>(max_));
  return buf;
}

}  // namespace ecostore
