#ifndef ECOSTORE_COMMON_UNITS_H_
#define ECOSTORE_COMMON_UNITS_H_

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace ecostore {

/// Byte-size constants. Sizes across the library are int64_t byte counts.
inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;
inline constexpr int64_t kTiB = 1024 * kGiB;

/// Electrical power in watts. Double precision is ample: power values are
/// piecewise-constant device ratings, not measured samples.
using Watts = double;

/// Energy in joules.
using Joules = double;

/// Integrates a constant power draw over a simulated duration.
inline Joules EnergyOf(Watts power, SimDuration d) {
  return power * ToSeconds(d);
}

/// Average power of an energy total over a duration (0 for empty spans).
inline Watts AveragePower(Joules energy, SimDuration d) {
  return d > 0 ? energy / ToSeconds(d) : 0.0;
}

/// Renders a byte count as a compact string, e.g. "23.1 GB".
std::string FormatBytes(int64_t bytes);

}  // namespace ecostore

#endif  // ECOSTORE_COMMON_UNITS_H_
