#ifndef ECOSTORE_POLICIES_DDR_POLICY_H_
#define ECOSTORE_POLICIES_DDR_POLICY_H_

#include <string>
#include <vector>

#include "policies/storage_policy.h"

namespace ecostore::policies {

/// \brief Dynamic Data Reorganization (Otoo, Rotem & Tsao 2010), the
/// paper's physical-behaviour baseline (§VII-A.1).
///
/// DDR watches per-enclosure *physical* IOPS over short windows. An
/// enclosure whose window IOPS falls below LowTH (= TargetTH / 2) is
/// classified cold and may spin down; when a physical I/O nevertheless
/// lands on a cold enclosure, DDR migrates the accessed blocks to a hot
/// enclosure with headroom (block-granular moves — hence its tiny total
/// migration sizes in the paper). DDR never sees application data items,
/// so it cannot consolidate by access pattern; it makes a placement
/// determination for every enclosure every window, which is why the paper
/// reports ~10^5 determinations against the proposed method's handful.
class DdrPolicy : public StoragePolicy {
 public:
  struct Options {
    /// TargetTH: IOPS an enclosure may serve while meeting the
    /// application's throughput goal (paper Table II: 450).
    double target_th = 450.0;
    /// Evaluation window; one determination per enclosure per window.
    SimDuration window = 10 * kSecond;
    /// Cap on block-migration bytes per cold enclosure per window.
    int64_t migration_cap_bytes = 4 * kMiB;
  };

  explicit DdrPolicy(const Options& options) : options_(options) {}

  std::string name() const override { return "ddr"; }
  SimDuration initial_period() const override { return options_.window; }

  double low_th() const { return options_.target_th / 2.0; }

  void Start(const storage::StorageSystem& system,
             PolicyActuator* actuator) override;

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          PolicyActuator* actuator) override;

  void OnPhysicalIo(const trace::PhysicalIoRecord& rec) override;

  int64_t placement_determinations() const override {
    return placement_determinations_;
  }

 private:
  Options options_;
  PolicyActuator* actuator_ = nullptr;
  std::vector<bool> cold_;              // last window's classification
  std::vector<double> window_iops_;     // last window's measured IOPS
  std::vector<int64_t> window_migrated_;  // per-enclosure cap tracking
  int64_t placement_determinations_ = 0;
};

}  // namespace ecostore::policies

#endif  // ECOSTORE_POLICIES_DDR_POLICY_H_
