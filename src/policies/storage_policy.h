#ifndef ECOSTORE_POLICIES_STORAGE_POLICY_H_
#define ECOSTORE_POLICIES_STORAGE_POLICY_H_

#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "monitor/io_sink.h"
#include "monitor/snapshot.h"
#include "storage/storage_system.h"
#include "trace/io_record.h"

namespace ecostore::telemetry {
class Recorder;
}  // namespace ecostore::telemetry

namespace ecostore::policies {

/// \brief Actions a power-management policy can request. Implemented by
/// the experiment runtime, which executes them against the storage system
/// (migrations run in the background, throttled, so as not to disturb the
/// application; paper §V-A).
class PolicyActuator {
 public:
  virtual ~PolicyActuator() = default;

  virtual SimTime Now() const = 0;

  /// Queues a throttled background migration of a whole data item.
  virtual void RequestMigration(DataItemId item, EnclosureId target) = 0;

  /// Accounts a block-level migration of `bytes` from one enclosure to
  /// another without remapping any data item (used by physical-block-based
  /// baselines such as DDR).
  virtual void RequestBlockMigration(EnclosureId from, EnclosureId to,
                                     int64_t bytes) = 0;

  /// Replaces the write-delay item set (paper §V-B).
  virtual void SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items) = 0;

  /// Replaces the preload set; loads run asynchronously (paper §V-C).
  virtual void SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& items) = 0;

  /// Permits or forbids automatic spin-down of an enclosure.
  virtual void SetSpinDownAllowed(EnclosureId enclosure, bool allowed) = 0;

  /// Ends the current monitoring period immediately (the pattern-change
  /// reaction of paper §V-D).
  virtual void TriggerImmediatePeriodEnd() = 0;

  /// Announces a new power-management plan before its actions are
  /// enacted. `plan_id` is 1-based (0 = no plan yet); `item_patterns` is
  /// indexed by DataItemId and holds each item's classified pattern
  /// (values >= telemetry::analysis::kNumPatternSlots = unclassified).
  /// The runtime uses it to tag telemetry events and split the latency
  /// book per plan epoch; the default ignores it.
  virtual void PublishPlan(int32_t plan_id,
                           const std::vector<uint8_t>& item_patterns) {
    (void)plan_id;
    (void)item_patterns;
  }

  /// Attaches `sink` to the Application Monitor's logical I/O stream so
  /// the policy can fold its period analysis into ingest (DESIGN.md §13).
  /// Returns true when the runtime supports streaming ingest; the default
  /// (false) keeps the policy on the captured-trace path. Call from
  /// StoragePolicy::Start(); the sink must outlive the run.
  virtual bool AttachLogicalIoSink(monitor::LogicalIoSink* sink) {
    (void)sink;
    return false;
  }

  /// Event recorder for the run, or nullptr when telemetry is off.
  /// Policies gate recording with telemetry::Wants(actuator->telemetry(),
  /// class) so an uninstrumented run pays one null test.
  virtual telemetry::Recorder* telemetry() const { return nullptr; }
};

/// \brief Interface shared by the proposed method and all baselines.
///
/// The runtime calls Start() once, then OnPeriodEnd() at each monitoring
/// period boundary; the returned duration schedules the next period.
/// Event hooks fire between periods for policies that react online.
class StoragePolicy {
 public:
  virtual ~StoragePolicy() = default;

  virtual std::string name() const = 0;

  /// Length of the first monitoring period.
  virtual SimDuration initial_period() const = 0;

  /// Invoked once before the run; `actuator` stays valid for the run.
  virtual void Start(const storage::StorageSystem& system,
                     PolicyActuator* actuator) {
    (void)system;
    (void)actuator;
  }

  /// Invoked at the end of each monitoring period with the monitors'
  /// snapshot. Returns the length of the next period.
  virtual SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                                  const storage::StorageSystem& system,
                                  PolicyActuator* actuator) = 0;

  /// An enclosure idle interval ended (gap in device quiescence).
  virtual void OnIdleGapEnd(EnclosureId enclosure, SimTime at,
                            SimDuration gap) {
    (void)enclosure;
    (void)at;
    (void)gap;
  }

  /// An enclosure began spinning up.
  virtual void OnPowerOn(EnclosureId enclosure, SimTime at) {
    (void)enclosure;
    (void)at;
  }

  /// A physical I/O batch was issued (for physical-behaviour baselines).
  virtual void OnPhysicalIo(const trace::PhysicalIoRecord& rec) {
    (void)rec;
  }

  /// Number of data-placement determinations executed so far (the paper's
  /// §VII-D CPU-cost metric).
  virtual int64_t placement_determinations() const { return 0; }

  /// Whether the policy reads the per-period logical trace buffer from
  /// the snapshot. Queried after Start(): a policy that attached a
  /// logical I/O sink returns false and the replay engine stops retaining
  /// the per-period trace — period memory then scales with activity, not
  /// I/O volume (DESIGN.md §13).
  virtual bool wants_logical_trace() const { return true; }
};

}  // namespace ecostore::policies

#endif  // ECOSTORE_POLICIES_STORAGE_POLICY_H_
