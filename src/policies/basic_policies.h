#ifndef ECOSTORE_POLICIES_BASIC_POLICIES_H_
#define ECOSTORE_POLICIES_BASIC_POLICIES_H_

#include <string>

#include "policies/storage_policy.h"

namespace ecostore::policies {

/// \brief The paper's "without power saving" reference: enclosures never
/// power off; the cache runs with default behaviour only.
class NoPowerSavingPolicy : public StoragePolicy {
 public:
  std::string name() const override { return "no_power_saving"; }
  SimDuration initial_period() const override { return 1 * kHour; }

  void Start(const storage::StorageSystem& system,
             PolicyActuator* actuator) override {
    for (int e = 0; e < system.num_enclosures(); ++e) {
      actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), false);
    }
  }

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          PolicyActuator* actuator) override {
    (void)snapshot;
    (void)system;
    (void)actuator;
    return initial_period();
  }
};

/// \brief hd-idle-style baseline (ablation): every enclosure spins down
/// after the fixed idle timeout, with no data movement and no cache
/// assistance. Isolates how much of the proposed method's saving comes
/// from timeouts alone.
class FixedTimeoutPolicy : public StoragePolicy {
 public:
  std::string name() const override { return "fixed_timeout"; }
  SimDuration initial_period() const override { return 1 * kHour; }

  void Start(const storage::StorageSystem& system,
             PolicyActuator* actuator) override {
    for (int e = 0; e < system.num_enclosures(); ++e) {
      actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), true);
    }
  }

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          PolicyActuator* actuator) override {
    (void)snapshot;
    (void)system;
    (void)actuator;
    return initial_period();
  }
};

}  // namespace ecostore::policies

#endif  // ECOSTORE_POLICIES_BASIC_POLICIES_H_
