#include "policies/pdc_policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ecostore::policies {

void PdcPolicy::Start(const storage::StorageSystem& system,
                      PolicyActuator* actuator) {
  popularity_.assign(system.virtualization().catalog().item_count(), 0.0);
  // PDC lets any enclosure spin down once its files stop being accessed.
  for (int e = 0; e < system.num_enclosures(); ++e) {
    actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), true);
  }
}

SimDuration PdcPolicy::OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                                   const storage::StorageSystem& system,
                                   PolicyActuator* actuator) {
  const storage::BlockVirtualization& virt = system.virtualization();
  const storage::DataItemCatalog& catalog = virt.catalog();
  size_t n_items = catalog.item_count();
  int n_enc = system.num_enclosures();
  placement_determinations_++;

  // Update smoothed popularity from the period's logical trace.
  std::vector<int64_t> counts(n_items, 0);
  for (const trace::LogicalIoRecord& rec :
       snapshot.application->buffer().records()) {
    if (rec.item >= 0 && static_cast<size_t>(rec.item) < n_items) {
      counts[static_cast<size_t>(rec.item)]++;
    }
  }
  double period_seconds = ToSeconds(snapshot.period_length());
  if (period_seconds <= 0) period_seconds = 1.0;
  for (size_t i = 0; i < n_items; ++i) {
    popularity_[i] = options_.decay * popularity_[i] +
                     static_cast<double>(counts[i]);
  }

  // Rank items by popularity class, most popular first. Classes are
  // log-quantized so statistically identical items (e.g. hash partitions
  // of one table) keep a stable relative order across epochs instead of
  // reshuffling on sampling noise.
  auto pop_class = [&](size_t i) {
    return static_cast<int>(std::log2(popularity_[i] + 1.0));
  };
  std::vector<size_t> order(n_items);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return pop_class(a) > pop_class(b);
  });

  // Greedy concentration onto the lowest-numbered enclosures.
  int64_t space_budget = static_cast<int64_t>(
      options_.fill_fraction *
      static_cast<double>(virt.capacity_bytes()));
  double load_budget = options_.load_fraction * options_.max_enclosure_iops;
  std::vector<int64_t> used(static_cast<size_t>(n_enc), 0);
  std::vector<double> load(static_cast<size_t>(n_enc), 0.0);

  for (size_t rank : order) {
    auto item = static_cast<DataItemId>(rank);
    int64_t size = catalog.item(item).size_bytes;
    double iops = static_cast<double>(counts[rank]) / period_seconds;
    int target = -1;
    for (int e = 0; e < n_enc; ++e) {
      if (used[static_cast<size_t>(e)] + size <= space_budget &&
          load[static_cast<size_t>(e)] + iops <= load_budget) {
        target = e;
        break;
      }
    }
    if (target < 0) {
      // Budgets exhausted everywhere: fall back to the emptiest enclosure.
      target = static_cast<int>(
          std::min_element(used.begin(), used.end()) - used.begin());
    }
    used[static_cast<size_t>(target)] += size;
    load[static_cast<size_t>(target)] += iops;
    if (virt.EnclosureOf(item) != target) {
      actuator->RequestMigration(item, static_cast<EnclosureId>(target));
    }
  }
  return options_.epoch;
}

}  // namespace ecostore::policies
