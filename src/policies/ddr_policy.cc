#include "policies/ddr_policy.h"

#include <algorithm>

namespace ecostore::policies {

void DdrPolicy::Start(const storage::StorageSystem& system,
                      PolicyActuator* actuator) {
  actuator_ = actuator;
  auto n = static_cast<size_t>(system.num_enclosures());
  cold_.assign(n, false);
  window_iops_.assign(n, 0.0);
  window_migrated_.assign(n, 0);
  // Spin-down permission follows the cold classification; everything
  // starts hot (no observations yet).
  for (int e = 0; e < system.num_enclosures(); ++e) {
    actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), false);
  }
}

void DdrPolicy::OnPhysicalIo(const trace::PhysicalIoRecord& rec) {
  if (actuator_ == nullptr) return;
  auto e = static_cast<size_t>(rec.enclosure);
  if (e >= cold_.size() || !cold_[e]) return;
  if (window_migrated_[e] >= options_.migration_cap_bytes) return;

  // An access hit a cold enclosure: move the touched blocks to the hot
  // enclosure with the most headroom under TargetTH.
  int best = -1;
  double best_iops = 0.0;
  for (size_t h = 0; h < cold_.size(); ++h) {
    if (cold_[h] || h == e) continue;
    if (window_iops_[h] >= options_.target_th) continue;
    if (best < 0 || window_iops_[h] < best_iops) {
      best = static_cast<int>(h);
      best_iops = window_iops_[h];
    }
  }
  if (best < 0) return;
  window_migrated_[e] += rec.size;
  actuator_->RequestBlockMigration(rec.enclosure,
                                   static_cast<EnclosureId>(best), rec.size);
}

SimDuration DdrPolicy::OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                                   const storage::StorageSystem& system,
                                   PolicyActuator* actuator) {
  auto n = static_cast<size_t>(system.num_enclosures());
  std::vector<int64_t> counts(n, 0);
  for (const trace::PhysicalIoRecord& rec :
       snapshot.storage->buffer().records()) {
    if (rec.enclosure >= 0 && static_cast<size_t>(rec.enclosure) < n) {
      counts[static_cast<size_t>(rec.enclosure)]++;
    }
  }
  double seconds = ToSeconds(snapshot.period_length());
  if (seconds <= 0) seconds = ToSeconds(options_.window);

  for (size_t e = 0; e < n; ++e) {
    window_iops_[e] = static_cast<double>(counts[e]) / seconds;
    bool cold = window_iops_[e] < low_th();
    placement_determinations_++;
    if (cold != cold_[e]) {
      cold_[e] = cold;
      actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), cold);
    }
    window_migrated_[e] = 0;
  }
  return options_.window;
}

}  // namespace ecostore::policies
