#ifndef ECOSTORE_POLICIES_PDC_POLICY_H_
#define ECOSTORE_POLICIES_PDC_POLICY_H_

#include <string>
#include <vector>

#include "policies/storage_policy.h"

namespace ecostore::policies {

/// \brief Popular Data Concentration (Pinheiro & Bianchini 2004), the
/// paper's logical-behaviour baseline (§VII-A.1).
///
/// Every epoch (30 minutes, paper Table II) PDC ranks files by popularity
/// (an exponentially smoothed access count) and lays them out greedily:
/// the most popular files fill the first enclosure up to its load and
/// space budgets, the next ones the second, and so on. Unpopular tail
/// enclosures then idle and spin down. PDC migrates any file whose
/// assigned enclosure changed — which is most of them whenever popularity
/// ranks churn, explaining the paper's multi-terabyte migration totals.
class PdcPolicy : public StoragePolicy {
 public:
  struct Options {
    SimDuration epoch = 30 * kMinute;
    /// Fraction of an enclosure's capacity PDC fills before moving on.
    double fill_fraction = 0.9;
    /// Fraction of an enclosure's max IOPS used as its load budget.
    double load_fraction = 0.75;
    /// O: maximum random IOPS per enclosure.
    double max_enclosure_iops = 900.0;
    /// Popularity smoothing: pop = decay * old + count.
    double decay = 0.5;
  };

  explicit PdcPolicy(const Options& options) : options_(options) {}

  std::string name() const override { return "pdc"; }
  SimDuration initial_period() const override { return options_.epoch; }

  void Start(const storage::StorageSystem& system,
             PolicyActuator* actuator) override;

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          PolicyActuator* actuator) override;

  int64_t placement_determinations() const override {
    return placement_determinations_;
  }

 private:
  Options options_;
  std::vector<double> popularity_;  // per item
  int64_t placement_determinations_ = 0;
};

}  // namespace ecostore::policies

#endif  // ECOSTORE_POLICIES_PDC_POLICY_H_
