#ifndef ECOSTORE_MONITOR_SNAPSHOT_H_
#define ECOSTORE_MONITOR_SNAPSHOT_H_

#include "common/sim_time.h"
#include "monitor/application_monitor.h"
#include "monitor/storage_monitor.h"

namespace ecostore::monitor {

/// \brief Read-only view over both monitors' repositories handed to a
/// power-management policy at the end of a monitoring period (the input of
/// paper Algorithm 1's loop body).
struct MonitorSnapshot {
  SimTime period_start = 0;
  SimTime period_end = 0;
  const ApplicationMonitor* application = nullptr;
  const StorageMonitor* storage = nullptr;

  SimDuration period_length() const { return period_end - period_start; }
};

}  // namespace ecostore::monitor

#endif  // ECOSTORE_MONITOR_SNAPSHOT_H_
