#ifndef ECOSTORE_MONITOR_IO_SINK_H_
#define ECOSTORE_MONITOR_IO_SINK_H_

#include "trace/io_record.h"

namespace ecostore::monitor {

/// \brief Consumer of the logical I/O stream as the Application Monitor
/// observes it (DESIGN.md §13).
///
/// A sink receives every logical I/O in global time order, on the thread
/// that drives the monitor (the serial replay loop, or the sharded
/// coordinator's scatter phase — never a lane worker). A policy that
/// attaches a sink via PolicyActuator::AttachLogicalIoSink() can fold its
/// period analysis into ingest and then declare, through
/// StoragePolicy::wants_logical_trace(), that the per-period trace buffer
/// need not be retained — the fleet-scale monitoring mode.
class LogicalIoSink {
 public:
  virtual ~LogicalIoSink() = default;

  /// One logical I/O. Records arrive in non-decreasing time order.
  virtual void OnLogicalIo(const trace::LogicalIoRecord& rec) = 0;
};

}  // namespace ecostore::monitor

#endif  // ECOSTORE_MONITOR_IO_SINK_H_
