#ifndef ECOSTORE_MONITOR_APPLICATION_MONITOR_H_
#define ECOSTORE_MONITOR_APPLICATION_MONITOR_H_

#include "common/sim_time.h"
#include "trace/io_record.h"
#include "trace/trace_buffer.h"

namespace ecostore::monitor {

/// \brief The Application Monitor (paper §III-A): captures the logical I/O
/// trace of the current monitoring period on the file/record layer.
///
/// The logical mapping information (data item <-> volume) lives in the
/// DataItemCatalog; this class holds the per-period trace repository.
class ApplicationMonitor {
 public:
  /// Records one logical I/O. Records must arrive in time order.
  void Record(const trace::LogicalIoRecord& rec) {
    buffer_.Append(rec);
    total_records_++;
  }

  /// Trace of the current period.
  const trace::LogicalTraceBuffer& buffer() const { return buffer_; }

  SimTime period_start() const { return period_start_; }

  /// Clears the period trace and starts a new period at `now`.
  void ResetPeriod(SimTime now) {
    buffer_.Clear();
    period_start_ = now;
  }

  /// Total records observed over the whole run (all periods).
  int64_t total_records() const { return total_records_; }

 private:
  trace::LogicalTraceBuffer buffer_;
  SimTime period_start_ = 0;
  int64_t total_records_ = 0;
};

}  // namespace ecostore::monitor

#endif  // ECOSTORE_MONITOR_APPLICATION_MONITOR_H_
