#ifndef ECOSTORE_MONITOR_APPLICATION_MONITOR_H_
#define ECOSTORE_MONITOR_APPLICATION_MONITOR_H_

#include "common/sim_time.h"
#include "monitor/io_sink.h"
#include "trace/io_record.h"
#include "trace/trace_buffer.h"

namespace ecostore::monitor {

/// \brief The Application Monitor (paper §III-A): observes the logical I/O
/// stream of the current monitoring period on the file/record layer.
///
/// The logical mapping information (data item <-> volume) lives in the
/// DataItemCatalog. Each record is forwarded to an optional streaming sink
/// (DESIGN.md §13) and, when capture is enabled, appended to the per-period
/// trace repository. Policies that ingest via the sink can disable capture
/// so a fleet-scale period never materialises an unbounded trace buffer.
class ApplicationMonitor {
 public:
  /// Records one logical I/O. Records must arrive in time order.
  void Record(const trace::LogicalIoRecord& rec) {
    if (capture_) buffer_.Append(rec);
    if (sink_ != nullptr) sink_->OnLogicalIo(rec);
    total_records_++;
  }

  /// Trace of the current period (empty while capture is disabled).
  const trace::LogicalTraceBuffer& buffer() const { return buffer_; }

  SimTime period_start() const { return period_start_; }

  /// Attaches (or detaches, with nullptr) the streaming sink. Not owned.
  void SetSink(LogicalIoSink* sink) { sink_ = sink; }
  LogicalIoSink* sink() const { return sink_; }

  /// Enables or disables trace-buffer capture. Default on; a policy that
  /// streams via the sink turns it off through the replay engine.
  void SetCapture(bool capture) { capture_ = capture; }
  bool capture() const { return capture_; }

  /// Clears the period trace and starts a new period at `now`.
  void ResetPeriod(SimTime now) {
    buffer_.Clear();
    period_start_ = now;
  }

  /// Total records observed over the whole run (all periods).
  int64_t total_records() const { return total_records_; }

 private:
  trace::LogicalTraceBuffer buffer_;
  LogicalIoSink* sink_ = nullptr;
  bool capture_ = true;
  SimTime period_start_ = 0;
  int64_t total_records_ = 0;
};

}  // namespace ecostore::monitor

#endif  // ECOSTORE_MONITOR_APPLICATION_MONITOR_H_
