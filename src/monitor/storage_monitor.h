#ifndef ECOSTORE_MONITOR_STORAGE_MONITOR_H_
#define ECOSTORE_MONITOR_STORAGE_MONITOR_H_

#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "storage/storage_system.h"
#include "trace/io_record.h"
#include "trace/trace_buffer.h"

namespace ecostore::monitor {

/// A power state transition observed on an enclosure (paper §III-B,
/// "power status of the storage device").
struct PowerEvent {
  EnclosureId enclosure = kInvalidEnclosure;
  SimTime time = 0;
  storage::PowerState state = storage::PowerState::kOn;
};

/// \brief The Storage Monitor (paper §III-B): captures physical I/O
/// traces, power status events and per-enclosure counters below the
/// block-virtualization layer.
class StorageMonitor : public storage::StorageObserver {
 public:
  explicit StorageMonitor(int num_enclosures)
      : power_on_counts_(static_cast<size_t>(num_enclosures), 0) {}

  void OnPhysicalIo(const trace::PhysicalIoRecord& rec) override {
    buffer_.Append(rec);
  }

  void OnPowerStateChange(EnclosureId enclosure, SimTime at,
                          storage::PowerState state) override {
    power_events_.push_back(PowerEvent{enclosure, at, state});
    if (state == storage::PowerState::kSpinningUp) {
      power_on_counts_[static_cast<size_t>(enclosure)]++;
    }
  }

  const trace::PhysicalTraceBuffer& buffer() const { return buffer_; }
  const std::vector<PowerEvent>& power_events() const {
    return power_events_;
  }

  /// Power-on count of an enclosure within the current period (used by the
  /// pattern-change trigger, paper §V-D condition ii).
  int64_t power_on_count(EnclosureId enclosure) const {
    return power_on_counts_.at(static_cast<size_t>(enclosure));
  }

  SimTime period_start() const { return period_start_; }

  void ResetPeriod(SimTime now) {
    buffer_.Clear();
    power_events_.clear();
    std::fill(power_on_counts_.begin(), power_on_counts_.end(), 0);
    period_start_ = now;
  }

 private:
  trace::PhysicalTraceBuffer buffer_;
  std::vector<PowerEvent> power_events_;
  std::vector<int64_t> power_on_counts_;
  SimTime period_start_ = 0;
};

}  // namespace ecostore::monitor

#endif  // ECOSTORE_MONITOR_STORAGE_MONITOR_H_
