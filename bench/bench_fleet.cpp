// Fleet-scale planning benchmark: the proposed policy end-to-end on the
// synthetic cloud block-storage workload (DESIGN.md §12, EXPERIMENTS.md).
// Default shape is 10,000 enclosures / 1,000,000 items — two orders of
// magnitude past the paper's testbed — exercising the indexed planner
// structures and the incremental re-plan path at the scale they were
// built for. ECOSTORE_QUICK=1 shrinks to a 120-enclosure smoke fleet
// (the CI capture gate's configuration).

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "bench/telemetry_capture.h"
#include "core/eco_storage_policy.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/cloud_block_workload.h"

using namespace ecostore;  // NOLINT

namespace {

workload::CloudBlockConfig FleetConfig(int argc, char** argv) {
  workload::CloudBlockConfig wl;
  wl.num_enclosures = bench::QuickMode() ? 120 : 10000;
  const std::string enc = bench::ParseFlagValue(argc, argv, "--enclosures=");
  if (!enc.empty()) wl.num_enclosures = std::stoi(enc);
  wl.volumes_per_enclosure = 10;
  wl.items_per_volume = 10;
  wl.duration = bench::MaybeShorten(1 * kHour, 30 * kMinute);
  const std::string mins =
      bench::ParseFlagValue(argc, argv, "--duration-min=");
  if (!mins.empty()) wl.duration = std::stoi(mins) * kMinute;
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  // --rolling-summary=<path> streams live rolling windows from the
  // instrumented capture run (tailable mid-run via `eco_report tail`).
  const std::string rolling_path = bench::ParseRollingSummaryFlag(argc, argv);
  const SimDuration rolling_window = bench::ParseRollingWindowFlag(argc, argv);
  // --profile=<base> attaches the wall-clock phase profiler to the
  // instrumented capture run (requires --telemetry).
  const std::string profile_base = bench::ParseProfileFlag(argc, argv);
  const bool capture_only =
      bench::HasFlag(argc, argv, "--capture-only") && !telemetry_base.empty();
  bench::PrintHeader(
      "Fleet-scale planning — cloud block storage",
      "beyond the paper: 10k enclosures / 1M items, Alibaba-shaped "
      "write-dominant heavy-tailed volumes");

  const workload::CloudBlockConfig wl_config = FleetConfig(argc, argv);
  std::printf("fleet: %d enclosures, %d volumes, %d items, %s sim\n",
              wl_config.num_enclosures,
              wl_config.num_enclosures * wl_config.volumes_per_enclosure,
              wl_config.num_enclosures * wl_config.volumes_per_enclosure *
                  wl_config.items_per_volume,
              FormatDuration(wl_config.duration).c_str());

  if (capture_only) {
    replay::ExperimentConfig config;
    core::PowerManagementConfig pm;
    replay::ExperimentJob job;
    job.workload =
        [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::CloudBlockWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path, 1u << 22, rolling_path,
                                   rolling_window, profile_base);
  }

  auto workload = workload::CloudBlockWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  std::printf("volume roles: %d hot / %d bursty-write / %d read-burst / "
              "%d idle\n",
              workload.value()->hot_volumes(),
              workload.value()->bursty_volumes(),
              workload.value()->read_volumes(),
              workload.value()->idle_volumes());

  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;
  // The policy is constructed directly (not through PaperPolicySet) so
  // the incremental re-plan counters stay inspectable after the run.
  core::EcoStoragePolicy policy(pm);
  replay::Experiment experiment(workload.value().get(), &policy, config);
  auto metrics = experiment.Run();
  if (!metrics.ok()) {
    std::cerr << metrics.status().ToString() << "\n";
    return 1;
  }
  const replay::ExperimentMetrics& m = metrics.value();

  std::printf("\n[power]      avg total %.1f W (enclosures %.1f W + "
              "controller %.1f W)\n",
              m.avg_total_power, m.avg_enclosure_power,
              m.avg_controller_power);
  std::printf("[io]         %lld logical I/Os, avg response %.3f ms "
              "(reads %.3f ms)\n",
              static_cast<long long>(m.logical_ios), m.avg_response_ms,
              m.avg_read_response_ms);
  std::printf("[migrations] %lld items / %.2f GiB moved\n",
              static_cast<long long>(m.item_migrations),
              static_cast<double>(m.migrated_bytes) / (1024.0 * 1024.0 *
                                                       1024.0));
  std::printf("[planning]   %lld placement determinations: %lld "
              "incremental (%lld skipped placement entirely), %lld full\n",
              static_cast<long long>(policy.placement_determinations()),
              static_cast<long long>(policy.incremental_replans()),
              static_cast<long long>(policy.placements_skipped()),
              static_cast<long long>(policy.placement_determinations() -
                                     policy.incremental_replans()));
  std::printf("[monitor]    streaming classification %s, trace capture "
              "%s, classifier peak state %.2f MiB\n",
              policy.streaming_active() ? "on" : "off",
              experiment.application_monitor().capture() ? "on" : "off",
              static_cast<double>(policy.classifier_peak_state_bytes()) /
                  (1024.0 * 1024.0));
  std::printf("[host]       %.2f s wall, %lld sim events\n",
              m.wall_seconds,
              static_cast<long long>(m.sim_events_executed));
  return 0;
}
