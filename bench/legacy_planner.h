#ifndef ECOSTORE_BENCH_LEGACY_PLANNER_H_
#define ECOSTORE_BENCH_LEGACY_PLANNER_H_

// The pre-fleet-scale planners, kept verbatim (modulo inline/namespace)
// as the in-run regression reference — the same pattern as
// bench/legacy_cache.h and the PR-1 ClassifyLegacy reference. These are
// the stable_sort-based Algorithm 2/3 implementations: find_cold_target
// re-sorts the whole cold list per candidate move, the hot list is
// re-sorted per P3 item, make_space rescans the full catalog, and the
// cache planner fully sorts its candidate lists. The indexed planners in
// src/core must produce bit-identical plans (see
// tests/planner_differential_test.cc and the planner_scale entry of
// BENCH_perf.json).
//
// The one deliberate divergence from the seed code: make_space rolls its
// partial evictions back when it fails (the current planner does too) —
// the seed version left the stray moves in `evictions` and in the
// working state even though the target hot enclosure was abandoned.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <vector>

#include "core/cache_planner.h"
#include "core/hot_cold_planner.h"
#include "core/pattern_classifier.h"
#include "core/placement_planner.h"
#include "storage/block_virtualization.h"

namespace ecostore::legacy {

/// The stable_sort HotColdPlanner (paper §IV-C Steps 1-3).
class LegacyHotColdPlanner {
 public:
  using Options = core::HotColdPlanner::Options;

  explicit LegacyHotColdPlanner(const Options& options) : options_(options) {}

  core::HotColdPartition Plan(const core::ClassificationResult& classification,
                              const storage::BlockVirtualization& virt,
                              int min_n_hot = 0) const {
    int n = virt.num_enclosures();
    core::HotColdPartition partition;
    partition.is_hot.assign(static_cast<size_t>(n), false);

    std::vector<int64_t> p3_bytes(static_cast<size_t>(n), 0);
    int64_t p3_total_bytes = 0;
    for (const core::ItemClassification& cls : classification.items) {
      if (cls.pattern != core::IoPattern::kP3) continue;
      EnclosureId enc = virt.EnclosureOf(cls.item);
      p3_bytes[static_cast<size_t>(enc)] += cls.size_bytes;
      p3_total_bytes += cls.size_bytes;
    }

    int by_iops = static_cast<int>(
        std::ceil(classification.p3_max_iops / options_.max_enclosure_iops));
    int by_size =
        options_.enclosure_capacity > 0
            ? static_cast<int>(std::ceil(
                  static_cast<double>(p3_total_bytes) /
                  static_cast<double>(options_.enclosure_capacity)))
            : 0;
    int n_hot = std::max({by_iops, by_size, min_n_hot});
    n_hot = std::min(n_hot, n);
    partition.n_hot = n_hot;

    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return p3_bytes[static_cast<size_t>(a)] >
             p3_bytes[static_cast<size_t>(b)];
    });
    for (int i = 0; i < n_hot; ++i) {
      partition.is_hot[static_cast<size_t>(order[static_cast<size_t>(i)])] =
          true;
    }
    return partition;
  }

 private:
  Options options_;
};

/// The per-item-re-sorting PlacementPlanner (paper Algorithms 2+3).
class LegacyPlacementPlanner {
 public:
  using Options = core::PlacementPlanner::Options;

  LegacyPlacementPlanner(const Options& options,
                         const LegacyHotColdPlanner* hot_cold)
      : options_(options), hot_cold_(hot_cold) {}

  core::PlacementPlan Plan(const core::ClassificationResult& classification,
                           const storage::BlockVirtualization& virt) const {
    int n = virt.num_enclosures();
    core::PlacementPlan plan;
    int min_hot = 0;
    while (true) {
      plan.partition = hot_cold_->Plan(classification, virt, min_hot);
      if (plan.partition.n_hot >= n) {
        plan.migrations.clear();
        return plan;
      }
      std::vector<core::Migration> evictions;
      std::vector<core::Migration> p3_moves;
      if (TryPlace(classification, virt, plan.partition, &evictions,
                   &p3_moves)) {
        plan.migrations = std::move(evictions);
        plan.migrations.insert(plan.migrations.end(), p3_moves.begin(),
                               p3_moves.end());
        return plan;
      }
      min_hot = plan.partition.n_hot + 1;
    }
  }

 private:
  struct WorkingState {
    std::vector<double> iops;
    std::vector<int64_t> used;
    std::vector<EnclosureId> where;

    void ApplyMove(const core::ItemClassification& cls, EnclosureId to) {
      EnclosureId from = where[static_cast<size_t>(cls.item)];
      iops[static_cast<size_t>(from)] -= cls.avg_iops;
      used[static_cast<size_t>(from)] -= cls.size_bytes;
      iops[static_cast<size_t>(to)] += cls.avg_iops;
      used[static_cast<size_t>(to)] += cls.size_bytes;
      where[static_cast<size_t>(cls.item)] = to;
    }
  };

  bool TryPlace(const core::ClassificationResult& classification,
                const storage::BlockVirtualization& virt,
                const core::HotColdPartition& partition,
                std::vector<core::Migration>* evictions,
                std::vector<core::Migration>* p3_moves) const {
    const double kO = options_.max_enclosure_iops;
    const int64_t kS = options_.enclosure_capacity > 0
                           ? options_.enclosure_capacity
                           : virt.capacity_bytes();
    int n = virt.num_enclosures();

    WorkingState state;
    state.iops.assign(static_cast<size_t>(n), 0.0);
    state.used.assign(static_cast<size_t>(n), 0);
    state.where.resize(classification.items.size());
    for (const core::ItemClassification& cls : classification.items) {
      EnclosureId enc = virt.EnclosureOf(cls.item);
      state.where[static_cast<size_t>(cls.item)] = enc;
      state.iops[static_cast<size_t>(enc)] += cls.avg_iops;
      state.used[static_cast<size_t>(enc)] += cls.size_bytes;
    }

    std::vector<EnclosureId> hot;
    std::vector<EnclosureId> cold;
    for (int e = 0; e < n; ++e) {
      (partition.IsHot(e) ? hot : cold).push_back(e);
    }

    // Algorithm 3's target choice: the cold enclosure with the largest
    // working IOPS that satisfies both guards.
    auto find_cold_target =
        [&](const core::ItemClassification& cls) -> EnclosureId {
      std::vector<EnclosureId> order = cold;
      std::stable_sort(order.begin(), order.end(),
                       [&](EnclosureId a, EnclosureId b) {
                         return state.iops[static_cast<size_t>(a)] >
                                state.iops[static_cast<size_t>(b)];
                       });
      for (EnclosureId c : order) {
        bool fits =
            cls.size_bytes <= kS - state.used[static_cast<size_t>(c)];
        bool serves =
            state.iops[static_cast<size_t>(c)] + cls.avg_iops < kO;
        if (fits && serves) return c;
      }
      return kInvalidEnclosure;
    };

    // Algorithm 3 as a space-maker; on failure every eviction this call
    // added is rolled back (the abandoned target keeps nothing).
    auto make_space = [&](EnclosureId s, int64_t need) -> bool {
      std::vector<const core::ItemClassification*> movable;
      for (const core::ItemClassification& cls : classification.items) {
        if (state.where[static_cast<size_t>(cls.item)] == s &&
            cls.pattern != core::IoPattern::kP3 &&
            !virt.catalog().item(cls.item).pinned) {
          movable.push_back(&cls);
        }
      }
      std::stable_sort(movable.begin(), movable.end(),
                       [](const core::ItemClassification* a,
                          const core::ItemClassification* b) {
                         return a->size_bytes > b->size_bytes;
                       });
      const size_t mark = evictions->size();
      for (const core::ItemClassification* cls : movable) {
        if (kS - state.used[static_cast<size_t>(s)] >= need) break;
        EnclosureId target = find_cold_target(*cls);
        if (target == kInvalidEnclosure) continue;
        evictions->push_back(core::Migration{cls->item, s, target});
        state.ApplyMove(*cls, target);
      }
      if (kS - state.used[static_cast<size_t>(s)] >= need) return true;
      while (evictions->size() > mark) {
        const core::Migration& mig = evictions->back();
        state.ApplyMove(
            classification.items[static_cast<size_t>(mig.item)], s);
        evictions->pop_back();
      }
      return false;
    };

    // Algorithm 2: move P3 items off cold enclosures, most demanding
    // (IOPS per byte) first.
    std::vector<const core::ItemClassification*> m;
    for (const core::ItemClassification& cls : classification.items) {
      if (cls.pattern == core::IoPattern::kP3 &&
          !partition.IsHot(state.where[static_cast<size_t>(cls.item)]) &&
          !virt.catalog().item(cls.item).pinned) {
        m.push_back(&cls);
      }
    }
    std::stable_sort(m.begin(), m.end(),
                     [](const core::ItemClassification* a,
                        const core::ItemClassification* b) {
                       double da = a->size_bytes > 0
                                       ? a->avg_iops /
                                             static_cast<double>(a->size_bytes)
                                       : a->avg_iops;
                       double db = b->size_bytes > 0
                                       ? b->avg_iops /
                                             static_cast<double>(b->size_bytes)
                                       : b->avg_iops;
                       return da > db;
                     });

    for (const core::ItemClassification* d : m) {
      std::vector<EnclosureId> order = hot;
      std::stable_sort(order.begin(), order.end(),
                       [&](EnclosureId a, EnclosureId b) {
                         return state.iops[static_cast<size_t>(a)] <
                                state.iops[static_cast<size_t>(b)];
                       });
      bool placed = false;
      for (EnclosureId s : order) {
        if (d->avg_iops + state.iops[static_cast<size_t>(s)] >= kO) {
          return false;
        }
        if (d->size_bytes + state.used[static_cast<size_t>(s)] <= kS) {
          p3_moves->push_back(core::Migration{
              d->item, state.where[static_cast<size_t>(d->item)], s});
          state.ApplyMove(*d, s);
          placed = true;
          break;
        }
      }
      if (!placed) {
        for (EnclosureId s : order) {
          int64_t need =
              d->size_bytes - (kS - state.used[static_cast<size_t>(s)]);
          if (make_space(s, need)) {
            p3_moves->push_back(core::Migration{
                d->item, state.where[static_cast<size_t>(d->item)], s});
            state.ApplyMove(*d, s);
            placed = true;
            break;
          }
        }
      }
      if (!placed) return false;
    }
    return true;
  }

  Options options_;
  const LegacyHotColdPlanner* hot_cold_;
};

/// The full-sort CachePlanner (paper §IV-E / §IV-F).
class LegacyCachePlanner {
 public:
  using Options = core::CachePlanner::Options;

  explicit LegacyCachePlanner(const Options& options) : options_(options) {}

  core::CachePlan Plan(
      const core::ClassificationResult& classification,
      const core::HotColdPartition& partition,
      const std::vector<EnclosureId>& final_enclosure) const {
    core::CachePlan plan;

    auto on_cold = [&](const core::ItemClassification& cls) {
      EnclosureId enc = final_enclosure.at(static_cast<size_t>(cls.item));
      return !partition.IsHot(enc);
    };

    int64_t wd_budget = options_.write_delay_area_bytes;
    for (const core::ItemClassification& cls : classification.items) {
      if (cls.pattern == core::IoPattern::kP2 && on_cold(cls)) {
        plan.write_delay.push_back(cls.item);
        wd_budget -= cls.write_bytes;
      }
    }
    if (wd_budget > 0) {
      std::vector<const core::ItemClassification*> p1;
      for (const core::ItemClassification& cls : classification.items) {
        if (cls.pattern == core::IoPattern::kP1 && on_cold(cls) &&
            cls.writes > 0) {
          p1.push_back(&cls);
        }
      }
      std::stable_sort(p1.begin(), p1.end(),
                       [](const core::ItemClassification* a,
                          const core::ItemClassification* b) {
                         return a->writes > b->writes;
                       });
      for (const core::ItemClassification* cls : p1) {
        if (cls->write_bytes > wd_budget) continue;
        plan.write_delay.push_back(cls->item);
        wd_budget -= cls->write_bytes;
      }
    }

    std::vector<const core::ItemClassification*> candidates;
    for (const core::ItemClassification& cls : classification.items) {
      if (cls.pattern == core::IoPattern::kP1 && on_cold(cls) &&
          cls.reads > 0) {
        candidates.push_back(&cls);
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const core::ItemClassification* a,
                        const core::ItemClassification* b) {
                       double da =
                           a->size_bytes > 0
                               ? static_cast<double>(a->reads) /
                                     static_cast<double>(a->size_bytes)
                               : 0.0;
                       double db =
                           b->size_bytes > 0
                               ? static_cast<double>(b->reads) /
                                     static_cast<double>(b->size_bytes)
                               : 0.0;
                       return da > db;
                     });
    int64_t pl_budget = options_.preload_area_bytes;
    for (const core::ItemClassification* cls : candidates) {
      if (cls->size_bytes > pl_budget) continue;
      plan.preload.emplace_back(cls->item, cls->size_bytes);
      pl_budget -= cls->size_bytes;
    }
    return plan;
  }

 private:
  Options options_;
};

}  // namespace ecostore::legacy

#endif  // ECOSTORE_BENCH_LEGACY_PLANNER_H_
