// Reproduces paper Figs. 11-13 and 18 (TPC-C / OLTP): power, scaled
// transaction throughput, migrated data and the long-interval curve.
//
// Paper values: power 2656.4 W -> proposed 2238.1 W (-15.7%), PDC -10.7%,
// DDR ~0; throughput proposed 1701.4 tpmC (-8.5%), PDC/DDR worse;
// migrated PDC > 1 TB, DDR minimal; determinations 7 / 3 / ~90k; Fig. 18:
// DDR has no intervals beyond the break-even time.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "bench/telemetry_capture.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/oltp_workload.h"

using namespace ecostore;  // NOLINT

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  // --capture-only skips the four-policy figure suite and runs just the
  // instrumented capture: what the CI regression gate wants.
  const bool capture_only =
      bench::HasFlag(argc, argv, "--capture-only") && !telemetry_base.empty();
  bench::PrintHeader("Figs. 11-13, 18 — TPC-C (OLTP)",
                     "proposed -15.7% power at -8.5% tpmC; DDR saves "
                     "nothing");

  workload::OltpConfig wl_config;
  wl_config.duration = bench::MaybeShorten(
      static_cast<SimDuration>(1.8 * kHour), 30 * kMinute);

  if (capture_only) {
    replay::ExperimentConfig config;
    core::PowerManagementConfig pm;
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::OltpWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    // The OLTP stream emits ~7.5M events in quick mode; the default 2M
    // ring would wrap and starve the ledger of the oldest windows.
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path, 1u << 23);
  }

  auto workload = workload::OltpWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;
  auto runs = replay::RunSuite(workload.value().get(),
                               replay::PaperPolicySet(pm), config);
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\n[Fig. 11] average power:\n";
  replay::PrintPowerTable(std::cout, runs.value());

  std::cout << "\n[Fig. 12] transaction throughput (scaled, paper "
               "\xC2\xA7VII-A.5):\n";
  const replay::ExperimentMetrics* base =
      replay::FindRun(runs.value(), "no_power_saving");
  for (const replay::ExperimentMetrics& m : runs.value()) {
    double tpmc = replay::ScaledTransactionThroughput(
        workload::OltpWorkload::kBaselineTpmC, *base, m);
    std::printf("  %-18s %8.1f tpmC (%+.1f%%)\n", m.policy.c_str(), tpmc,
                100.0 * (tpmc / workload::OltpWorkload::kBaselineTpmC - 1.0));
  }

  std::cout << "\n(read response behind the scaling)\n";
  replay::PrintResponseTable(std::cout, runs.value());

  std::cout << "\n[Fig. 13 + \xC2\xA7VII-D] migrated data / "
               "determinations:\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  std::cout << "\n[Fig. 18] cumulative idle-interval length by threshold:\n";
  replay::PrintIntervalCdf(
      std::cout, runs.value(),
      {10 * kSecond, 30 * kSecond, 52 * kSecond, 2 * kMinute, 5 * kMinute});

  if (!telemetry_base.empty()) {
    // One extra instrumented run of the proposed method, after the
    // figures so the capture shares nothing with them.
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::OltpWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path);
  }
  return 0;
}
