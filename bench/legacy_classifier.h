#ifndef ECOSTORE_BENCH_LEGACY_CLASSIFIER_H_
#define ECOSTORE_BENCH_LEGACY_CLASSIFIER_H_

// The pre-streaming PatternClassifier (PRs 1-7), preserved verbatim as
// the differential oracle for the streaming classifier (DESIGN.md §13) —
// the same discipline as bench/legacy_planner.h for the indexed planners.
//
// Behaviourally frozen: per period it replays the whole captured
// LogicalTraceBuffer in one streaming pass against per-item scratch,
// materialises every item's Long-Interval list in a per-item vector,
// accumulates the mean Long Interval as a flat double sum in item order,
// and runs a second trace pass to bucket the P3 IOPS series for I_max.
// Its per-period cost is O(trace + catalog) with one heap allocation per
// episodic item — the cost profile the streaming pipeline removes. Only
// the result container changed with the compaction of
// core::ItemClassification: the interval values live in local scratch
// here and the emitted count/mean are computed exactly as before.
//
// Do not optimise this file; it is a reference, not a hot path.

#include <algorithm>
#include <cassert>
#include <vector>

#include "common/sim_time.h"
#include "core/pattern_classifier.h"
#include "storage/data_item.h"
#include "trace/trace_buffer.h"
#include "trace/trace_stats.h"

namespace ecostore::bench {

class LegacyPatternClassifier {
 public:
  using Options = core::PatternClassifier::Options;

  explicit LegacyPatternClassifier(const Options& options)
      : options_(options) {}

  const Options& options() const { return options_; }

  core::ClassificationResult Classify(
      const trace::LogicalTraceBuffer& buffer,
      const storage::DataItemCatalog& catalog, SimTime period_start,
      SimTime period_end) const {
    assert(period_end >= period_start);
    core::ClassificationResult result;
    const size_t n_items = catalog.item_count();
    result.items.resize(n_items);

    // One streaming pass over the trace, which must be time-ordered per
    // item. Per item, a gap between consecutive I/Os (including the
    // leading gap from the period start) strictly longer than the
    // break-even time is a Long Interval (paper §IV-B Steps 1-2).
    Scratch& s = scratch_;
    s.state.assign(n_items, ItemState{period_start, 0, 0, 0, 0, 0});
    s.long_intervals.resize(n_items);
    for (std::vector<SimDuration>& v : s.long_intervals) v.clear();
    for (const trace::LogicalIoRecord& rec : buffer.records()) {
      if (rec.item < 0 || static_cast<size_t>(rec.item) >= n_items) {
        continue;  // unknown item: not classifiable
      }
      auto idx = static_cast<size_t>(rec.item);
      ItemState& st = s.state[idx];
      assert(rec.time >= st.last_time);
      SimDuration gap = rec.time - st.last_time;
      if (gap > options_.break_even) {
        s.long_intervals[idx].push_back(gap);
      }
      if (st.reads + st.writes == 0 || gap > options_.break_even) {
        st.sequences++;
      }
      if (rec.is_read()) {
        st.reads++;
        st.read_bytes += rec.size;
      } else {
        st.writes++;
        st.write_bytes += rec.size;
      }
      st.last_time = rec.time;
    }

    double period_seconds = ToSeconds(period_end - period_start);
    double long_interval_sum = 0.0;
    int64_t long_interval_count = 0;
    s.is_p3.assign(n_items, 0);
    bool any_p3 = false;

    for (size_t i = 0; i < n_items; ++i) {
      const ItemState& st = s.state[i];
      std::vector<SimDuration>& intervals = s.long_intervals[i];
      core::ItemClassification& cls = result.items[i];
      cls.item = static_cast<DataItemId>(i);
      cls.size_bytes = catalog.item(cls.item).size_bytes;
      cls.reads = st.reads;
      cls.writes = st.writes;
      cls.read_bytes = st.read_bytes;
      cls.write_bytes = st.write_bytes;
      cls.io_sequences = st.sequences;

      if (cls.total_ios() == 0) {
        // An untouched item has the single full-period Long Interval.
        intervals.push_back(period_end - period_start);
      } else {
        SimDuration trailing = period_end - st.last_time;
        if (trailing > options_.break_even) {
          intervals.push_back(trailing);
        }
      }
      cls.avg_iops =
          period_seconds > 0
              ? static_cast<double>(cls.total_ios()) / period_seconds
              : 0.0;
      cls.long_interval_count = static_cast<int64_t>(intervals.size());

      for (SimDuration li : intervals) {
        long_interval_sum += static_cast<double>(li);
        long_interval_count++;
      }

      // Paper §IV-B Step 3.
      if (cls.total_ios() == 0) {
        cls.pattern = core::IoPattern::kP0;
      } else if (intervals.empty()) {
        cls.pattern = core::IoPattern::kP3;
        s.is_p3[i] = 1;
        any_p3 = true;
      } else if (cls.reads * 2 > cls.total_ios()) {
        cls.pattern = core::IoPattern::kP1;
      } else {
        cls.pattern = core::IoPattern::kP2;
      }
      result.pattern_counts[static_cast<size_t>(cls.pattern)]++;
    }

    if (long_interval_count > 0) {
      result.mean_long_interval = static_cast<SimDuration>(
          long_interval_sum / static_cast<double>(long_interval_count));
    }

    // Aggregate IOPS series of the P3 items -> I_max (paper §IV-C Step 1).
    // Second pass over the trace.
    if (any_p3) {
      trace::IopsSeries p3_series(
          period_start, std::max(period_end, period_start + 1),
          options_.iops_bucket);
      for (const trace::LogicalIoRecord& rec : buffer.records()) {
        if (rec.item < 0 || static_cast<size_t>(rec.item) >= n_items) {
          continue;
        }
        if (s.is_p3[static_cast<size_t>(rec.item)]) {
          p3_series.AddOrdered(rec.time);
        }
      }
      result.p3_max_iops = p3_series.MaxIops();
    }
    return result;
  }

 private:
  struct ItemState {
    SimTime last_time = 0;
    int32_t reads = 0;
    int32_t writes = 0;
    int32_t sequences = 0;
    int64_t read_bytes = 0;
    int64_t write_bytes = 0;
  };

  struct Scratch {
    std::vector<ItemState> state;
    /// One Long-Interval vector per item — the per-item heap allocation
    /// the compacted result type removed.
    std::vector<std::vector<SimDuration>> long_intervals;
    std::vector<uint8_t> is_p3;
  };

  Options options_;
  mutable Scratch scratch_;
};

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_LEGACY_CLASSIFIER_H_
