#ifndef ECOSTORE_BENCH_LEGACY_SIMULATOR_H_
#define ECOSTORE_BENCH_LEGACY_SIMULATOR_H_

// The pre-rewrite discrete-event engine, kept verbatim (header-inlined)
// as the regression reference for the simulator microbenchmarks — the
// same pattern as bench/legacy_cache.h. Its heap entries carry the
// std::function callback directly, so every push_heap/pop_heap sift
// moves 48+ bytes including a std::function; the rewritten engine keeps
// callbacks parked in the slot slab and sifts 24-byte POD keys instead.
//
// Do NOT evolve this copy: it exists so BENCH_perf.json can compare the
// current engine against the exact seed behaviour on the same machine.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace ecostore::legacy {

using EventId = uint64_t;

/// The PR-2 simulator: move-only heap entries holding the callback,
/// generation-tagged slots for O(1) cancellation.
class LegacySimulator {
 public:
  using Callback = std::function<void()>;

  LegacySimulator() = default;
  LegacySimulator(const LegacySimulator&) = delete;
  LegacySimulator& operator=(const LegacySimulator&) = delete;

  SimTime Now() const { return now_; }

  EventId ScheduleAt(SimTime when, Callback cb) {
    if (when < now_) when = now_;
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.push_back(SlotState{});
    }
    queue_.push_back(Entry{when, next_seq_++, slot, std::move(cb)});
    std::push_heap(queue_.begin(), queue_.end(), Later);
    live_++;
    return EncodeId(slot, slots_[slot].generation);
  }

  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    if (delay < 0) delay = 0;
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  bool Cancel(EventId id) {
    uint64_t slot_plus_one = id >> 32;
    if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return false;
    auto slot = static_cast<uint32_t>(slot_plus_one - 1);
    SlotState& state = slots_[slot];
    if (state.generation != static_cast<uint32_t>(id)) return false;
    if (state.cancelled) return false;
    state.cancelled = true;
    live_--;
    return true;
  }

  int64_t RunUntil(SimTime deadline) {
    int64_t executed = 0;
    while (!queue_.empty()) {
      if (queue_.front().when > deadline) break;
      Entry entry = PopTop();
      bool cancelled = slots_[entry.slot].cancelled;
      ReleaseSlot(entry.slot);
      if (cancelled) continue;
      live_--;
      now_ = entry.when;
      entry.cb();
      executed++;
    }
    if (now_ < deadline) now_ = deadline;
    return executed;
  }

  int64_t RunAll() {
    int64_t executed = 0;
    while (!queue_.empty()) {
      Entry entry = PopTop();
      bool cancelled = slots_[entry.slot].cancelled;
      ReleaseSlot(entry.slot);
      if (cancelled) continue;
      live_--;
      now_ = entry.when;
      entry.cb();
      executed++;
    }
    return executed;
  }

  size_t PendingEvents() const { return live_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    Callback cb;
  };

  struct SlotState {
    uint32_t generation = 0;
    bool cancelled = false;
  };

  static bool Later(const Entry& a, const Entry& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static EventId EncodeId(uint32_t slot, uint32_t generation) {
    return (static_cast<EventId>(slot + 1) << 32) | generation;
  }

  Entry PopTop() {
    std::pop_heap(queue_.begin(), queue_.end(), Later);
    Entry entry = std::move(queue_.back());
    queue_.pop_back();
    return entry;
  }

  void ReleaseSlot(uint32_t slot) {
    SlotState& state = slots_[slot];
    state.generation++;
    state.cancelled = false;
    free_slots_.push_back(slot);
  }

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  std::vector<Entry> queue_;
  std::vector<SlotState> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace ecostore::legacy

#endif  // ECOSTORE_BENCH_LEGACY_SIMULATOR_H_
