#ifndef ECOSTORE_BENCH_REPLAY_CHECK_H_
#define ECOSTORE_BENCH_REPLAY_CHECK_H_

// Bit-identical replay regression gate for the per-I/O hot path.
//
// `bench_micro --record` replays a shortened version of every
// (workload, policy) pair of the bench_sweep grid and writes one 64-bit
// fingerprint of each run's ExperimentMetrics to bench/golden_replay.txt.
// `bench_micro --check` (registered as the `bench_replay_check` ctest)
// re-runs the grid and fails on any fingerprint mismatch, so a change
// that alters cache residency decisions, flush-demand aggregation,
// event ordering or energy accounting — however subtly — fails tier-1.
//
// The fingerprint folds in every deterministic field of the metrics.
// Two kinds of ordering are explicitly *not* part of the contract:
//  - idle_gaps are hashed as a sorted multiset: gap *values* are
//    physical, but their report order within one flush batch depends on
//    the cache's internal demand order;
//  - energy/power figures are quantized to 12 significant digits before
//    hashing: the energy integral accrues per physical submission, so
//    reordering same-time flush demands of one batch re-associates the
//    same FP addends and moves the last couple of ULPs. Every discrete
//    counter (I/O counts, spin-ups, migrations, histogram counts, gap
//    values) is still hashed exactly, so any real behaviour change —
//    which necessarily shifts those — fails the gate.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/sweep_config.h"
#include "replay/metrics.h"
#include "replay/suite.h"
#include "telemetry/analysis/latency_histogram.h"
#include "telemetry/analysis/rolling_summary.h"
#include "telemetry/profile/profiler.h"
#include "telemetry/recorder.h"
#include "telemetry/stream_consumer.h"

namespace ecostore::bench {

class Fnv1a {
 public:
  void Bytes(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 1099511628211ull;
    }
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }
  /// Hashes a double through a 12-significant-digit decimal rendering,
  /// discarding summation-order ULP noise (see file header).
  void QuantF64(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    Bytes(buf, std::strlen(buf));
  }
  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 1469598103934665603ull;
};

inline void HashHistogram(const Histogram& h, Fnv1a* fnv) {
  fnv->I64(h.count());
  fnv->F64(h.sum());
  fnv->I64(h.min());
  fnv->I64(h.max());
  fnv->F64(h.Quantile(0.5));
  fnv->F64(h.Quantile(0.95));
  fnv->F64(h.Quantile(0.99));
}

/// Order-stable 64-bit digest of everything an experiment measured.
inline uint64_t MetricsFingerprint(const replay::ExperimentMetrics& m) {
  Fnv1a fnv;
  fnv.Str(m.workload);
  fnv.Str(m.policy);
  fnv.I64(m.duration);
  fnv.QuantF64(m.enclosure_energy);
  fnv.QuantF64(m.controller_energy);
  fnv.QuantF64(m.avg_enclosure_power);
  fnv.QuantF64(m.avg_controller_power);
  fnv.QuantF64(m.avg_total_power);
  HashHistogram(m.response_us, &fnv);
  HashHistogram(m.read_response_us, &fnv);
  fnv.F64(m.avg_response_ms);
  fnv.F64(m.avg_read_response_ms);
  fnv.I64(m.logical_ios);
  fnv.I64(m.logical_reads);
  fnv.I64(m.physical_batches);
  fnv.I64(m.cache_hit_ios);
  fnv.I64(m.migrated_bytes);
  fnv.I64(m.item_migrations);
  fnv.I64(m.block_migrations);
  fnv.I64(m.placement_determinations);
  fnv.I64(m.spinups);
  // Four passes over the merged per-tag map, emitting the exact byte
  // stream of the four separate maps it replaced (goldens predate the
  // merge). Tags without reads had no entry in the old sum/count maps,
  // hence the reads>0 filter on the first two passes.
  for (const auto& [tag, stats] : m.tag_stats) {
    if (stats.reads == 0) continue;
    fnv.I64(tag);
    fnv.F64(stats.read_response_us_sum);
  }
  for (const auto& [tag, stats] : m.tag_stats) {
    if (stats.reads == 0) continue;
    fnv.I64(tag);
    fnv.I64(stats.reads);
  }
  for (const auto& [tag, stats] : m.tag_stats) {
    fnv.I64(tag);
    fnv.I64(stats.first_issue);
  }
  for (const auto& [tag, stats] : m.tag_stats) {
    fnv.I64(tag);
    fnv.I64(stats.last_completion);
  }
  std::vector<SimDuration> gaps = m.idle_gaps;
  std::sort(gaps.begin(), gaps.end());
  fnv.U64(gaps.size());
  for (SimDuration g : gaps) fnv.I64(g);
  fnv.U64(m.per_enclosure.size());
  for (const auto& e : m.per_enclosure) {
    fnv.QuantF64(e.energy);
    fnv.I64(e.served_ios);
    fnv.I64(e.spinups);
    fnv.F64(e.utilization);
  }
  return fnv.hash();
}

struct ReplayCheckRun {
  std::string label;
  uint64_t fingerprint = 0;
};

/// Prints every fingerprinted field of one run — the debugging companion
/// to MetricsFingerprint for localising a check divergence. Enabled by
/// setting ECOSTORE_REPLAY_DUMP to a substring of the run labels.
inline void DumpMetrics(const std::string& label,
                        const replay::ExperimentMetrics& m) {
  std::printf("=== %s\n", label.c_str());
  std::printf("dur=%lld encE=%.17g ctlE=%.17g avgEncP=%.17g avgTotP=%.17g\n",
              static_cast<long long>(m.duration), m.enclosure_energy,
              m.controller_energy, m.avg_enclosure_power, m.avg_total_power);
  std::printf("resp: n=%lld sum=%.17g min=%lld max=%lld q50=%.17g q99=%.17g\n",
              static_cast<long long>(m.response_us.count()),
              m.response_us.sum(), static_cast<long long>(m.response_us.min()),
              static_cast<long long>(m.response_us.max()),
              m.response_us.Quantile(0.5), m.response_us.Quantile(0.99));
  std::printf("rresp: n=%lld sum=%.17g\n",
              static_cast<long long>(m.read_response_us.count()),
              m.read_response_us.sum());
  std::printf("lios=%lld lreads=%lld phys=%lld hits=%lld migB=%lld migI=%lld "
              "migBlk=%lld pdet=%lld spin=%lld\n",
              static_cast<long long>(m.logical_ios),
              static_cast<long long>(m.logical_reads),
              static_cast<long long>(m.physical_batches),
              static_cast<long long>(m.cache_hit_ios),
              static_cast<long long>(m.migrated_bytes),
              static_cast<long long>(m.item_migrations),
              static_cast<long long>(m.block_migrations),
              static_cast<long long>(m.placement_determinations),
              static_cast<long long>(m.spinups));
  std::vector<SimDuration> gaps = m.idle_gaps;
  std::sort(gaps.begin(), gaps.end());
  std::printf("gaps n=%zu:", gaps.size());
  for (SimDuration g : gaps) std::printf(" %lld", static_cast<long long>(g));
  std::printf("\n");
  for (const auto& e : m.per_enclosure) {
    std::printf("enc: E=%.17g ios=%lld spin=%lld util=%.17g\n", e.energy,
                static_cast<long long>(e.served_ios),
                static_cast<long long>(e.spinups), e.utilization);
  }
}

/// Sim duration of each check run: long enough for two EcoStoragePolicy
/// monitoring periods (520 s each) plus spin-down/preload activity,
/// short enough that the whole 26-run grid stays ctest-friendly.
inline constexpr SimDuration kReplayCheckDuration = 20 * kMinute;

/// Replays the full bench_sweep grid at the check duration and returns
/// one fingerprint per (row, policy) pair, in sweep print order.
/// `shards` > 1 replays every run on the sharded engine (its own golden
/// file: sharded FP reductions re-associate, so shards=S fingerprints
/// are self-consistent but not comparable to the serial goldens).
inline Result<std::vector<ReplayCheckRun>> RunReplayCheckSuite(
    int shards = 1) {
  workload::FileServerConfig wl;
  wl.duration = kReplayCheckDuration;
  std::vector<SweepSection> sections = SweepSections(wl);
  std::vector<replay::ExperimentJob> jobs = SweepJobs(sections);
  std::vector<std::string> labels = SweepJobLabels(sections);

  // Every gate job runs with a telemetry recorder attached (full class
  // mask) AND a latency book, so passing the gate proves an instrumented
  // replay — including the analyzer's spun-down state probes — stays
  // bit-identical to the goldens; the goldens themselves were recorded
  // the same way, and observation must never change the outcome. In an
  // ECOSTORE_TELEMETRY=OFF build the recorders are empty stubs and the
  // same fingerprints must still come out.
  //
  // Each job additionally attaches the live streaming pipeline (a
  // StreamDispatcher feeding a RollingSummary consumer): the engine pumps
  // the recorder mid-run, the incremental ledger folds every window, and
  // the fingerprints must STILL match goldens recorded without any
  // consumer — the acceptance bar for live observability is that
  // watching a replay cannot change it.
  // Each job also attaches a wall-clock phase profiler (DESIGN.md §15):
  // the gate thereby proves that profiling a replay — serial or sharded —
  // cannot change its results. In an ECOSTORE_PROFILE=OFF build the
  // profilers are empty stubs and the same fingerprints must come out.
  std::vector<std::unique_ptr<telemetry::Recorder>> recorders;
  std::vector<std::unique_ptr<telemetry::analysis::LatencyBook>> books;
  std::vector<std::unique_ptr<telemetry::StreamDispatcher>> streams;
  std::vector<std::unique_ptr<telemetry::analysis::RollingSummary>> rollers;
  std::vector<std::unique_ptr<telemetry::profile::Profiler>> profilers;
  recorders.reserve(jobs.size());
  books.reserve(jobs.size());
  streams.reserve(jobs.size());
  rollers.reserve(jobs.size());
  profilers.reserve(jobs.size());
  for (replay::ExperimentJob& job : jobs) {
    telemetry::Recorder::Options options;
    options.mask = telemetry::kClassAll;
    recorders.push_back(std::make_unique<telemetry::Recorder>(options));
    books.push_back(std::make_unique<telemetry::analysis::LatencyBook>());
    job.config.telemetry = recorders.back().get();
    job.config.latency_book = books.back().get();

    telemetry::ExportMeta pre_meta;  // identity filled post-run; unused here
    pre_meta.duration = kReplayCheckDuration;
    telemetry::analysis::RollingSummary::Options ropt;
    ropt.window_us = 5 * kMinute;
    ropt.retention = 4;  // bounded on purpose: the gate only needs folding
    rollers.push_back(std::make_unique<telemetry::analysis::RollingSummary>(
        pre_meta, ropt));
    streams.push_back(std::make_unique<telemetry::StreamDispatcher>());
    streams.back()->AddConsumer(rollers.back().get());
    job.config.stream = streams.back().get();
    job.config.stream_window_us = ropt.window_us;

    profilers.push_back(std::make_unique<telemetry::profile::Profiler>());
    job.config.profiler = profilers.back().get();
  }

  // One suite worker on purpose: the gate compares bit-exact
  // fingerprints, so it must not depend on the cross-experiment thread
  // pool (PR 1 proved parallel == serial, but the gate should not assume
  // what it could itself be testing). The sharded engine's own worker
  // count is result-invariant by contract, which the shards>1 gate
  // exercises on every CI run.
  replay::SuiteOptions suite_options{1};
  suite_options.shards = shards;
  auto runs = replay::RunExperiments(jobs, suite_options);
  if (!runs.ok()) return runs.status();

  const char* dump = std::getenv("ECOSTORE_REPLAY_DUMP");
  std::vector<ReplayCheckRun> out;
  for (size_t i = 0; i < runs.value().size(); ++i) {
    if (dump != nullptr && labels[i].find(dump) != std::string::npos) {
      DumpMetrics(labels[i], runs.value()[i]);
    }
    out.push_back(ReplayCheckRun{labels[i],
                                 MetricsFingerprint(runs.value()[i])});
  }
  return out;
}

inline bool SaveGoldenFingerprints(const std::string& path,
                                   const std::vector<ReplayCheckRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f,
               "# Golden ExperimentMetrics fingerprints for "
               "`bench_micro --check` (see bench/replay_check.h).\n"
               "# Regenerate with `bench_micro --record` ONLY when a "
               "behaviour change is intended and reviewed.\n");
  for (const ReplayCheckRun& run : runs) {
    std::fprintf(f, "%016llx %s\n",
                 static_cast<unsigned long long>(run.fingerprint),
                 run.label.c_str());
  }
  std::fclose(f);
  return true;
}

inline bool LoadGoldenFingerprints(const std::string& path,
                                   std::vector<ReplayCheckRun>* runs) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  runs->clear();
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '\n') continue;
    unsigned long long fp = 0;
    int consumed = 0;
    if (std::sscanf(line, "%llx %n", &fp, &consumed) != 1) continue;
    std::string label(line + consumed);
    while (!label.empty() && (label.back() == '\n' || label.back() == '\r')) {
      label.pop_back();
    }
    runs->push_back(ReplayCheckRun{label, fp});
  }
  std::fclose(f);
  return true;
}

/// Runs the grid and compares against the goldens at `path`. Returns the
/// process exit code (0 == bit-identical).
inline int ReplayCheckMain(const std::string& path, bool record,
                           int shards = 1) {
  auto runs = RunReplayCheckSuite(shards);
  if (!runs.ok()) {
    std::fprintf(stderr, "replay check suite failed: %s\n",
                 runs.status().ToString().c_str());
    return 1;
  }
  if (record) {
    if (!SaveGoldenFingerprints(path, runs.value())) {
      std::fprintf(stderr, "cannot write goldens to %s\n", path.c_str());
      return 1;
    }
    std::printf("recorded %zu golden fingerprints -> %s\n",
                runs.value().size(), path.c_str());
    return 0;
  }
  std::vector<ReplayCheckRun> golden;
  if (!LoadGoldenFingerprints(path, &golden)) {
    std::fprintf(stderr,
                 "cannot read goldens from %s (run `bench_micro --record` "
                 "from the repo root first)\n",
                 path.c_str());
    return 1;
  }
  if (golden.size() != runs.value().size()) {
    std::fprintf(stderr, "golden count %zu != run count %zu\n",
                 golden.size(), runs.value().size());
    return 1;
  }
  int mismatches = 0;
  for (size_t i = 0; i < golden.size(); ++i) {
    const ReplayCheckRun& want = golden[i];
    const ReplayCheckRun& got = runs.value()[i];
    if (want.label != got.label || want.fingerprint != got.fingerprint) {
      std::fprintf(stderr,
                   "MISMATCH [%zu]: golden %016llx (%s) vs got %016llx "
                   "(%s)\n",
                   i, static_cast<unsigned long long>(want.fingerprint),
                   want.label.c_str(),
                   static_cast<unsigned long long>(got.fingerprint),
                   got.label.c_str());
      mismatches++;
    }
  }
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "%d of %zu replay fingerprints diverged from golden — the "
                 "per-I/O hot path changed observable behaviour\n",
                 mismatches, golden.size());
    return 1;
  }
  std::printf("replay check: %zu/%zu fingerprints bit-identical\n",
              golden.size(), golden.size());
  return 0;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_REPLAY_CHECK_H_
