#ifndef ECOSTORE_BENCH_SWEEP_CONFIG_H_
#define ECOSTORE_BENCH_SWEEP_CONFIG_H_

// The sensitivity-sweep configuration grid shared by bench_sweep (the
// figure run) and bench_micro --check/--record (the bit-identical replay
// regression gate). Keeping one definition guarantees the perf gate
// covers exactly the (workload, policy) pairs the sweep reports.

#include <memory>
#include <string>
#include <vector>

#include "core/eco_storage_policy.h"
#include "core/power_management.h"
#include "policies/basic_policies.h"
#include "replay/suite.h"
#include "storage/storage_config.h"
#include "workload/file_server_workload.h"

namespace ecostore::bench {

struct SweepRowSpec {
  std::string label;
  workload::FileServerConfig wl;
  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;
};

struct SweepSection {
  std::string title;
  std::vector<SweepRowSpec> rows;
};

/// The paper-conclusion configuration study: preload-area size, spin-down
/// timeout, array width, and HDD vs SSD media. `base` carries the
/// workload duration (and any other file-server overrides) applied to
/// every row.
inline std::vector<SweepSection> SweepSections(
    const workload::FileServerConfig& base) {
  std::vector<SweepSection> sections;

  // --- 1. preload area --------------------------------------------------
  {
    SweepSection section;
    section.title = "[sweep 1] preload-area size:";
    for (int64_t mb : {0, 125, 250, 500, 1000}) {
      SweepRowSpec row;
      row.label = "preload area " + std::to_string(mb) + " MiB";
      row.wl = base;
      if (mb == 0) {
        row.pm.enable_preload = false;
      } else {
        row.config.storage.cache.preload_area_bytes = mb * kMiB;
      }
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 2. spin-down timeout --------------------------------------------
  {
    SweepSection section;
    section.title = "[sweep 2] spin-down timeout (break-even 52 s):";
    for (int seconds : {13, 26, 52, 104, 208}) {
      SweepRowSpec row;
      row.label = "spin-down timeout " + std::to_string(seconds) + " s";
      row.wl = base;
      row.config.storage.enclosure.spindown_timeout = seconds * kSecond;
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 3. array width ---------------------------------------------------
  {
    SweepSection section;
    section.title = "[sweep 3] array width:";
    for (int enclosures : {6, 12, 24}) {
      SweepRowSpec row;
      row.label = std::to_string(enclosures) + " enclosures";
      row.wl = base;
      row.wl.num_enclosures = enclosures;
      // Keep total data within capacity when the array shrinks.
      row.wl.archive_files = enclosures * 13;
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 4. HDD vs SSD (paper §VIII-D) -------------------------------------
  {
    SweepSection section;
    section.title = "[sweep 4] media type:";
    {
      SweepRowSpec row;
      row.label = "HDD enclosures (break-even 52 s)";
      row.wl = base;
      row.config.storage.enclosure = storage::EnterpriseHddEnclosureConfig();
      section.rows.push_back(std::move(row));
    }
    {
      SweepRowSpec row;
      row.label = "SSD enclosures (break-even ~2 s)";
      row.wl = base;
      row.config.storage.enclosure = storage::SsdEnclosureConfig();
      row.pm.break_even = row.config.storage.enclosure.BreakEvenTime();
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  return sections;
}

/// Flattens the sections into independent experiment jobs: per row the
/// no-power-saving reference followed by the proposed method (the order
/// bench_sweep prints them in).
inline std::vector<replay::ExperimentJob> SweepJobs(
    const std::vector<SweepSection>& sections) {
  auto file_server_factory = [](const workload::FileServerConfig& wl) {
    return [wl]() -> Result<std::unique_ptr<workload::Workload>> {
      auto workload = workload::FileServerWorkload::Create(wl);
      if (!workload.ok()) return workload.status();
      return std::unique_ptr<workload::Workload>(std::move(workload).value());
    };
  };

  std::vector<replay::ExperimentJob> jobs;
  for (const SweepSection& section : sections) {
    for (const SweepRowSpec& row : section.rows) {
      replay::ExperimentJob base;
      base.workload = file_server_factory(row.wl);
      base.policy = [] {
        return std::make_unique<policies::NoPowerSavingPolicy>();
      };
      base.config = row.config;
      jobs.push_back(std::move(base));

      replay::ExperimentJob eco;
      eco.workload = file_server_factory(row.wl);
      core::PowerManagementConfig pm = row.pm;
      eco.policy = [pm] {
        return std::make_unique<core::EcoStoragePolicy>(pm);
      };
      eco.config = row.config;
      jobs.push_back(std::move(eco));
    }
  }
  return jobs;
}

/// Row-major labels matching SweepJobs order.
inline std::vector<std::string> SweepJobLabels(
    const std::vector<SweepSection>& sections) {
  std::vector<std::string> labels;
  for (const SweepSection& section : sections) {
    for (const SweepRowSpec& row : section.rows) {
      labels.push_back(row.label + " / no_power_saving");
      labels.push_back(row.label + " / eco_storage");
    }
  }
  return labels;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_SWEEP_CONFIG_H_
