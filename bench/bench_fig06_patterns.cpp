// Reproduces paper Fig. 6: the Logical I/O Pattern mix of the three data
// intensive applications, measured over a full run, plus the §VI-C
// pattern-stability observation (per-period mixes).
//
// Paper values: File Server 89.6% P1 / 9.9% P3; TPC-C 76.2% P3 / 23.3% P1;
// TPC-H 61.5% P1 / 38.5% P2; no P0 anywhere over a full run.

#include <iostream>

#include "bench/bench_util.h"
#include "core/pattern_classifier.h"
#include "replay/report.h"
#include "workload/dss_workload.h"
#include "workload/file_server_workload.h"
#include "workload/oltp_workload.h"

using namespace ecostore;  // NOLINT

namespace {

core::ClassificationResult ClassifyFullRun(workload::Workload& workload) {
  trace::LogicalTraceBuffer buffer;
  trace::LogicalIoRecord rec;
  workload.Reset();
  while (workload.Next(&rec)) buffer.Append(rec);
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  return classifier.Classify(buffer, workload.catalog(), 0,
                             workload.info().duration);
}

void StabilityReport(workload::Workload& workload, SimDuration period) {
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  trace::LogicalTraceBuffer buffer;
  trace::LogicalIoRecord rec;
  workload.Reset();
  SimTime period_start = 0;
  int shown = 0;
  while (workload.Next(&rec) && shown < 6) {
    while (rec.time >= period_start + period && shown < 6) {
      auto result = classifier.Classify(buffer, workload.catalog(),
                                        period_start, period_start + period);
      replay::PrintPatternMix(std::cout,
                              "  period " + std::to_string(shown), result);
      buffer.Clear();
      period_start += period;
      shown++;
    }
    buffer.Append(rec);
  }
}

}  // namespace

int main() {
  bench::InitBenchLogging();
  bench::PrintHeader("Fig. 6 — Logical I/O Patterns per application",
                     "FS 89.6% P1 / 9.9% P3; TPC-C 76.2% P3 / 23.3% P1; "
                     "TPC-H 61.5% P1 / 38.5% P2");

  {
    workload::FileServerConfig config;
    config.duration = bench::MaybeShorten(6 * kHour, 60 * kMinute);
    auto workload = workload::FileServerWorkload::Create(config);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    replay::PrintPatternMix(std::cout, "file_server",
                            ClassifyFullRun(*workload.value()));
  }
  {
    workload::OltpConfig config;
    config.duration =
        bench::MaybeShorten(static_cast<SimDuration>(1.8 * kHour),
                            30 * kMinute);
    auto workload = workload::OltpWorkload::Create(config);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    replay::PrintPatternMix(std::cout, "oltp_tpcc",
                            ClassifyFullRun(*workload.value()));
  }
  {
    workload::DssConfig config;
    config.duration = bench::MaybeShorten(6 * kHour, 90 * kMinute);
    if (bench::QuickMode()) config.scale = 0.1;
    auto workload = workload::DssWorkload::Create(config);
    if (!workload.ok()) {
      std::cerr << workload.status().ToString() << "\n";
      return 1;
    }
    replay::PrintPatternMix(std::cout, "dss_tpch",
                            ClassifyFullRun(*workload.value()));
  }

  // §VI-C: the paper notes the patterns are stable while the application
  // runs; show consecutive monitoring-period mixes for the file server.
  std::cout << "\npattern stability (file server, 520 s periods):\n";
  {
    workload::FileServerConfig config;
    config.duration = 60 * kMinute;
    auto workload = workload::FileServerWorkload::Create(config);
    if (workload.ok()) StabilityReport(*workload.value(), 520 * kSecond);
  }
  return 0;
}
