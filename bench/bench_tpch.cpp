// Reproduces paper Figs. 14-16 and 19 (TPC-H / DSS): power, query
// response times (Q2 / Q7 / Q21), migrated data and the long-interval
// curve.
//
// Paper values: power 2191.2 W -> proposed 638.8 W (-70.8%), PDC -55.9%,
// DDR -69.9%; query responses worse for all methods with DDR ~3x the
// proposed method; determinations 10 / 8 / ~205k.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"
#include "bench/telemetry_capture.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/dss_workload.h"

using namespace ecostore;  // NOLINT

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const int threads = bench::ParseThreadsFlag(argc, argv);
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  // --capture-only skips the four-policy figure suite and runs just the
  // instrumented capture: what the CI regression gate wants.
  const bool capture_only =
      bench::HasFlag(argc, argv, "--capture-only") && !telemetry_base.empty();
  bench::PrintHeader("Figs. 14-16, 19 — TPC-H (DSS)",
                     "all methods save >50%; proposed & DDR ~70%, PDC "
                     "~56%; DDR's responses worst");

  workload::DssConfig wl_config;
  wl_config.duration = bench::MaybeShorten(6 * kHour, 90 * kMinute);
  if (bench::QuickMode()) wl_config.scale = 0.2;

  if (capture_only) {
    replay::ExperimentConfig config;
    core::PowerManagementConfig pm;
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::DssWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    // DSS scans are I/O-dense like OLTP: give the capture the large
    // ring so the ledger sees the whole run.
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path, 1u << 23);
  }

  auto workload = workload::DssWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;
  // Serial (default) keeps the original shared-instance replay;
  // --threads=N>1 runs the four policies concurrently, each against its
  // own deterministic workload clone (identical trace, same figures).
  Result<std::vector<replay::ExperimentMetrics>> runs =
      std::vector<replay::ExperimentMetrics>{};
  if (threads <= 1) {
    runs = replay::RunSuite(workload.value().get(),
                            replay::PaperPolicySet(pm), config);
  } else {
    replay::WorkloadFactory clone =
        [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto w = workload::DssWorkload::Create(wl_config);
      if (!w.ok()) return w.status();
      return std::unique_ptr<workload::Workload>(std::move(w).value());
    };
    runs = replay::ParallelRunSuite(clone, replay::PaperPolicySet(pm),
                                    config, replay::SuiteOptions{threads});
  }
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\n[Fig. 14] average power:\n";
  replay::PrintPowerTable(std::cout, runs.value());

  std::cout << "\n[Fig. 15] query response [s], measured wall time (first "
               "issue -> last I/O completion):\n";
  std::printf("  %-18s %10s %10s %10s\n", "policy", "Q2", "Q7", "Q21");
  for (const replay::ExperimentMetrics& m : runs.value()) {
    auto wall = replay::MeasuredQueryWallSeconds(m);
    std::printf("  %-18s %10.1f %10.1f %10.1f\n", m.policy.c_str(), wall[2],
                wall[7], wall[21]);
  }

  const replay::ExperimentMetrics* base =
      replay::FindRun(runs.value(), "no_power_saving");
  std::cout << "\n[Fig. 15b] query response [s], scaled by read-response "
               "sums (paper \xC2\xA7VII-A.5 model; inflates under "
               "open-loop spin-up stalls — see EXPERIMENTS.md):\n";
  {
    std::map<int32_t, double> q_orig;
    const auto& seconds = workload.value()->query_wall_seconds();
    for (int q = 1; q <= workload::DssWorkload::kNumQueries; ++q) {
      q_orig[q] = seconds[static_cast<size_t>(q)];
    }
    std::printf("  %-18s %10s %10s %10s\n", "policy", "Q2", "Q7", "Q21");
    for (const replay::ExperimentMetrics& m : runs.value()) {
      auto scaled = replay::ScaledQueryResponses(q_orig, *base, m);
      std::printf("  %-18s %10.1f %10.1f %10.1f\n", m.policy.c_str(),
                  scaled[2], scaled[7], scaled[21]);
    }
  }

  std::cout << "\n[Fig. 16 + \xC2\xA7VII-D] migrated data / "
               "determinations:\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  std::cout << "\n[Fig. 19] cumulative idle-interval length by threshold:\n";
  replay::PrintIntervalCdf(
      std::cout, runs.value(),
      {10 * kSecond, 52 * kSecond, 2 * kMinute, 10 * kMinute,
       30 * kMinute});

  if (!telemetry_base.empty()) {
    // One extra instrumented run of the proposed method, after the
    // figures so the capture shares nothing with them.
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::DssWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path);
  }
  return 0;
}
