#ifndef ECOSTORE_BENCH_LEGACY_CACHE_H_
#define ECOSTORE_BENCH_LEGACY_CACHE_H_

// The pre-PR-2 StorageCache, kept verbatim (modulo inline/namespace) as
// the in-run regression reference for bench_micro: an unordered_map
// block index plus a node-allocating std::list LRU, and freshly
// allocated demand vectors on every call. The cache-mix benchmark runs
// the identical operation stream through this model and through the
// current slab cache, asserts that every aggregate agrees, and reports
// both throughputs to BENCH_perf.json — the same pattern as PR 1's
// ClassifyLegacy reference.

#include <algorithm>
#include <cassert>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/storage_config.h"

namespace ecostore::legacy {

struct FlushDemand {
  DataItemId item = kInvalidDataItem;
  int64_t blocks = 0;
  int64_t bytes = 0;
};

class LegacyStorageCache {
 public:
  struct ReadOutcome {
    int64_t hit_blocks = 0;
    int64_t miss_blocks = 0;
    std::vector<FlushDemand> eviction_flushes;

    bool fully_hit() const { return miss_blocks == 0; }
  };

  struct WriteOutcome {
    bool write_delayed = false;
    std::vector<FlushDemand> destage;
  };

  explicit LegacyStorageCache(const storage::CacheConfig& config)
      : config_(config) {
    general_capacity_blocks_ =
        std::max<int64_t>(1, config_.general_area_bytes() / config_.block_size);
    wd_capacity_blocks_ = std::max<int64_t>(
        1, config_.write_delay_area_bytes / config_.block_size);
  }

  ReadOutcome Read(DataItemId item, int64_t offset, int32_t size) {
    ReadOutcome out;
    int64_t first = FirstBlock(offset);
    int64_t last = LastBlock(offset, size);
    bool preloaded = IsPreloaded(item);
    auto wd_it = wd_dirty_.find(item);
    for (int64_t b = first; b <= last; ++b) {
      if (preloaded) {
        out.hit_blocks++;
        continue;
      }
      if (wd_it != wd_dirty_.end() && wd_it->second.count(b) > 0) {
        out.hit_blocks++;
        continue;
      }
      BlockKey key{item, b};
      auto it = general_.find(key);
      if (it != general_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
        out.hit_blocks++;
      } else {
        out.miss_blocks++;
        InsertGeneral(key, /*dirty=*/false, &out.eviction_flushes);
      }
    }
    hit_blocks_ += out.hit_blocks;
    miss_blocks_ += out.miss_blocks;
    return out;
  }

  WriteOutcome Write(DataItemId item, int64_t offset, int32_t size) {
    WriteOutcome out;
    int64_t first = FirstBlock(offset);
    int64_t last = LastBlock(offset, size);
    int64_t blocks = last - first + 1;
    absorbed_write_blocks_ += blocks;

    if (write_delay_items_.count(item) > 0) {
      out.write_delayed = true;
      auto& set = wd_dirty_[item];
      for (int64_t b = first; b <= last; ++b) {
        if (set.insert(b).second) wd_dirty_total_++;
      }
      double limit = config_.write_delay_dirty_ratio *
                     static_cast<double>(wd_capacity_blocks_);
      if (static_cast<double>(wd_dirty_total_) >= limit) {
        out.destage = DestageWriteDelay();
      }
      return out;
    }

    std::vector<FlushDemand> evictions;
    for (int64_t b = first; b <= last; ++b) {
      InsertGeneral(BlockKey{item, b}, /*dirty=*/true, &evictions);
    }
    for (const FlushDemand& d : evictions) {
      AppendDemand(d.item, d.blocks, d.bytes, &out.destage);
    }
    double limit = config_.default_dirty_ratio *
                   static_cast<double>(general_capacity_blocks_);
    if (static_cast<double>(general_dirty_) >= limit) {
      std::vector<FlushDemand> destage = DestageGeneral();
      for (const FlushDemand& d : destage) {
        AppendDemand(d.item, d.blocks, d.bytes, &out.destage);
      }
    }
    return out;
  }

  std::vector<FlushDemand> SetWriteDelayItems(
      const std::unordered_set<DataItemId>& items) {
    std::vector<FlushDemand> demands;
    for (auto it = wd_dirty_.begin(); it != wd_dirty_.end();) {
      if (items.count(it->first) == 0) {
        int64_t blocks = static_cast<int64_t>(it->second.size());
        if (blocks > 0) {
          AppendDemand(it->first, blocks, blocks * config_.block_size,
                       &demands);
          wd_dirty_total_ -= blocks;
        }
        it = wd_dirty_.erase(it);
      } else {
        ++it;
      }
    }
    write_delay_items_ = items;
    return demands;
  }

  Result<std::vector<DataItemId>> SetPreloadItems(
      const std::vector<std::pair<DataItemId, int64_t>>& sizes) {
    int64_t total = 0;
    for (const auto& [item, size] : sizes) total += size;
    if (total > config_.preload_area_bytes) {
      return Status::CapacityExceeded(
          "preload selection exceeds preload area");
    }
    std::unordered_map<DataItemId, PreloadEntry> next;
    std::vector<DataItemId> to_load;
    for (const auto& [item, size] : sizes) {
      auto it = preload_items_.find(item);
      if (it != preload_items_.end() && it->second.loaded) {
        next.emplace(item, it->second);
      } else {
        next.emplace(item, PreloadEntry{size, false});
        to_load.push_back(item);
      }
    }
    preload_items_ = std::move(next);
    return to_load;
  }

  Status MarkPreloaded(DataItemId item) {
    auto it = preload_items_.find(item);
    if (it == preload_items_.end()) {
      return Status::NotFound("item not in preload set");
    }
    it->second.loaded = true;
    return Status::OK();
  }

  bool IsPreloaded(DataItemId item) const {
    auto it = preload_items_.find(item);
    return it != preload_items_.end() && it->second.loaded;
  }

  std::vector<FlushDemand> FlushAll() {
    std::vector<FlushDemand> demands = DestageGeneral();
    for (const FlushDemand& d : DestageWriteDelay()) {
      AppendDemand(d.item, d.blocks, d.bytes, &demands);
    }
    return demands;
  }

  std::vector<FlushDemand> InvalidateItem(DataItemId item) {
    std::vector<FlushDemand> demands;
    for (auto it = general_.begin(); it != general_.end();) {
      if (it->first.item == item) {
        if (it->second.dirty) {
          general_dirty_--;
          AppendDemand(item, 1, config_.block_size, &demands);
        }
        lru_.erase(it->second.lru_pos);
        it = general_.erase(it);
      } else {
        ++it;
      }
    }
    auto wd_it = wd_dirty_.find(item);
    if (wd_it != wd_dirty_.end()) {
      int64_t blocks = static_cast<int64_t>(wd_it->second.size());
      if (blocks > 0) {
        AppendDemand(item, blocks, blocks * config_.block_size, &demands);
        wd_dirty_total_ -= blocks;
      }
      wd_dirty_.erase(wd_it);
    }
    return demands;
  }

  int64_t hit_blocks() const { return hit_blocks_; }
  int64_t miss_blocks() const { return miss_blocks_; }
  int64_t absorbed_write_blocks() const { return absorbed_write_blocks_; }
  int64_t general_dirty_blocks() const { return general_dirty_; }
  int64_t write_delay_dirty_blocks() const { return wd_dirty_total_; }

 private:
  struct BlockKey {
    DataItemId item;
    int64_t block;
    bool operator==(const BlockKey& o) const {
      return item == o.item && block == o.block;
    }
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.item) << 40) ^
                                  k.block);
    }
  };
  struct GeneralEntry {
    std::list<BlockKey>::iterator lru_pos;
    bool dirty = false;
  };
  struct PreloadEntry {
    int64_t size_bytes = 0;
    bool loaded = false;
  };

  int64_t FirstBlock(int64_t offset) const {
    return offset / config_.block_size;
  }
  int64_t LastBlock(int64_t offset, int32_t size) const {
    return (offset + std::max<int32_t>(size, 1) - 1) / config_.block_size;
  }

  static void AppendDemand(DataItemId item, int64_t blocks, int64_t bytes,
                           std::vector<FlushDemand>* out) {
    for (FlushDemand& d : *out) {
      if (d.item == item) {
        d.blocks += blocks;
        d.bytes += bytes;
        return;
      }
    }
    out->push_back(FlushDemand{item, blocks, bytes});
  }

  void InsertGeneral(const BlockKey& key, bool dirty,
                     std::vector<FlushDemand>* eviction_flushes) {
    auto it = general_.find(key);
    if (it != general_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      if (dirty && !it->second.dirty) {
        it->second.dirty = true;
        general_dirty_++;
      }
      return;
    }
    while (static_cast<int64_t>(general_.size()) >= general_capacity_blocks_) {
      BlockKey victim = lru_.back();
      lru_.pop_back();
      auto vit = general_.find(victim);
      assert(vit != general_.end());
      if (vit->second.dirty) {
        general_dirty_--;
        AppendDemand(victim.item, 1, config_.block_size, eviction_flushes);
      }
      general_.erase(vit);
    }
    lru_.push_front(key);
    general_.emplace(key, GeneralEntry{lru_.begin(), dirty});
    if (dirty) general_dirty_++;
  }

  std::vector<FlushDemand> DestageGeneral() {
    std::vector<FlushDemand> demands;
    for (auto& [key, entry] : general_) {
      if (entry.dirty) {
        entry.dirty = false;
        AppendDemand(key.item, 1, config_.block_size, &demands);
      }
    }
    general_dirty_ = 0;
    return demands;
  }

  std::vector<FlushDemand> DestageWriteDelay() {
    std::vector<FlushDemand> demands;
    for (auto& [item, set] : wd_dirty_) {
      if (!set.empty()) {
        AppendDemand(item, static_cast<int64_t>(set.size()),
                     static_cast<int64_t>(set.size()) * config_.block_size,
                     &demands);
      }
    }
    wd_dirty_.clear();
    wd_dirty_total_ = 0;
    return demands;
  }

  storage::CacheConfig config_;
  int64_t general_capacity_blocks_;
  int64_t wd_capacity_blocks_;

  std::list<BlockKey> lru_;  // front = most recent
  std::unordered_map<BlockKey, GeneralEntry, BlockKeyHash> general_;
  int64_t general_dirty_ = 0;

  std::unordered_set<DataItemId> write_delay_items_;
  std::unordered_map<DataItemId, std::unordered_set<int64_t>> wd_dirty_;
  int64_t wd_dirty_total_ = 0;

  std::unordered_map<DataItemId, PreloadEntry> preload_items_;

  int64_t hit_blocks_ = 0;
  int64_t miss_blocks_ = 0;
  int64_t absorbed_write_blocks_ = 0;
};

}  // namespace ecostore::legacy

#endif  // ECOSTORE_BENCH_LEGACY_CACHE_H_
