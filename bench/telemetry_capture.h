#ifndef ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_
#define ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_

// The bench binaries' --telemetry=<base> implementation: one extra,
// fully instrumented run executed after the figure suite, so attaching
// the recorder cannot interleave with (or be blamed for perturbing) the
// numbers the figures report. The replay outcome itself is bit-identical
// with or without a recorder — `bench_micro --check` proves that by
// running every gate job with one attached.
//
// The capture is self-describing: the meta line carries the power model,
// cache sizes and the run's final measured energies, and the latency
// book recorded during the run is embedded as per-(pattern, outcome)
// histogram lines — `eco_report score <capture>.jsonl` reproduces the
// exact summary offline. `--telemetry-summary=<path>` additionally
// writes that summary JSON directly.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "replay/experiment.h"
#include "replay/suite.h"
#include "telemetry/analysis/rolling_summary.h"
#include "telemetry/analysis/summary.h"
#include "telemetry/export.h"
#include "telemetry/profile/profile_export.h"
#include "telemetry/profile/profiler.h"
#include "telemetry/recorder.h"
#include "telemetry/stream_consumer.h"

namespace ecostore::bench {

/// Copies the power / cache model out of a storage config (shared by the
/// post-run capture meta and the pre-run meta the live rolling consumer
/// needs before any energy is measured).
inline void FillPowerModel(telemetry::ExportMeta* meta,
                           const storage::StorageConfig& cfg) {
  meta->has_power_model = true;
  meta->idle_power_w = cfg.enclosure.idle_power;
  meta->active_power_w = cfg.enclosure.active_power;
  meta->off_power_w = cfg.enclosure.off_power;
  meta->spinup_power_w = cfg.enclosure.spinup_power;
  meta->controller_power_w = cfg.controller.base_power;
  meta->spinup_time_us = cfg.enclosure.spinup_time;
  meta->break_even_us = cfg.enclosure.BreakEvenTime();
  meta->spindown_timeout_us = cfg.enclosure.spindown_timeout;
  meta->cache_total_bytes = cfg.cache.total_bytes;
  meta->preload_area_bytes = cfg.cache.preload_area_bytes;
  meta->write_delay_area_bytes = cfg.cache.write_delay_area_bytes;
}

/// Fills the self-describing capture meta from a finished run: identity,
/// the power/cache model the analyzer prices decisions with, the final
/// measured energies it reconciles against, and the latency book.
inline telemetry::ExportMeta BuildCaptureMeta(
    const replay::ExperimentMetrics& metrics,
    const storage::StorageSystem& system,
    const telemetry::analysis::LatencyBook* book) {
  telemetry::ExportMeta meta;
  meta.workload = metrics.workload;
  meta.policy = metrics.policy;
  meta.num_enclosures = system.num_enclosures();
  meta.duration = metrics.duration;
  FillPowerModel(&meta, system.config());
  meta.enclosure_energy_j = metrics.enclosure_energy;
  meta.controller_energy_j = metrics.controller_energy;
  if (book != nullptr) {
    for (int p = 0; p < telemetry::analysis::kNumPatternSlots; ++p) {
      for (int o = 0; o < telemetry::analysis::kNumOutcomes; ++o) {
        const telemetry::analysis::LatencyHistogram& h =
            book->cell(static_cast<uint8_t>(p), static_cast<uint8_t>(o));
        if (h.count() == 0) continue;
        telemetry::LatencySlot slot;
        slot.pattern = static_cast<uint8_t>(p);
        slot.outcome = static_cast<uint8_t>(o);
        slot.hist = h;
        meta.latency.push_back(slot);
      }
    }
  }
  return meta;
}

/// Runs `job` once with a telemetry recorder and latency book attached
/// and writes `<base>.jsonl`, `<base>.power.csv` and `<base>.trace.json`.
/// When `summary_path` is non-empty, also writes the analyzer's summary
/// JSON there. `ring_capacity` sizes the recorder ring (events are 48
/// bytes, so even the 8M-entry ring the OLTP/DSS captures need is only
/// ~400 MB); a too-small ring drops the oldest events deterministically
/// but starves the ledger. When `rolling_path` is non-empty the run also
/// attaches the live streaming pipeline (StreamDispatcher + CaptureBuffer
/// + RollingSummary): per-window progress lines go to stdout and the
/// append-only rolling-summary JSONL (tailable via `eco_report tail`) is
/// written to `rolling_path`, with `rolling_window_us` windows (0 = 1
/// minute). When `profile_base` is non-empty the run also attaches the
/// wall-clock phase profiler and writes `<profile_base>.profile.jsonl` +
/// `.profile.trace.json` — a second, real-time clock domain next to the
/// sim-time trace, correlated by period index. Returns a process exit
/// code (0 on success) so bench mains can propagate it.
inline int CaptureTelemetry(const std::string& base, replay::ExperimentJob job,
                            const std::string& summary_path = "",
                            uint32_t ring_capacity = 1u << 21,
                            const std::string& rolling_path = "",
                            SimDuration rolling_window_us = 0,
                            const std::string& profile_base = "") {
  // Record every class including per-I/O detail: the ledger uses the
  // kPhysicalIo events to tie a mispredicted spin-down to the item whose
  // demand I/O forced the wake-up. The detail classes multiply event
  // volume, so the capture ring is larger than the default; a wrapped
  // ring would silently lose the oldest off-windows from the ledger.
  telemetry::Recorder::Options options;
  options.thread_buffer_capacity = ring_capacity;
  options.mask = telemetry::kClassAll;
  telemetry::Recorder recorder(options);
  telemetry::analysis::LatencyBook book;
  job.config.telemetry = &recorder;
  job.config.latency_book = &book;
  // --profile: the wall-clock phase profiler rides the same run. It only
  // reads the host clock and writes its own rings, so attaching it keeps
  // the replay bit-identical (the --check gate runs with one attached).
  telemetry::profile::Profiler profiler;
  if (!profile_base.empty()) job.config.profiler = &profiler;
  auto workload = job.workload();
  if (!workload.ok()) {
    std::fprintf(stderr, "telemetry capture workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  auto policy = job.policy();

  // --rolling-summary: attach the live streaming pipeline alongside the
  // capture. The dispatcher pumps the recorder every window, a
  // CaptureBuffer re-materializes the full capture (pumps reset the
  // rings), and a RollingSummary folds the stream into fixed windows,
  // printing progress lines and appending a tailable JSONL.
  const bool rolling_on = !rolling_path.empty();
  telemetry::StreamDispatcher dispatcher;
  telemetry::CaptureBuffer capture_buffer;
  std::unique_ptr<telemetry::analysis::RollingSummary> rolling;
  std::FILE* rolling_file = nullptr;
  if (rolling_on) {
    rolling_file = std::fopen(rolling_path.c_str(), "w");
    if (rolling_file == nullptr) {
      std::fprintf(stderr, "rolling summary: cannot write %s\n",
                   rolling_path.c_str());
      return 1;
    }
    telemetry::ExportMeta pre_meta;
    pre_meta.workload = workload.value()->info().name;
    pre_meta.policy = policy->name();
    pre_meta.num_enclosures = workload.value()->info().num_enclosures;
    pre_meta.duration = job.config.duration > 0
                            ? job.config.duration
                            : workload.value()->info().duration;
    FillPowerModel(&pre_meta, job.config.storage);
    telemetry::analysis::RollingSummary::Options ropt;
    ropt.window_us = rolling_window_us > 0 ? rolling_window_us : kMinute;
    ropt.book = &book;
    ropt.jsonl = rolling_file;
    ropt.progress = stdout;
    rolling = std::make_unique<telemetry::analysis::RollingSummary>(pre_meta,
                                                                    ropt);
    dispatcher.AddConsumer(&capture_buffer);
    dispatcher.AddConsumer(rolling.get());
    job.config.stream = &dispatcher;
    job.config.stream_window_us = ropt.window_us;
  }

  replay::Experiment experiment(workload.value().get(), policy.get(),
                                job.config);
  auto metrics = experiment.Run();
  if (!metrics.ok()) {
    if (rolling_file != nullptr) std::fclose(rolling_file);
    std::fprintf(stderr, "telemetry capture run: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }

  telemetry::ExportMeta meta =
      BuildCaptureMeta(metrics.value(), *experiment.system(), &book);
  std::vector<telemetry::Event> events =
      rolling_on ? capture_buffer.Take() : recorder.Drain();
  if (rolling_file != nullptr) {
    std::fclose(rolling_file);
    rolling_file = nullptr;
    std::printf("rolling summary: %lld windows (%.0fs each) -> %s\n",
                static_cast<long long>(rolling->windows_closed()),
                ToSeconds(job.config.stream_window_us),
                rolling_path.c_str());
  }
  Status st = telemetry::ExportAll(base, meta, events);
  if (!st.ok()) {
    std::fprintf(stderr, "telemetry export: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\ntelemetry: %zu events (%llu dropped) -> "
              "%s{.jsonl,.power.csv,.trace.json}\n",
              events.size(),
              static_cast<unsigned long long>(recorder.dropped()),
              base.c_str());
  if (recorder.dropped() > 0) {
    std::fprintf(stderr,
                 "telemetry: WARNING — %llu events dropped (ring wrapped); "
                 "the energy ledger will miss the oldest windows\n",
                 static_cast<unsigned long long>(recorder.dropped()));
  }
  if (!summary_path.empty()) {
    telemetry::analysis::Summary summary =
        telemetry::analysis::BuildSummary(meta, events);
    st = telemetry::analysis::WriteSummaryJson(summary_path, summary);
    if (!st.ok()) {
      std::fprintf(stderr, "telemetry summary: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("telemetry: summary -> %s (reconcile_rel_err=%.3g)\n",
                summary_path.c_str(), summary.reconcile_rel_err);
  }
  if (!profile_base.empty()) {
    telemetry::profile::ProfileMeta pmeta;
    pmeta.workload = metrics.value().workload;
    pmeta.policy = metrics.value().policy;
    pmeta.shards = 1;
    pmeta.host_cpus = std::thread::hardware_concurrency();
    pmeta.wall_ns =
        static_cast<int64_t>(metrics.value().wall_seconds * 1e9);
    pmeta.dropped = profiler.dropped();
    // The pool gauges are the single source of truth for executor stats;
    // the serial capture run has no pool, so they stay absent unless the
    // engine published them.
    for (const auto& [name, value] : recorder.GaugeValues()) {
      if (name == "pool.workers") pmeta.pool_workers = value;
      else if (name == "pool.tasks_executed") pmeta.pool_tasks = value;
      else if (name == "pool.busy_us") pmeta.pool_busy_ns = value * 1000;
      else if (name == "pool.peak_queued") pmeta.pool_peak_queue = value;
    }
    std::vector<telemetry::profile::Span> spans = profiler.Drain();
    pmeta.spans = static_cast<int64_t>(spans.size());
    st = telemetry::profile::ExportProfile(profile_base, pmeta, spans);
    if (!st.ok()) {
      std::fprintf(stderr, "profile export: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("profile: %lld spans (%lld dropped) -> "
                "%s{.profile.jsonl,.profile.trace.json}\n",
                static_cast<long long>(pmeta.spans),
                static_cast<long long>(pmeta.dropped), profile_base.c_str());
    if (!telemetry::profile::Profiler::kEnabled) {
      std::printf("profile: NOTE — profiler compiled out "
                  "(ECOSTORE_PROFILE=OFF); exports are empty\n");
    }
  }
  if (!telemetry::Recorder::kEnabled) {
    std::printf("telemetry: NOTE — recorder compiled out "
                "(ECOSTORE_TELEMETRY=OFF); exports are empty\n");
  }
  return 0;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_
