#ifndef ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_
#define ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_

// The bench binaries' --telemetry=<base> implementation: one extra,
// fully instrumented run executed after the figure suite, so attaching
// the recorder cannot interleave with (or be blamed for perturbing) the
// numbers the figures report. The replay outcome itself is bit-identical
// with or without a recorder — `bench_micro --check` proves that by
// running every gate job with one attached.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "replay/experiment.h"
#include "replay/suite.h"
#include "telemetry/export.h"
#include "telemetry/recorder.h"

namespace ecostore::bench {

/// Runs `job` once with a telemetry recorder attached and writes
/// `<base>.jsonl`, `<base>.power.csv` and `<base>.trace.json`. Returns a
/// process exit code (0 on success) so bench mains can propagate it.
inline int CaptureTelemetry(const std::string& base,
                            replay::ExperimentJob job) {
  telemetry::Recorder recorder;
  job.config.telemetry = &recorder;
  auto workload = job.workload();
  if (!workload.ok()) {
    std::fprintf(stderr, "telemetry capture workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  auto policy = job.policy();
  replay::Experiment experiment(workload.value().get(), policy.get(),
                                job.config);
  auto metrics = experiment.Run();
  if (!metrics.ok()) {
    std::fprintf(stderr, "telemetry capture run: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }

  telemetry::ExportMeta meta;
  meta.workload = metrics.value().workload;
  meta.policy = metrics.value().policy;
  meta.num_enclosures = experiment.system()->num_enclosures();
  meta.duration = metrics.value().duration;
  std::vector<telemetry::Event> events = recorder.Drain();
  Status st = telemetry::ExportAll(base, meta, events);
  if (!st.ok()) {
    std::fprintf(stderr, "telemetry export: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\ntelemetry: %zu events (%llu dropped) -> "
              "%s{.jsonl,.power.csv,.trace.json}\n",
              events.size(),
              static_cast<unsigned long long>(recorder.dropped()),
              base.c_str());
  if (!telemetry::Recorder::kEnabled) {
    std::printf("telemetry: NOTE — recorder compiled out "
                "(ECOSTORE_TELEMETRY=OFF); exports are empty\n");
  }
  return 0;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_TELEMETRY_CAPTURE_H_
