#ifndef ECOSTORE_BENCH_BENCH_UTIL_H_
#define ECOSTORE_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benchmarks.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "common/sim_time.h"

namespace ecostore::bench {

/// True when ECOSTORE_QUICK=1: benchmarks run shortened workloads (for CI
/// and smoke runs); otherwise the paper's full durations are used.
inline bool QuickMode() {
  const char* env = std::getenv("ECOSTORE_QUICK");
  return env != nullptr && std::string(env) == "1";
}

inline SimDuration MaybeShorten(SimDuration full, SimDuration quick) {
  return QuickMode() ? quick : full;
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_reference) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "paper reference: " << paper_reference << "\n"
            << "==========================================================\n";
}

inline void InitBenchLogging() {
  const char* env = std::getenv("ECOSTORE_LOG");
  Logger::threshold = (env != nullptr && std::string(env) == "debug")
                          ? LogLevel::kDebug
                          : LogLevel::kWarn;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_BENCH_UTIL_H_
