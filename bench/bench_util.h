#ifndef ECOSTORE_BENCH_BENCH_UTIL_H_
#define ECOSTORE_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benchmarks.

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/sim_time.h"

namespace ecostore::bench {

/// Parses a `--threads=N` argument (default 1 == today's serial
/// behaviour). `--threads=0` means "all hardware threads". Unknown
/// arguments are left alone for the caller.
inline int ParseThreadsFlag(int argc, char** argv) {
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      threads = std::atoi(arg.c_str() + prefix.size());
    }
  }
  if (threads <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? static_cast<int>(hw) : 1;
  }
  return threads;
}

/// Parses a `--shards=S` argument: the intra-run shard count for the
/// sharded replay engine (replay::ShardedExperiment). Default 1 ==
/// today's serial engine; distinct from `--threads`, which runs whole
/// experiments concurrently.
inline int ParseShardsFlag(int argc, char** argv) {
  int shards = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    const std::string prefix = "--shards=";
    if (arg.rfind(prefix, 0) == 0) {
      shards = std::atoi(arg.c_str() + prefix.size());
    }
  }
  return shards < 1 ? 1 : shards;
}

/// Returns the value of a `--flag=value` argument; empty when absent.
/// `prefix` includes the '=' (e.g. "--telemetry=").
inline std::string ParseFlagValue(int argc, char** argv,
                                  const std::string& prefix) {
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

/// True when `--flag` (exact) is present.
inline bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Parses a `--telemetry=<base>` argument; empty when absent. The base
/// names the export set written by telemetry::ExportAll
/// (`<base>.jsonl`, `<base>.power.csv`, `<base>.trace.json`).
inline std::string ParseTelemetryFlag(int argc, char** argv) {
  return ParseFlagValue(argc, argv, "--telemetry=");
}

/// Parses a `--profile=<base>` argument; empty when absent. The base
/// names the wall-clock profile export pair written by
/// telemetry::profile::ExportProfile (`<base>.profile.jsonl` and
/// `<base>.profile.trace.json`).
inline std::string ParseProfileFlag(int argc, char** argv) {
  return ParseFlagValue(argc, argv, "--profile=");
}

/// Parses a `--telemetry-summary=<path>` argument; empty when absent.
/// Names the machine-readable summary JSON written from the capture run
/// (requires --telemetry as the event source).
inline std::string ParseTelemetrySummaryFlag(int argc, char** argv) {
  return ParseFlagValue(argc, argv, "--telemetry-summary=");
}

/// Parses `--rolling-summary=<path>`: the append-only rolling-window
/// JSONL the instrumented capture run streams while it executes
/// (followed live by `eco_report tail <path>`). Empty when absent —
/// rolling mode off. Requires --telemetry as the event source.
inline std::string ParseRollingSummaryFlag(int argc, char** argv) {
  return ParseFlagValue(argc, argv, "--rolling-summary=");
}

/// Parses `--rolling-window=<sec>`: the rolling-window length in sim
/// seconds (default 60 s). Values <= 0 fall back to the default.
inline SimDuration ParseRollingWindowFlag(int argc, char** argv) {
  const std::string v = ParseFlagValue(argc, argv, "--rolling-window=");
  if (v.empty()) return kMinute;
  const double sec = std::atof(v.c_str());
  if (sec <= 0) return kMinute;
  return static_cast<SimDuration>(sec * static_cast<double>(kSecond));
}

/// True when ECOSTORE_QUICK=1: benchmarks run shortened workloads (for CI
/// and smoke runs); otherwise the paper's full durations are used.
inline bool QuickMode() {
  const char* env = std::getenv("ECOSTORE_QUICK");
  return env != nullptr && std::string(env) == "1";
}

inline SimDuration MaybeShorten(SimDuration full, SimDuration quick) {
  return QuickMode() ? quick : full;
}

inline void PrintHeader(const std::string& title,
                        const std::string& paper_reference) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "paper reference: " << paper_reference << "\n"
            << "==========================================================\n";
}

inline void InitBenchLogging() {
  const char* env = std::getenv("ECOSTORE_LOG");
  Logger::threshold = (env != nullptr && std::string(env) == "debug")
                          ? LogLevel::kDebug
                          : LogLevel::kWarn;
}

}  // namespace ecostore::bench

#endif  // ECOSTORE_BENCH_BENCH_UTIL_H_
