// Reproduces paper Figs. 8-10 and 17 (File Server): average power,
// average I/O response time, migrated data size, placement determinations
// and the long-interval curve, for the proposed method vs. PDC, DDR and
// no power saving.
//
// Paper values: power 2977.9 W -> proposed 2209.2 W (-25.8%), PDC -3.5%,
// DDR -3.6%; response proposed 17.1 ms < PDC 22.6 < DDR 27.0; migrated
// proposed 23.1 GB, PDC > 3 TB, DDR 1.3 GB; determinations 5 / 11 / ~91k;
// Fig. 17: proposed's cumulative long-interval length ~2x the others.

#include <iostream>

#include "bench/bench_util.h"
#include "bench/telemetry_capture.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  // --rolling-summary=<path> streams live rolling windows from the
  // instrumented capture run (tailable mid-run via `eco_report tail`).
  const std::string rolling_path = bench::ParseRollingSummaryFlag(argc, argv);
  const SimDuration rolling_window = bench::ParseRollingWindowFlag(argc, argv);
  // --profile=<base> attaches the wall-clock phase profiler to the
  // instrumented capture run (requires --telemetry).
  const std::string profile_base = bench::ParseProfileFlag(argc, argv);
  // --shards=S replays each policy run on the sharded intra-run engine
  // (one experiment spread over S lanes); default 1 keeps the serial
  // engine and the original shared-workload replay.
  const int shards = bench::ParseShardsFlag(argc, argv);
  // --capture-only skips the four-policy figure suite and runs just the
  // instrumented capture: what the CI regression gate wants.
  const bool capture_only =
      bench::HasFlag(argc, argv, "--capture-only") && !telemetry_base.empty();
  bench::PrintHeader(
      "Figs. 8-10, 17 — File Server",
      "proposed -25.8% power, best response, 23.1 GB migrated");

  workload::FileServerConfig wl_config;
  wl_config.duration = bench::MaybeShorten(6 * kHour, 45 * kMinute);
  replay::ExperimentConfig config;
  config.power_sample_interval = 60 * kSecond;  // wall-meter sampling
  core::PowerManagementConfig pm;  // Table II defaults

  if (capture_only) {
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::FileServerWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path, 1u << 21, rolling_path,
                                   rolling_window, profile_base);
  }

  auto workload = workload::FileServerWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  Result<std::vector<replay::ExperimentMetrics>> runs =
      std::vector<replay::ExperimentMetrics>{};
  if (shards <= 1) {
    runs = replay::RunSuite(workload.value().get(),
                            replay::PaperPolicySet(pm), config);
  } else {
    replay::WorkloadFactory clone =
        [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto w = workload::FileServerWorkload::Create(wl_config);
      if (!w.ok()) return w.status();
      return std::unique_ptr<workload::Workload>(std::move(w).value());
    };
    replay::SuiteOptions options{1};
    options.shards = shards;
    runs = replay::ParallelRunSuite(clone, replay::PaperPolicySet(pm),
                                    config, options);
  }
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\n[Fig. 8] average power (" << FormatDuration(
                   wl_config.duration)
            << " run, " << wl_config.num_enclosures << " enclosures):\n";
  replay::PrintPowerTable(std::cout, runs.value());

  std::cout << "\n[Fig. 9] average I/O response time:\n";
  replay::PrintResponseTable(std::cout, runs.value());

  std::cout << "\n[Fig. 10 + \xC2\xA7VII-D] migrated data / "
               "determinations:\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  std::cout << "\n[Fig. 17] cumulative idle-interval length by threshold:\n";
  replay::PrintIntervalCdf(
      std::cout, runs.value(),
      {10 * kSecond, 30 * kSecond, 52 * kSecond, 2 * kMinute, 5 * kMinute,
       20 * kMinute});

  const replay::ExperimentMetrics* proposed =
      replay::FindRun(runs.value(), "proposed");
  if (proposed != nullptr) {
    std::cout << "\npower profile over time (proposed; sampled at 60 s):\n";
    replay::PrintPowerTimeline(std::cout, *proposed);
    std::cout << "\nper-enclosure breakdown (proposed):\n";
    replay::PrintEnclosureTable(std::cout, *proposed);
  }

  if (!telemetry_base.empty()) {
    // One extra instrumented run of the proposed method (PaperPolicySet
    // index 1), after the figures so the capture shares nothing with them.
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::FileServerWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = replay::PaperPolicySet(pm)[1];
    job.config = config;
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path, 1u << 21, rolling_path,
                                   rolling_window, profile_base);
  }
  return 0;
}
