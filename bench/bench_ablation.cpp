// Ablation study (DESIGN.md §3): contribution of each design choice of
// the proposed method — placement, preload, write delay, adaptive
// monitoring period and the §V-D triggers — on the File Server workload,
// plus a plain fixed-timeout spin-down baseline (hd-idle style).
//
// Not a paper figure; quantifies which mechanism buys which share of the
// saving the paper attributes to the combined method.

#include <iostream>

#include "bench/bench_util.h"
#include "bench/telemetry_capture.h"
#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT

namespace {

replay::PolicyFactory Variant(core::PowerManagementConfig pm,
                              const std::string& name) {
  return [pm, name] {
    class NamedEco : public core::EcoStoragePolicy {
     public:
      NamedEco(const core::PowerManagementConfig& config, std::string name)
          : EcoStoragePolicy(config), name_(std::move(name)) {}
      std::string name() const override { return name_; }

     private:
      std::string name_;
    };
    return std::make_unique<NamedEco>(pm, name);
  };
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const int threads = bench::ParseThreadsFlag(argc, argv);
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  bench::PrintHeader("Ablation — proposed method feature contributions",
                     "design-choice study (DESIGN.md); no paper analogue");

  workload::FileServerConfig wl_config;
  wl_config.duration = bench::MaybeShorten(3 * kHour, 40 * kMinute);
  auto workload = workload::FileServerWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }

  core::PowerManagementConfig full;

  std::vector<replay::PolicyFactory> factories;
  factories.push_back(
      [] { return std::make_unique<policies::NoPowerSavingPolicy>(); });
  factories.push_back(
      [] { return std::make_unique<policies::FixedTimeoutPolicy>(); });
  factories.push_back(Variant(full, "proposed_full"));

  core::PowerManagementConfig variant = full;
  variant.enable_preload = false;
  factories.push_back(Variant(variant, "no_preload"));

  variant = full;
  variant.enable_write_delay = false;
  factories.push_back(Variant(variant, "no_write_delay"));

  variant = full;
  variant.enable_placement = false;
  factories.push_back(Variant(variant, "no_placement"));

  variant = full;
  variant.enable_adaptive_period = false;
  factories.push_back(Variant(variant, "fixed_period"));

  variant = full;
  variant.enable_pattern_change_triggers = false;
  factories.push_back(Variant(variant, "no_triggers"));

  // Serial (the default) replays one shared workload instance exactly as
  // before; --threads=N>1 gives every policy its own deterministic clone
  // and runs them concurrently — same numbers, less wall-clock.
  Result<std::vector<replay::ExperimentMetrics>> runs =
      std::vector<replay::ExperimentMetrics>{};
  if (threads <= 1) {
    runs = replay::RunSuite(workload.value().get(), factories,
                            replay::ExperimentConfig{});
  } else {
    replay::WorkloadFactory clone =
        [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto w = workload::FileServerWorkload::Create(wl_config);
      if (!w.ok()) return w.status();
      return std::unique_ptr<workload::Workload>(std::move(w).value());
    };
    runs = replay::ParallelRunSuite(clone, factories,
                                    replay::ExperimentConfig{},
                                    replay::SuiteOptions{threads});
  }
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\npower:\n";
  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\nresponse:\n";
  replay::PrintResponseTable(std::cout, runs.value());
  std::cout << "\nmovement:\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  if (!telemetry_base.empty()) {
    // One extra instrumented run of the full proposed variant, after the
    // ablation tables so the capture shares nothing with them.
    replay::ExperimentJob job;
    job.workload = [wl_config]() -> Result<std::unique_ptr<workload::Workload>> {
      auto wl = workload::FileServerWorkload::Create(wl_config);
      if (!wl.ok()) return wl.status();
      return Result<std::unique_ptr<workload::Workload>>(
          std::move(wl).value());
    };
    job.policy = Variant(full, "proposed_full");
    job.config = replay::ExperimentConfig{};
    return bench::CaptureTelemetry(telemetry_base, std::move(job),
                                   summary_path);
  }
  return 0;
}
