// Google-benchmark microbenchmarks for the hot code paths: the event
// loop, the cache, interval analysis, the classifier and the placement
// planner. These bound the monitoring overhead the paper argues is small
// (§III-A, §VII-D).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/pattern_classifier.h"
#include "core/placement_planner.h"
#include "sim/simulator.h"
#include "storage/disk_enclosure.h"
#include "storage/storage_cache.h"

namespace ecostore {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(sim.RunAll());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

void BM_CacheReadHit(benchmark::State& state) {
  storage::CacheConfig config;
  storage::StorageCache cache(config);
  cache.Read(1, 0, 65536);  // warm one block
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Read(1, 0, 65536));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheReadHit);

void BM_CacheWriteAbsorb(benchmark::State& state) {
  storage::CacheConfig config;
  storage::StorageCache cache(config);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Write(1, rng.UniformInt(0, 1 << 20) * 4096, 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteAbsorb);

void BM_IntervalAnalysis(benchmark::State& state) {
  Xoshiro256 rng(2);
  std::vector<std::pair<SimTime, bool>> ios;
  SimTime t = 0;
  for (int i = 0; i < state.range(0); ++i) {
    t += rng.UniformInt(1, 2 * kSecond);
    ios.emplace_back(t, rng.Bernoulli(0.6));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AnalyzeIntervals(
        ios, 0, t + kSecond, 52 * kSecond));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalAnalysis)->Arg(100)->Arg(10000);

void BM_PatternClassifier(benchmark::State& state) {
  const int n_items = static_cast<int>(state.range(0));
  storage::DataItemCatalog catalog;
  VolumeId v = catalog.AddVolume(0);
  for (int i = 0; i < n_items; ++i) {
    catalog.AddItem("i" + std::to_string(i), v, 1 << 20,
                    storage::DataItemKind::kFile);
  }
  trace::LogicalTraceBuffer buffer;
  Xoshiro256 rng(3);
  SimTime t = 0;
  for (int k = 0; k < 100000; ++k) {
    t += rng.UniformInt(1, 10 * kMillisecond);
    trace::LogicalIoRecord rec;
    rec.time = t;
    rec.item = static_cast<DataItemId>(rng.UniformInt(0, n_items - 1));
    rec.size = 8192;
    rec.type = rng.Bernoulli(0.6) ? IoType::kRead : IoType::kWrite;
    buffer.Append(rec);
  }
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classifier.Classify(buffer, catalog, 0, t + kSecond));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PatternClassifier)->Arg(100)->Arg(2000);

void BM_PlacementPlanner(benchmark::State& state) {
  const int n_items = static_cast<int>(state.range(0));
  const int n_enclosures = 12;
  storage::DataItemCatalog catalog;
  for (int e = 0; e < n_enclosures; ++e) catalog.AddVolume(e);
  core::ClassificationResult result;
  Xoshiro256 rng(4);
  for (int i = 0; i < n_items; ++i) {
    auto pattern = static_cast<core::IoPattern>(rng.UniformInt(0, 3));
    DataItemId id =
        catalog
            .AddItem("i" + std::to_string(i),
                     static_cast<VolumeId>(rng.UniformInt(
                         0, n_enclosures - 1)),
                     rng.UniformInt(1, 1000) * 1024 * 1024,
                     storage::DataItemKind::kFile)
            .value();
    core::ItemClassification cls;
    cls.item = id;
    cls.pattern = pattern;
    cls.size_bytes = catalog.item(id).size_bytes;
    cls.avg_iops = pattern == core::IoPattern::kP3
                       ? static_cast<double>(rng.UniformInt(1, 50))
                       : 1.0;
    result.items.push_back(cls);
    if (pattern == core::IoPattern::kP3) result.p3_max_iops += cls.avg_iops;
  }
  storage::BlockVirtualization virt(&catalog, n_enclosures,
                                    1700LL * 1024 * 1024 * 1024);
  if (!virt.PlaceInitial().ok()) {
    state.SkipWithError("placement failed");
    return;
  }
  core::HotColdPlanner hot_cold(
      core::HotColdPlanner::Options{900.0, virt.capacity_bytes()});
  core::PlacementPlanner planner(
      core::PlacementPlanner::Options{900.0, virt.capacity_bytes()},
      &hot_cold);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(result, virt));
  }
  state.SetItemsProcessed(state.iterations() * n_items);
}
BENCHMARK(BM_PlacementPlanner)->Arg(100)->Arg(2000);

void BM_EnclosureSubmit(benchmark::State& state) {
  storage::EnclosureConfig config;
  storage::DiskEnclosure enc(0, config);
  SimTime t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(
        enc.SubmitIo(t, 1, 8192, IoType::kRead, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnclosureSubmit);

}  // namespace
}  // namespace ecostore

BENCHMARK_MAIN();
