// Google-benchmark microbenchmarks for the hot code paths: the event
// loop, the cache, interval analysis, the classifier and the placement
// planner. These bound the monitoring overhead the paper argues is small
// (§III-A, §VII-D).
//
// In addition to the google-benchmark suite, main() times the per-period
// classification hot path on a real file-server monitoring period — both
// the current streaming implementation and the pre-optimisation
// vector-of-vectors gather (replicated below) — and writes the results to
// BENCH_perf.json (override the path with --json=<path> or the
// ECOSTORE_BENCH_JSON env var) so the perf trajectory is tracked across
// PRs. `bench_micro --json` runs only that measurement pass.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "bench/legacy_cache.h"
#include "bench/legacy_classifier.h"
#include "bench/legacy_planner.h"
#include "bench/legacy_simulator.h"
#include "bench/replay_check.h"
#include "common/random.h"
#include "core/eco_storage_policy.h"
#include "core/pattern_classifier.h"
#include "core/placement_planner.h"
#include "policies/basic_policies.h"
#include "replay/experiment.h"
#include "replay/sharded_experiment.h"
#include "sim/simulator.h"
#include "storage/disk_enclosure.h"
#include "storage/storage_cache.h"
#include "telemetry/profile/profile_export.h"
#include "telemetry/profile/profiler.h"
#include "telemetry/recorder.h"
#include "trace/trace_stats.h"
#include "workload/file_server_workload.h"

namespace ecostore {
namespace {

void BM_SimulatorScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(sim.RunAll());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRun);

/// The PR-2 engine (bench/legacy_simulator.h): heap entries carry the
/// std::function, so every sift moves it along with the key.
void BM_SimulatorScheduleRunLegacy(benchmark::State& state) {
  for (auto _ : state) {
    legacy::LegacySimulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.ScheduleAt(i, [] {});
    }
    benchmark::DoNotOptimize(sim.RunAll());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleRunLegacy);

void BM_CacheReadHit(benchmark::State& state) {
  storage::CacheConfig config;
  storage::StorageCache cache(config);
  std::vector<storage::FlushDemand> scratch;
  cache.Read(1, 0, 65536, &scratch);  // warm the blocks
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Read(1, 0, 65536, &scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheReadHit);

void BM_CacheWriteAbsorb(benchmark::State& state) {
  storage::CacheConfig config;
  storage::StorageCache cache(config);
  std::vector<storage::FlushDemand> scratch;
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Write(1, rng.UniformInt(0, 1 << 20) * 4096, 4096, &scratch));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheWriteAbsorb);

// ---------------------------------------------------------------------
// Cache read/write mix: the identical operation stream through the slab
// cache and through the pre-rewrite map/list implementation
// (bench/legacy_cache.h), with every aggregate asserted equal before the
// throughputs are compared — the PR-1 ClassifyLegacy pattern.
// ---------------------------------------------------------------------

struct CacheMixOp {
  bool write = false;
  DataItemId item = 0;
  int64_t offset = 0;
};

std::vector<CacheMixOp> MakeCacheMixOps(size_t n) {
  Xoshiro256 rng(7);
  std::vector<CacheMixOp> ops(n);
  for (CacheMixOp& op : ops) {
    op.write = rng.Bernoulli(0.4);
    op.item = static_cast<DataItemId>(rng.UniformInt(0, 63));
    op.offset = rng.UniformInt(0, 255) * 4096;
  }
  return ops;
}

storage::CacheConfig MixCacheConfig() {
  // 64 items x 256 hot blocks against a ~1.5k-block general area: an
  // eviction- and destage-heavy mix, with items 1-3 write-delayed.
  storage::CacheConfig config;
  config.block_size = 4096;
  config.total_bytes = 2048 * 4096;
  config.preload_area_bytes = 256 * 4096;
  config.write_delay_area_bytes = 256 * 4096;
  return config;
}

struct CacheMixTotals {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t absorbed = 0;
  int64_t demand_blocks = 0;
  int64_t demand_bytes = 0;

  bool operator==(const CacheMixTotals& o) const {
    return hits == o.hits && misses == o.misses && absorbed == o.absorbed &&
           demand_blocks == o.demand_blocks && demand_bytes == o.demand_bytes;
  }
};

CacheMixTotals RunCacheMixSlab(const std::vector<CacheMixOp>& ops) {
  storage::StorageCache cache(MixCacheConfig());
  cache.SetWriteDelayItems({1, 2, 3});
  std::vector<storage::FlushDemand> scratch;
  CacheMixTotals totals;
  auto consume = [&] {
    for (const auto& d : scratch) {
      totals.demand_blocks += d.blocks;
      totals.demand_bytes += d.bytes;
    }
  };
  for (const CacheMixOp& op : ops) {
    if (op.write) {
      cache.Write(op.item, op.offset, 4096, &scratch);
      consume();
    } else {
      auto out = cache.Read(op.item, op.offset, 4096, &scratch);
      totals.hits += out.hit_blocks;
      totals.misses += out.miss_blocks;
      consume();
    }
  }
  for (const auto& d : cache.FlushAll()) {
    totals.demand_blocks += d.blocks;
    totals.demand_bytes += d.bytes;
  }
  totals.absorbed = cache.absorbed_write_blocks();
  return totals;
}

CacheMixTotals RunCacheMixLegacy(const std::vector<CacheMixOp>& ops) {
  legacy::LegacyStorageCache cache(MixCacheConfig());
  cache.SetWriteDelayItems({1, 2, 3});
  CacheMixTotals totals;
  for (const CacheMixOp& op : ops) {
    if (op.write) {
      auto out = cache.Write(op.item, op.offset, 4096);
      for (const auto& d : out.destage) {
        totals.demand_blocks += d.blocks;
        totals.demand_bytes += d.bytes;
      }
    } else {
      auto out = cache.Read(op.item, op.offset, 4096);
      totals.hits += out.hit_blocks;
      totals.misses += out.miss_blocks;
      for (const auto& d : out.eviction_flushes) {
        totals.demand_blocks += d.blocks;
        totals.demand_bytes += d.bytes;
      }
    }
  }
  for (const auto& d : cache.FlushAll()) {
    totals.demand_blocks += d.blocks;
    totals.demand_bytes += d.bytes;
  }
  totals.absorbed = cache.absorbed_write_blocks();
  return totals;
}

void BM_IntervalAnalysis(benchmark::State& state) {
  Xoshiro256 rng(2);
  std::vector<std::pair<SimTime, bool>> ios;
  SimTime t = 0;
  for (int i = 0; i < state.range(0); ++i) {
    t += rng.UniformInt(1, 2 * kSecond);
    ios.emplace_back(t, rng.Bernoulli(0.6));
  }
  core::IntervalProfile profile;
  for (auto _ : state) {
    core::AnalyzeIntervalsInto(ios, 0, t + kSecond, 52 * kSecond, &profile);
    benchmark::DoNotOptimize(profile);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IntervalAnalysis)->Arg(100)->Arg(10000);

// ---------------------------------------------------------------------
// Classification: synthetic uniform trace and a real file-server period.
// ---------------------------------------------------------------------

/// The pre-optimisation classifier hot path, kept verbatim as the
/// regression reference: per period it materialised one vector of
/// (time, is_read) pairs PER CATALOG ITEM and copied every profile.
core::ClassificationResult ClassifyLegacy(
    const core::PatternClassifier::Options& options,
    const trace::LogicalTraceBuffer& buffer,
    const storage::DataItemCatalog& catalog, SimTime period_start,
    SimTime period_end) {
  core::ClassificationResult result;
  result.items.resize(catalog.item_count());

  std::vector<std::vector<std::pair<SimTime, bool>>> per_item(
      catalog.item_count());
  std::vector<std::pair<int64_t, int64_t>> bytes(catalog.item_count(),
                                                 {0, 0});
  for (const trace::LogicalIoRecord& rec : buffer.records()) {
    if (rec.item < 0 ||
        static_cast<size_t>(rec.item) >= catalog.item_count()) {
      continue;
    }
    auto idx = static_cast<size_t>(rec.item);
    per_item[idx].emplace_back(rec.time, rec.is_read());
    if (rec.is_read()) {
      bytes[idx].first += rec.size;
    } else {
      bytes[idx].second += rec.size;
    }
  }

  double period_seconds = ToSeconds(period_end - period_start);
  double long_interval_sum = 0.0;
  int64_t long_interval_count = 0;

  for (size_t i = 0; i < catalog.item_count(); ++i) {
    core::ItemClassification& cls = result.items[i];
    cls.item = static_cast<DataItemId>(i);
    cls.size_bytes = catalog.item(cls.item).size_bytes;
    cls.read_bytes = bytes[i].first;
    cls.write_bytes = bytes[i].second;

    core::IntervalProfile profile = core::AnalyzeIntervals(
        per_item[i], period_start, period_end, options.break_even);
    cls.reads = profile.total_reads();
    cls.writes = profile.total_writes();
    cls.avg_iops = period_seconds > 0
                       ? static_cast<double>(cls.total_ios()) / period_seconds
                       : 0.0;
    cls.long_interval_count =
        static_cast<int64_t>(profile.long_intervals.size());

    for (SimDuration li : profile.long_intervals) {
      long_interval_sum += static_cast<double>(li);
      long_interval_count++;
    }

    if (per_item[i].empty()) {
      cls.pattern = core::IoPattern::kP0;
    } else if (profile.long_intervals.empty()) {
      cls.pattern = core::IoPattern::kP3;
    } else if (cls.reads * 2 > cls.total_ios()) {
      cls.pattern = core::IoPattern::kP1;
    } else {
      cls.pattern = core::IoPattern::kP2;
    }
    result.pattern_counts[static_cast<size_t>(cls.pattern)]++;
  }

  if (long_interval_count > 0) {
    result.mean_long_interval = static_cast<SimDuration>(
        long_interval_sum / static_cast<double>(long_interval_count));
  }

  trace::IopsSeries p3_series(
      period_start, std::max(period_end, period_start + 1),
      options.iops_bucket);
  bool any_p3 = false;
  for (size_t i = 0; i < result.items.size(); ++i) {
    if (result.items[i].pattern != core::IoPattern::kP3) continue;
    any_p3 = true;
    for (const auto& [t, is_read] : per_item[i]) {
      (void)is_read;
      p3_series.Add(t);
    }
  }
  result.p3_max_iops = any_p3 ? p3_series.MaxIops() : 0.0;
  return result;
}

/// One monitoring period (the paper's initial 520 s) of the file-server
/// workload, replayed into a trace buffer once and shared by the
/// classification benchmarks.
struct FileServerPeriod {
  storage::DataItemCatalog catalog;
  trace::LogicalTraceBuffer buffer;
  SimTime period_end = 520 * kSecond;

  static const FileServerPeriod& Get() {
    static FileServerPeriod* period = [] {
      auto* p = new FileServerPeriod();
      workload::FileServerConfig config;
      config.duration = p->period_end;
      auto workload = workload::FileServerWorkload::Create(config);
      if (!workload.ok()) {
        std::fprintf(stderr, "file-server workload: %s\n",
                     workload.status().ToString().c_str());
        std::abort();
      }
      trace::LogicalIoRecord rec;
      while (workload.value()->Next(&rec)) p->buffer.Append(rec);
      // The catalog outlives the workload via a copy.
      p->catalog = workload.value()->catalog();
      return p;
    }();
    return *period;
  }
};

// ---------------------------------------------------------------------
// Workload streaming: Next() one record at a time vs NextBatch() — the
// feed half of the batched replay loop.
// ---------------------------------------------------------------------

/// The file-server generator for one monitoring period, shared by the
/// stream benchmarks (Reset() rewinds it deterministically).
workload::FileServerWorkload* StreamBenchWorkload() {
  static workload::FileServerWorkload* w = [] {
    workload::FileServerConfig config;
    config.duration = 520 * kSecond;
    auto workload = workload::FileServerWorkload::Create(config);
    if (!workload.ok()) {
      std::fprintf(stderr, "stream bench workload: %s\n",
                   workload.status().ToString().c_str());
      std::abort();
    }
    return workload.value().release();
  }();
  return w;
}

void BM_FileServerStreamNext(benchmark::State& state) {
  workload::FileServerWorkload* w = StreamBenchWorkload();
  int64_t records = 0;
  for (auto _ : state) {
    w->Reset();
    trace::LogicalIoRecord rec;
    records = 0;
    while (w->Next(&rec)) {
      benchmark::DoNotOptimize(rec);
      records++;
    }
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_FileServerStreamNext);

void BM_FileServerStreamNextBatch(benchmark::State& state) {
  workload::FileServerWorkload* w = StreamBenchWorkload();
  std::vector<trace::LogicalIoRecord> batch;
  batch.reserve(256);
  int64_t records = 0;
  for (auto _ : state) {
    w->Reset();
    records = 0;
    while (w->NextBatch(&batch, 256) > 0) {
      benchmark::DoNotOptimize(batch.data());
      records += static_cast<int64_t>(batch.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * records);
}
BENCHMARK(BM_FileServerStreamNextBatch);

void BM_ClassifyFileServerPeriod(benchmark::State& state) {
  const FileServerPeriod& period = FileServerPeriod::Get();
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Classify(
        period.buffer, period.catalog, 0, period.period_end));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(period.buffer.size()));
}
BENCHMARK(BM_ClassifyFileServerPeriod);

void BM_ClassifyFileServerPeriodLegacy(benchmark::State& state) {
  const FileServerPeriod& period = FileServerPeriod::Get();
  core::PatternClassifier::Options options{52 * kSecond, 1 * kSecond};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyLegacy(
        options, period.buffer, period.catalog, 0, period.period_end));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(period.buffer.size()));
}
BENCHMARK(BM_ClassifyFileServerPeriodLegacy);

void BM_PatternClassifier(benchmark::State& state) {
  const int n_items = static_cast<int>(state.range(0));
  storage::DataItemCatalog catalog;
  VolumeId v = catalog.AddVolume(0);
  for (int i = 0; i < n_items; ++i) {
    catalog.AddItem("i" + std::to_string(i), v, 1 << 20,
                    storage::DataItemKind::kFile);
  }
  trace::LogicalTraceBuffer buffer;
  Xoshiro256 rng(3);
  SimTime t = 0;
  for (int k = 0; k < 100000; ++k) {
    t += rng.UniformInt(1, 10 * kMillisecond);
    trace::LogicalIoRecord rec;
    rec.time = t;
    rec.item = static_cast<DataItemId>(rng.UniformInt(0, n_items - 1));
    rec.size = 8192;
    rec.type = rng.Bernoulli(0.6) ? IoType::kRead : IoType::kWrite;
    buffer.Append(rec);
  }
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        classifier.Classify(buffer, catalog, 0, t + kSecond));
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_PatternClassifier)->Arg(100)->Arg(2000);

void BM_PlacementPlanner(benchmark::State& state) {
  const int n_items = static_cast<int>(state.range(0));
  const int n_enclosures = 12;
  storage::DataItemCatalog catalog;
  for (int e = 0; e < n_enclosures; ++e) catalog.AddVolume(e);
  core::ClassificationResult result;
  Xoshiro256 rng(4);
  for (int i = 0; i < n_items; ++i) {
    auto pattern = static_cast<core::IoPattern>(rng.UniformInt(0, 3));
    DataItemId id =
        catalog
            .AddItem("i" + std::to_string(i),
                     static_cast<VolumeId>(rng.UniformInt(
                         0, n_enclosures - 1)),
                     rng.UniformInt(1, 1000) * 1024 * 1024,
                     storage::DataItemKind::kFile)
            .value();
    core::ItemClassification cls;
    cls.item = id;
    cls.pattern = pattern;
    cls.size_bytes = catalog.item(id).size_bytes;
    cls.avg_iops = pattern == core::IoPattern::kP3
                       ? static_cast<double>(rng.UniformInt(1, 50))
                       : 1.0;
    result.items.push_back(cls);
    if (pattern == core::IoPattern::kP3) result.p3_max_iops += cls.avg_iops;
  }
  storage::BlockVirtualization virt(&catalog, n_enclosures,
                                    1700LL * 1024 * 1024 * 1024);
  if (!virt.PlaceInitial().ok()) {
    state.SkipWithError("placement failed");
    return;
  }
  core::HotColdPlanner hot_cold(
      core::HotColdPlanner::Options{900.0, virt.capacity_bytes()});
  core::PlacementPlanner planner(
      core::PlacementPlanner::Options{900.0, virt.capacity_bytes()},
      &hot_cold);
  for (auto _ : state) {
    benchmark::DoNotOptimize(planner.Plan(result, virt));
  }
  state.SetItemsProcessed(state.iterations() * n_items);
}
BENCHMARK(BM_PlacementPlanner)->Arg(100)->Arg(2000);

void BM_EnclosureSubmit(benchmark::State& state) {
  storage::EnclosureConfig config;
  storage::DiskEnclosure enc(0, config);
  SimTime t = 0;
  for (auto _ : state) {
    t += 1000;
    benchmark::DoNotOptimize(
        enc.SubmitIo(t, 1, 8192, IoType::kRead, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnclosureSubmit);

// ---------------------------------------------------------------------
// BENCH_perf.json: manually timed classification throughput (events/s)
// on the file-server period, current vs legacy, for cross-PR tracking.
// ---------------------------------------------------------------------

}  // namespace

// ---------------------------------------------------------------------
// End-to-end replay throughput: a whole Experiment (cache + simulator +
// policy + migration engine) on a 20-minute file-server trace, measured
// in logical I/Os per wall second. Non-anonymous so main() can reach it.
// ---------------------------------------------------------------------

struct ReplayFigure {
  int64_t logical_ios = 0;
  double lios_per_sec = 0.0;
  uint64_t fingerprint = 0;
  int64_t rolling_windows = 0;  ///< kLiveConsumer runs: windows folded
};

/// How MeasureReplayThroughput instruments the replay. The two kLive*
/// modes construct a fresh recorder (and, for kLiveConsumer, a fresh
/// StreamDispatcher + RollingSummary) inside every timed run so the
/// only difference between the live_ledger_overhead arms is the
/// streaming consumer itself.
enum class ReplayInstrument {
  kPassedRecorder,  ///< attach `recorder` (may be null): legacy behaviour
  kLiveRecorder,    ///< fresh per-run recorder, no stream consumer
  kLiveConsumer,    ///< fresh per-run recorder + dispatcher + RollingSummary
};

ReplayFigure MeasureReplayThroughput(
    bool eco, telemetry::Recorder* recorder = nullptr,
    ReplayInstrument instrument = ReplayInstrument::kPassedRecorder,
    telemetry::profile::Profiler* profiler = nullptr) {
  workload::FileServerConfig wl;
  wl.duration = 20 * kMinute;
  auto workload = workload::FileServerWorkload::Create(wl);
  if (!workload.ok()) {
    std::fprintf(stderr, "replay bench workload: %s\n",
                 workload.status().ToString().c_str());
    std::abort();
  }

  ReplayFigure figure;
  auto run_once = [&] {
    // Keep only the last run's spans: the ring survives across the repeat
    // loop, and the export/stat consumers want one run, not an overlay.
    if (profiler != nullptr) profiler->Drain();
    std::unique_ptr<policies::StoragePolicy> policy;
    if (eco) {
      policy = std::make_unique<core::EcoStoragePolicy>(
          core::PowerManagementConfig{});
    } else {
      policy = std::make_unique<policies::NoPowerSavingPolicy>();
    }
    replay::ExperimentConfig config;
    config.profiler = profiler;
    telemetry::Recorder local_recorder;
    telemetry::StreamDispatcher dispatcher;
    std::unique_ptr<telemetry::analysis::RollingSummary> rolling;
    if (instrument == ReplayInstrument::kPassedRecorder) {
      config.telemetry = recorder;
    } else {
      config.telemetry = &local_recorder;
      if (instrument == ReplayInstrument::kLiveConsumer) {
        telemetry::ExportMeta pre_meta;
        pre_meta.duration = wl.duration;
        telemetry::analysis::RollingSummary::Options ropt;
        ropt.window_us = kMinute;
        ropt.retention = 4;
        rolling = std::make_unique<telemetry::analysis::RollingSummary>(
            pre_meta, ropt);
        dispatcher.AddConsumer(rolling.get());
        config.stream = &dispatcher;
        config.stream_window_us = ropt.window_us;
      }
    }
    replay::Experiment experiment(workload.value().get(), policy.get(),
                                  config);
    auto metrics = experiment.Run();
    if (!metrics.ok()) {
      std::fprintf(stderr, "replay bench run: %s\n",
                   metrics.status().ToString().c_str());
      std::abort();
    }
    figure.logical_ios = metrics.value().logical_ios;
    figure.fingerprint = bench::MetricsFingerprint(metrics.value());
    figure.rolling_windows =
        rolling != nullptr ? rolling->windows_closed() : 0;
  };

  using Clock = std::chrono::steady_clock;
  run_once();  // warm-up
  int64_t calls = 0;
  auto start = Clock::now();
  double elapsed = 0.0;
  do {
    run_once();
    calls++;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 2.0);
  figure.lios_per_sec =
      static_cast<double>(figure.logical_ios * calls) / elapsed;
  return figure;
}

// ---------------------------------------------------------------------
// Shard-scaling microbench: one 120-enclosure eco run on the sharded
// engine, S=1 (the serial engine, by delegation) vs S=8. The config is
// inside the documented exact-equivalence domain (neutral cache,
// pattern-change triggers off), so the figures are gated on the two
// shard counts producing the same integer counters and per-enclosure
// energies. The speedup is machine-dependent: on a single-core host the
// epoch barriers are pure overhead and the figure is honestly < 1.
// ---------------------------------------------------------------------

ReplayFigure MeasureShardedReplayThroughput(
    int shards, replay::ExperimentMetrics* out_metrics = nullptr,
    telemetry::profile::Profiler* profiler = nullptr) {
  workload::FileServerConfig wl;
  wl.duration = 20 * kMinute;
  wl.num_enclosures = 120;
  wl.big_hot_files = 20;
  wl.small_hot_files = 60;
  wl.popular_files = 2500;
  wl.tail_files = 1000;
  wl.archive_files = 240;
  // The default file-server sizes (120 GiB hot / 96 GiB archive) target
  // a 12-enclosure array; 20 big-hot files at those sizes overflow the
  // first enclosure's 1.7 TiB volume. Scale the per-file sizes down so
  // the 120-enclosure placement fits while the I/O stream stays dense.
  wl.big_hot_file_bytes = 8 * kGiB;
  wl.archive_file_bytes = 4 * kGiB;
  auto workload = workload::FileServerWorkload::Create(wl);
  if (!workload.ok()) {
    std::fprintf(stderr, "sharded bench workload: %s\n",
                 workload.status().ToString().c_str());
    std::abort();
  }

  ReplayFigure figure;
  auto run_once = [&] {
    if (profiler != nullptr) profiler->Drain();  // last run's spans only
    core::PowerManagementConfig pm;
    pm.enable_pattern_change_triggers = false;
    core::EcoStoragePolicy policy(pm);
    replay::ExperimentConfig config;
    config.profiler = profiler;
    config.storage.cache.total_bytes = 64 * kGiB;
    config.storage.cache.write_delay_area_bytes = 8 * kGiB;
    replay::ShardedExperiment experiment(workload.value().get(), &policy,
                                         config, shards);
    auto metrics = experiment.Run();
    if (!metrics.ok()) {
      std::fprintf(stderr, "sharded bench run: %s\n",
                   metrics.status().ToString().c_str());
      std::abort();
    }
    figure.logical_ios = metrics.value().logical_ios;
    figure.fingerprint = bench::MetricsFingerprint(metrics.value());
    if (out_metrics != nullptr) *out_metrics = metrics.value();
  };

  using Clock = std::chrono::steady_clock;
  // Two timed runs, best wall time: these runs are seconds-long, so the
  // 2-second repeat loop of the serial figure would be all warm-up.
  double best = 1e300;
  for (int i = 0; i < 2; ++i) {
    auto start = Clock::now();
    run_once();
    double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed < best) best = elapsed;
  }
  figure.lios_per_sec = static_cast<double>(figure.logical_ios) / best;
  return figure;
}

namespace {

// ---------------------------------------------------------------------
// sharded_profile: the contention breakdown the wall-clock phase spans
// of a profiled sharded replay yield — per-lane busy time, coordinator
// barrier-wait and merge time, and the per-epoch load-imbalance ratio
// (max lane busy / mean lane busy among the lanes that ran that epoch).
// S=1 delegates to the serial engine, so its row reports the serial
// pipeline (ingest/period-end) instead of lane spans.
// ---------------------------------------------------------------------

struct ShardedProfileStats {
  uint64_t spans = 0;
  int64_t epochs = 0;  ///< kEpoch spans recorded (sharded path only)
  std::vector<double> lane_busy_ms;  ///< per lane: total kLaneAdvance wall
  double ingest_ms = 0.0;  ///< serial-path ingest (the S=1 delegation)
  double scatter_ms = 0.0;
  double barrier_wait_ms = 0.0;
  double merge_ms = 0.0;
  double period_end_ms = 0.0;
  double imbalance_mean = 0.0;
};

ShardedProfileStats ComputeShardedProfileStats(
    const std::vector<telemetry::profile::Span>& spans) {
  namespace prof = telemetry::profile;
  ShardedProfileStats out;
  out.spans = spans.size();
  // epoch correlation id -> lane -> busy ns, for the imbalance ratio.
  std::map<uint32_t, std::map<uint16_t, int64_t>> epoch_busy;
  for (const prof::Span& s : spans) {
    const double ms = static_cast<double>(s.dur_ns) / 1e6;
    switch (static_cast<prof::Phase>(s.phase)) {
      case prof::Phase::kEpoch:
        out.epochs++;
        break;
      case prof::Phase::kIngest:
        out.ingest_ms += ms;
        break;
      case prof::Phase::kScatter:
        out.scatter_ms += ms;
        break;
      case prof::Phase::kBarrierWait:
        out.barrier_wait_ms += ms;
        break;
      case prof::Phase::kMerge:
        out.merge_ms += ms;
        break;
      case prof::Phase::kPeriodEnd:
        out.period_end_ms += ms;
        break;
      case prof::Phase::kLaneAdvance:
        if (s.lane >= out.lane_busy_ms.size()) {
          out.lane_busy_ms.resize(s.lane + 1, 0.0);
        }
        out.lane_busy_ms[s.lane] += ms;
        epoch_busy[s.seq][s.lane] += s.dur_ns;
        break;
      default:
        break;
    }
  }
  double ratio_sum = 0.0;
  int64_t ratio_epochs = 0;
  for (const auto& [seq, lanes] : epoch_busy) {
    if (lanes.size() < 2) continue;  // one active lane: imbalance undefined
    int64_t max_ns = 0, sum_ns = 0;
    for (const auto& [lane, ns] : lanes) {
      max_ns = std::max(max_ns, ns);
      sum_ns += ns;
    }
    if (sum_ns <= 0) continue;
    const double mean_ns =
        static_cast<double>(sum_ns) / static_cast<double>(lanes.size());
    ratio_sum += static_cast<double>(max_ns) / mean_ns;
    ratio_epochs++;
  }
  out.imbalance_mean = ratio_epochs > 0
                           ? ratio_sum / static_cast<double>(ratio_epochs)
                           : 1.0;
  return out;
}

// ---------------------------------------------------------------------
// planner_scale: the indexed placement planner vs the frozen stable_sort
// reference (bench/legacy_planner.h) on synthetic fleets, gated on the
// two producing bit-identical plans. The fixture scatters a P3 head over
// the fleet so ~85% of P3 items start on cold enclosures (the Algorithm
// 2 mover population), and fills enclosures to ~65% so a fraction of the
// placements needs Algorithm 3 evictions.
// ---------------------------------------------------------------------

struct PlannerScaleFixture {
  storage::DataItemCatalog catalog;
  core::ClassificationResult result;
  std::unique_ptr<storage::BlockVirtualization> virt;
  int64_t movers = 0;  ///< P3 items initially on cold enclosures
};

PlannerScaleFixture MakePlannerScaleFixture(int n_enclosures,
                                            int items_per_enclosure) {
  PlannerScaleFixture fx;
  for (int e = 0; e < n_enclosures; ++e) {
    fx.catalog.AddVolume(static_cast<EnclosureId>(e));
  }
  const int n_items = n_enclosures * items_per_enclosure;
  Xoshiro256 rng(0x9e3779b97f4a7c15ull + static_cast<uint64_t>(n_items));
  double p3_iops_sum = 0.0;
  for (int i = 0; i < n_items; ++i) {
    const bool p3 = rng.NextDouble() < 0.03;
    auto pattern = p3 ? core::IoPattern::kP3
                      : static_cast<core::IoPattern>(rng.UniformInt(0, 2));
    DataItemId id =
        fx.catalog
            .AddItem("i" + std::to_string(i),
                     static_cast<VolumeId>(
                         rng.UniformInt(0, n_enclosures - 1)),
                     rng.UniformInt(16, 160) * (128LL * 1024 * 1024),
                     storage::DataItemKind::kFile)
            .value();
    core::ItemClassification cls;
    cls.item = id;
    cls.pattern = pattern;
    cls.size_bytes = fx.catalog.item(id).size_bytes;
    cls.avg_iops = p3 ? static_cast<double>(rng.UniformInt(1, 50)) : 0.2;
    if (p3) p3_iops_sum += cls.avg_iops;
    fx.result.items.push_back(cls);
  }
  // Peak concurrent IOPS above the per-item average (as the classifier
  // measures on real traces) — gives N_hot the headroom that makes the
  // placement converge without retries at ~60% IOPS fill.
  fx.result.p3_max_iops = p3_iops_sum * 1.6;
  fx.virt = std::make_unique<storage::BlockVirtualization>(
      &fx.catalog, n_enclosures, 1700LL * 1024 * 1024 * 1024);
  if (!fx.virt->PlaceInitial().ok()) {
    std::fprintf(stderr, "planner_scale: initial placement failed\n");
    std::exit(1);
  }
  core::HotColdPlanner hc(
      core::HotColdPlanner::Options{900.0, fx.virt->capacity_bytes()});
  core::HotColdPartition part = hc.Plan(fx.result, *fx.virt);
  for (const core::ItemClassification& cls : fx.result.items) {
    if (cls.pattern == core::IoPattern::kP3 &&
        !part.IsHot(fx.virt->EnclosureOf(cls.item))) {
      fx.movers++;
    }
  }
  return fx;
}

bool SamePlacementPlan(const core::PlacementPlan& a,
                       const core::PlacementPlan& b) {
  if (a.partition.n_hot != b.partition.n_hot ||
      a.partition.is_hot != b.partition.is_hot ||
      a.migrations.size() != b.migrations.size()) {
    return false;
  }
  for (size_t i = 0; i < a.migrations.size(); ++i) {
    if (a.migrations[i].item != b.migrations[i].item ||
        a.migrations[i].from != b.migrations[i].from ||
        a.migrations[i].to != b.migrations[i].to) {
      return false;
    }
  }
  return true;
}

template <typename Fn>
double MeasureSecondsPerCall(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm-up (grows scratch to steady state)
  int calls = 0;
  auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    calls++;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 1.0 && calls < 10);
  return elapsed / calls;
}

struct PlannerScaleCase {
  int enclosures = 0;
  int items = 0;
  int64_t movers = 0;
  int64_t migrations = 0;
  double legacy_sec = 0.0;
  double indexed_sec = 0.0;
};

PlannerScaleCase RunPlannerScaleCase(int n_enclosures,
                                     int items_per_enclosure) {
  PlannerScaleFixture fx =
      MakePlannerScaleFixture(n_enclosures, items_per_enclosure);
  PlannerScaleCase out;
  out.enclosures = n_enclosures;
  out.items = n_enclosures * items_per_enclosure;
  out.movers = fx.movers;

  core::PlacementPlanner::Options options{900.0, fx.virt->capacity_bytes()};
  core::HotColdPlanner hot_cold(
      core::HotColdPlanner::Options{900.0, fx.virt->capacity_bytes()});
  core::PlacementPlanner indexed(options, &hot_cold);
  legacy::LegacyHotColdPlanner legacy_hot_cold(
      core::HotColdPlanner::Options{900.0, fx.virt->capacity_bytes()});
  legacy::LegacyPlacementPlanner legacy(options, &legacy_hot_cold);

  core::PlacementPlan indexed_plan = indexed.Plan(fx.result, *fx.virt);
  core::PlacementPlan legacy_plan = legacy.Plan(fx.result, *fx.virt);
  if (!SamePlacementPlan(indexed_plan, legacy_plan)) {
    std::fprintf(stderr,
                 "BENCH_perf: planner_scale %dx%d — indexed and legacy "
                 "plans disagree (n_hot %d/%d, migrations %zu/%zu)\n",
                 n_enclosures, items_per_enclosure, indexed_plan.partition.n_hot,
                 legacy_plan.partition.n_hot, indexed_plan.migrations.size(),
                 legacy_plan.migrations.size());
    std::exit(1);
  }
  out.migrations = static_cast<int64_t>(indexed_plan.migrations.size());

  out.indexed_sec = MeasureSecondsPerCall([&] {
    benchmark::DoNotOptimize(indexed.Plan(fx.result, *fx.virt));
  });
  out.legacy_sec = MeasureSecondsPerCall([&] {
    benchmark::DoNotOptimize(legacy.Plan(fx.result, *fx.virt));
  });
  return out;
}

// ---------------------------------------------------------------------
// classify_scale: period-end classification cost at fleet scale (10k
// enclosures / 1M items), legacy full-trace replay vs streaming
// finalisation (DESIGN.md §13). The streaming classifier pays the
// interval analysis during ingest — amortised into monitoring — so its
// period-end cost is the sharded catalog scan alone, while the frozen
// reference (bench/legacy_classifier.h) replays the whole captured trace
// and heap-allocates per episodic item. Gated on the two producing
// bit-identical classifications AND identical placement plans
// (migration lists compared element-wise).
// ---------------------------------------------------------------------

struct ClassifyScaleCase {
  int enclosures = 0;
  int items = 0;
  int64_t trace_events = 0;
  int64_t active_items = 0;
  int64_t migrations = 0;
  double ingest_sec = 0.0;    ///< one full-period ingest pass
  double legacy_sec = 0.0;    ///< legacy classify per period end
  double finalize_sec = 0.0;  ///< streaming finalise per period end
  size_t peak_state_bytes = 0;
  size_t trace_bytes = 0;
};

bool SameClassification(const core::ClassificationResult& a,
                        const core::ClassificationResult& b) {
  if (a.items.size() != b.items.size() ||
      a.pattern_counts != b.pattern_counts ||
      a.p3_max_iops != b.p3_max_iops ||
      a.mean_long_interval != b.mean_long_interval) {
    return false;
  }
  for (size_t i = 0; i < a.items.size(); ++i) {
    const core::ItemClassification& x = a.items[i];
    const core::ItemClassification& y = b.items[i];
    if (x.item != y.item || x.pattern != y.pattern ||
        x.reads != y.reads || x.writes != y.writes ||
        x.read_bytes != y.read_bytes || x.write_bytes != y.write_bytes ||
        x.io_sequences != y.io_sequences ||
        x.long_interval_count != y.long_interval_count ||
        x.avg_iops != y.avg_iops) {
      return false;
    }
  }
  return true;
}

ClassifyScaleCase RunClassifyScaleCase(int n_enclosures,
                                       int items_per_enclosure) {
  constexpr SimTime kPeriodEnd = 520 * kSecond;
  ClassifyScaleCase out;
  out.enclosures = n_enclosures;
  const int n_items = n_enclosures * items_per_enclosure;
  out.items = n_items;

  storage::DataItemCatalog catalog;
  for (int e = 0; e < n_enclosures; ++e) {
    catalog.AddVolume(static_cast<EnclosureId>(e));
  }
  Xoshiro256 rng(0x5eedc1a551f7ull + static_cast<uint64_t>(n_items));
  for (int i = 0; i < n_items; ++i) {
    catalog
        .AddItem("i" + std::to_string(i),
                 static_cast<VolumeId>(rng.UniformInt(0, n_enclosures - 1)),
                 rng.UniformInt(16, 160) * (128LL * 1024 * 1024),
                 storage::DataItemKind::kFile)
        .value();
  }

  // Activity-proportional trace: ~2% of the catalog sees I/O at all, a
  // tenth of that runs dense enough to classify P3. Per-item times are
  // strictly increasing, so sorting by (time, item) yields a valid
  // global monitor order with per-item order preserved.
  std::vector<trace::LogicalIoRecord> records;
  for (int i = 0; i < n_items; ++i) {
    if (!rng.Bernoulli(0.02)) continue;
    out.active_items++;
    trace::LogicalIoRecord rec;
    rec.item = static_cast<DataItemId>(i);
    rec.size = 8 * 1024;
    if (rng.Bernoulli(0.1)) {
      // Dense: every 0.1-0.4 s for the whole period — never a Long
      // Interval (P3), feeding the I_max bucket series.
      SimTime t = rng.UniformInt(0, 5 * kSecond);
      while (t < kPeriodEnd) {
        rec.time = t;
        rec.type = rng.Bernoulli(0.6) ? IoType::kRead : IoType::kWrite;
        records.push_back(rec);
        t += rng.UniformInt(kSecond / 10, 4 * kSecond / 10);
      }
    } else {
      // Episodic: one or two short bursts (P1/P2).
      const int bursts = rng.Bernoulli(0.4) ? 2 : 1;
      for (int b = 0; b < bursts; ++b) {
        SimTime t = rng.UniformInt(0, kPeriodEnd - kSecond);
        const int n = static_cast<int>(rng.UniformInt(3, 20));
        for (int k = 0; k < n && t < kPeriodEnd; ++k) {
          rec.time = t;
          rec.type = rng.Bernoulli(0.5) ? IoType::kRead : IoType::kWrite;
          records.push_back(rec);
          t += rng.UniformInt(10 * kMillisecond, 200 * kMillisecond);
        }
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const trace::LogicalIoRecord& a,
               const trace::LogicalIoRecord& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.item < b.item;
            });
  trace::LogicalTraceBuffer buffer;
  for (const trace::LogicalIoRecord& rec : records) buffer.Append(rec);
  records.clear();
  records.shrink_to_fit();
  out.trace_events = static_cast<int64_t>(buffer.size());
  out.trace_bytes = buffer.size() * sizeof(trace::LogicalIoRecord);

  core::PatternClassifier::Options options{52 * kSecond, 1 * kSecond};
  core::PatternClassifier streaming(options);
  bench::LegacyPatternClassifier legacy(options);

  // One timed full-period ingest pass (the cost the streaming pipeline
  // folds into monitoring), leaving the classifier ready to finalise.
  using Clock = std::chrono::steady_clock;
  auto ingest_start = Clock::now();
  streaming.BeginPeriod(0);
  for (const trace::LogicalIoRecord& rec : buffer.records()) {
    streaming.OnLogicalIo(rec);
  }
  out.ingest_sec =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();

  // First finalise pays the one-time O(catalog) quiet-row init; the timed
  // loop below measures the steady-state period end (frontier only).
  const core::ClassificationResult& streaming_result =
      streaming.Finalize(catalog, kPeriodEnd);
  core::ClassificationResult legacy_result =
      legacy.Classify(buffer, catalog, 0, kPeriodEnd);
  if (!SameClassification(legacy_result, streaming_result)) {
    std::fprintf(stderr,
                 "BENCH_perf: classify_scale %dx%d — streaming and legacy "
                 "classifications disagree\n",
                 n_enclosures, items_per_enclosure);
    std::exit(1);
  }

  // Identical plans: both classifications through the same placement
  // pipeline must order the same migrations.
  auto virt = std::make_unique<storage::BlockVirtualization>(
      &catalog, n_enclosures, 1700LL * 1024 * 1024 * 1024);
  if (!virt->PlaceInitial().ok()) {
    std::fprintf(stderr, "classify_scale: initial placement failed\n");
    std::exit(1);
  }
  core::HotColdPlanner hot_cold(
      core::HotColdPlanner::Options{900.0, virt->capacity_bytes()});
  core::PlacementPlanner planner(
      core::PlacementPlanner::Options{900.0, virt->capacity_bytes()},
      &hot_cold);
  core::PlacementPlan stream_plan = planner.Plan(streaming_result, *virt);
  core::PlacementPlan legacy_plan = planner.Plan(legacy_result, *virt);
  if (!SamePlacementPlan(stream_plan, legacy_plan)) {
    std::fprintf(stderr,
                 "BENCH_perf: classify_scale %dx%d — plans disagree "
                 "(n_hot %d/%d, migrations %zu/%zu)\n",
                 n_enclosures, items_per_enclosure,
                 stream_plan.partition.n_hot, legacy_plan.partition.n_hot,
                 stream_plan.migrations.size(),
                 legacy_plan.migrations.size());
    std::exit(1);
  }
  out.migrations = static_cast<int64_t>(stream_plan.migrations.size());

  // Period-end cost: streaming = Finalize only (idempotent over the same
  // ingested state), legacy = the full trace replay + per-item gather.
  out.finalize_sec = MeasureSecondsPerCall([&] {
    const core::ClassificationResult& r =
        streaming.Finalize(catalog, kPeriodEnd);
    benchmark::DoNotOptimize(r.items.data());
  });
  out.legacy_sec = MeasureSecondsPerCall([&] {
    benchmark::DoNotOptimize(
        legacy.Classify(buffer, catalog, 0, kPeriodEnd));
  });
  out.peak_state_bytes = streaming.peak_state_bytes();
  return out;
}

template <typename Fn>
double MeasureEventsPerSec(int64_t events_per_call, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  // Warm-up (grows the reusable scratch to steady state).
  fn();
  int64_t calls = 0;
  auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    calls++;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 1.0);
  return static_cast<double>(events_per_call * calls) / elapsed;
}

/// Measures every tracked figure and writes the BENCH_perf.json schema.
/// Path precedence: `path_override` (the --json= flag) beats the
/// ECOSTORE_BENCH_JSON env var beats "BENCH_perf.json".
void WriteBenchPerfJson(const char* path_override) {
  const FileServerPeriod& period = FileServerPeriod::Get();
  const auto events = static_cast<int64_t>(period.buffer.size());
  core::PatternClassifier classifier(
      core::PatternClassifier::Options{52 * kSecond, 1 * kSecond});
  core::PatternClassifier::Options options{52 * kSecond, 1 * kSecond};

  // Sanity: both implementations must agree before we compare speed.
  core::ClassificationResult current =
      classifier.Classify(period.buffer, period.catalog, 0,
                          period.period_end);
  core::ClassificationResult legacy = ClassifyLegacy(
      options, period.buffer, period.catalog, 0, period.period_end);
  if (current.pattern_counts != legacy.pattern_counts ||
      current.p3_max_iops != legacy.p3_max_iops ||
      current.mean_long_interval != legacy.mean_long_interval) {
    std::fprintf(stderr,
                 "BENCH_perf: streaming and legacy classification disagree!\n");
    std::exit(1);
  }

  double streaming = MeasureEventsPerSec(events, [&] {
    benchmark::DoNotOptimize(classifier.Classify(
        period.buffer, period.catalog, 0, period.period_end));
  });
  double legacy_rate = MeasureEventsPerSec(events, [&] {
    benchmark::DoNotOptimize(ClassifyLegacy(
        options, period.buffer, period.catalog, 0, period.period_end));
  });

  // Sanity: the POD-heap engine and the frozen PR-2 replica must execute
  // the same schedule identically before their speeds are compared.
  {
    int64_t pod_fired = 0, legacy_fired = 0;
    sim::Simulator pod;
    legacy::LegacySimulator old_engine;
    for (int i = 0; i < 100000; ++i) {
      pod.ScheduleAt(i, [&] { pod_fired++; });
      old_engine.ScheduleAt(i, [&] { legacy_fired++; });
    }
    int64_t pod_ran = pod.RunAll();
    int64_t legacy_ran = old_engine.RunAll();
    if (pod_fired != legacy_fired || pod_ran != legacy_ran ||
        pod.Now() != old_engine.Now()) {
      std::fprintf(stderr,
                   "BENCH_perf: POD-heap and legacy simulator disagree "
                   "(fired %lld/%lld ran %lld/%lld)\n",
                   static_cast<long long>(pod_fired),
                   static_cast<long long>(legacy_fired),
                   static_cast<long long>(pod_ran),
                   static_cast<long long>(legacy_ran));
      std::exit(1);
    }
  }

  double sim_rate = MeasureEventsPerSec(100000, [] {
    sim::Simulator sim;
    sim.Reserve(100000);
    for (int i = 0; i < 100000; ++i) sim.ScheduleAt(i, [] {});
    benchmark::DoNotOptimize(sim.RunAll());
  });
  double sim_legacy_rate = MeasureEventsPerSec(100000, [] {
    legacy::LegacySimulator sim;
    for (int i = 0; i < 100000; ++i) sim.ScheduleAt(i, [] {});
    benchmark::DoNotOptimize(sim.RunAll());
  });
  // Cancellation-heavy variant: every second event is cancelled before the
  // loop drains (the case the tombstone scheme targets).
  double sim_cancel_rate = MeasureEventsPerSec(100000, [] {
    sim::Simulator sim;
    std::vector<sim::EventId> ids;
    ids.reserve(50000);
    for (int i = 0; i < 100000; ++i) {
      sim::EventId id = sim.ScheduleAt(i, [] {});
      if (i % 2 == 0) ids.push_back(id);
    }
    for (sim::EventId id : ids) sim.Cancel(id);
    benchmark::DoNotOptimize(sim.RunAll());
  });

  // Cache read/write mix, slab vs legacy map/list, equal-aggregate gated.
  const std::vector<CacheMixOp> mix_ops = MakeCacheMixOps(1 << 18);
  CacheMixTotals slab_totals = RunCacheMixSlab(mix_ops);
  CacheMixTotals legacy_totals = RunCacheMixLegacy(mix_ops);
  if (!(slab_totals == legacy_totals)) {
    std::fprintf(stderr,
                 "BENCH_perf: slab and legacy cache disagree on the mix "
                 "(hits %lld/%lld misses %lld/%lld absorbed %lld/%lld "
                 "demand blocks %lld/%lld)\n",
                 static_cast<long long>(slab_totals.hits),
                 static_cast<long long>(legacy_totals.hits),
                 static_cast<long long>(slab_totals.misses),
                 static_cast<long long>(legacy_totals.misses),
                 static_cast<long long>(slab_totals.absorbed),
                 static_cast<long long>(legacy_totals.absorbed),
                 static_cast<long long>(slab_totals.demand_blocks),
                 static_cast<long long>(legacy_totals.demand_blocks));
    std::exit(1);
  }
  const auto mix_events = static_cast<int64_t>(mix_ops.size());
  double mix_slab_rate = MeasureEventsPerSec(mix_events, [&] {
    benchmark::DoNotOptimize(RunCacheMixSlab(mix_ops));
  });
  double mix_legacy_rate = MeasureEventsPerSec(mix_events, [&] {
    benchmark::DoNotOptimize(RunCacheMixLegacy(mix_ops));
  });

  // Workload streaming: Next() vs NextBatch() on the file-server
  // generator, gated on the two cursors producing the identical record
  // stream (count + content fingerprint).
  workload::FileServerWorkload* stream_wl = StreamBenchWorkload();
  int64_t stream_records = 0;
  {
    bench::Fnv1a next_fp, batch_fp;
    auto fold = [](bench::Fnv1a* fp, const trace::LogicalIoRecord& rec) {
      fp->I64(rec.time);
      fp->I64(rec.item);
      fp->I64(rec.offset);
      fp->I64(rec.size);
      fp->I64(static_cast<int64_t>(rec.type));
      fp->I64(rec.tag);
    };
    stream_wl->Reset();
    trace::LogicalIoRecord rec;
    while (stream_wl->Next(&rec)) {
      fold(&next_fp, rec);
      stream_records++;
    }
    stream_wl->Reset();
    std::vector<trace::LogicalIoRecord> batch;
    int64_t batch_records = 0;
    while (stream_wl->NextBatch(&batch, 256) > 0) {
      for (const trace::LogicalIoRecord& r : batch) fold(&batch_fp, r);
      batch_records += static_cast<int64_t>(batch.size());
    }
    if (stream_records != batch_records ||
        next_fp.hash() != batch_fp.hash()) {
      std::fprintf(stderr,
                   "BENCH_perf: Next and NextBatch streams disagree "
                   "(%lld vs %lld records, fp %016llx vs %016llx)\n",
                   static_cast<long long>(stream_records),
                   static_cast<long long>(batch_records),
                   static_cast<unsigned long long>(next_fp.hash()),
                   static_cast<unsigned long long>(batch_fp.hash()));
      std::exit(1);
    }
  }
  double stream_next_rate = MeasureEventsPerSec(stream_records, [&] {
    stream_wl->Reset();
    trace::LogicalIoRecord rec;
    while (stream_wl->Next(&rec)) benchmark::DoNotOptimize(rec);
  });
  std::vector<trace::LogicalIoRecord> stream_batch;
  stream_batch.reserve(256);
  double stream_batch_rate = MeasureEventsPerSec(stream_records, [&] {
    stream_wl->Reset();
    while (stream_wl->NextBatch(&stream_batch, 256) > 0) {
      benchmark::DoNotOptimize(stream_batch.data());
    }
  });

  // End-to-end replay throughput, new code vs the seed build's figures.
  // The seed numbers were measured on this machine from commit 2bf6bdc
  // with this exact harness; the fingerprints pin the simulated outcome,
  // so the speedup is apples-to-apples by construction.
  constexpr double kSeedReplayEcoLiosPerSec = 1493682.0;
  constexpr double kSeedReplayNpsLiosPerSec = 1813872.0;
  constexpr double kSeedSimulatorEventsPerSec = 5783775.0;
  constexpr uint64_t kSeedReplayEcoFingerprint = 0xe44f2708f6e0f001ull;
  constexpr uint64_t kSeedReplayNpsFingerprint = 0x5da2bb45a09019c0ull;
  ReplayFigure eco = MeasureReplayThroughput(true);
  ReplayFigure nps = MeasureReplayThroughput(false);
  if (eco.fingerprint != kSeedReplayEcoFingerprint ||
      nps.fingerprint != kSeedReplayNpsFingerprint) {
    std::fprintf(stderr,
                 "BENCH_perf: replay outcome diverged from the seed build "
                 "(eco fp %016llx want %016llx, nps fp %016llx want "
                 "%016llx)\n",
                 static_cast<unsigned long long>(eco.fingerprint),
                 static_cast<unsigned long long>(kSeedReplayEcoFingerprint),
                 static_cast<unsigned long long>(nps.fingerprint),
                 static_cast<unsigned long long>(kSeedReplayNpsFingerprint));
    std::exit(1);
  }

  // Telemetry overhead: the identical eco replay with a recorder attached
  // (default class mask, the --telemetry configuration) vs without. The
  // instrumented run must stay bit-identical AND within 2% throughput.
  // Wall-clock rates on this harness drift by several percent over a
  // --json run (frequency scaling, cache warming), so a single off/on
  // pair reports anywhere between -3% and +4% on a healthy build — and
  // the old take-the-smallest rule then published the most negative
  // outlier (the recorded -2.81% was pure noise). Each repetition now
  // brackets the instrumented run with two baseline runs (off-on-off):
  // linear drift cancels inside the bracket, and the published figure is
  // the MEDIAN of the repetitions — a real regression shifts the whole
  // distribution, residual noise only its tails.
  // The raw median can still land slightly NEGATIVE on a healthy build
  // (the previously recorded -2.44% read as if attaching a recorder sped
  // the replay up — physically impossible, pure measurement noise). The
  // published figure is therefore clamped at the measured noise floor:
  // the bracket's own off-vs-off drift tells us the resolution of the
  // harness, and any raw median at or below that floor publishes as
  // 0.00%. The raw median and every per-pair delta are recorded
  // alongside, and the one-sided <2% gate stays on the raw median.
  constexpr double kTelemetryGatePct = 2.0;
  constexpr int kTelemetryPairs = 5;
  double telemetry_off_rate = 0.0;
  double telemetry_on_rate = 0.0;
  double telemetry_overhead_pct = 0.0;
  double telemetry_overhead_pct_raw = 0.0;
  double telemetry_noise_floor_pct = 0.0;
  std::vector<double> telemetry_pair_pcts;
  uint64_t telemetry_recorded = 0;
  {
    struct OverheadRep {
      double overhead_pct;
      double drift_pct;  ///< |off_before - off_after| / off_rate: noise
      double off_rate;
      double on_rate;
      uint64_t recorded;
    };
    std::vector<OverheadRep> reps;
    reps.reserve(kTelemetryPairs);
    for (int attempt = 0; attempt < kTelemetryPairs; ++attempt) {
      telemetry::Recorder recorder;  // fresh rings per repetition
      ReplayFigure off_before = MeasureReplayThroughput(true);
      ReplayFigure on = MeasureReplayThroughput(true, &recorder);
      ReplayFigure off_after = MeasureReplayThroughput(true);
      if (on.fingerprint != kSeedReplayEcoFingerprint) {
        std::fprintf(stderr,
                     "BENCH_perf: telemetry-on replay diverged from the "
                     "seed outcome (fp %016llx want %016llx)\n",
                     static_cast<unsigned long long>(on.fingerprint),
                     static_cast<unsigned long long>(
                         kSeedReplayEcoFingerprint));
        std::exit(1);
      }
      double off_rate =
          0.5 * (off_before.lios_per_sec + off_after.lios_per_sec);
      OverheadRep rep;
      rep.overhead_pct = (off_rate - on.lios_per_sec) / off_rate * 100.0;
      rep.drift_pct =
          std::abs(off_before.lios_per_sec - off_after.lios_per_sec) /
          off_rate * 100.0;
      rep.off_rate = off_rate;
      rep.on_rate = on.lios_per_sec;
      rep.recorded = recorder.recorded();
      telemetry_pair_pcts.push_back(rep.overhead_pct);
      reps.push_back(rep);
    }
    std::sort(reps.begin(), reps.end(),
              [](const OverheadRep& a, const OverheadRep& b) {
                return a.overhead_pct < b.overhead_pct;
              });
    const OverheadRep& median = reps[kTelemetryPairs / 2];
    telemetry_overhead_pct_raw = median.overhead_pct;
    telemetry_off_rate = median.off_rate;
    telemetry_on_rate = median.on_rate;
    telemetry_recorded = median.recorded;
    std::vector<double> drifts;
    for (const OverheadRep& rep : reps) drifts.push_back(rep.drift_pct);
    std::sort(drifts.begin(), drifts.end());
    telemetry_noise_floor_pct = drifts[kTelemetryPairs / 2];
    telemetry_overhead_pct =
        telemetry_overhead_pct_raw > telemetry_noise_floor_pct
            ? telemetry_overhead_pct_raw
            : 0.0;
    if (telemetry_overhead_pct_raw >= kTelemetryGatePct) {
      std::fprintf(stderr,
                   "BENCH_perf: telemetry overhead %.2f%% (median of %d "
                   "bracketed repetitions) exceeds the %.1f%% budget "
                   "(on %.0f vs off %.0f lios/s)\n",
                   telemetry_overhead_pct_raw, kTelemetryPairs,
                   kTelemetryGatePct, telemetry_on_rate,
                   telemetry_off_rate);
      std::exit(1);
    }
  }

  // Live-ledger overhead: the instrumented eco replay with the streaming
  // pipeline attached (StreamDispatcher + RollingSummary folding 1-minute
  // windows, the --rolling-summary configuration minus file I/O) vs the
  // same replay with only the recorder. Both arms construct their
  // instruments fresh inside every timed run, so the delta isolates the
  // consumer: the per-window recorder pumps, the incremental ledger fold
  // and the window closes. Same bracketed median-of-five protocol and
  // the same clamp-at-noise-floor reporting as the telemetry gate.
  constexpr double kLiveLedgerGatePct = 2.0;
  double live_off_rate = 0.0;
  double live_on_rate = 0.0;
  double live_overhead_pct = 0.0;
  double live_overhead_pct_raw = 0.0;
  double live_noise_floor_pct = 0.0;
  std::vector<double> live_pair_pcts;
  int64_t live_windows = 0;
  {
    struct OverheadRep {
      double overhead_pct;
      double drift_pct;
      double off_rate;
      double on_rate;
      int64_t windows;
    };
    std::vector<OverheadRep> reps;
    reps.reserve(kTelemetryPairs);
    for (int attempt = 0; attempt < kTelemetryPairs; ++attempt) {
      ReplayFigure off_before = MeasureReplayThroughput(
          true, nullptr, ReplayInstrument::kLiveRecorder);
      ReplayFigure on = MeasureReplayThroughput(
          true, nullptr, ReplayInstrument::kLiveConsumer);
      ReplayFigure off_after = MeasureReplayThroughput(
          true, nullptr, ReplayInstrument::kLiveRecorder);
      if (on.fingerprint != kSeedReplayEcoFingerprint) {
        std::fprintf(stderr,
                     "BENCH_perf: live-consumer replay diverged from the "
                     "seed outcome (fp %016llx want %016llx) — attaching "
                     "the streaming pipeline changed the replay\n",
                     static_cast<unsigned long long>(on.fingerprint),
                     static_cast<unsigned long long>(
                         kSeedReplayEcoFingerprint));
        std::exit(1);
      }
      if (telemetry::Recorder::kEnabled && on.rolling_windows <= 0) {
        std::fprintf(stderr,
                     "BENCH_perf: live consumer closed no rolling windows "
                     "— the stream pump is not wired\n");
        std::exit(1);
      }
      double off_rate =
          0.5 * (off_before.lios_per_sec + off_after.lios_per_sec);
      OverheadRep rep;
      rep.overhead_pct = (off_rate - on.lios_per_sec) / off_rate * 100.0;
      rep.drift_pct =
          std::abs(off_before.lios_per_sec - off_after.lios_per_sec) /
          off_rate * 100.0;
      rep.off_rate = off_rate;
      rep.on_rate = on.lios_per_sec;
      rep.windows = on.rolling_windows;
      live_pair_pcts.push_back(rep.overhead_pct);
      reps.push_back(rep);
    }
    std::sort(reps.begin(), reps.end(),
              [](const OverheadRep& a, const OverheadRep& b) {
                return a.overhead_pct < b.overhead_pct;
              });
    const OverheadRep& median = reps[kTelemetryPairs / 2];
    live_overhead_pct_raw = median.overhead_pct;
    live_off_rate = median.off_rate;
    live_on_rate = median.on_rate;
    live_windows = median.windows;
    std::vector<double> drifts;
    for (const OverheadRep& rep : reps) drifts.push_back(rep.drift_pct);
    std::sort(drifts.begin(), drifts.end());
    live_noise_floor_pct = drifts[kTelemetryPairs / 2];
    live_overhead_pct = live_overhead_pct_raw > live_noise_floor_pct
                            ? live_overhead_pct_raw
                            : 0.0;
    if (live_overhead_pct_raw >= kLiveLedgerGatePct) {
      std::fprintf(stderr,
                   "BENCH_perf: live-ledger overhead %.2f%% (median of %d "
                   "bracketed repetitions) exceeds the %.1f%% budget "
                   "(on %.0f vs off %.0f lios/s)\n",
                   live_overhead_pct_raw, kTelemetryPairs,
                   kLiveLedgerGatePct, live_on_rate, live_off_rate);
      std::exit(1);
    }
  }

  // Profile overhead: the identical eco replay with a wall-clock phase
  // profiler attached (the --profile configuration) vs without, under
  // the telemetry gate's bracketed median-of-five protocol with the
  // clamp-at-noise-floor reporting. The profiled run must also stay
  // bit-identical: the profiler only reads the wall clock and writes
  // its own per-thread rings, and this gate proves it.
  constexpr double kProfileGatePct = 2.0;
  double profile_off_rate = 0.0;
  double profile_on_rate = 0.0;
  double profile_overhead_pct = 0.0;
  double profile_overhead_pct_raw = 0.0;
  double profile_noise_floor_pct = 0.0;
  std::vector<double> profile_pair_pcts;
  uint64_t profile_spans_recorded = 0;
  {
    struct OverheadRep {
      double overhead_pct;
      double drift_pct;
      double off_rate;
      double on_rate;
      uint64_t spans;
    };
    std::vector<OverheadRep> reps;
    reps.reserve(kTelemetryPairs);
    for (int attempt = 0; attempt < kTelemetryPairs; ++attempt) {
      telemetry::profile::Profiler profiler;  // fresh rings per repetition
      ReplayFigure off_before = MeasureReplayThroughput(true);
      ReplayFigure on = MeasureReplayThroughput(
          true, nullptr, ReplayInstrument::kPassedRecorder, &profiler);
      ReplayFigure off_after = MeasureReplayThroughput(true);
      if (on.fingerprint != kSeedReplayEcoFingerprint) {
        std::fprintf(stderr,
                     "BENCH_perf: profiled replay diverged from the seed "
                     "outcome (fp %016llx want %016llx) — attaching the "
                     "profiler changed the replay\n",
                     static_cast<unsigned long long>(on.fingerprint),
                     static_cast<unsigned long long>(
                         kSeedReplayEcoFingerprint));
        std::exit(1);
      }
      double off_rate =
          0.5 * (off_before.lios_per_sec + off_after.lios_per_sec);
      OverheadRep rep;
      rep.overhead_pct = (off_rate - on.lios_per_sec) / off_rate * 100.0;
      rep.drift_pct =
          std::abs(off_before.lios_per_sec - off_after.lios_per_sec) /
          off_rate * 100.0;
      rep.off_rate = off_rate;
      rep.on_rate = on.lios_per_sec;
      rep.spans = profiler.recorded();
      profile_pair_pcts.push_back(rep.overhead_pct);
      reps.push_back(rep);
    }
    std::sort(reps.begin(), reps.end(),
              [](const OverheadRep& a, const OverheadRep& b) {
                return a.overhead_pct < b.overhead_pct;
              });
    const OverheadRep& median = reps[kTelemetryPairs / 2];
    profile_overhead_pct_raw = median.overhead_pct;
    profile_off_rate = median.off_rate;
    profile_on_rate = median.on_rate;
    profile_spans_recorded = median.spans;
    std::vector<double> drifts;
    for (const OverheadRep& rep : reps) drifts.push_back(rep.drift_pct);
    std::sort(drifts.begin(), drifts.end());
    profile_noise_floor_pct = drifts[kTelemetryPairs / 2];
    profile_overhead_pct =
        profile_overhead_pct_raw > profile_noise_floor_pct
            ? profile_overhead_pct_raw
            : 0.0;
    if (profile_overhead_pct_raw >= kProfileGatePct) {
      std::fprintf(stderr,
                   "BENCH_perf: profile overhead %.2f%% (median of %d "
                   "bracketed repetitions) exceeds the %.1f%% budget "
                   "(on %.0f vs off %.0f lios/s)\n",
                   profile_overhead_pct_raw, kTelemetryPairs,
                   kProfileGatePct, profile_on_rate, profile_off_rate);
      std::exit(1);
    }
  }

  // Shard-scaling figure: S=1 vs S=8 on the 120-enclosure run, gated on
  // both shard counts producing the same simulated outcome (integer
  // counters exact, per-enclosure energies bitwise — the run is inside
  // the exact-equivalence domain by construction). Both runs carry a
  // phase profiler, which feeds the sharded_profile contention figure
  // below AND extends the equality gate to profiled sharded replays.
  replay::ExperimentMetrics sharded_one, sharded_eight;
  telemetry::profile::Profiler shard1_profiler, shard8_profiler;
  ReplayFigure shard1 =
      MeasureShardedReplayThroughput(1, &sharded_one, &shard1_profiler);
  ReplayFigure shard8 =
      MeasureShardedReplayThroughput(8, &sharded_eight, &shard8_profiler);
  if (sharded_one.logical_ios != sharded_eight.logical_ios ||
      sharded_one.physical_batches != sharded_eight.physical_batches ||
      sharded_one.spinups != sharded_eight.spinups ||
      sharded_one.enclosure_energy != sharded_eight.enclosure_energy) {
    std::fprintf(stderr,
                 "BENCH_perf: sharded replay (S=8) diverged from serial "
                 "(lios %lld/%lld phys %lld/%lld spin %lld/%lld "
                 "encE %.17g/%.17g)\n",
                 static_cast<long long>(sharded_one.logical_ios),
                 static_cast<long long>(sharded_eight.logical_ios),
                 static_cast<long long>(sharded_one.physical_batches),
                 static_cast<long long>(sharded_eight.physical_batches),
                 static_cast<long long>(sharded_one.spinups),
                 static_cast<long long>(sharded_eight.spinups),
                 sharded_one.enclosure_energy,
                 sharded_eight.enclosure_energy);
    std::exit(1);
  }
  const unsigned host_cpus = std::thread::hardware_concurrency();
  const ShardedProfileStats sharded_profile_s1 =
      ComputeShardedProfileStats(shard1_profiler.Drain());
  const ShardedProfileStats sharded_profile_s8 =
      ComputeShardedProfileStats(shard8_profiler.Drain());

  // Fleet-scale planner figure: indexed vs legacy stable_sort placement
  // on synthetic 1k/100k and 10k/1M fleets, gated on identical plans.
  PlannerScaleCase planner_small = RunPlannerScaleCase(1000, 100);
  PlannerScaleCase planner_large = RunPlannerScaleCase(10000, 100);

  // Fleet-scale period-end classification figure, gated on identical
  // classifications and identical placement plans.
  ClassifyScaleCase classify_scale = RunClassifyScaleCase(10000, 100);

  const char* path = path_override;
  if (path == nullptr) path = std::getenv("ECOSTORE_BENCH_JSON");
  if (path == nullptr) path = "BENCH_perf.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "BENCH_perf: cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"benchmark\": \"bench_micro\",\n");
  std::fprintf(out, "  \"classification_fileserver_period\": {\n");
  std::fprintf(out, "    \"trace_events\": %lld,\n",
               static_cast<long long>(events));
  std::fprintf(out, "    \"catalog_items\": %zu,\n",
               period.catalog.item_count());
  std::fprintf(out, "    \"streaming_events_per_sec\": %.0f,\n", streaming);
  std::fprintf(out, "    \"legacy_events_per_sec\": %.0f,\n", legacy_rate);
  std::fprintf(out, "    \"speedup\": %.2f\n", streaming / legacy_rate);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"cache_mix\": {\n");
  std::fprintf(out, "    \"ops\": %lld,\n",
               static_cast<long long>(mix_events));
  std::fprintf(out, "    \"slab_ops_per_sec\": %.0f,\n", mix_slab_rate);
  std::fprintf(out, "    \"legacy_ops_per_sec\": %.0f,\n", mix_legacy_rate);
  std::fprintf(out, "    \"speedup\": %.2f\n",
               mix_slab_rate / mix_legacy_rate);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"workload_stream\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_period_520s\",\n");
  std::fprintf(out, "    \"records\": %lld,\n",
               static_cast<long long>(stream_records));
  std::fprintf(out, "    \"next_records_per_sec\": %.0f,\n",
               stream_next_rate);
  std::fprintf(out, "    \"next_batch_records_per_sec\": %.0f,\n",
               stream_batch_rate);
  std::fprintf(out, "    \"batch_speedup\": %.2f\n",
               stream_batch_rate / stream_next_rate);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"replay_end_to_end\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_20min\",\n");
  std::fprintf(out, "    \"logical_ios_per_run\": %lld,\n",
               static_cast<long long>(eco.logical_ios));
  std::fprintf(out, "    \"eco_storage_lios_per_sec\": %.0f,\n",
               eco.lios_per_sec);
  std::fprintf(out, "    \"eco_storage_seed_lios_per_sec\": %.0f,\n",
               kSeedReplayEcoLiosPerSec);
  std::fprintf(out, "    \"eco_storage_speedup\": %.2f,\n",
               eco.lios_per_sec / kSeedReplayEcoLiosPerSec);
  std::fprintf(out, "    \"no_power_saving_lios_per_sec\": %.0f,\n",
               nps.lios_per_sec);
  std::fprintf(out, "    \"no_power_saving_seed_lios_per_sec\": %.0f,\n",
               kSeedReplayNpsLiosPerSec);
  std::fprintf(out, "    \"no_power_saving_speedup\": %.2f\n",
               nps.lios_per_sec / kSeedReplayNpsLiosPerSec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sharded_replay\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_120enc_20min\",\n");
  std::fprintf(out, "    \"policy\": \"eco_storage\",\n");
  std::fprintf(out, "    \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "    \"logical_ios_per_run\": %lld,\n",
               static_cast<long long>(shard1.logical_ios));
  std::fprintf(out, "    \"shards1_lios_per_sec\": %.0f,\n",
               shard1.lios_per_sec);
  std::fprintf(out, "    \"shards8_lios_per_sec\": %.0f,\n",
               shard8.lios_per_sec);
  std::fprintf(out, "    \"speedup\": %.2f\n",
               shard8.lios_per_sec / shard1.lios_per_sec);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sharded_profile\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_120enc_20min\",\n");
  std::fprintf(out, "    \"policy\": \"eco_storage\",\n");
  std::fprintf(out, "    \"host_cpus\": %u,\n", host_cpus);
  std::fprintf(out, "    \"enabled\": %s,\n",
               telemetry::profile::Profiler::kEnabled ? "true" : "false");
  std::fprintf(out, "    \"cases\": [\n");
  const ShardedProfileStats* profile_cases[] = {&sharded_profile_s1,
                                                &sharded_profile_s8};
  const int profile_case_shards[] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    const ShardedProfileStats& c = *profile_cases[i];
    std::fprintf(out,
                 "      {\"shards\": %d, \"spans\": %llu, \"epochs\": %lld, "
                 "\"ingest_ms\": %.1f, \"scatter_ms\": %.1f, "
                 "\"lane_busy_ms\": [",
                 profile_case_shards[i],
                 static_cast<unsigned long long>(c.spans),
                 static_cast<long long>(c.epochs), c.ingest_ms,
                 c.scatter_ms);
    for (size_t l = 0; l < c.lane_busy_ms.size(); ++l) {
      std::fprintf(out, "%s%.1f", l == 0 ? "" : ", ", c.lane_busy_ms[l]);
    }
    std::fprintf(out,
                 "], \"barrier_wait_ms\": %.1f, \"merge_ms\": %.1f, "
                 "\"period_end_ms\": %.1f, \"imbalance_mean\": %.2f}%s\n",
                 c.barrier_wait_ms, c.merge_ms, c.period_end_ms,
                 c.imbalance_mean, i == 0 ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"telemetry_overhead\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_20min\",\n");
  std::fprintf(out, "    \"policy\": \"eco_storage\",\n");
  std::fprintf(out, "    \"enabled\": %s,\n",
               telemetry::Recorder::kEnabled ? "true" : "false");
  std::fprintf(out, "    \"events_recorded\": %llu,\n",
               static_cast<unsigned long long>(telemetry_recorded));
  std::fprintf(out, "    \"off_lios_per_sec\": %.0f,\n", telemetry_off_rate);
  std::fprintf(out, "    \"on_lios_per_sec\": %.0f,\n", telemetry_on_rate);
  std::fprintf(out, "    \"overhead_pct\": %.2f,\n", telemetry_overhead_pct);
  std::fprintf(out, "    \"overhead_pct_raw\": %.2f,\n",
               telemetry_overhead_pct_raw);
  std::fprintf(out, "    \"noise_floor_pct\": %.2f,\n",
               telemetry_noise_floor_pct);
  std::fprintf(out, "    \"pair_overhead_pct\": [");
  for (size_t i = 0; i < telemetry_pair_pcts.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", telemetry_pair_pcts[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "    \"statistic\": \"median\",\n");
  std::fprintf(out, "    \"pairs\": %d,\n", kTelemetryPairs);
  std::fprintf(out, "    \"gate_pct\": %.1f\n", kTelemetryGatePct);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"live_ledger_overhead\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_20min\",\n");
  std::fprintf(out, "    \"policy\": \"eco_storage\",\n");
  std::fprintf(out, "    \"enabled\": %s,\n",
               telemetry::Recorder::kEnabled ? "true" : "false");
  std::fprintf(out, "    \"rolling_windows\": %lld,\n",
               static_cast<long long>(live_windows));
  std::fprintf(out, "    \"off_lios_per_sec\": %.0f,\n", live_off_rate);
  std::fprintf(out, "    \"on_lios_per_sec\": %.0f,\n", live_on_rate);
  std::fprintf(out, "    \"overhead_pct\": %.2f,\n", live_overhead_pct);
  std::fprintf(out, "    \"overhead_pct_raw\": %.2f,\n",
               live_overhead_pct_raw);
  std::fprintf(out, "    \"noise_floor_pct\": %.2f,\n",
               live_noise_floor_pct);
  std::fprintf(out, "    \"pair_overhead_pct\": [");
  for (size_t i = 0; i < live_pair_pcts.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", live_pair_pcts[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "    \"statistic\": \"median\",\n");
  std::fprintf(out, "    \"pairs\": %d,\n", kTelemetryPairs);
  std::fprintf(out, "    \"gate_pct\": %.1f\n", kLiveLedgerGatePct);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"profile_overhead\": {\n");
  std::fprintf(out, "    \"workload\": \"file_server_20min\",\n");
  std::fprintf(out, "    \"policy\": \"eco_storage\",\n");
  std::fprintf(out, "    \"enabled\": %s,\n",
               telemetry::profile::Profiler::kEnabled ? "true" : "false");
  std::fprintf(out, "    \"spans_recorded\": %llu,\n",
               static_cast<unsigned long long>(profile_spans_recorded));
  std::fprintf(out, "    \"off_lios_per_sec\": %.0f,\n", profile_off_rate);
  std::fprintf(out, "    \"on_lios_per_sec\": %.0f,\n", profile_on_rate);
  std::fprintf(out, "    \"overhead_pct\": %.2f,\n", profile_overhead_pct);
  std::fprintf(out, "    \"overhead_pct_raw\": %.2f,\n",
               profile_overhead_pct_raw);
  std::fprintf(out, "    \"noise_floor_pct\": %.2f,\n",
               profile_noise_floor_pct);
  std::fprintf(out, "    \"pair_overhead_pct\": [");
  for (size_t i = 0; i < profile_pair_pcts.size(); ++i) {
    std::fprintf(out, "%s%.2f", i == 0 ? "" : ", ", profile_pair_pcts[i]);
  }
  std::fprintf(out, "],\n");
  std::fprintf(out, "    \"statistic\": \"median\",\n");
  std::fprintf(out, "    \"pairs\": %d,\n", kTelemetryPairs);
  std::fprintf(out, "    \"gate_pct\": %.1f\n", kProfileGatePct);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"planner_scale\": {\n");
  std::fprintf(out, "    \"cases\": [\n");
  const PlannerScaleCase* planner_cases[] = {&planner_small, &planner_large};
  for (int i = 0; i < 2; ++i) {
    const PlannerScaleCase& c = *planner_cases[i];
    std::fprintf(out,
                 "      {\"enclosures\": %d, \"items\": %d, "
                 "\"p3_movers\": %lld, \"migrations\": %lld, "
                 "\"legacy_ms_per_plan\": %.2f, "
                 "\"indexed_ms_per_plan\": %.2f, \"speedup\": %.1f}%s\n",
                 c.enclosures, c.items, static_cast<long long>(c.movers),
                 static_cast<long long>(c.migrations), c.legacy_sec * 1e3,
                 c.indexed_sec * 1e3, c.legacy_sec / c.indexed_sec,
                 i == 0 ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"classify_scale\": {\n");
  std::fprintf(out, "    \"enclosures\": %d,\n", classify_scale.enclosures);
  std::fprintf(out, "    \"items\": %d,\n", classify_scale.items);
  std::fprintf(out, "    \"trace_events\": %lld,\n",
               static_cast<long long>(classify_scale.trace_events));
  std::fprintf(out, "    \"active_items\": %lld,\n",
               static_cast<long long>(classify_scale.active_items));
  std::fprintf(out, "    \"migrations\": %lld,\n",
               static_cast<long long>(classify_scale.migrations));
  std::fprintf(out, "    \"ingest_ms_per_period\": %.2f,\n",
               classify_scale.ingest_sec * 1e3);
  std::fprintf(out, "    \"legacy_ms_per_period_end\": %.2f,\n",
               classify_scale.legacy_sec * 1e3);
  std::fprintf(out, "    \"streaming_finalize_ms_per_period_end\": %.2f,\n",
               classify_scale.finalize_sec * 1e3);
  std::fprintf(out, "    \"period_end_speedup\": %.1f,\n",
               classify_scale.legacy_sec / classify_scale.finalize_sec);
  std::fprintf(out, "    \"classifier_peak_state_mib\": %.2f,\n",
               static_cast<double>(classify_scale.peak_state_bytes) /
                   (1024.0 * 1024.0));
  std::fprintf(out, "    \"retained_trace_mib\": %.2f\n",
               static_cast<double>(classify_scale.trace_bytes) /
                   (1024.0 * 1024.0));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"simulator_schedule_events_per_sec\": %.0f,\n",
               sim_rate);
  std::fprintf(out, "  \"simulator_seed_schedule_events_per_sec\": %.0f,\n",
               kSeedSimulatorEventsPerSec);
  std::fprintf(out, "  \"simulator_legacy_schedule_events_per_sec\": %.0f,\n",
               sim_legacy_rate);
  std::fprintf(out, "  \"simulator_schedule_speedup_vs_legacy\": %.2f,\n",
               sim_rate / sim_legacy_rate);
  std::fprintf(out, "  \"simulator_cancel_heavy_events_per_sec\": %.0f\n",
               sim_cancel_rate);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nclassification (file-server period, %lld events): "
              "streaming %.2fM ev/s vs legacy %.2fM ev/s (%.2fx)\n",
              static_cast<long long>(events), streaming / 1e6,
              legacy_rate / 1e6, streaming / legacy_rate);
  std::printf("cache mix (%lld ops): slab %.2fM ops/s vs legacy %.2fM ops/s "
              "(%.2fx)\n",
              static_cast<long long>(mix_events), mix_slab_rate / 1e6,
              mix_legacy_rate / 1e6, mix_slab_rate / mix_legacy_rate);
  std::printf("workload stream (file-server 520 s, %lld records): "
              "NextBatch %.2fM rec/s vs Next %.2fM rec/s (%.2fx)\n",
              static_cast<long long>(stream_records),
              stream_batch_rate / 1e6, stream_next_rate / 1e6,
              stream_batch_rate / stream_next_rate);
  std::printf("replay end-to-end: eco %.2fM lios/s (seed %.2fM, %.2fx), "
              "no_power_saving %.2fM lios/s (seed %.2fM, %.2fx)\n",
              eco.lios_per_sec / 1e6, kSeedReplayEcoLiosPerSec / 1e6,
              eco.lios_per_sec / kSeedReplayEcoLiosPerSec,
              nps.lios_per_sec / 1e6, kSeedReplayNpsLiosPerSec / 1e6,
              nps.lios_per_sec / kSeedReplayNpsLiosPerSec);
  std::printf("sharded replay (120 enclosures, %u host cpus): S=8 %.2fM "
              "vs S=1 %.2fM lios/s (%.2fx)\n",
              host_cpus, shard8.lios_per_sec / 1e6,
              shard1.lios_per_sec / 1e6,
              shard8.lios_per_sec / shard1.lios_per_sec);
  std::printf("telemetry overhead (eco replay, %llu events/run, median "
              "of %d bracketed reps): on %.2fM vs off %.2fM lios/s = "
              "%.2f%% (raw %.2f%%, noise floor %.2f%%, budget %.1f%%)\n",
              static_cast<unsigned long long>(telemetry_recorded),
              kTelemetryPairs, telemetry_on_rate / 1e6,
              telemetry_off_rate / 1e6, telemetry_overhead_pct,
              telemetry_overhead_pct_raw, telemetry_noise_floor_pct,
              kTelemetryGatePct);
  std::printf("live-ledger overhead (eco replay, %lld rolling windows, "
              "median of %d bracketed reps): on %.2fM vs off %.2fM "
              "lios/s = %.2f%% (raw %.2f%%, noise floor %.2f%%, budget "
              "%.1f%%)\n",
              static_cast<long long>(live_windows), kTelemetryPairs,
              live_on_rate / 1e6, live_off_rate / 1e6, live_overhead_pct,
              live_overhead_pct_raw, live_noise_floor_pct,
              kLiveLedgerGatePct);
  std::printf("profile overhead (eco replay, %llu spans/run, median of "
              "%d bracketed reps): on %.2fM vs off %.2fM lios/s = "
              "%.2f%% (raw %.2f%%, noise floor %.2f%%, budget %.1f%%)\n",
              static_cast<unsigned long long>(profile_spans_recorded),
              kTelemetryPairs, profile_on_rate / 1e6,
              profile_off_rate / 1e6, profile_overhead_pct,
              profile_overhead_pct_raw, profile_noise_floor_pct,
              kProfileGatePct);
  std::printf("sharded profile (S=8, %zu lanes): busy max/mean imbalance "
              "%.2f, barrier wait %.1f ms, merge %.1f ms, period ends "
              "%.1f ms over %lld epochs\n",
              sharded_profile_s8.lane_busy_ms.size(),
              sharded_profile_s8.imbalance_mean,
              sharded_profile_s8.barrier_wait_ms,
              sharded_profile_s8.merge_ms, sharded_profile_s8.period_end_ms,
              static_cast<long long>(sharded_profile_s8.epochs));
  for (int i = 0; i < 2; ++i) {
    const PlannerScaleCase& c = *planner_cases[i];
    std::printf("planner scale (%d enclosures, %d items, %lld movers): "
                "indexed %.2f ms vs legacy %.2f ms per plan (%.1fx), "
                "%lld migrations\n",
                c.enclosures, c.items, static_cast<long long>(c.movers),
                c.indexed_sec * 1e3, c.legacy_sec * 1e3,
                c.legacy_sec / c.indexed_sec,
                static_cast<long long>(c.migrations));
  }
  std::printf("classify scale (%d enclosures, %d items, %lld events, "
              "%lld active): finalize %.2f ms vs legacy %.2f ms per "
              "period end (%.1fx), ingest %.2f ms/period, peak state "
              "%.2f MiB vs %.2f MiB retained trace, %lld migrations\n",
              classify_scale.enclosures, classify_scale.items,
              static_cast<long long>(classify_scale.trace_events),
              static_cast<long long>(classify_scale.active_items),
              classify_scale.finalize_sec * 1e3,
              classify_scale.legacy_sec * 1e3,
              classify_scale.legacy_sec / classify_scale.finalize_sec,
              classify_scale.ingest_sec * 1e3,
              static_cast<double>(classify_scale.peak_state_bytes) /
                  (1024.0 * 1024.0),
              static_cast<double>(classify_scale.trace_bytes) /
                  (1024.0 * 1024.0),
              static_cast<long long>(classify_scale.migrations));
  std::printf("simulator: schedule+run %.2fM ev/s (seed %.2fM, legacy "
              "%.2fM, %.2fx), cancel-heavy %.2fM ev/s -> %s\n",
              sim_rate / 1e6, kSeedSimulatorEventsPerSec / 1e6,
              sim_legacy_rate / 1e6, sim_rate / sim_legacy_rate,
              sim_cancel_rate / 1e6, path);
}

}  // namespace
}  // namespace ecostore

int main(int argc, char** argv) {
  // --check / --record bypass google-benchmark entirely: they run the
  // bit-identical replay regression gate (see bench/replay_check.h).
  // --replay prints the end-to-end throughput figures only.
  // --json[=path] also skips google-benchmark and machine-writes the
  // BENCH_perf.json schema (the sanctioned way to regenerate the file).
  // --shards=S (with --check / --record) runs the gate on the sharded
  // engine; each shard count has its own golden file because sharded FP
  // reductions re-associate relative to serial.
  std::string golden_path;
  std::string json_path;
  bool check = false, record = false, replay_only = false, json_only = false;
  const int shards = ecostore::bench::ParseShardsFlag(argc, argv);
  // --profile=<base> attaches the wall-clock phase profiler to the eco
  // replay run and writes <base>.profile.jsonl + .profile.trace.json.
  // Implies --replay (the profiled figure is the end-to-end one).
  const std::string profile_base =
      ecostore::bench::ParseProfileFlag(argc, argv);
  if (!profile_base.empty()) replay_only = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg(argv[i]);
    if (arg == "--check") check = true;
    else if (arg == "--record") record = true;
    else if (arg == "--replay") replay_only = true;
    else if (arg == "--json") json_only = true;
    else if (arg.rfind("--json=", 0) == 0) {
      json_only = true;
      json_path = arg.substr(7);
    } else if (arg.rfind("--golden=", 0) == 0) {
      golden_path = arg.substr(9);
    }
  }
  if (golden_path.empty()) {
    golden_path = shards > 1 ? "bench/golden_replay_shards" +
                                   std::to_string(shards) + ".txt"
                             : "bench/golden_replay.txt";
  }
  if (check || record) {
    return ecostore::bench::ReplayCheckMain(golden_path, record, shards);
  }
  if (json_only) {
    ecostore::WriteBenchPerfJson(json_path.empty() ? nullptr
                                                   : json_path.c_str());
    return 0;
  }
  if (replay_only) {
    ecostore::telemetry::profile::Profiler profiler;
    ecostore::telemetry::profile::Profiler* attach =
        profile_base.empty() ? nullptr : &profiler;
    // --shards=S profiles the sharded engine (lane spans + contention)
    // instead of the serial pipeline.
    ecostore::ReplayFigure eco =
        shards > 1
            ? ecostore::MeasureShardedReplayThroughput(shards, nullptr,
                                                       attach)
            : ecostore::MeasureReplayThroughput(
                  true, nullptr,
                  ecostore::ReplayInstrument::kPassedRecorder, attach);
    ecostore::ReplayFigure base = ecostore::MeasureReplayThroughput(false);
    std::printf("replay end-to-end (file-server 20 min, %lld logical IOs "
                "per run):\n  eco_storage      %.0f lios/s (fp %016llx)\n"
                "  no_power_saving  %.0f lios/s (fp %016llx)\n",
                static_cast<long long>(eco.logical_ios), eco.lios_per_sec,
                static_cast<unsigned long long>(eco.fingerprint),
                base.lios_per_sec,
                static_cast<unsigned long long>(base.fingerprint));
    if (attach != nullptr) {
      ecostore::telemetry::profile::ProfileMeta meta;
      meta.workload =
          shards > 1 ? "file_server_120enc_20min" : "file_server_20min";
      meta.policy = "eco_storage";
      meta.shards = shards;
      meta.host_cpus = std::thread::hardware_concurrency();
      meta.wall_ns = static_cast<int64_t>(
          static_cast<double>(eco.logical_ios) / eco.lios_per_sec * 1e9);
      meta.dropped = attach->dropped();
      std::vector<ecostore::telemetry::profile::Span> spans =
          attach->Drain();
      meta.spans = static_cast<int64_t>(spans.size());
      ecostore::Status st = ecostore::telemetry::profile::ExportProfile(
          profile_base, meta, spans);
      if (!st.ok()) {
        std::fprintf(stderr, "profile export failed: %s\n",
                     st.message().c_str());
        return 1;
      }
      std::printf("profile: %lld spans (%lld dropped) -> "
                  "%s.profile.jsonl + %s.profile.trace.json\n",
                  static_cast<long long>(meta.spans),
                  static_cast<long long>(meta.dropped),
                  profile_base.c_str(), profile_base.c_str());
    }
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ecostore::WriteBenchPerfJson(nullptr);
  return 0;
}
