// Parameter-sensitivity sweeps (the paper's conclusion calls for studying
// "the effectiveness of the system on different configurations"):
//   1. preload-area size — how much cache the method needs,
//   2. spin-down timeout — sensitivity to the break-even estimate,
//   3. array width — enclosure-count scaling,
//   4. HDD vs SSD enclosures (paper §VIII-D).
// Each row runs the proposed method on the file-server workload against
// its own no-power-saving reference. The grid itself lives in
// bench/sweep_config.h, shared with the `bench_micro --check` replay
// gate so the gate covers exactly what this figure reports.
//
// `--threads=N` runs all (row, policy) experiments on a shared thread
// pool (N=0: all hardware threads). Every experiment owns its workload
// clone and simulator, so the numbers are identical to a serial run.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "bench/sweep_config.h"
#include "bench/telemetry_capture.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT

namespace {

struct SweepRow {
  std::string label;
  double saving_pct = 0;
  double response_ms = 0;
  int64_t spinups = 0;
  double base_wall_s = 0;  ///< host wall time of the reference run
  double eco_wall_s = 0;   ///< host wall time of the proposed-method run
};

void Print(const std::vector<SweepRow>& rows) {
  std::printf("%-34s %10s %12s %9s %9s %9s\n", "configuration", "saving[%]",
              "response[ms]", "spin-ups", "base[s]", "eco[s]");
  for (const SweepRow& row : rows) {
    std::printf("%-34s %10.1f %12.2f %9lld %9.2f %9.2f\n", row.label.c_str(),
                row.saving_pct, row.response_ms,
                static_cast<long long>(row.spinups), row.base_wall_s,
                row.eco_wall_s);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const int threads = bench::ParseThreadsFlag(argc, argv);
  const std::string telemetry_base = bench::ParseTelemetryFlag(argc, argv);
  const std::string summary_path =
      bench::ParseTelemetrySummaryFlag(argc, argv);
  bench::PrintHeader("Sensitivity sweeps — proposed method",
                     "configuration study (paper \xC2\xA7IX future work); "
                     "no paper figure");

  workload::FileServerConfig wl;
  wl.duration = bench::MaybeShorten(90 * kMinute, 30 * kMinute);

  std::vector<bench::SweepSection> sections = bench::SweepSections(wl);
  std::vector<replay::ExperimentJob> jobs = bench::SweepJobs(sections);

  auto wall_start = std::chrono::steady_clock::now();
  auto runs = replay::RunExperiments(jobs, replay::SuiteOptions{threads});
  auto wall = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  size_t next = 0;
  for (const bench::SweepSection& section : sections) {
    std::vector<SweepRow> rows;
    for (const bench::SweepRowSpec& spec : section.rows) {
      const replay::ExperimentMetrics& base = runs.value()[next++];
      const replay::ExperimentMetrics& eco = runs.value()[next++];
      SweepRow row;
      row.label = spec.label;
      row.saving_pct = eco.EnclosurePowerSavingVs(base);
      row.response_ms = eco.avg_response_ms;
      row.spinups = eco.spinups;
      row.base_wall_s = base.wall_seconds;
      row.eco_wall_s = eco.wall_seconds;
      rows.push_back(std::move(row));
    }
    std::cout << section.title << "\n";
    Print(rows);
  }

  std::printf("ran %zu experiments on %d thread(s) in %.1f s wall\n",
              jobs.size(), threads, wall);

  if (!telemetry_base.empty()) {
    // Captures the first row's proposed-method job (jobs come in
    // base/eco pairs, so index 1 is the eco run of row 1 of section 1).
    return bench::CaptureTelemetry(telemetry_base, jobs[1], summary_path);
  }
  return 0;
}
