// Parameter-sensitivity sweeps (the paper's conclusion calls for studying
// "the effectiveness of the system on different configurations"):
//   1. preload-area size — how much cache the method needs,
//   2. spin-down timeout — sensitivity to the break-even estimate,
//   3. array width — enclosure-count scaling,
//   4. HDD vs SSD enclosures (paper §VIII-D).
// Each row runs the proposed method on the file-server workload against
// its own no-power-saving reference.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT

namespace {

struct SweepRow {
  std::string label;
  double saving_pct = 0;
  double response_ms = 0;
  int64_t spinups = 0;
};

Result<SweepRow> RunOne(const std::string& label,
                        const workload::FileServerConfig& wl_config,
                        const replay::ExperimentConfig& config,
                        const core::PowerManagementConfig& pm) {
  auto workload = workload::FileServerWorkload::Create(wl_config);
  if (!workload.ok()) return workload.status();
  std::vector<replay::PolicyFactory> factories;
  factories.push_back(
      [] { return std::make_unique<policies::NoPowerSavingPolicy>(); });
  factories.push_back(
      [pm] { return std::make_unique<core::EcoStoragePolicy>(pm); });
  auto runs = replay::RunSuite(workload.value().get(), factories, config);
  if (!runs.ok()) return runs.status();
  SweepRow row;
  row.label = label;
  row.saving_pct =
      runs.value()[1].EnclosurePowerSavingVs(runs.value()[0]);
  row.response_ms = runs.value()[1].avg_response_ms;
  row.spinups = runs.value()[1].spinups;
  return row;
}

void Print(const std::vector<SweepRow>& rows) {
  std::printf("%-34s %10s %12s %9s\n", "configuration", "saving[%]",
              "response[ms]", "spin-ups");
  for (const SweepRow& row : rows) {
    std::printf("%-34s %10.1f %12.2f %9lld\n", row.label.c_str(),
                row.saving_pct, row.response_ms,
                static_cast<long long>(row.spinups));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::InitBenchLogging();
  bench::PrintHeader("Sensitivity sweeps — proposed method",
                     "configuration study (paper \xC2\xA7IX future work); "
                     "no paper figure");

  workload::FileServerConfig wl;
  wl.duration = bench::MaybeShorten(90 * kMinute, 30 * kMinute);

  // --- 1. preload area --------------------------------------------------
  {
    std::vector<SweepRow> rows;
    for (int64_t mb : {0, 125, 250, 500, 1000}) {
      replay::ExperimentConfig config;
      core::PowerManagementConfig pm;
      if (mb == 0) {
        pm.enable_preload = false;
      } else {
        config.storage.cache.preload_area_bytes = mb * kMiB;
      }
      auto row = RunOne("preload area " + std::to_string(mb) + " MiB", wl,
                        config, pm);
      if (!row.ok()) {
        std::cerr << row.status().ToString() << "\n";
        return 1;
      }
      rows.push_back(row.value());
    }
    std::cout << "[sweep 1] preload-area size:\n";
    Print(rows);
  }

  // --- 2. spin-down timeout --------------------------------------------
  {
    std::vector<SweepRow> rows;
    for (int seconds : {13, 26, 52, 104, 208}) {
      replay::ExperimentConfig config;
      config.storage.enclosure.spindown_timeout = seconds * kSecond;
      core::PowerManagementConfig pm;
      auto row = RunOne("spin-down timeout " + std::to_string(seconds) +
                            " s",
                        wl, config, pm);
      if (!row.ok()) {
        std::cerr << row.status().ToString() << "\n";
        return 1;
      }
      rows.push_back(row.value());
    }
    std::cout << "[sweep 2] spin-down timeout (break-even 52 s):\n";
    Print(rows);
  }

  // --- 3. array width ---------------------------------------------------
  {
    std::vector<SweepRow> rows;
    for (int enclosures : {6, 12, 24}) {
      workload::FileServerConfig wide = wl;
      wide.num_enclosures = enclosures;
      // Keep total data within capacity when the array shrinks.
      wide.archive_files = enclosures * 13;
      replay::ExperimentConfig config;
      core::PowerManagementConfig pm;
      auto row = RunOne(std::to_string(enclosures) + " enclosures", wide,
                        config, pm);
      if (!row.ok()) {
        std::cerr << row.status().ToString() << "\n";
        return 1;
      }
      rows.push_back(row.value());
    }
    std::cout << "[sweep 3] array width:\n";
    Print(rows);
  }

  // --- 4. HDD vs SSD (paper §VIII-D) -------------------------------------
  {
    std::vector<SweepRow> rows;
    {
      replay::ExperimentConfig config;
      config.storage.enclosure = storage::EnterpriseHddEnclosureConfig();
      auto row = RunOne("HDD enclosures (break-even 52 s)", wl, config,
                        core::PowerManagementConfig{});
      if (row.ok()) rows.push_back(row.value());
    }
    {
      replay::ExperimentConfig config;
      config.storage.enclosure = storage::SsdEnclosureConfig();
      core::PowerManagementConfig pm;
      pm.break_even = config.storage.enclosure.BreakEvenTime();
      auto row = RunOne("SSD enclosures (break-even ~2 s)", wl, config,
                        pm);
      if (row.ok()) rows.push_back(row.value());
    }
    std::cout << "[sweep 4] media type:\n";
    Print(rows);
  }
  return 0;
}
