// Parameter-sensitivity sweeps (the paper's conclusion calls for studying
// "the effectiveness of the system on different configurations"):
//   1. preload-area size — how much cache the method needs,
//   2. spin-down timeout — sensitivity to the break-even estimate,
//   3. array width — enclosure-count scaling,
//   4. HDD vs SSD enclosures (paper §VIII-D).
// Each row runs the proposed method on the file-server workload against
// its own no-power-saving reference.
//
// `--threads=N` runs all (row, policy) experiments on a shared thread
// pool (N=0: all hardware threads). Every experiment owns its workload
// clone and simulator, so the numbers are identical to a serial run.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT

namespace {

struct RowSpec {
  std::string label;
  workload::FileServerConfig wl;
  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;
};

struct Section {
  std::string title;
  std::vector<RowSpec> rows;
};

struct SweepRow {
  std::string label;
  double saving_pct = 0;
  double response_ms = 0;
  int64_t spinups = 0;
};

replay::WorkloadFactory FileServerFactory(
    const workload::FileServerConfig& wl) {
  return [wl]() -> Result<std::unique_ptr<workload::Workload>> {
    auto workload = workload::FileServerWorkload::Create(wl);
    if (!workload.ok()) return workload.status();
    return std::unique_ptr<workload::Workload>(std::move(workload).value());
  };
}

void Print(const std::vector<SweepRow>& rows) {
  std::printf("%-34s %10s %12s %9s\n", "configuration", "saving[%]",
              "response[ms]", "spin-ups");
  for (const SweepRow& row : rows) {
    std::printf("%-34s %10.1f %12.2f %9lld\n", row.label.c_str(),
                row.saving_pct, row.response_ms,
                static_cast<long long>(row.spinups));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBenchLogging();
  const int threads = bench::ParseThreadsFlag(argc, argv);
  bench::PrintHeader("Sensitivity sweeps — proposed method",
                     "configuration study (paper \xC2\xA7IX future work); "
                     "no paper figure");

  workload::FileServerConfig wl;
  wl.duration = bench::MaybeShorten(90 * kMinute, 30 * kMinute);

  std::vector<Section> sections;

  // --- 1. preload area --------------------------------------------------
  {
    Section section;
    section.title = "[sweep 1] preload-area size:";
    for (int64_t mb : {0, 125, 250, 500, 1000}) {
      RowSpec row;
      row.label = "preload area " + std::to_string(mb) + " MiB";
      row.wl = wl;
      if (mb == 0) {
        row.pm.enable_preload = false;
      } else {
        row.config.storage.cache.preload_area_bytes = mb * kMiB;
      }
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 2. spin-down timeout --------------------------------------------
  {
    Section section;
    section.title = "[sweep 2] spin-down timeout (break-even 52 s):";
    for (int seconds : {13, 26, 52, 104, 208}) {
      RowSpec row;
      row.label = "spin-down timeout " + std::to_string(seconds) + " s";
      row.wl = wl;
      row.config.storage.enclosure.spindown_timeout = seconds * kSecond;
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 3. array width ---------------------------------------------------
  {
    Section section;
    section.title = "[sweep 3] array width:";
    for (int enclosures : {6, 12, 24}) {
      RowSpec row;
      row.label = std::to_string(enclosures) + " enclosures";
      row.wl = wl;
      row.wl.num_enclosures = enclosures;
      // Keep total data within capacity when the array shrinks.
      row.wl.archive_files = enclosures * 13;
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // --- 4. HDD vs SSD (paper §VIII-D) -------------------------------------
  {
    Section section;
    section.title = "[sweep 4] media type:";
    {
      RowSpec row;
      row.label = "HDD enclosures (break-even 52 s)";
      row.wl = wl;
      row.config.storage.enclosure = storage::EnterpriseHddEnclosureConfig();
      section.rows.push_back(std::move(row));
    }
    {
      RowSpec row;
      row.label = "SSD enclosures (break-even ~2 s)";
      row.wl = wl;
      row.config.storage.enclosure = storage::SsdEnclosureConfig();
      row.pm.break_even = row.config.storage.enclosure.BreakEvenTime();
      section.rows.push_back(std::move(row));
    }
    sections.push_back(std::move(section));
  }

  // Flatten into independent (workload-clone, policy) experiments: per
  // row the no-power-saving reference followed by the proposed method.
  std::vector<replay::ExperimentJob> jobs;
  for (const Section& section : sections) {
    for (const RowSpec& row : section.rows) {
      replay::ExperimentJob base;
      base.workload = FileServerFactory(row.wl);
      base.policy = [] {
        return std::make_unique<policies::NoPowerSavingPolicy>();
      };
      base.config = row.config;
      jobs.push_back(std::move(base));

      replay::ExperimentJob eco;
      eco.workload = FileServerFactory(row.wl);
      core::PowerManagementConfig pm = row.pm;
      eco.policy = [pm] {
        return std::make_unique<core::EcoStoragePolicy>(pm);
      };
      eco.config = row.config;
      jobs.push_back(std::move(eco));
    }
  }

  auto wall_start = std::chrono::steady_clock::now();
  auto runs = replay::RunExperiments(jobs, replay::SuiteOptions{threads});
  auto wall = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  size_t next = 0;
  for (const Section& section : sections) {
    std::vector<SweepRow> rows;
    for (const RowSpec& spec : section.rows) {
      const replay::ExperimentMetrics& base = runs.value()[next++];
      const replay::ExperimentMetrics& eco = runs.value()[next++];
      SweepRow row;
      row.label = spec.label;
      row.saving_pct = eco.EnclosurePowerSavingVs(base);
      row.response_ms = eco.avg_response_ms;
      row.spinups = eco.spinups;
      rows.push_back(std::move(row));
    }
    std::cout << section.title << "\n";
    Print(rows);
  }

  std::printf("ran %zu experiments on %d thread(s) in %.1f s wall\n",
              jobs.size(), threads, wall);
  return 0;
}
