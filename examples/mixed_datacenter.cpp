// Mixed-datacenter scenario: a file server and an OLTP system
// consolidated on one array (the situation the paper's introduction
// motivates — different applications with very different I/O behaviour
// sharing storage). Shows the composite workload, the per-enclosure
// breakdown, the sampled power timeline and the clairvoyant upper bound
// on spin-down savings.
//
//   ./build/examples/mixed_datacenter [minutes]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "replay/potential.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/composite_workload.h"
#include "workload/file_server_workload.h"
#include "workload/oltp_workload.h"

using namespace ecostore;  // NOLINT: example brevity

int main(int argc, char** argv) {
  Logger::threshold = LogLevel::kWarn;

  SimDuration duration = 45 * kMinute;
  if (argc > 1) {
    duration = static_cast<SimDuration>(std::atof(argv[1]) *
                                        static_cast<double>(kMinute));
  }

  // A thinned file server (6 enclosures) plus a small OLTP rig (4 DB
  // enclosures + log) on an 11-enclosure array.
  workload::FileServerConfig fs_config;
  fs_config.duration = duration;
  fs_config.num_enclosures = 6;
  fs_config.big_hot_files = 6;
  fs_config.small_hot_files = 40;
  fs_config.popular_files = 120;
  fs_config.tail_files = 300;
  fs_config.archive_files = 70;
  auto fs = workload::FileServerWorkload::Create(fs_config);
  if (!fs.ok()) {
    std::cerr << fs.status().ToString() << "\n";
    return 1;
  }

  workload::OltpConfig oltp_config;
  oltp_config.duration = duration;
  oltp_config.db_enclosures = 4;
  oltp_config.total_db_iops = 1600;
  auto oltp = workload::OltpWorkload::Create(oltp_config);
  if (!oltp.ok()) {
    std::cerr << oltp.status().ToString() << "\n";
    return 1;
  }

  std::vector<std::unique_ptr<workload::Workload>> children;
  children.push_back(std::move(fs).value());
  children.push_back(std::move(oltp).value());
  auto mixed = workload::CompositeWorkload::Create("mixed_datacenter",
                                                   std::move(children));
  if (!mixed.ok()) {
    std::cerr << mixed.status().ToString() << "\n";
    return 1;
  }
  std::cout << "array: " << mixed.value()->info().num_enclosures
            << " enclosures, "
            << mixed.value()->catalog().item_count() << " data items, "
            << FormatBytes(mixed.value()->info().total_data_bytes)
            << " of data\n\n";

  replay::ExperimentConfig config;
  config.power_sample_interval = 30 * kSecond;
  core::PowerManagementConfig pm;
  auto runs = replay::RunSuite(mixed.value().get(),
                               replay::PaperPolicySet(pm), config);
  if (!runs.ok()) {
    std::cerr << runs.status().ToString() << "\n";
    return 1;
  }

  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintResponseTable(std::cout, runs.value());

  const replay::ExperimentMetrics* proposed =
      replay::FindRun(runs.value(), "proposed");
  const replay::ExperimentMetrics* base =
      replay::FindRun(runs.value(), "no_power_saving");

  std::cout << "\nper-enclosure breakdown (proposed) — the hot/cold "
               "structure:\n";
  replay::PrintEnclosureTable(std::cout, *proposed);

  std::cout << "\npower timeline (proposed):\n";
  replay::PrintPowerTimeline(std::cout, *proposed);

  // How much headroom is left on the no-power-saving trace?
  auto potential =
      replay::ComputeOraclePotential(*base, config.storage.enclosure);
  std::cout << "\nclairvoyant spin-down bound on the unmanaged trace: "
            << potential.savable_power << " W ("
            << potential.savable_pct_of_enclosures << "% of enclosure "
            << "power, " << potential.exploitable_intervals
            << " exploitable intervals)\n";
  auto achieved =
      replay::ComputeOraclePotential(*proposed, config.storage.enclosure);
  std::cout << "still unexploited after the proposed method: "
            << achieved.savable_power << " W\n";
  return 0;
}
