// OLTP scenario: a TPC-C-shaped workload (paper §VI-B) replayed under the
// four policies; prints power, response, migration tables and the scaled
// transaction throughput of paper Fig. 12.
//
//   ./build/examples/oltp_scenario [minutes]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/oltp_workload.h"

using namespace ecostore;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* log_env = std::getenv("ECOSTORE_LOG");
  Logger::threshold = (log_env != nullptr && std::string(log_env) == "debug")
                          ? LogLevel::kDebug
                          : LogLevel::kWarn;

  workload::OltpConfig wl_config;
  if (argc > 1) {
    wl_config.duration = static_cast<SimDuration>(
        std::atof(argv[1]) * static_cast<double>(kMinute));
  }
  auto workload = workload::OltpWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status().ToString() << "\n";
    return 1;
  }

  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;

  auto runs = replay::RunSuite(workload.value().get(),
                               replay::PaperPolicySet(pm), config);
  if (!runs.ok()) {
    std::cerr << "run: " << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== OLTP / TPC-C ("
            << FormatDuration(workload.value()->info().duration)
            << ") ===\n\n";
  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintResponseTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  // Fig. 12: transaction throughput scaled from read response times.
  const replay::ExperimentMetrics* base =
      replay::FindRun(runs.value(), "no_power_saving");
  std::cout << "\ntransaction throughput (tpmC, scaled per paper "
               "\xC2\xA7VII-A.5):\n";
  for (const replay::ExperimentMetrics& m : runs.value()) {
    double tpmc = replay::ScaledTransactionThroughput(
        workload::OltpWorkload::kBaselineTpmC, *base, m);
    std::cout << "  " << m.policy << ": " << tpmc << " ("
              << 100.0 * (tpmc / workload::OltpWorkload::kBaselineTpmC - 1.0)
              << "%)\n";
  }
  std::cout << "\n";
  replay::PrintIntervalCdf(std::cout, runs.value(),
                           {10 * kSecond, 52 * kSecond, 2 * kMinute,
                            10 * kMinute});
  return 0;
}
