// Trace capture & replay tool — the paper's experimental workflow
// (§VII-A.2): record a workload's logical I/O trace once, then replay the
// identical trace under any power-saving method.
//
// Usage:
//   trace_tool record <file_server|oltp|dss> <minutes> <prefix>
//       writes <prefix>.catalog.csv and <prefix>.trace.csv
//   trace_tool replay <prefix> <no_power_saving|proposed|pdc|ddr|timeout>
//       replays the recorded trace under one policy
//   trace_tool info <prefix>
//       prints catalog/trace statistics

#include <iostream>
#include <memory>
#include <string>

#include "common/logging.h"
#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "policies/ddr_policy.h"
#include "policies/pdc_policy.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/dss_workload.h"
#include "workload/file_server_workload.h"
#include "workload/oltp_workload.h"
#include "workload/recorded_workload.h"

using namespace ecostore;  // NOLINT: example brevity

namespace {

int Usage() {
  std::cerr << "usage:\n"
            << "  trace_tool record <file_server|oltp|dss> <minutes> "
               "<prefix>\n"
            << "  trace_tool replay <prefix> "
               "<no_power_saving|proposed|pdc|ddr|timeout>\n"
            << "  trace_tool info <prefix>\n";
  return 2;
}

Result<std::unique_ptr<workload::Workload>> MakeWorkload(
    const std::string& kind, SimDuration duration) {
  if (kind == "file_server") {
    workload::FileServerConfig config;
    config.duration = duration;
    auto w = workload::FileServerWorkload::Create(config);
    if (!w.ok()) return w.status();
    return std::unique_ptr<workload::Workload>(std::move(w).value());
  }
  if (kind == "oltp") {
    workload::OltpConfig config;
    config.duration = duration;
    auto w = workload::OltpWorkload::Create(config);
    if (!w.ok()) return w.status();
    return std::unique_ptr<workload::Workload>(std::move(w).value());
  }
  if (kind == "dss") {
    workload::DssConfig config;
    config.duration = duration;
    config.scale = 0.1;  // keep recorded files manageable
    auto w = workload::DssWorkload::Create(config);
    if (!w.ok()) return w.status();
    return std::unique_ptr<workload::Workload>(std::move(w).value());
  }
  return Status::InvalidArgument("unknown workload kind: " + kind);
}

std::unique_ptr<policies::StoragePolicy> MakePolicy(
    const std::string& name) {
  if (name == "no_power_saving") {
    return std::make_unique<policies::NoPowerSavingPolicy>();
  }
  if (name == "timeout") {
    return std::make_unique<policies::FixedTimeoutPolicy>();
  }
  if (name == "proposed") {
    return std::make_unique<core::EcoStoragePolicy>(
        core::PowerManagementConfig{});
  }
  if (name == "pdc") {
    return std::make_unique<policies::PdcPolicy>(
        policies::PdcPolicy::Options{});
  }
  if (name == "ddr") {
    return std::make_unique<policies::DdrPolicy>(
        policies::DdrPolicy::Options{});
  }
  return nullptr;
}

int Record(const std::string& kind, double minutes,
           const std::string& prefix) {
  auto duration =
      static_cast<SimDuration>(minutes * static_cast<double>(kMinute));
  auto source = MakeWorkload(kind, duration);
  if (!source.ok()) {
    std::cerr << source.status().ToString() << "\n";
    return 1;
  }
  auto recorded = workload::RecordedWorkload::Capture(source.value().get());
  if (!recorded.ok()) {
    std::cerr << recorded.status().ToString() << "\n";
    return 1;
  }
  Status st = recorded.value()->Save(prefix);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "recorded " << recorded.value()->records().size()
            << " I/Os over " << FormatDuration(duration) << " to " << prefix
            << ".{catalog,trace}.csv\n";
  return 0;
}

int Replay(const std::string& prefix, const std::string& policy_name) {
  auto workload = workload::RecordedWorkload::Load(prefix);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  auto policy = MakePolicy(policy_name);
  if (policy == nullptr) return Usage();
  replay::Experiment experiment(workload.value().get(), policy.get(),
                                replay::ExperimentConfig{});
  auto metrics = experiment.Run();
  if (!metrics.ok()) {
    std::cerr << metrics.status().ToString() << "\n";
    return 1;
  }
  std::cout << replay::Summarize(metrics.value()) << "\n";
  return 0;
}

int Info(const std::string& prefix) {
  auto workload = workload::RecordedWorkload::Load(prefix);
  if (!workload.ok()) {
    std::cerr << workload.status().ToString() << "\n";
    return 1;
  }
  const auto& w = *workload.value();
  int64_t reads = 0;
  for (const trace::LogicalIoRecord& rec : w.records()) {
    if (rec.is_read()) reads++;
  }
  std::cout << "trace: " << w.records().size() << " records ("
            << reads << " reads) over "
            << FormatDuration(w.info().duration) << "\n"
            << "catalog: " << w.catalog().item_count() << " items on "
            << w.catalog().volume_count() << " volumes across "
            << w.info().num_enclosures << " enclosures, "
            << FormatBytes(w.info().total_data_bytes) << " total\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Logger::threshold = LogLevel::kWarn;
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "record" && argc == 5) {
    return Record(argv[2], std::atof(argv[3]), argv[4]);
  }
  if (command == "replay" && argc == 4) {
    return Replay(argv[2], argv[3]);
  }
  if (command == "info" && argc == 3) {
    return Info(argv[2]);
  }
  return Usage();
}
