// Quickstart: run a short file-server workload under the proposed
// application-collaborative power-saving method and the paper's
// baselines, then print the paper-style comparison tables.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "common/logging.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* log_env = std::getenv("ECOSTORE_LOG");
  Logger::threshold = (log_env != nullptr && std::string(log_env) == "debug")
                          ? LogLevel::kDebug
                          : LogLevel::kWarn;

  // A 30-minute slice of the file-server workload keeps the example fast;
  // pass a duration in minutes to run longer (e.g. `quickstart 360`).
  workload::FileServerConfig wl_config;
  wl_config.duration = 30 * kMinute;
  if (argc > 1) {
    wl_config.duration = static_cast<SimDuration>(std::atof(argv[1]) *
                                                  static_cast<double>(kMinute));
  }
  auto workload = workload::FileServerWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status().ToString() << "\n";
    return 1;
  }

  replay::ExperimentConfig config;
  config.storage.num_enclosures = workload.value()->info().num_enclosures;

  // Table II parameters (break-even 52 s, alpha 1.2, 520 s initial period)
  // are the PowerManagementConfig defaults.
  core::PowerManagementConfig pm;

  auto runs = replay::RunSuite(workload.value().get(),
                               replay::PaperPolicySet(pm), config);
  if (!runs.ok()) {
    std::cerr << "run: " << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== File Server (" << FormatDuration(wl_config.duration)
            << " slice) ===\n\n";
  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintResponseTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintMigrationTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintIntervalCdf(std::cout, runs.value(),
                           {10 * kSecond, 52 * kSecond, 2 * kMinute,
                            10 * kMinute});
  return 0;
}
