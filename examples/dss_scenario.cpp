// DSS scenario: a TPC-H-shaped workload (paper §VI-B) replayed under the
// four policies; prints power, migration tables and the scaled query
// response times of paper Fig. 15 (Q2 / Q7 / Q21).
//
//   ./build/examples/dss_scenario [minutes]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/dss_workload.h"

using namespace ecostore;  // NOLINT: example brevity

int main(int argc, char** argv) {
  const char* log_env = std::getenv("ECOSTORE_LOG");
  Logger::threshold = (log_env != nullptr && std::string(log_env) == "debug")
                          ? LogLevel::kDebug
                          : LogLevel::kWarn;

  workload::DssConfig wl_config;
  if (argc > 1) {
    wl_config.duration = static_cast<SimDuration>(
        std::atof(argv[1]) * static_cast<double>(kMinute));
  }
  auto workload = workload::DssWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status().ToString() << "\n";
    return 1;
  }

  replay::ExperimentConfig config;
  core::PowerManagementConfig pm;

  auto runs = replay::RunSuite(workload.value().get(),
                               replay::PaperPolicySet(pm), config);
  if (!runs.ok()) {
    std::cerr << "run: " << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== DSS / TPC-H ("
            << FormatDuration(workload.value()->info().duration)
            << ") ===\n\n";
  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintResponseTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintMigrationTable(std::cout, runs.value());

  // Fig. 15: query response times scaled from per-query read responses.
  const replay::ExperimentMetrics* base =
      replay::FindRun(runs.value(), "no_power_saving");
  std::map<int32_t, double> wall;
  const auto& seconds = workload.value()->query_wall_seconds();
  for (int q = 1; q <= workload::DssWorkload::kNumQueries; ++q) {
    wall[q] = seconds[static_cast<size_t>(q)];
  }
  std::cout << "\nquery response [s] (measured wall, first issue -> last "
               "I/O completion):\n";
  std::cout << "  policy              Q2        Q7        Q21\n";
  for (const replay::ExperimentMetrics& m : runs.value()) {
    auto measured = replay::MeasuredQueryWallSeconds(m);
    std::cout << "  " << m.policy;
    for (size_t pad = m.policy.size(); pad < 18; ++pad) std::cout << ' ';
    for (int q : {2, 7, 21}) {
      std::cout << "  " << measured[q];
    }
    std::cout << "\n";
  }
  (void)base;
  (void)wall;
  std::cout << "\n";
  replay::PrintIntervalCdf(std::cout, runs.value(),
                           {10 * kSecond, 52 * kSecond, 2 * kMinute,
                            10 * kMinute});
  return 0;
}
