// Example: writing your own power-management policy against the
// StoragePolicy interface and racing it against the built-ins.
//
// The toy policy below ("read-ratio splitter") ignores the paper's
// pattern machinery and simply write-delays everything write-heavy and
// allows spin-down everywhere — a plausible-looking heuristic that the
// comparison exposes as inferior to the full application-collaborative
// method.
//
//   ./build/examples/custom_policy [minutes]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "core/eco_storage_policy.h"
#include "policies/basic_policies.h"
#include "replay/report.h"
#include "replay/suite.h"
#include "workload/file_server_workload.h"

using namespace ecostore;  // NOLINT: example brevity

namespace {

/// A custom policy only needs name(), initial_period() and OnPeriodEnd();
/// Start() and the event hooks are optional.
class ReadRatioSplitterPolicy : public policies::StoragePolicy {
 public:
  std::string name() const override { return "read_ratio_splitter"; }
  SimDuration initial_period() const override { return 5 * kMinute; }

  void Start(const storage::StorageSystem& system,
             policies::PolicyActuator* actuator) override {
    // Let everything spin down; no placement, no preload.
    for (int e = 0; e < system.num_enclosures(); ++e) {
      actuator->SetSpinDownAllowed(static_cast<EnclosureId>(e), true);
    }
  }

  SimDuration OnPeriodEnd(const monitor::MonitorSnapshot& snapshot,
                          const storage::StorageSystem& system,
                          policies::PolicyActuator* actuator) override {
    (void)system;
    determinations_++;
    // Count reads/writes per item over the period.
    std::unordered_map<DataItemId, std::pair<int64_t, int64_t>> counts;
    for (const trace::LogicalIoRecord& rec :
         snapshot.application->buffer().records()) {
      auto& [reads, writes] = counts[rec.item];
      (rec.is_read() ? reads : writes)++;
    }
    std::unordered_set<DataItemId> write_heavy;
    for (const auto& [item, rw] : counts) {
      if (rw.second > rw.first) write_heavy.insert(item);
    }
    actuator->SetWriteDelayItems(write_heavy);
    return initial_period();
  }

  int64_t placement_determinations() const override {
    return determinations_;
  }

 private:
  int64_t determinations_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Logger::threshold = LogLevel::kWarn;

  workload::FileServerConfig wl_config;
  wl_config.duration = 60 * kMinute;
  if (argc > 1) {
    wl_config.duration = static_cast<SimDuration>(
        std::atof(argv[1]) * static_cast<double>(kMinute));
  }
  auto workload = workload::FileServerWorkload::Create(wl_config);
  if (!workload.ok()) {
    std::cerr << "workload: " << workload.status().ToString() << "\n";
    return 1;
  }

  std::vector<replay::PolicyFactory> factories;
  factories.push_back(
      [] { return std::make_unique<policies::NoPowerSavingPolicy>(); });
  factories.push_back(
      [] { return std::make_unique<ReadRatioSplitterPolicy>(); });
  factories.push_back([] {
    return std::make_unique<core::EcoStoragePolicy>(
        core::PowerManagementConfig{});
  });

  auto runs = replay::RunSuite(workload.value().get(), factories,
                               replay::ExperimentConfig{});
  if (!runs.ok()) {
    std::cerr << "run: " << runs.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== custom policy vs built-ins (file server, "
            << FormatDuration(wl_config.duration) << ") ===\n\n";
  replay::PrintPowerTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintResponseTable(std::cout, runs.value());
  std::cout << "\n";
  replay::PrintMigrationTable(std::cout, runs.value());
  return 0;
}
