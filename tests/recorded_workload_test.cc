// Tests for catalog CSV serialization and the recorded (capture/replay)
// workload.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "common/units.h"
#include "storage/catalog_csv.h"
#include "storage/storage_config.h"
#include "workload/file_server_workload.h"
#include "workload/recorded_workload.h"

namespace ecostore::workload {
namespace {

storage::DataItemCatalog SampleCatalog() {
  storage::DataItemCatalog catalog;
  VolumeId v0 = catalog.AddVolume(0);
  VolumeId v1 = catalog.AddVolume(2);
  EXPECT_TRUE(
      catalog.AddItem("table_a", v0, 1000, storage::DataItemKind::kTable)
          .ok());
  EXPECT_TRUE(catalog
                  .AddItem("meta", v1, 50, storage::DataItemKind::kIndex,
                           /*pinned=*/true)
                  .ok());
  return catalog;
}

TEST(CatalogCsvTest, RoundTrip) {
  storage::DataItemCatalog catalog = SampleCatalog();
  std::ostringstream out;
  ASSERT_TRUE(storage::WriteCatalogCsv(out, catalog).ok());
  std::istringstream in(out.str());
  auto parsed = storage::ReadCatalogCsv(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().item_count(), 2u);
  EXPECT_EQ(parsed.value().volume_count(), 2u);
  EXPECT_EQ(parsed.value().volume_enclosure(1), 2);
  EXPECT_EQ(parsed.value().item(0).name, "table_a");
  EXPECT_EQ(parsed.value().item(1).kind, storage::DataItemKind::kIndex);
  EXPECT_TRUE(parsed.value().item(1).pinned);
}

TEST(CatalogCsvTest, RejectsMalformedRows) {
  std::istringstream bad_kind("V,0,0\nI,0,x,0,10,alien,0\n");
  EXPECT_FALSE(storage::ReadCatalogCsv(bad_kind).ok());
  std::istringstream bad_prefix("X,1,2\n");
  EXPECT_FALSE(storage::ReadCatalogCsv(bad_prefix).ok());
  std::istringstream sparse_ids("V,0,0\nI,5,x,0,10,file,0\n");
  EXPECT_FALSE(storage::ReadCatalogCsv(sparse_ids).ok());
}

TEST(CatalogCsvTest, RejectsCommaInName) {
  storage::DataItemCatalog catalog;
  VolumeId v = catalog.AddVolume(0);
  ASSERT_TRUE(
      catalog.AddItem("a,b", v, 10, storage::DataItemKind::kFile).ok());
  std::ostringstream out;
  EXPECT_FALSE(storage::WriteCatalogCsv(out, catalog).ok());
}

std::vector<trace::LogicalIoRecord> SampleRecords() {
  std::vector<trace::LogicalIoRecord> records;
  for (int i = 0; i < 5; ++i) {
    trace::LogicalIoRecord rec;
    rec.time = i * kSecond;
    rec.item = i % 2;
    rec.size = 4096;
    rec.type = i % 2 == 0 ? IoType::kRead : IoType::kWrite;
    records.push_back(rec);
  }
  return records;
}

TEST(RecordedWorkloadTest, FromRecordsStreamsAndResets) {
  auto workload = RecordedWorkload::FromRecords(
      "sample", SampleCatalog(), SampleRecords());
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload.value()->info().num_enclosures, 3);  // volume on enc 2
  trace::LogicalIoRecord rec;
  int n = 0;
  while (workload.value()->Next(&rec)) n++;
  EXPECT_EQ(n, 5);
  workload.value()->Reset();
  ASSERT_TRUE(workload.value()->Next(&rec));
  EXPECT_EQ(rec.time, 0);
}

TEST(RecordedWorkloadTest, RejectsOutOfOrderAndUnknownItems) {
  auto records = SampleRecords();
  std::swap(records[0], records[4]);
  EXPECT_FALSE(
      RecordedWorkload::FromRecords("x", SampleCatalog(), records).ok());

  records = SampleRecords();
  records[2].item = 99;
  EXPECT_FALSE(
      RecordedWorkload::FromRecords("x", SampleCatalog(), records).ok());
}

TEST(RecordedWorkloadTest, CaptureMatchesSource) {
  FileServerConfig config;
  config.duration = 3 * kMinute;
  config.popular_files = 20;
  config.tail_files = 10;
  config.archive_files = 2;
  config.big_hot_files = 2;
  config.small_hot_files = 4;
  config.big_hot_file_bytes = 1 * kGiB;
  config.archive_file_bytes = 1 * kGiB;
  auto source = FileServerWorkload::Create(config);
  ASSERT_TRUE(source.ok());

  auto recorded = RecordedWorkload::Capture(source.value().get());
  ASSERT_TRUE(recorded.ok());
  EXPECT_EQ(recorded.value()->catalog().item_count(),
            source.value()->catalog().item_count());

  // Replaying both yields identical streams.
  source.value()->Reset();
  trace::LogicalIoRecord a, b;
  while (source.value()->Next(&a)) {
    ASSERT_TRUE(recorded.value()->Next(&b));
    EXPECT_EQ(a.time, b.time);
    EXPECT_EQ(a.item, b.item);
    EXPECT_EQ(a.offset, b.offset);
  }
  EXPECT_FALSE(recorded.value()->Next(&b));
}

TEST(RecordedWorkloadTest, SaveLoadRoundTrip) {
  auto workload = RecordedWorkload::FromRecords(
      "sample", SampleCatalog(), SampleRecords());
  ASSERT_TRUE(workload.ok());
  std::string prefix = ::testing::TempDir() + "/ecostore_rec";
  ASSERT_TRUE(workload.value()->Save(prefix).ok());
  auto loaded = RecordedWorkload::Load(prefix);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value()->records().size(), 5u);
  EXPECT_EQ(loaded.value()->catalog().item_count(), 2u);
  std::remove((prefix + ".catalog.csv").c_str());
  std::remove((prefix + ".trace.csv").c_str());
}

TEST(RecordedWorkloadTest, LoadMissingFileFails) {
  EXPECT_FALSE(RecordedWorkload::Load("/nonexistent/prefix").ok());
}

TEST(StorageConfigPresetTest, SsdPresetValidWithTinyBreakEven) {
  storage::EnclosureConfig ssd = storage::SsdEnclosureConfig();
  EXPECT_TRUE(ssd.Validate().ok());
  EXPECT_LT(ssd.BreakEvenTime(), 3 * kSecond);
  storage::EnclosureConfig hdd = storage::EnterpriseHddEnclosureConfig();
  EXPECT_TRUE(hdd.Validate().ok());
  EXPECT_GT(hdd.BreakEvenTime(), 45 * kSecond);
  EXPECT_LT(hdd.idle_power, hdd.active_power);
  EXPECT_LT(ssd.idle_power, hdd.idle_power);
}

}  // namespace
}  // namespace ecostore::workload
